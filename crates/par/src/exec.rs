//! [`ExecPolicy`] and the deterministic parallel map.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// How a rank executes its per-block kernels.
///
/// Carried by `apc_core::PipelineConfig` and threaded through every kernel
/// batch entry point ([`par_map`] callers). The policy changes *wall-clock*
/// time only: virtual-time accounting is summed from per-block counters, so
/// `Serial` and `Threads(n)` produce byte-identical experiment reports (a
/// regression test in the umbrella crate guards this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecPolicy {
    /// Run kernels on the rank's own thread (the seed behavior).
    #[default]
    Serial,
    /// Fan each per-block loop out over `n` scoped worker threads.
    /// `Threads(0)` and `Threads(1)` degenerate to [`ExecPolicy::Serial`].
    Threads(usize),
}

impl ExecPolicy {
    /// A policy using every core the OS reports.
    pub fn auto() -> Self {
        ExecPolicy::Threads(available_cores())
    }

    /// Worker count this policy fans out to (1 for `Serial`).
    pub fn threads(self) -> usize {
        match self {
            ExecPolicy::Serial => 1,
            ExecPolicy::Threads(n) => n.max(1),
        }
    }

    /// True when this policy actually spawns workers.
    pub fn is_parallel(self) -> bool {
        self.threads() > 1
    }

    /// Cap the pool so that `nranks × threads` does not exceed the
    /// machine's cores. The simulated communicator already runs one OS
    /// thread per rank; giving each of those a full-size pool would
    /// oversubscribe the host and slow everything down. Experiment drivers
    /// call this with the runtime's rank count before entering the
    /// pipeline.
    pub fn clamp_for_ranks(self, nranks: usize) -> Self {
        match self {
            ExecPolicy::Serial => ExecPolicy::Serial,
            ExecPolicy::Threads(n) => match n.min(thread_budget(nranks)) {
                0 | 1 => ExecPolicy::Serial,
                m => ExecPolicy::Threads(m),
            },
        }
    }

    /// Resolve this policy against a kernel's [`RecommendedConcurrency`]:
    /// never exceed what the kernel can use.
    pub fn for_kernel(self, rec: RecommendedConcurrency) -> Self {
        match self {
            ExecPolicy::Serial => ExecPolicy::Serial,
            ExecPolicy::Threads(n) => match n.min(rec.preferred.get()) {
                0 | 1 => ExecPolicy::Serial,
                m => ExecPolicy::Threads(m),
            },
        }
    }
}

/// Number of cores the OS reports (1 if unknown).
pub fn available_cores() -> usize {
    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

/// Per-rank worker-thread budget for `nranks` concurrently running rank
/// threads: `max(1, cores / nranks)`. The single implementation of the
/// oversubscription rule — `apc_comm`'s runtime delegates here.
pub fn thread_budget(nranks: usize) -> usize {
    (available_cores() / nranks.max(1)).max(1)
}

/// How much parallelism a kernel can profitably use for a given input —
/// the zarrs-codec idiom: each kernel knows its own granularity, the
/// harness combines it with the global policy via
/// [`ExecPolicy::for_kernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecommendedConcurrency {
    /// Below this, fan-out overhead dominates.
    pub min: NonZeroUsize,
    /// Sweet spot for this input size.
    pub preferred: NonZeroUsize,
}

impl RecommendedConcurrency {
    /// Recommend one worker per `items_per_thread` items.
    ///
    /// Deliberately *not* capped at the machine's core count: the
    /// recommendation expresses kernel granularity only. Machine capacity
    /// is the caller's dimension ([`ExecPolicy::clamp_for_ranks`]); folding
    /// it in here would silently re-serialize `Threads(n)` on small hosts
    /// and make the policy-determinism guards compare Serial to Serial.
    pub fn per_items(total_items: usize, items_per_thread: usize) -> Self {
        let pref = (total_items / items_per_thread.max(1)).max(1);
        Self {
            min: NonZeroUsize::MIN,
            preferred: NonZeroUsize::new(pref).unwrap_or(NonZeroUsize::MIN),
        }
    }

    /// A strictly serial recommendation.
    pub fn serial() -> Self {
        Self {
            min: NonZeroUsize::MIN,
            preferred: NonZeroUsize::MIN,
        }
    }
}

/// Map `f` over `items` under `policy`; results come back in input order.
///
/// The parallel backend hands out dynamically-sized index chunks through an
/// atomic cursor (so uneven per-item cost — e.g. storm-center blocks
/// producing far more triangles than clear-air blocks — still balances),
/// then reassembles the chunks by start index. Panics in workers propagate
/// to the caller.
pub fn par_map<T, R, F>(policy: ExecPolicy, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(policy, items, |_, item| f(item))
}

/// [`par_map`] variant whose kernel also receives the item index.
pub fn par_map_indexed<T, R, F>(policy: ExecPolicy, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let len = items.len();
    let workers = policy.threads().min(len.max(1));
    if workers <= 1 || len <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // ~4 chunks per worker keeps the cursor cheap while still smoothing
    // imbalance between expensive and cheap items.
    let chunk = (len / (workers * 4)).max(1);
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let cursor = &cursor;

    let mut parts: Vec<(usize, Vec<R>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut local: Vec<(usize, Vec<R>)> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= len {
                            break;
                        }
                        let end = (start + chunk).min(len);
                        let out: Vec<R> = items[start..end]
                            .iter()
                            .enumerate()
                            .map(|(o, t)| f(start + o, t))
                            .collect();
                        local.push((start, out));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(part) => part,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    parts.sort_unstable_by_key(|(start, _)| *start);
    let mut out = Vec::with_capacity(len);
    for (_, mut part) in parts {
        out.append(&mut part);
    }
    debug_assert_eq!(out.len(), len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_threads_agree_on_order() {
        let items: Vec<u64> = (0..1000).collect();
        let serial = par_map(ExecPolicy::Serial, &items, |&x| x.wrapping_mul(x) ^ 0xABCD);
        for n in [2, 3, 8, 64] {
            let par = par_map(ExecPolicy::Threads(n), &items, |&x| {
                x.wrapping_mul(x) ^ 0xABCD
            });
            assert_eq!(serial, par, "Threads({n}) must match Serial exactly");
        }
    }

    #[test]
    fn indexed_variant_sees_true_indices() {
        let items = vec!["a"; 257];
        let idx = par_map_indexed(ExecPolicy::Threads(4), &items, |i, _| i);
        assert_eq!(idx, (0..257).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(ExecPolicy::Threads(8), &empty, |&x| x).is_empty());
        assert_eq!(
            par_map(ExecPolicy::Threads(8), &[7u32], |&x| x + 1),
            vec![8]
        );
    }

    #[test]
    fn degenerate_thread_counts_are_serial() {
        assert_eq!(ExecPolicy::Threads(0).threads(), 1);
        assert!(!ExecPolicy::Threads(1).is_parallel());
        assert!(!ExecPolicy::Serial.is_parallel());
        assert!(ExecPolicy::Threads(2).is_parallel());
    }

    #[test]
    fn clamp_respects_rank_budget() {
        let cores = available_cores();
        // With as many ranks as cores, each rank gets at most one thread.
        assert_eq!(
            ExecPolicy::Threads(8).clamp_for_ranks(cores),
            ExecPolicy::Serial
        );
        // A single rank keeps min(n, cores).
        let one = ExecPolicy::Threads(2).clamp_for_ranks(1);
        if cores >= 2 {
            assert_eq!(one, ExecPolicy::Threads(2.min(cores)));
        } else {
            assert_eq!(one, ExecPolicy::Serial);
        }
        assert_eq!(ExecPolicy::Serial.clamp_for_ranks(1), ExecPolicy::Serial);
    }

    #[test]
    fn kernel_recommendation_caps_policy() {
        let rec = RecommendedConcurrency::per_items(10, 10); // prefers 1
        assert_eq!(ExecPolicy::Threads(8).for_kernel(rec), ExecPolicy::Serial);
        assert_eq!(ExecPolicy::Serial.for_kernel(rec), ExecPolicy::Serial);
        let serial = RecommendedConcurrency::serial();
        assert_eq!(
            ExecPolicy::Threads(8).for_kernel(serial),
            ExecPolicy::Serial
        );
    }

    #[test]
    fn kernel_recommendation_is_not_core_capped() {
        // Granularity only: a 64-block set at 8 items/worker prefers 8
        // workers even on a 1-core host — machine capacity is
        // clamp_for_ranks' job, and folding it in here would silently
        // serialize the policy-determinism guards on small CI machines.
        let rec = RecommendedConcurrency::per_items(64, 8);
        assert_eq!(rec.preferred.get(), 8);
        assert_eq!(
            ExecPolicy::Threads(8).for_kernel(rec),
            ExecPolicy::Threads(8)
        );
    }

    #[test]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..64).collect();
        let res = std::panic::catch_unwind(|| {
            par_map(ExecPolicy::Threads(4), &items, |&x| {
                assert!(x != 33, "boom");
                x
            })
        });
        assert!(res.is_err());
    }
}

//! Intra-rank data-parallel execution layer.
//!
//! The pipeline's hot loops — block scoring, isosurface extraction,
//! compressor-ratio probes — are embarrassingly parallel over blocks, yet
//! each simulated rank is one OS thread (see `apc-comm`). This crate adds
//! the missing dimension: an [`ExecPolicy`] selects between serial
//! execution and a pool of scoped worker threads *inside* a rank, and
//! [`par_map`] runs a pure per-item kernel under that policy with output
//! order (and therefore every downstream reduction) identical to the
//! serial loop.
//!
//! Design points:
//!
//! * **Determinism first.** [`par_map`] returns results in input order no
//!   matter how work was scheduled, so virtual-clock accounting — which is
//!   summed from per-block counters, never from wall time — is bit-identical
//!   between [`ExecPolicy::Serial`] and [`ExecPolicy::Threads`].
//! * **No external pool.** The backend is `std::thread::scope` with an
//!   atomic work cursor (dynamic chunking), so the crate has zero
//!   dependencies and works offline. A `rayon-pool` cargo feature is
//!   reserved for slotting in a work-stealing pool later.
//! * **Thread budgets.** One OS thread per rank already multiplies across
//!   the simulated communicator; [`ExecPolicy::clamp_for_ranks`] caps the
//!   per-rank pool so `ranks × threads ≤ cores` (the interplay rule the
//!   runtime documents).
//! * **Kernel hints.** Kernels advertise a [`RecommendedConcurrency`]
//!   (idiom borrowed from zarrs codecs) so harnesses can pick sensible
//!   defaults per workload instead of a global knob.
//!
//! ```
//! use apc_par::{par_map, ExecPolicy};
//!
//! let squares = par_map(ExecPolicy::Threads(4), &[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! // Identical to the serial loop, by construction:
//! assert_eq!(squares, par_map(ExecPolicy::Serial, &[1, 2, 3, 4], |&x| x * x));
//! ```

pub mod exec;
pub mod rng;

pub use exec::{
    available_cores, par_map, par_map_indexed, thread_budget, ExecPolicy, RecommendedConcurrency,
};
pub use rng::SplitMix64;

//! A tiny seeded PRNG for deterministic shuffles and test-case generation.
//!
//! The workspace needs randomness in exactly two places — the paper's
//! random-shuffle redistribution ("making sure all processes use the same
//! seed", §IV-D) and randomized tests — and both demand bit-for-bit
//! reproducibility across platforms. SplitMix64 (Steele, Lea & Flood 2014)
//! is the standard 64-bit mixer: tiny state, excellent avalanche, and a
//! fixed published algorithm, so results never change under dependency
//! updates.

/// SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    /// Uses the widening-multiply technique (Lemire 2019), bias-free enough
    /// for shuffles and test generation.
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0, "below(0) is meaningless");
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f32` in `[lo, hi)`. The upper bound is enforced explicitly:
    /// `lo + f * (hi - lo)` can round up to `hi` in float arithmetic even
    /// for `f < 1`, so the result is clamped to the largest representable
    /// value below `hi`.
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        let v = lo + (self.next_f64() as f32) * (hi - lo);
        v.min(hi.next_down()).max(lo)
    }

    /// Uniform `f64` in `[lo, hi)` (upper bound enforced as in
    /// [`SplitMix64::range_f32`]).
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        let v = lo + self.next_f64() * (hi - lo);
        v.min(hi.next_down()).max(lo)
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            items.swap(i, self.below(i + 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(9);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(9);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(10);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn known_answer_first_output() {
        // Reference value from the published SplitMix64 algorithm, seed 0.
        assert_eq!(SplitMix64::new(0).next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = SplitMix64::new(3);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let v = r.below(7);
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = SplitMix64::new(4);
        for _ in 0..100 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            let g = r.range_f32(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&g));
        }
    }

    #[test]
    fn range_upper_bound_is_exclusive_even_under_rounding() {
        // A fraction within f32 rounding distance of 1.0 would push
        // `lo + f * (hi - lo)` onto `hi` without the explicit clamp.
        let mut r = SplitMix64::new(0);
        for _ in 0..10_000 {
            let v = r.range_f32(0.0, 1.0);
            assert!(v < 1.0, "range_f32 produced its exclusive bound: {v}");
            let w = r.range_f64(2.0, 2.5);
            assert!((2.0..2.5).contains(&w));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<usize> = (0..100).collect();
        SplitMix64::new(5).shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle should move things"
        );
    }
}

//! Rank analysis of metric outputs: the machinery behind Fig. 3's
//! metric-vs-metric scatter plots and their Spearman correlations.

/// Ranks of blocks when sorted by ascending score, ties broken by index
/// (the paper sorts equal scores by block id, §IV-C). `ranks[b]` is the
/// position block `b` takes in the sorted order.
pub fn ranks_by_score(scores: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    // total_cmp, not partial_cmp().unwrap(): a NaN score must produce a
    // deterministic rank order, never a panic mid-analysis (the same bug
    // class as the PR-2 `score_order` fix).
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]).then(a.cmp(&b)));
    let mut ranks = vec![0usize; scores.len()];
    for (rank, &block) in order.iter().enumerate() {
        ranks[block] = rank;
    }
    ranks
}

/// Spearman rank correlation between two score vectors (using the
/// tie-by-index ranks above, matching how the pipeline consumes scores).
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "score vectors must have equal length");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let ra = ranks_by_score(a);
    let rb = ranks_by_score(b);
    let nf = n as f64;
    let d2: f64 = ra
        .iter()
        .zip(&rb)
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum();
    1.0 - 6.0 * d2 / (nf * (nf * nf - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_simple() {
        let scores = [3.0, 1.0, 2.0];
        assert_eq!(ranks_by_score(&scores), vec![2, 0, 1]);
    }

    #[test]
    fn ranks_ties_break_by_index() {
        let scores = [1.0, 1.0, 0.5];
        assert_eq!(ranks_by_score(&scores), vec![1, 2, 0]);
    }

    #[test]
    fn spearman_perfect_and_inverse() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
        let c = [40.0, 30.0, 20.0, 10.0];
        assert!((spearman(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_is_symmetric() {
        let a = [0.3, 0.9, 0.1, 0.5, 0.7];
        let b = [1.0, 0.2, 0.8, 0.4, 0.6];
        assert!((spearman(&a, &b) - spearman(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn spearman_uncorrelated_near_zero() {
        // A deterministic permutation with low correlation.
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..100).map(|i| ((i * 37) % 100) as f64).collect();
        let rho = spearman(&a, &b);
        assert!(rho.abs() < 0.3, "rho = {rho}");
    }

    #[test]
    fn degenerate_lengths() {
        assert_eq!(spearman(&[], &[]), 1.0);
        assert_eq!(spearman(&[1.0], &[2.0]), 1.0);
    }

    /// Regression for the float-ord lint class (the PR-2 `score_order`
    /// NaN bug): a NaN score must not panic the rank sort and must land
    /// in a deterministic position (total_cmp puts positive NaN last).
    #[test]
    fn nan_scores_rank_deterministically_without_panicking() {
        let scores = [0.5, f64::NAN, -0.5, f64::NAN, 0.0];
        let ranks = ranks_by_score(&scores);
        assert_eq!(ranks, ranks_by_score(&scores), "must be deterministic");
        // Non-NaN blocks keep their relative order below the NaNs; NaN
        // ties break by block index.
        assert_eq!(ranks, vec![2, 3, 0, 4, 1]);
    }
}

//! Multivariate scoring: weighted combinations of base metrics.
//!
//! The paper lists "multivariate scores" as future work (§VI). This is the
//! straightforward realization: a weighted sum of normalized sub-scores.
//! Each sub-metric is normalized by a caller-provided scale (its typical
//! maximum on the field at hand) so that heterogeneous units — dBZ ranges,
//! bits of entropy, MSE — combine meaningfully.

use apc_grid::Dims3;

use crate::BlockScorer;

/// One component of a weighted combination.
pub struct WeightedTerm {
    pub scorer: Box<dyn BlockScorer>,
    pub weight: f64,
    /// Normalization scale: raw scores are divided by this before weighting.
    pub scale: f64,
}

/// Weighted sum of normalized metrics.
pub struct WeightedSum {
    name: &'static str,
    terms: Vec<WeightedTerm>,
}

impl WeightedSum {
    pub fn new(name: &'static str, terms: Vec<WeightedTerm>) -> Self {
        assert!(!terms.is_empty(), "combination needs at least one term");
        assert!(
            terms.iter().all(|t| t.scale > 0.0),
            "scales must be positive"
        );
        Self { name, terms }
    }

    /// The combination the CM1 scientists' feedback suggests (§V-F-3):
    /// VAR and TRILIN highlighted the vortex region, so blend them evenly.
    /// Scales are the typical maxima on reflectivity fields.
    pub fn var_trilin() -> Self {
        Self::new(
            "VAR+TRILIN",
            vec![
                WeightedTerm {
                    scorer: Box::new(crate::Variance),
                    weight: 0.5,
                    scale: 2000.0, // dBZ² — typical max block variance
                },
                WeightedTerm {
                    scorer: Box::new(crate::Trilin),
                    weight: 0.5,
                    scale: 1000.0, // dBZ² MSE
                },
            ],
        )
    }
}

impl BlockScorer for WeightedSum {
    fn name(&self) -> &'static str {
        self.name
    }

    fn score(&self, data: &[f32], dims: Dims3) -> f64 {
        self.terms
            .iter()
            .map(|t| t.weight * (t.scorer.score(data, dims) / t.scale))
            .sum()
    }

    fn cost_per_point(&self) -> f64 {
        self.terms.iter().map(|t| t.scorer.cost_per_point()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::noise;
    use crate::{Range, Variance};

    const DIMS: Dims3 = Dims3::new(5, 5, 4);

    #[test]
    fn single_term_matches_base_up_to_scale() {
        let combo = WeightedSum::new(
            "V",
            vec![WeightedTerm {
                scorer: Box::new(Variance),
                weight: 2.0,
                scale: 4.0,
            }],
        );
        let data = noise(DIMS.len(), 5.0, 1);
        let base = Variance.score(&data, DIMS);
        assert!((combo.score(&data, DIMS) - base / 2.0).abs() < 1e-12);
    }

    #[test]
    fn combination_orders_flat_below_noise() {
        let combo = WeightedSum::var_trilin();
        let flat = vec![0.0f32; DIMS.len()];
        let noisy = noise(DIMS.len(), 30.0, 2);
        assert!(combo.score(&flat, DIMS) < combo.score(&noisy, DIMS));
    }

    #[test]
    fn cost_is_sum_of_parts() {
        let combo = WeightedSum::new(
            "RV",
            vec![
                WeightedTerm {
                    scorer: Box::new(Range),
                    weight: 1.0,
                    scale: 1.0,
                },
                WeightedTerm {
                    scorer: Box::new(Variance),
                    weight: 1.0,
                    scale: 1.0,
                },
            ],
        );
        let expect = Range.cost_per_point() + Variance.cost_per_point();
        assert!((combo.cost_per_point() - expect).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "at least one term")]
    fn empty_combination_rejected() {
        let _ = WeightedSum::new("empty", vec![]);
    }

    #[test]
    #[should_panic(expected = "scales must be positive")]
    fn zero_scale_rejected() {
        let _ = WeightedSum::new(
            "bad",
            vec![WeightedTerm {
                scorer: Box::new(Range),
                weight: 1.0,
                scale: 0.0,
            }],
        );
    }
}

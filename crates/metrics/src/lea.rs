//! LEA: the lightweight (bytewise) entropy analyzer (paper §IV-B-d).

use apc_grid::Dims3;

use crate::entropy::shannon;
use crate::BlockScorer;

/// LEA treats each `f32` as 4 bytes and computes the Shannon entropy of each
/// byte position independently, returning the sum.
///
/// Unlike ITL it needs no histogram tuning: each byte position has exactly
/// 256 possible values, so the probability of a value is simply its
/// frequency of appearance. The maximum score is therefore 4 × 8 = 32 bits.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lea;

impl BlockScorer for Lea {
    fn name(&self) -> &'static str {
        "LEA"
    }

    fn score(&self, data: &[f32], _dims: Dims3) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let mut counts = [[0u32; 256]; 4];
        for v in data {
            let bytes = v.to_le_bytes();
            for (pos, &b) in bytes.iter().enumerate() {
                counts[pos][b as usize] += 1;
            }
        }
        counts.iter().map(|c| shannon(c, data.len())).sum()
    }

    fn cost_per_point(&self) -> f64 {
        7.1e-8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::noise;

    const DIMS: Dims3 = Dims3::new(4, 4, 4);

    #[test]
    fn empty_and_constant() {
        assert_eq!(Lea.score(&[], DIMS), 0.0);
        assert_eq!(Lea.score(&[13.5; 64], DIMS), 0.0);
    }

    #[test]
    fn bounded_by_32_bits() {
        let data = noise(4096, 1e6, 9);
        let s = Lea.score(&data, DIMS);
        assert!(s > 0.0 && s <= 32.0, "LEA = {s}");
    }

    #[test]
    fn two_values_give_at_most_four_bits() {
        // Each byte position sees at most 2 symbols ⇒ ≤ 1 bit each.
        let data: Vec<f32> = (0..128)
            .map(|i| if i % 2 == 0 { 1.0 } else { 2.0 })
            .collect();
        let s = Lea.score(&data, DIMS);
        assert!(s <= 4.0 + 1e-9, "LEA = {s}");
        assert!(
            s > 0.9,
            "differing exponent bytes should register, LEA = {s}"
        );
    }

    #[test]
    fn noise_outscores_smooth_ramp() {
        let ramp: Vec<f32> = (0..512).map(|i| i as f32).collect();
        let noisy = noise(512, 100.0, 4);
        assert!(Lea.score(&noisy, DIMS) > Lea.score(&ramp, DIMS));
    }

    #[test]
    fn no_histogram_tuning_needed_across_magnitudes() {
        // The same metric works for values ~1e-6 and ~1e6 without knowing
        // the range in advance (LEA's selling point over ITL).
        let tiny = noise(512, 1e-6, 5);
        let huge = noise(512, 1e6, 5);
        let st = Lea.score(&tiny, DIMS);
        let sh = Lea.score(&huge, DIMS);
        assert!(st > 1.0 && sh > 1.0, "tiny {st}, huge {sh}");
    }
}

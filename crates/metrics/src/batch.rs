//! Parallel batch scoring: evaluate one metric over a rank's whole block
//! set under an [`ExecPolicy`].
//!
//! Scoring is the pipeline's first hot loop (paper Table I: up to seconds
//! per iteration for TRILIN/ITL-class metrics). Every [`BlockScorer`] is
//! pure and `Send + Sync`, so the per-block evaluations are independent;
//! [`score_blocks`] fans them out with [`apc_par::par_map`] and returns
//! results in block order, which keeps the pipeline's virtual-time
//! accounting (summed from the returned per-block point counts) identical
//! under every policy.

use apc_grid::{Block, BlockId};
use apc_par::{par_map, ExecPolicy, RecommendedConcurrency};

use crate::BlockScorer;

/// One block's scoring result: the score plus the number of sample points
/// evaluated (what the virtual clock charges for).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockScore {
    pub id: BlockId,
    pub score: f64,
    pub points: usize,
}

/// How much parallelism block scoring can use: one worker per handful of
/// blocks (a paper-scale rank holds 128 blocks; a worker per ~8 keeps
/// fan-out overhead below the cheapest metric's kernel time).
pub fn recommended_concurrency(nblocks: usize) -> RecommendedConcurrency {
    RecommendedConcurrency::per_items(nblocks, 8)
}

/// Score every block with `scorer` under `policy`; results come back in
/// input order. The serial path is byte-for-byte the seed's loop.
pub fn score_blocks(
    scorer: &dyn BlockScorer,
    blocks: &[Block],
    policy: ExecPolicy,
) -> Vec<BlockScore> {
    let policy = policy.for_kernel(recommended_concurrency(blocks.len()));
    par_map(policy, blocks, |b| {
        let samples = b.samples();
        BlockScore {
            id: b.id,
            score: scorer.score(&samples, b.dims()),
            points: samples.len(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_grid::{Dims3, Extent3, Field3};

    fn blocks(n: usize) -> Vec<Block> {
        let dims = Dims3::new(6, 6, 6);
        (0..n)
            .map(|i| {
                let data: Vec<f32> = (0..dims.len())
                    .map(|j| ((i * dims.len() + j) as f32 * 0.37).sin() * 30.0)
                    .collect();
                let field = Field3::from_vec(dims, data).unwrap();
                Block::from_field(i as BlockId, Extent3::new((0, 0, 0), (6, 6, 6)), &field).unwrap()
            })
            .collect()
    }

    #[test]
    fn parallel_scores_match_serial_bitwise() {
        let blocks = blocks(24);
        for name in ["VAR", "LEA", "FPZIP", "TRILIN"] {
            let scorer = crate::by_name(name).unwrap();
            let serial = score_blocks(scorer.as_ref(), &blocks, ExecPolicy::Serial);
            let par = score_blocks(scorer.as_ref(), &blocks, ExecPolicy::Threads(8));
            assert_eq!(serial.len(), par.len());
            for (s, p) in serial.iter().zip(&par) {
                assert_eq!(s.id, p.id, "{name}: order must be preserved");
                assert_eq!(s.score.to_bits(), p.score.to_bits(), "{name}: score drift");
                assert_eq!(s.points, p.points);
            }
        }
    }

    #[test]
    fn empty_block_set() {
        let scorer = crate::by_name("VAR").unwrap();
        assert!(score_blocks(scorer.as_ref(), &[], ExecPolicy::Threads(4)).is_empty());
    }

    #[test]
    fn concurrency_recommendation_scales_with_blocks() {
        assert_eq!(recommended_concurrency(1).preferred.get(), 1);
        assert_eq!(recommended_concurrency(1024).preferred.get(), 128);
    }
}

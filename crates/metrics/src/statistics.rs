//! Statistical metrics: RANGE and VAR (paper §IV-B-a).

use apc_grid::Dims3;

use crate::BlockScorer;

/// RANGE: difference between the maximum and minimum value in the block.
///
/// Cheap, but blind to high-frequency variation inside a narrow value band
/// (the paper's stated limitation).
#[derive(Debug, Clone, Copy, Default)]
pub struct Range;

impl BlockScorer for Range {
    fn name(&self) -> &'static str {
        "RANGE"
    }

    fn score(&self, data: &[f32], _dims: Dims3) -> f64 {
        let mut it = data.iter().copied().filter(|v| !v.is_nan());
        let Some(first) = it.next() else { return 0.0 };
        let (mut lo, mut hi) = (first, first);
        for v in it {
            if v < lo {
                lo = v;
            }
            if v > hi {
                hi = v;
            }
        }
        (hi - lo) as f64
    }

    fn cost_per_point(&self) -> f64 {
        // A single min/max scan. NOTE: the paper measured its RANGE filter
        // slower than FPZIP (Table I), an artifact of their implementation;
        // ours is the straightforward scan (see DESIGN.md §5).
        2.0e-8
    }
}

/// VAR: population variance of the block's samples.
#[derive(Debug, Clone, Copy, Default)]
pub struct Variance;

impl BlockScorer for Variance {
    fn name(&self) -> &'static str {
        "VAR"
    }

    fn score(&self, data: &[f32], _dims: Dims3) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        // Welford's online algorithm: numerically stable in one pass.
        let mut mean = 0.0f64;
        let mut m2 = 0.0f64;
        for (count, &v) in data.iter().enumerate() {
            let v = v as f64;
            let delta = v - mean;
            mean += delta / (count + 1) as f64;
            m2 += delta * (v - mean);
        }
        m2 / data.len() as f64
    }

    fn cost_per_point(&self) -> f64 {
        4.9e-8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::{gradient, noise};

    const DIMS: Dims3 = Dims3::new(5, 5, 4);

    #[test]
    fn range_basics() {
        assert_eq!(Range.score(&[], DIMS), 0.0);
        assert_eq!(Range.score(&[3.0], DIMS), 0.0);
        assert_eq!(Range.score(&[-2.0, 5.0, 1.0], DIMS), 7.0);
        assert_eq!(Range.score(&[4.0; 100], DIMS), 0.0);
    }

    #[test]
    fn range_ignores_nan() {
        assert_eq!(Range.score(&[1.0, f32::NAN, 3.0], DIMS), 2.0);
    }

    #[test]
    fn variance_basics() {
        assert_eq!(Variance.score(&[], DIMS), 0.0);
        assert_eq!(Variance.score(&[5.0; 50], DIMS), 0.0);
        let v = Variance.score(&[1.0, 3.0], DIMS);
        assert!((v - 1.0).abs() < 1e-12);
    }

    #[test]
    fn variance_matches_two_pass() {
        let data = noise(1000, 10.0, 3);
        let mean: f64 = data.iter().map(|&v| v as f64).sum::<f64>() / 1000.0;
        let two_pass: f64 = data.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / 1000.0;
        let welford = Variance.score(&data, DIMS);
        assert!((welford - two_pass).abs() < 1e-9 * two_pass.max(1.0));
    }

    #[test]
    fn noisy_blocks_outscore_flat_blocks() {
        let flat = vec![1.0f32; DIMS.len()];
        let grad = gradient(DIMS);
        let noisy = noise(DIMS.len(), 5.0, 1);
        for scorer in [&Range as &dyn BlockScorer, &Variance] {
            let sf = scorer.score(&flat, DIMS);
            let sg = scorer.score(&grad, DIMS);
            let sn = scorer.score(&noisy, DIMS);
            assert!(sf < sg, "{}: flat {sf} < gradient {sg}", scorer.name());
            assert!(sf < sn, "{}: flat {sf} < noise {sn}", scorer.name());
        }
    }

    #[test]
    fn range_misses_small_band_variation() {
        // The paper's caveat: high variation within a small range scores low
        // under RANGE but higher under VAR relative to a smooth wide ramp.
        let wiggle: Vec<f32> = (0..100)
            .map(|i| if i % 2 == 0 { 0.0 } else { 1.0 })
            .collect();
        let ramp: Vec<f32> = (0..100).map(|i| i as f32).collect();
        assert!(Range.score(&wiggle, DIMS) < Range.score(&ramp, DIMS));
    }
}

//! Compressor-ratio metrics (paper §IV-B-e).

use apc_compress::FloatCodec;
use apc_grid::Dims3;

use crate::BlockScorer;

/// Scores a block by its compressed-size ratio under a floating-point
/// codec: the less compressible, the more information, the higher the
/// score. Needs no tuning parameters (the paper's argument for this
/// family), and the 3D-aware codecs (FPZIP/ZFP) exploit spatial locality.
#[derive(Debug, Clone, Copy)]
pub struct CompressionScore<C: FloatCodec> {
    codec: C,
    cost_per_point: f64,
}

impl<C: FloatCodec> CompressionScore<C> {
    pub fn new(codec: C, cost_per_point: f64) -> Self {
        Self {
            codec,
            cost_per_point,
        }
    }
}

impl CompressionScore<apc_compress::Fpz> {
    /// The paper's representative compressor metric.
    pub fn fpzip() -> Self {
        Self::new(apc_compress::Fpz, 3.1e-7)
    }
}

impl CompressionScore<apc_compress::Zfpx> {
    pub fn zfp() -> Self {
        Self::new(apc_compress::Zfpx::default(), 3.5e-7)
    }
}

impl CompressionScore<apc_compress::Lz77> {
    pub fn lz() -> Self {
        Self::new(apc_compress::Lz77, 4.0e-7)
    }
}

impl<C: FloatCodec + Send + Sync> BlockScorer for CompressionScore<C> {
    fn name(&self) -> &'static str {
        self.codec.name()
    }

    fn score(&self, data: &[f32], dims: Dims3) -> f64 {
        self.codec
            .compressed_ratio(data, (dims.nx, dims.ny, dims.nz))
    }

    fn cost_per_point(&self) -> f64 {
        self.cost_per_point
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::{gradient, noise};

    const DIMS: Dims3 = Dims3::new(8, 8, 8);

    #[test]
    fn all_three_rank_flat_below_gradient_below_noise() {
        let flat = vec![30.0f32; DIMS.len()];
        let grad = gradient(DIMS);
        let noisy = noise(DIMS.len(), 40.0, 11);
        let scorers: Vec<Box<dyn BlockScorer>> = vec![
            Box::new(CompressionScore::fpzip()),
            Box::new(CompressionScore::zfp()),
            Box::new(CompressionScore::lz()),
        ];
        for s in &scorers {
            let sf = s.score(&flat, DIMS);
            let sg = s.score(&grad, DIMS);
            let sn = s.score(&noisy, DIMS);
            assert!(sf < sn, "{}: flat {sf} !< noise {sn}", s.name());
            assert!(sg < sn, "{}: gradient {sg} !< noise {sn}", s.name());
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(CompressionScore::fpzip().name(), "FPZIP");
        assert_eq!(CompressionScore::zfp().name(), "ZFP");
        assert_eq!(CompressionScore::lz().name(), "LZ");
    }

    #[test]
    fn scores_are_ratios() {
        let noisy = noise(DIMS.len(), 40.0, 3);
        for s in [
            &CompressionScore::fpzip() as &dyn BlockScorer,
            &CompressionScore::zfp(),
            &CompressionScore::lz(),
        ] {
            let v = s.score(&noisy, DIMS);
            assert!(
                v > 0.0 && v < 2.0,
                "{}: ratio {v} out of sane range",
                s.name()
            );
        }
    }
}

//! Block relevance scoring metrics (paper §IV-B).
//!
//! The pipeline's first step gives every block a score measuring how much
//! information it carries for the scientist or the visualization algorithm.
//! No universal metric exists, so the paper ships a toolbox:
//!
//! | paper name | type | this crate |
//! |---|---|---|
//! | RANGE  | statistics          | [`Range`] |
//! | VAR    | statistics          | [`Variance`] |
//! | ITL    | histogram entropy   | [`Entropy`] |
//! | LEA    | bytewise entropy    | [`Lea`] |
//! | FPZIP/ZFP/LZ | compressor ratio | [`CompressionScore`] |
//! | TRILIN | interpolation error | [`Trilin`] |
//!
//! plus the local-entropy variant the paper rejected as too slow
//! ([`LocalEntropy`]) and a multivariate weighted combination
//! ([`WeightedSum`], the future-work item of §VI).
//!
//! Every scorer reports a calibrated per-point virtual compute cost used by
//! the pipeline's clock (see `apc-comm`); the constants reflect *this*
//! implementation's relative kernel speeds, scaled to Blue Waters-core
//! magnitudes so Table I lands in the paper's range.

pub mod analysis;
pub mod batch;
pub mod combo;
pub mod compressor;
pub mod entropy;
pub mod lea;
pub mod registry;
pub mod statistics;
pub mod trilin;

pub use analysis::{ranks_by_score, spearman};
pub use batch::{score_blocks, BlockScore};
pub use combo::WeightedSum;
pub use compressor::CompressionScore;
pub use entropy::{Entropy, LocalEntropy};
pub use lea::Lea;
pub use registry::{by_name, standard_six, MetricName, METRIC_NAMES};
pub use statistics::{Range, Variance};
pub use trilin::Trilin;

use apc_grid::Dims3;

/// A metric that scores one block of data. Higher scores mean "more
/// relevant — keep this block"; lower scores mark reduction candidates.
///
/// Implementations must be pure (same data ⇒ same score) and independent of
/// other blocks, so scores computed on different ranks are comparable as
/// long as every rank uses the same parameters (the paper's requirement for
/// histogram range/bins, §IV-B-c).
pub trait BlockScorer: Send + Sync {
    /// Name as printed in experiment output (e.g. `"VAR"`).
    fn name(&self) -> &'static str;

    /// Score `data`, an x-fastest array of shape `dims`.
    fn score(&self, data: &[f32], dims: Dims3) -> f64;

    /// Calibrated virtual compute cost per data point (seconds on one
    /// Blue Waters-class core), charged by the pipeline's scoring step.
    fn cost_per_point(&self) -> f64;
}

impl<S: BlockScorer + ?Sized> BlockScorer for Box<S> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn score(&self, data: &[f32], dims: Dims3) -> f64 {
        (**self).score(data, dims)
    }
    fn cost_per_point(&self) -> f64 {
        (**self).cost_per_point()
    }
}

#[cfg(test)]
pub(crate) mod testdata {
    use apc_grid::Dims3;

    /// Deterministic pseudo-noise in [-amp, amp].
    pub fn noise(n: usize, amp: f32, seed: u32) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let x = (i as f32 + seed as f32 * 17.0) * 12.9898;
                // `fract` keeps sign in Rust; take abs for a uniform [0,1).
                ((x.sin() * 43758.547).fract().abs() * 2.0 - 1.0) * amp
            })
            .collect()
    }

    /// A smooth gradient block.
    pub fn gradient(dims: Dims3) -> Vec<f32> {
        let mut out = Vec::with_capacity(dims.len());
        for k in 0..dims.nz {
            for j in 0..dims.ny {
                for i in 0..dims.nx {
                    out.push(i as f32 + 0.5 * j as f32 - 0.25 * k as f32);
                }
            }
        }
        out
    }
}

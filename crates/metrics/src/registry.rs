//! Metric registry: names ↔ scorer instances.
//!
//! The paper evaluated ~30 filters and reports a representative subset of
//! six (§IV-B): RANGE, VAR, ITL, LEA, FPZIP, TRILIN. [`standard_six`]
//! returns exactly that set, in the order the paper's tables and figures
//! use; [`by_name`] resolves any supported metric, including the extras
//! (ZFP, LZ, LOCAL_ENT, VAR+TRILIN).

use crate::{
    BlockScorer, CompressionScore, Entropy, Lea, LocalEntropy, Range, Trilin, Variance, WeightedSum,
};

/// The metric identifiers understood by [`by_name`].
pub const METRIC_NAMES: &[&str] = &[
    "RANGE",
    "VAR",
    "ITL",
    "LEA",
    "FPZIP",
    "TRILIN",
    "ZFP",
    "LZ",
    "LOCAL_ENT",
    "VAR+TRILIN",
];

/// Strongly-typed metric name (useful for experiment configs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetricName {
    Range,
    Var,
    Itl,
    Lea,
    Fpzip,
    Trilin,
    Zfp,
    Lz,
    LocalEnt,
    VarTrilin,
}

impl MetricName {
    pub fn as_str(&self) -> &'static str {
        match self {
            MetricName::Range => "RANGE",
            MetricName::Var => "VAR",
            MetricName::Itl => "ITL",
            MetricName::Lea => "LEA",
            MetricName::Fpzip => "FPZIP",
            MetricName::Trilin => "TRILIN",
            MetricName::Zfp => "ZFP",
            MetricName::Lz => "LZ",
            MetricName::LocalEnt => "LOCAL_ENT",
            MetricName::VarTrilin => "VAR+TRILIN",
        }
    }

    pub fn scorer(&self) -> Box<dyn BlockScorer> {
        // apc-lint: allow(unwrap-in-lib): `as_str` and `by_name` enumerate the same variants; the round trip cannot miss
        by_name(self.as_str()).expect("registry covers all MetricName variants")
    }
}

/// Build a scorer from its name; `None` for unknown names.
pub fn by_name(name: &str) -> Option<Box<dyn BlockScorer>> {
    Some(match name {
        "RANGE" => Box::new(Range),
        "VAR" => Box::new(Variance),
        "ITL" => Box::new(Entropy::reflectivity()),
        "LEA" => Box::new(Lea),
        "FPZIP" => Box::new(CompressionScore::fpzip()),
        "TRILIN" => Box::new(Trilin),
        "ZFP" => Box::new(CompressionScore::zfp()),
        "LZ" => Box::new(CompressionScore::lz()),
        "LOCAL_ENT" => Box::new(LocalEntropy::default()),
        "VAR+TRILIN" => Box::new(WeightedSum::var_trilin()),
        _ => return None,
    })
}

/// The paper's representative subset, in its reporting order:
/// RANGE, VAR, ITL, LEA, FPZIP, TRILIN.
pub fn standard_six() -> Vec<Box<dyn BlockScorer>> {
    ["RANGE", "VAR", "ITL", "LEA", "FPZIP", "TRILIN"]
        .iter()
        // apc-lint: allow(unwrap-in-lib): the six names are literals registered in this same module
        .map(|n| by_name(n).expect("standard metric registered"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_name_resolves() {
        for name in METRIC_NAMES {
            let s = by_name(name).unwrap_or_else(|| panic!("{name} not registered"));
            assert_eq!(&s.name(), name);
            assert!(s.cost_per_point() > 0.0);
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("MAGIC").is_none());
    }

    #[test]
    fn standard_six_order() {
        let names: Vec<&str> = standard_six().iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["RANGE", "VAR", "ITL", "LEA", "FPZIP", "TRILIN"]);
    }

    #[test]
    fn metric_name_enum_roundtrips() {
        for m in [
            MetricName::Range,
            MetricName::Var,
            MetricName::Itl,
            MetricName::Lea,
            MetricName::Fpzip,
            MetricName::Trilin,
            MetricName::Zfp,
            MetricName::Lz,
            MetricName::LocalEnt,
            MetricName::VarTrilin,
        ] {
            assert_eq!(m.scorer().name(), m.as_str());
        }
    }

    #[test]
    fn every_metric_is_finite_on_constant_blocks() {
        // Degenerate input (an all-constant block — clear air, or a
        // reduced block expanded back) must never score NaN/inf: a single
        // NaN used to panic the global sort mid-collective and take down
        // the whole run. Exercise every registered metric on constant
        // blocks of several values, including ±0.0 and a negative.
        use apc_grid::Dims3;
        let dims = Dims3::new(11, 11, 19);
        for value in [0.0f32, -0.0, 45.0, -30.0] {
            let data = vec![value; dims.len()];
            for name in METRIC_NAMES {
                let scorer = by_name(name).unwrap();
                let score = scorer.score(&data, dims);
                assert!(
                    score.is_finite(),
                    "{name} on constant {value} block scored {score}"
                );
            }
        }
    }

    #[test]
    fn cheap_metrics_are_cheaper_than_heavy_ones() {
        // The paper's conclusion from Table I: prefer LEA/VAR over TRILIN.
        let var = by_name("VAR").unwrap().cost_per_point();
        let lea = by_name("LEA").unwrap().cost_per_point();
        let trilin = by_name("TRILIN").unwrap().cost_per_point();
        let itl = by_name("ITL").unwrap().cost_per_point();
        assert!(var < trilin && lea < trilin && var < itl && lea < itl);
    }
}

//! TRILIN: trilinear interpolation error (paper §IV-B-b).

use apc_grid::{interp, Dims3};

use crate::BlockScorer;

/// Mean square error between the block and its reconstruction from the 8
/// corner values.
///
/// This is the metric that *matches the reduction operator*: a block that
/// scores ~0 under TRILIN loses nothing when reduced to 2×2×2, because the
/// renderer rebuilds exactly what was thrown away.
#[derive(Debug, Clone, Copy, Default)]
pub struct Trilin;

impl BlockScorer for Trilin {
    fn name(&self) -> &'static str {
        "TRILIN"
    }

    fn score(&self, data: &[f32], dims: Dims3) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        interp::trilinear_mse(data, dims)
    }

    fn cost_per_point(&self) -> f64 {
        5.0e-7
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::{gradient, noise};

    const DIMS: Dims3 = Dims3::new(5, 5, 4);

    #[test]
    fn affine_blocks_score_zero() {
        let data = gradient(DIMS);
        assert!(Trilin.score(&data, DIMS) < 1e-9);
    }

    #[test]
    fn noise_scores_high() {
        let data = noise(DIMS.len(), 10.0, 7);
        assert!(Trilin.score(&data, DIMS) > 1.0);
    }

    #[test]
    fn score_is_reduction_error() {
        // Reduce the block to corners, reconstruct, and verify TRILIN equals
        // the actual MSE incurred.
        let data = noise(DIMS.len(), 5.0, 2);
        let corners = interp::corners_of(&data, DIMS);
        let rec = interp::reconstruct_from_corners(&corners, DIMS);
        let mse: f64 = data
            .iter()
            .zip(&rec)
            .map(|(a, b)| ((a - b) as f64).powi(2))
            .sum::<f64>()
            / data.len() as f64;
        let score = Trilin.score(&data, DIMS);
        assert!((score - mse).abs() < 1e-9, "score {score} vs mse {mse}");
    }
}

//! Histogram entropy (the paper's ITL metric, §IV-B-c) and the local
//! entropy variant it rejected for cost reasons.

use apc_grid::Dims3;

use crate::BlockScorer;

/// Shannon entropy of `counts`, in bits.
pub(crate) fn shannon(counts: &[u32], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// ITL: Shannon entropy of a value histogram with a *fixed* range and bin
/// count.
///
/// The paper stresses that range and bins must be identical across all
/// processes for scores to be comparable, which requires a variable with a
/// known range — reflectivity falls in [−60, 80] dBZ. 256 bins was their
/// sweet spot (32 under-discriminates, 1,024 costs more for no gain);
/// the bin-count ablation harness reproduces that comparison.
#[derive(Debug, Clone, Copy)]
pub struct Entropy {
    /// Histogram range (values outside are clamped to the edge bins).
    pub min: f32,
    pub max: f32,
    /// Number of histogram bins.
    pub bins: usize,
}

impl Entropy {
    /// The paper's configuration for CM1 reflectivity: [−60, 80] dBZ,
    /// 256 bins.
    pub fn reflectivity() -> Self {
        Self {
            min: -60.0,
            max: 80.0,
            bins: 256,
        }
    }

    pub fn with_bins(bins: usize) -> Self {
        Self {
            bins,
            ..Self::reflectivity()
        }
    }

    #[inline]
    fn bin_of(&self, v: f32) -> usize {
        let t = (v - self.min) / (self.max - self.min);
        let b = (t * self.bins as f32) as isize;
        b.clamp(0, self.bins as isize - 1) as usize
    }

    /// Build the histogram (exposed for scoremap tooling and tests).
    pub fn histogram(&self, data: &[f32]) -> Vec<u32> {
        let mut counts = vec![0u32; self.bins];
        for &v in data {
            if !v.is_nan() {
                counts[self.bin_of(v)] += 1;
            }
        }
        counts
    }
}

impl Default for Entropy {
    fn default() -> Self {
        Self::reflectivity()
    }
}

impl BlockScorer for Entropy {
    fn name(&self) -> &'static str {
        "ITL"
    }

    fn score(&self, data: &[f32], _dims: Dims3) -> f64 {
        shannon(
            &self.histogram(data),
            data.iter().filter(|v| !v.is_nan()).count(),
        )
    }

    fn cost_per_point(&self) -> f64 {
        4.6e-7
    }
}

/// Local entropy: entropy computed at each point over its cubic
/// neighborhood, averaged over the block.
///
/// The paper considered and *rejected* this metric — "it turned out to
/// consume too much time relative to the duration of other components" —
/// and so do we: its cost constant is ~10× ITL's, which the metric-cost
/// ablation makes visible.
#[derive(Debug, Clone, Copy)]
pub struct LocalEntropy {
    pub base: Entropy,
    /// Neighborhood radius r: window is (2r+1)³ points.
    pub radius: usize,
}

impl Default for LocalEntropy {
    fn default() -> Self {
        Self {
            base: Entropy::reflectivity(),
            radius: 2,
        }
    }
}

impl BlockScorer for LocalEntropy {
    fn name(&self) -> &'static str {
        "LOCAL_ENT"
    }

    fn score(&self, data: &[f32], dims: Dims3) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        debug_assert_eq!(data.len(), dims.len());
        let r = self.radius as isize;
        let mut acc = 0.0;
        let mut counts = vec![0u32; self.base.bins];
        for k in 0..dims.nz {
            for j in 0..dims.ny {
                for i in 0..dims.nx {
                    counts.iter_mut().for_each(|c| *c = 0);
                    let mut total = 0usize;
                    for dk in -r..=r {
                        for dj in -r..=r {
                            for di in -r..=r {
                                let (ii, jj, kk) =
                                    (i as isize + di, j as isize + dj, k as isize + dk);
                                if ii >= 0
                                    && jj >= 0
                                    && kk >= 0
                                    && (ii as usize) < dims.nx
                                    && (jj as usize) < dims.ny
                                    && (kk as usize) < dims.nz
                                {
                                    let v = data[dims.idx(ii as usize, jj as usize, kk as usize)];
                                    if !v.is_nan() {
                                        counts[self.base.bin_of(v)] += 1;
                                        total += 1;
                                    }
                                }
                            }
                        }
                    }
                    acc += shannon(&counts, total);
                }
            }
        }
        acc / data.len() as f64
    }

    fn cost_per_point(&self) -> f64 {
        5.0e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::noise;

    const DIMS: Dims3 = Dims3::new(4, 4, 4);

    #[test]
    fn shannon_limits() {
        assert_eq!(shannon(&[10, 0, 0, 0], 10), 0.0);
        let uniform = shannon(&[5, 5, 5, 5], 20);
        assert!(
            (uniform - 2.0).abs() < 1e-12,
            "uniform over 4 bins = 2 bits, got {uniform}"
        );
        assert_eq!(shannon(&[], 0), 0.0);
    }

    #[test]
    fn constant_block_has_zero_entropy() {
        let e = Entropy::reflectivity();
        assert_eq!(e.score(&[45.0; 64], DIMS), 0.0);
    }

    #[test]
    fn uniform_noise_has_high_entropy() {
        let e = Entropy::reflectivity();
        // Noise spanning the full dBZ range.
        let data: Vec<f32> = noise(4096, 70.0, 1).iter().map(|v| v + 10.0).collect();
        let s = e.score(&data, DIMS);
        assert!(s > 6.0, "wide noise should near log2(256)=8 bits, got {s}");
    }

    #[test]
    fn out_of_range_values_clamp() {
        let e = Entropy::reflectivity();
        let h = e.histogram(&[-1000.0, 1000.0, f32::NAN]);
        assert_eq!(h[0], 1);
        assert_eq!(h[255], 1);
        assert_eq!(h.iter().sum::<u32>(), 2);
    }

    #[test]
    fn more_bins_discriminate_narrow_bands() {
        // Two close values fall in one 32-bin bucket but two 1024-bin ones.
        let data = [0.0f32, 0.2, 0.0, 0.2, 0.0, 0.2];
        let coarse = Entropy::with_bins(32).score(&data, DIMS);
        let fine = Entropy::with_bins(1024).score(&data, DIMS);
        assert_eq!(coarse, 0.0);
        assert!((fine - 1.0).abs() < 1e-9);
    }

    #[test]
    fn local_entropy_flat_vs_noisy() {
        let le = LocalEntropy {
            base: Entropy::reflectivity(),
            radius: 1,
        };
        let flat = le.score(&[10.0; 64], DIMS);
        let noisy = le.score(&noise(64, 60.0, 2), DIMS);
        assert_eq!(flat, 0.0);
        assert!(noisy > 1.0, "noisy local entropy = {noisy}");
    }

    #[test]
    fn local_entropy_is_the_expensive_one() {
        assert!(
            LocalEntropy::default().cost_per_point() > 10.0 * Entropy::default().cost_per_point()
        );
    }
}

//! Minimal 3D math: vectors and 4×4 matrices.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A 3-component `f32` vector.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    pub x: f32,
    pub y: f32,
    pub z: f32,
}

pub const fn vec3(x: f32, y: f32, z: f32) -> Vec3 {
    Vec3 { x, y, z }
}

impl Vec3 {
    pub fn from_array(a: [f32; 3]) -> Self {
        vec3(a[0], a[1], a[2])
    }

    pub fn to_array(self) -> [f32; 3] {
        [self.x, self.y, self.z]
    }

    pub fn dot(self, o: Vec3) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    pub fn cross(self, o: Vec3) -> Vec3 {
        vec3(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Unit vector; zero vector stays zero.
    pub fn normalized(self) -> Vec3 {
        let l = self.length();
        if l > 0.0 {
            self / l
        } else {
            self
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        vec3(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        vec3(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f32) -> Vec3 {
        vec3(self.x * s, self.y * s, self.z * s)
    }
}

impl Div<f32> for Vec3 {
    type Output = Vec3;
    fn div(self, s: f32) -> Vec3 {
        vec3(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        vec3(-self.x, -self.y, -self.z)
    }
}

/// Column-major 4×4 matrix (`m[col][row]`), as in OpenGL conventions.
/// Matrix composition uses the `*` operator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat4(pub [[f32; 4]; 4]);

impl Mul for Mat4 {
    type Output = Mat4;
    fn mul(self, o: Mat4) -> Mat4 {
        let mut m = [[0.0f32; 4]; 4];
        for (c, col) in m.iter_mut().enumerate() {
            for (r, cell) in col.iter_mut().enumerate() {
                *cell = (0..4).map(|k| self.0[k][r] * o.0[c][k]).sum();
            }
        }
        Mat4(m)
    }
}

impl Mat4 {
    pub fn identity() -> Self {
        let mut m = [[0.0; 4]; 4];
        for (i, col) in m.iter_mut().enumerate() {
            col[i] = 1.0;
        }
        Mat4(m)
    }

    /// View matrix looking from `eye` toward `target` with up-hint `up`.
    pub fn look_at(eye: Vec3, target: Vec3, up: Vec3) -> Self {
        let f = (target - eye).normalized();
        let s = f.cross(up).normalized();
        let u = s.cross(f);
        Mat4([
            [s.x, u.x, -f.x, 0.0],
            [s.y, u.y, -f.y, 0.0],
            [s.z, u.z, -f.z, 0.0],
            [-s.dot(eye), -u.dot(eye), f.dot(eye), 1.0],
        ])
    }

    /// Orthographic projection onto clip space.
    pub fn orthographic(l: f32, r: f32, b: f32, t: f32, near: f32, far: f32) -> Self {
        let mut m = [[0.0; 4]; 4];
        m[0][0] = 2.0 / (r - l);
        m[1][1] = 2.0 / (t - b);
        m[2][2] = -2.0 / (far - near);
        m[3][0] = -(r + l) / (r - l);
        m[3][1] = -(t + b) / (t - b);
        m[3][2] = -(far + near) / (far - near);
        m[3][3] = 1.0;
        Mat4(m)
    }

    /// Perspective projection (vertical fov in radians).
    pub fn perspective(fov_y: f32, aspect: f32, near: f32, far: f32) -> Self {
        let f = 1.0 / (fov_y / 2.0).tan();
        let mut m = [[0.0; 4]; 4];
        m[0][0] = f / aspect;
        m[1][1] = f;
        m[2][2] = (far + near) / (near - far);
        m[2][3] = -1.0;
        m[3][2] = 2.0 * far * near / (near - far);
        Mat4(m)
    }

    /// Transform a point, returning `(x, y, z, w)` clip coordinates.
    pub fn transform(self, p: Vec3) -> [f32; 4] {
        let mut out = [0.0f32; 4];
        let input = [p.x, p.y, p.z, 1.0];
        for (r, cell) in out.iter_mut().enumerate() {
            *cell = (0..4).map(|c| self.0[c][r] * input[c]).sum();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn vector_ops() {
        let a = vec3(1.0, 0.0, 0.0);
        let b = vec3(0.0, 1.0, 0.0);
        assert_eq!(a.cross(b), vec3(0.0, 0.0, 1.0));
        assert_eq!(a.dot(b), 0.0);
        assert!(close((a + b).length(), 2.0f32.sqrt()));
        assert!(close((a * 3.0).length(), 3.0));
        assert_eq!(vec3(0.0, 0.0, 0.0).normalized(), vec3(0.0, 0.0, 0.0));
    }

    #[test]
    fn identity_transform() {
        let p = vec3(1.0, 2.0, 3.0);
        let out = Mat4::identity().transform(p);
        assert_eq!(out, [1.0, 2.0, 3.0, 1.0]);
    }

    #[test]
    fn look_at_centers_target() {
        let view = Mat4::look_at(
            vec3(0.0, 0.0, 5.0),
            vec3(0.0, 0.0, 0.0),
            vec3(0.0, 1.0, 0.0),
        );
        let out = view.transform(vec3(0.0, 0.0, 0.0));
        assert!(close(out[0], 0.0) && close(out[1], 0.0));
        assert!(
            close(out[2], -5.0),
            "target sits 5 units down -z, got {}",
            out[2]
        );
    }

    #[test]
    fn orthographic_maps_box_to_ndc() {
        let proj = Mat4::orthographic(-2.0, 2.0, -1.0, 1.0, 0.1, 10.0);
        let out = proj.transform(vec3(2.0, 1.0, -10.0));
        assert!(close(out[0], 1.0) && close(out[1], 1.0) && close(out[2], 1.0));
        let out = proj.transform(vec3(-2.0, -1.0, -0.1));
        assert!(close(out[0], -1.0) && close(out[1], -1.0) && close(out[2], -1.0));
    }

    #[test]
    fn perspective_divides_by_depth() {
        let proj = Mat4::perspective(std::f32::consts::FRAC_PI_2, 1.0, 0.1, 100.0);
        let near = proj.transform(vec3(0.5, 0.0, -1.0));
        let far = proj.transform(vec3(0.5, 0.0, -10.0));
        assert!(near[0] / near[3] > far[0] / far[3], "farther points shrink");
    }

    #[test]
    fn matrix_multiply_identity() {
        let m = Mat4::perspective(1.0, 1.3, 0.1, 50.0);
        let i = Mat4::identity();
        assert_eq!(m * i, m);
        assert_eq!(i * m, m);
    }
}

//! Isosurface extraction via marching tetrahedra.
//!
//! The paper's visualization scenario "computes a mesh of the isosurface
//! using a marching cubes method, then renders this mesh" (§V-A). We use
//! the marching-*tetrahedra* member of that family: each grid cell is split
//! into 6 tetrahedra around its main diagonal, and each tetrahedron is
//! triangulated by a 16-case analysis with no external lookup tables. The
//! output is crack-free and, like marching cubes, its size is proportional
//! to the isosurface area crossing the cell — which is what makes per-rank
//! triangle counts an honest proxy for rendering load (DESIGN.md §2).

use apc_grid::{Block, Dims3, RectilinearCoords};
use apc_par::{par_map, ExecPolicy, RecommendedConcurrency};

use crate::math::Vec3;
use crate::mesh::TriangleMesh;

/// Work counters for the virtual render cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IsoStats {
    /// Grid cells visited.
    pub cells: usize,
    /// Triangles emitted.
    pub triangles: usize,
}

impl IsoStats {
    pub fn merge(&mut self, o: IsoStats) {
        self.cells += o.cells;
        self.triangles += o.triangles;
    }
}

/// The 6-tetrahedron decomposition of a cell, all sharing the 0–7 diagonal.
/// Corner indices use bit0 = +x, bit1 = +y, bit2 = +z.
const TETS: [[usize; 4]; 6] = [
    [0, 7, 1, 3],
    [0, 7, 3, 2],
    [0, 7, 2, 6],
    [0, 7, 6, 4],
    [0, 7, 4, 5],
    [0, 7, 5, 1],
];

/// Intersection point on the edge `(a, b)` at the isovalue.
#[inline]
fn edge_point(pa: Vec3, va: f32, pb: Vec3, vb: f32, iso: f32) -> Vec3 {
    let denom = vb - va;
    let t = if denom.abs() < 1e-30 {
        0.5
    } else {
        ((iso - va) / denom).clamp(0.0, 1.0)
    };
    pa + (pb - pa) * t
}

/// Triangulate one tetrahedron; returns the number of triangles emitted.
fn tetra(mesh: &mut TriangleMesh, p: [Vec3; 4], v: [f32; 4], iso: f32) -> usize {
    let mut mask = 0usize;
    for (i, &val) in v.iter().enumerate() {
        if val > iso {
            mask |= 1 << i;
        }
    }
    // Normalize to ≤ 2 inside vertices by complementing (same surface,
    // opposite orientation — we shade two-sided).
    let (mask, flip) = if mask.count_ones() > 2 {
        (mask ^ 0xF, true)
    } else {
        (mask, false)
    };
    let ep = |a: usize, b: usize| edge_point(p[a], v[a], p[b], v[b], iso);
    let mut tri = |a: Vec3, b: Vec3, c: Vec3| {
        if flip {
            mesh.push_triangle(a, c, b);
        } else {
            mesh.push_triangle(a, b, c);
        }
    };
    match mask {
        0b0000 => 0,
        0b0001 => {
            tri(ep(0, 1), ep(0, 2), ep(0, 3));
            1
        }
        0b0010 => {
            tri(ep(1, 0), ep(1, 3), ep(1, 2));
            1
        }
        0b0100 => {
            tri(ep(2, 0), ep(2, 1), ep(2, 3));
            1
        }
        0b1000 => {
            tri(ep(3, 0), ep(3, 2), ep(3, 1));
            1
        }
        0b0011 => {
            // 0 and 1 inside: quad on edges 0-2, 0-3, 1-2, 1-3.
            let (a, b, c, d) = (ep(0, 2), ep(0, 3), ep(1, 3), ep(1, 2));
            tri(a, b, c);
            tri(a, c, d);
            2
        }
        0b0101 => {
            // 0 and 2 inside: quad on 0-1, 0-3, 2-1, 2-3.
            let (a, b, c, d) = (ep(0, 1), ep(0, 3), ep(2, 3), ep(2, 1));
            tri(a, b, c);
            tri(a, c, d);
            2
        }
        0b1001 => {
            // 0 and 3 inside: quad on 0-1, 0-2, 3-2, 3-1.
            let (a, b, c, d) = (ep(0, 1), ep(0, 2), ep(3, 2), ep(3, 1));
            tri(a, b, c);
            tri(a, c, d);
            2
        }
        0b0110 => {
            // 1 and 2 inside: quad on 1-0, 1-3, 2-3, 2-0.
            let (a, b, c, d) = (ep(1, 0), ep(1, 3), ep(2, 3), ep(2, 0));
            tri(a, b, c);
            tri(a, c, d);
            2
        }
        0b1010 => {
            // 1 and 3 inside: quad on 1-0, 1-2, 3-2, 3-0.
            let (a, b, c, d) = (ep(1, 0), ep(1, 2), ep(3, 2), ep(3, 0));
            tri(a, b, c);
            tri(a, c, d);
            2
        }
        0b1100 => {
            // 2 and 3 inside: quad on 2-0, 2-1, 3-1, 3-0.
            let (a, b, c, d) = (ep(2, 0), ep(2, 1), ep(3, 1), ep(3, 0));
            tri(a, b, c);
            tri(a, c, d);
            2
        }
        _ => unreachable!("masks with >2 bits were complemented"),
    }
}

/// Extract the isosurface of an x-fastest scalar array.
///
/// `position(i, j, k)` maps grid indices to physical coordinates, which is
/// how rectilinear (stretched) grids and block extents are honored.
pub fn marching_tetrahedra<F>(
    data: &[f32],
    dims: Dims3,
    iso: f32,
    position: F,
) -> (TriangleMesh, IsoStats)
where
    F: Fn(usize, usize, usize) -> [f32; 3],
{
    assert_eq!(data.len(), dims.len(), "data/dims mismatch");
    let mut mesh = TriangleMesh::new();
    let mut stats = IsoStats::default();
    if dims.nx < 2 || dims.ny < 2 || dims.nz < 2 {
        return (mesh, stats);
    }
    for k in 0..dims.nz - 1 {
        for j in 0..dims.ny - 1 {
            for i in 0..dims.nx - 1 {
                stats.cells += 1;
                // Gather the cell's 8 corners (bit0=+x, bit1=+y, bit2=+z).
                let mut vals = [0.0f32; 8];
                let mut above = 0;
                let mut below = 0;
                for (c, val) in vals.iter_mut().enumerate() {
                    let v = data[dims.idx(i + (c & 1), j + ((c >> 1) & 1), k + (c >> 2))];
                    *val = v;
                    if v > iso {
                        above += 1;
                    } else {
                        below += 1;
                    }
                }
                if above == 0 || below == 0 {
                    continue; // cell doesn't cross the isovalue
                }
                let mut pos = [Vec3::default(); 8];
                for (c, pc) in pos.iter_mut().enumerate() {
                    *pc = Vec3::from_array(position(i + (c & 1), j + ((c >> 1) & 1), k + (c >> 2)));
                }
                for tet in &TETS {
                    let p = [pos[tet[0]], pos[tet[1]], pos[tet[2]], pos[tet[3]]];
                    let v = [vals[tet[0]], vals[tet[1]], vals[tet[2]], vals[tet[3]]];
                    stats.triangles += tetra(&mut mesh, p, v, iso);
                }
            }
        }
    }
    (mesh, stats)
}

/// Isosurface of one (possibly reduced) block, positioned in the domain's
/// physical coordinates. Reduced blocks are reconstructed to their logical
/// shape first — the renderer "rebuilds more points if necessary using
/// interpolation", paper §IV-C.
pub fn block_isosurface(
    block: &Block,
    coords: &RectilinearCoords,
    iso: f32,
) -> (TriangleMesh, IsoStats) {
    let dims = block.dims();
    let lo = block.extent.lo;
    match &block.data {
        apc_grid::BlockData::Reduced(corners) => {
            // A reduced block is rendered from its 2×2×2 corner samples —
            // one cell spanning the block's physical extent. (Rebuilding
            // all points first would yield the same surface at 6·n³ the
            // cost; the corner cell is what Catalyst sees after reduction.)
            let corner_dims = Dims3::new(2, 2, 2);
            let hi = (
                block.extent.hi.0 - 1,
                block.extent.hi.1 - 1,
                block.extent.hi.2 - 1,
            );
            marching_tetrahedra(corners, corner_dims, iso, |i, j, k| {
                coords.position(
                    if i == 0 { lo.0 } else { hi.0 },
                    if j == 0 { lo.1 } else { hi.1 },
                    if k == 0 { lo.2 } else { hi.2 },
                )
            })
        }
        apc_grid::BlockData::Sampled { dims: cd, values } => {
            // k×k×k downsampling: march the coarse lattice at the kept
            // sample positions (first/last on the boundary for continuity).
            let ix = apc_grid::interp::sample_indices(dims.nx, cd.nx);
            let iy = apc_grid::interp::sample_indices(dims.ny, cd.ny);
            let iz = apc_grid::interp::sample_indices(dims.nz, cd.nz);
            marching_tetrahedra(values, *cd, iso, |i, j, k| {
                coords.position(lo.0 + ix[i], lo.1 + iy[j], lo.2 + iz[k])
            })
        }
        apc_grid::BlockData::Full(samples) => marching_tetrahedra(samples, dims, iso, |i, j, k| {
            coords.position(lo.0 + i, lo.1 + j, lo.2 + k)
        }),
    }
}

/// How much parallelism isosurface extraction can use: triangle density is
/// wildly uneven across blocks (storm core vs clear air), so prefer plenty
/// of workers and let the dynamic chunking in [`apc_par::par_map`] balance
/// them — but never more than one worker per two blocks.
pub fn recommended_concurrency(nblocks: usize) -> RecommendedConcurrency {
    RecommendedConcurrency::per_items(nblocks, 2)
}

/// Extract isosurface work counters for a whole block set under an
/// [`ExecPolicy`], in block order. Meshes are discarded — this is the entry
/// point for the pipeline's render-cost step and for sweeps, where only the
/// counted work feeds the virtual clock. The serial path is exactly the
/// per-block loop the pipeline ran before this layer existed, so counters
/// are bit-identical under every policy.
pub fn batch_isosurface_stats(
    blocks: &[Block],
    coords: &RectilinearCoords,
    iso: f32,
    policy: ExecPolicy,
) -> Vec<IsoStats> {
    let policy = policy.for_kernel(recommended_concurrency(blocks.len()));
    par_map(policy, blocks, |b| block_isosurface(b, coords, iso).1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_grid::{BlockData, Extent3, Field3};

    fn sphere_field(dims: Dims3, r: f32) -> Vec<f32> {
        let c = [
            (dims.nx - 1) as f32 / 2.0,
            (dims.ny - 1) as f32 / 2.0,
            (dims.nz - 1) as f32 / 2.0,
        ];
        let mut data = Vec::with_capacity(dims.len());
        for k in 0..dims.nz {
            for j in 0..dims.ny {
                for i in 0..dims.nx {
                    let d = ((i as f32 - c[0]).powi(2)
                        + (j as f32 - c[1]).powi(2)
                        + (k as f32 - c[2]).powi(2))
                    .sqrt();
                    data.push(r - d); // positive inside the sphere
                }
            }
        }
        data
    }

    fn ident(i: usize, j: usize, k: usize) -> [f32; 3] {
        [i as f32, j as f32, k as f32]
    }

    #[test]
    fn empty_when_no_crossing() {
        let dims = Dims3::new(4, 4, 4);
        let (mesh, stats) = marching_tetrahedra(&vec![1.0; 64], dims, 0.0, ident);
        assert!(mesh.is_empty());
        assert_eq!(stats.cells, 27);
        assert_eq!(stats.triangles, 0);
        let (mesh, _) = marching_tetrahedra(&vec![-1.0; 64], dims, 0.0, ident);
        assert!(mesh.is_empty());
    }

    #[test]
    fn sphere_area_approximates_analytic() {
        let dims = Dims3::new(24, 24, 24);
        let r = 8.0;
        let (mesh, stats) = marching_tetrahedra(&sphere_field(dims, r), dims, 0.0, ident);
        assert!(stats.triangles > 100);
        assert_eq!(mesh.triangle_count(), stats.triangles);
        let analytic = 4.0 * std::f64::consts::PI * (r as f64) * (r as f64);
        let measured = mesh.area();
        let rel = (measured - analytic).abs() / analytic;
        assert!(
            rel < 0.15,
            "sphere area off by {:.1}%: {measured} vs {analytic}",
            rel * 100.0
        );
    }

    #[test]
    fn plane_isosurface_sits_at_crossing() {
        // Field linear in x crosses iso=2.5 at the x=2.5 plane.
        let dims = Dims3::new(6, 5, 4);
        let data: Vec<f32> = (0..dims.len()).map(|idx| (idx % 6) as f32).collect();
        let (mesh, _) = marching_tetrahedra(&data, dims, 2.5, ident);
        assert!(!mesh.is_empty());
        for p in &mesh.positions {
            assert!((p.x - 2.5).abs() < 1e-5, "vertex off the plane: {p:?}");
        }
        // Plane area = (ny-1) × (nz-1) = 4 × 3 = 12.
        assert!((mesh.area() - 12.0).abs() < 0.2, "area = {}", mesh.area());
    }

    #[test]
    fn vertices_stay_inside_cell_bounds() {
        let dims = Dims3::new(10, 10, 10);
        let (mesh, _) = marching_tetrahedra(&sphere_field(dims, 3.5), dims, 0.0, ident);
        let (lo, hi) = mesh.bounds().unwrap();
        assert!(lo.x >= 0.0 && lo.y >= 0.0 && lo.z >= 0.0);
        assert!(hi.x <= 9.0 && hi.y <= 9.0 && hi.z <= 9.0);
    }

    #[test]
    fn position_mapping_is_honored() {
        let dims = Dims3::new(4, 4, 4);
        let scale = 3.0f32;
        let (mesh, _) = marching_tetrahedra(&sphere_field(dims, 1.4), dims, 0.0, |i, j, k| {
            [i as f32 * scale, j as f32 * scale, k as f32 * scale]
        });
        let (ref_mesh, _) = marching_tetrahedra(&sphere_field(dims, 1.4), dims, 0.0, ident);
        assert!((mesh.area() - ref_mesh.area() * (scale * scale) as f64).abs() < 1e-3);
    }

    #[test]
    fn degenerate_dims_yield_nothing() {
        let (mesh, stats) = marching_tetrahedra(&[1.0, -1.0], Dims3::new(2, 1, 1), 0.0, ident);
        assert!(mesh.is_empty());
        assert_eq!(stats.cells, 0);
    }

    #[test]
    fn reduced_block_renders_single_cell() {
        let coords = RectilinearCoords::uniform(Dims3::new(20, 20, 20), 1.0);
        let dims = Dims3::new(10, 10, 10);
        let field = Field3::from_vec(dims, sphere_field(dims, 4.0)).unwrap();
        let full_block = Block::from_field(0, Extent3::new((0, 0, 0), (10, 10, 10)), &field)
            .map(|mut b| {
                // give the extent an offset inside the domain
                b.extent = Extent3::new((5, 5, 5), (15, 15, 15));
                b
            })
            .unwrap();
        let (full_mesh, full_stats) = block_isosurface(&full_block, &coords, 0.0);
        assert!(full_stats.triangles > 0);
        assert_eq!(full_stats.cells, 729);

        let reduced = full_block.reduced();
        let (_red_mesh, red_stats) = block_isosurface(&reduced, &coords, 0.0);
        assert_eq!(red_stats.cells, 1, "a reduced block is one cell");
        assert!(red_stats.triangles <= 12);
        // Cost collapses: this is the entire point of reduction.
        assert!(red_stats.cells < full_stats.cells / 100);
        drop(full_mesh);
    }

    #[test]
    fn reduced_block_geometry_spans_extent() {
        // A reduced block whose corners straddle the isovalue must produce
        // geometry inside its physical extent.
        let coords = RectilinearCoords::uniform(Dims3::new(20, 20, 20), 2.0);
        let block = Block {
            id: 0,
            extent: Extent3::new((2, 2, 2), (8, 8, 8)),
            data: BlockData::Reduced([-1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0]),
        };
        let (mesh, stats) = block_isosurface(&block, &coords, 0.0);
        assert!(stats.triangles > 0);
        let (lo, hi) = mesh.bounds().unwrap();
        // Physical extent is [4, 14] on each axis.
        assert!(lo.x >= 4.0 - 1e-4 && hi.x <= 14.0 + 1e-4, "{lo:?} {hi:?}");
    }

    #[test]
    fn batch_stats_match_serial_loop_under_any_policy() {
        let dims = Dims3::new(8, 8, 8);
        let coords = RectilinearCoords::uniform(Dims3::new(64, 64, 64), 1.0);
        let blocks: Vec<Block> = (0..12)
            .map(|i| {
                let r = 1.5 + 0.3 * i as f32; // varying triangle density
                let field = Field3::from_vec(dims, sphere_field(dims, r)).unwrap();
                let mut b = Block::from_field(
                    i as apc_grid::BlockId,
                    Extent3::new((0, 0, 0), (8, 8, 8)),
                    &field,
                )
                .unwrap();
                let o = (i % 4) * 8;
                b.extent = Extent3::new((o, 0, 0), (o + 8, 8, 8));
                b
            })
            .collect();
        let serial = batch_isosurface_stats(&blocks, &coords, 0.0, ExecPolicy::Serial);
        let reference: Vec<IsoStats> = blocks
            .iter()
            .map(|b| block_isosurface(b, &coords, 0.0).1)
            .collect();
        assert_eq!(serial, reference, "serial batch must equal the plain loop");
        for threads in [2, 8] {
            let par = batch_isosurface_stats(&blocks, &coords, 0.0, ExecPolicy::Threads(threads));
            assert_eq!(
                serial, par,
                "Threads({threads}) counters must be bit-identical"
            );
        }
        assert!(serial.iter().any(|s| s.triangles > 0));
    }
}

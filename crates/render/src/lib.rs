//! Software visualization substrate: the stand-in for ParaView Catalyst.
//!
//! The paper renders a 45 dBZ reflectivity isosurface through Catalyst
//! (marching cubes + rasterization) and 2D colormaps. This crate implements
//! that pipeline from scratch (DESIGN.md §2):
//!
//! * [`isosurface`] — crack-free isosurface extraction via **marching
//!   tetrahedra** (6-tet cell decomposition; same complexity class and
//!   output characteristics as marching cubes, no external case tables);
//! * [`raster`] — a z-buffer triangle rasterizer with Lambert shading;
//! * [`camera`] + [`math`] — look-at cameras, orthographic & perspective;
//! * [`colormap`] — greyscale / viridis-like / NWS-radar palettes and 2D
//!   slice colormap rendering (paper Fig 1c/1d);
//! * [`scoremap`] — the per-block score images of paper Fig 4;
//! * [`image`] — PPM/PGM output;
//! * [`cost`] — the calibrated virtual render-time model: real counted
//!   cells/triangles in, Blue Waters-scale seconds out, with seeded
//!   log-normal jitter reproducing the paper's render-time variability.

pub mod camera;
pub mod colormap;
pub mod cost;
pub mod image;
pub mod isosurface;
pub mod math;
pub mod mesh;
pub mod raster;
pub mod scoremap;
pub mod streamline;

pub use camera::Camera;
pub use colormap::{Colormap, Palette};
pub use cost::RenderCostModel;
pub use image::Image;
pub use isosurface::{batch_isosurface_stats, block_isosurface, marching_tetrahedra, IsoStats};
pub use mesh::TriangleMesh;
pub use raster::Framebuffer;
pub use scoremap::render_scoremap;
pub use streamline::{seed_grid, trace_streamline, StreamlineOptions};

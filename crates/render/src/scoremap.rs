//! Scoremaps: per-block score images (paper Fig 4).
//!
//! "Colormaps of the domain where colors represent scores of blocks —
//! darker regions indicate higher scores." Scores are normalized over the
//! blocks present, then each block paints its footprint in a plan view of
//! the block grid.

use apc_grid::DomainDecomp;

use crate::colormap::{Colormap, Palette};
use crate::image::Image;

/// Render a scoremap from `(block id, score)` pairs.
///
/// The image has one `pixel_per_block × pixel_per_block` tile per block
/// column; a block column's tile shows the *maximum* score over its z
/// blocks (plan view). Missing blocks render as white.
pub fn render_scoremap(
    decomp: &DomainDecomp,
    scores: &[(apc_grid::BlockId, f64)],
    pixels_per_block: usize,
) -> Image {
    assert!(pixels_per_block > 0);
    let gb = decomp.global_block_grid();
    // Column-max score over z.
    let mut col = vec![f64::NEG_INFINITY; gb.nx * gb.ny];
    for &(id, s) in scores {
        let (bi, bj, _bk) = decomp.block_coords(id);
        let idx = bj * gb.nx + bi;
        if s > col[idx] {
            col[idx] = s;
        }
    }
    let finite: Vec<f64> = col.iter().copied().filter(|v| v.is_finite()).collect();
    let (lo, hi) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| {
            (l.min(v), h.max(v))
        });
    let span = if hi > lo { hi - lo } else { 1.0 };
    let cmap = Colormap::new(0.0, 1.0, Palette::GreyscaleInverted);

    let w = gb.nx * pixels_per_block;
    let h = gb.ny * pixels_per_block;
    let mut img = Image::filled(w, h, [255, 255, 255]);
    for bj in 0..gb.ny {
        for bi in 0..gb.nx {
            let v = col[bj * gb.nx + bi];
            if !v.is_finite() {
                continue;
            }
            let rgb = cmap.rgb(((v - lo) / span) as f32);
            for dy in 0..pixels_per_block {
                for dx in 0..pixels_per_block {
                    // Flip y so north is up, like the slice renderer.
                    img.set(
                        bi * pixels_per_block + dx,
                        (gb.ny - 1 - bj) * pixels_per_block + dy,
                        rgb,
                    );
                }
            }
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_grid::{Dims3, DomainDecomp, ProcGrid};

    fn decomp() -> DomainDecomp {
        DomainDecomp::new(
            Dims3::new(40, 40, 8),
            ProcGrid::new(2, 2, 1),
            Dims3::new(10, 10, 8),
        )
        .unwrap()
    }

    #[test]
    fn image_size_matches_block_grid() {
        let d = decomp(); // 4x4x1 blocks
        let scores: Vec<_> = d.all_blocks().map(|id| (id, id as f64)).collect();
        let img = render_scoremap(&d, &scores, 5);
        assert_eq!((img.width(), img.height()), (20, 20));
    }

    #[test]
    fn higher_scores_are_darker() {
        let d = decomp();
        let n = d.n_blocks() as u32;
        let scores: Vec<_> = (0..n).map(|id| (id, id as f64)).collect();
        let img = render_scoremap(&d, &scores, 2);
        // Block 0 is at (0,0) → bottom-left; block n-1 top-right.
        let low = img.get(0, img.height() - 1);
        let high = img.get(img.width() - 1, 0);
        assert!(
            high[0] < low[0],
            "high score should be darker: {high:?} vs {low:?}"
        );
    }

    #[test]
    fn missing_blocks_render_white() {
        let d = decomp();
        let img = render_scoremap(&d, &[(0, 1.0)], 1);
        assert_eq!(img.get(img.width() - 1, 0), [255, 255, 255]);
    }

    #[test]
    fn constant_scores_do_not_divide_by_zero() {
        let d = decomp();
        let scores: Vec<_> = d.all_blocks().map(|id| (id, 3.0)).collect();
        let img = render_scoremap(&d, &scores, 1);
        let px = img.get(0, 0);
        assert_eq!(px[0], px[1]);
    }
}

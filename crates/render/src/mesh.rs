//! Triangle meshes produced by isosurface extraction.

use crate::math::Vec3;

/// An indexed triangle mesh.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TriangleMesh {
    /// Vertex positions.
    pub positions: Vec<Vec3>,
    /// Vertex indices, three per triangle.
    pub indices: Vec<u32>,
}

impl TriangleMesh {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn triangle_count(&self) -> usize {
        self.indices.len() / 3
    }

    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Append a triangle given three positions (no vertex dedup — isosurface
    /// fragments are short-lived render input).
    pub fn push_triangle(&mut self, a: Vec3, b: Vec3, c: Vec3) {
        let base = self.positions.len() as u32;
        self.positions.push(a);
        self.positions.push(b);
        self.positions.push(c);
        self.indices.extend_from_slice(&[base, base + 1, base + 2]);
    }

    /// Merge another mesh into this one.
    pub fn merge(&mut self, other: &TriangleMesh) {
        let base = self.positions.len() as u32;
        self.positions.extend_from_slice(&other.positions);
        self.indices.extend(other.indices.iter().map(|&i| i + base));
    }

    /// Axis-aligned bounding box, `None` for an empty mesh.
    pub fn bounds(&self) -> Option<(Vec3, Vec3)> {
        let first = *self.positions.first()?;
        let mut lo = first;
        let mut hi = first;
        for p in &self.positions {
            lo.x = lo.x.min(p.x);
            lo.y = lo.y.min(p.y);
            lo.z = lo.z.min(p.z);
            hi.x = hi.x.max(p.x);
            hi.y = hi.y.max(p.y);
            hi.z = hi.z.max(p.z);
        }
        Some((lo, hi))
    }

    /// Total surface area.
    pub fn area(&self) -> f64 {
        self.indices
            .chunks_exact(3)
            .map(|t| {
                let a = self.positions[t[0] as usize];
                let b = self.positions[t[1] as usize];
                let c = self.positions[t[2] as usize];
                ((b - a).cross(c - a).length() * 0.5) as f64
            })
            .sum()
    }

    /// Vertices of triangle `t`.
    pub fn triangle(&self, t: usize) -> [Vec3; 3] {
        let i = t * 3;
        [
            self.positions[self.indices[i] as usize],
            self.positions[self.indices[i + 1] as usize],
            self.positions[self.indices[i + 2] as usize],
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::vec3;

    #[test]
    fn push_and_count() {
        let mut m = TriangleMesh::new();
        assert!(m.is_empty());
        m.push_triangle(
            vec3(0.0, 0.0, 0.0),
            vec3(1.0, 0.0, 0.0),
            vec3(0.0, 1.0, 0.0),
        );
        assert_eq!(m.triangle_count(), 1);
        assert!((m.area() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn merge_offsets_indices() {
        let mut a = TriangleMesh::new();
        a.push_triangle(
            vec3(0.0, 0.0, 0.0),
            vec3(1.0, 0.0, 0.0),
            vec3(0.0, 1.0, 0.0),
        );
        let mut b = TriangleMesh::new();
        b.push_triangle(
            vec3(5.0, 0.0, 0.0),
            vec3(6.0, 0.0, 0.0),
            vec3(5.0, 1.0, 0.0),
        );
        a.merge(&b);
        assert_eq!(a.triangle_count(), 2);
        let t1 = a.triangle(1);
        assert_eq!(t1[0], vec3(5.0, 0.0, 0.0));
    }

    #[test]
    fn bounds() {
        let mut m = TriangleMesh::new();
        assert!(m.bounds().is_none());
        m.push_triangle(
            vec3(-1.0, 2.0, 0.0),
            vec3(1.0, 0.0, 3.0),
            vec3(0.0, -2.0, 1.0),
        );
        let (lo, hi) = m.bounds().unwrap();
        assert_eq!(lo, vec3(-1.0, -2.0, 0.0));
        assert_eq!(hi, vec3(1.0, 2.0, 3.0));
    }
}

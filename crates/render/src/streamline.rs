//! Streamlines: the second 3D visualization scenario the paper's
//! scientists use ("streamlines based on wind vectors", §IV-B).
//!
//! Classic fourth-order Runge–Kutta integration of a vector field, plus
//! polyline rasterization into a [`crate::Framebuffer`].

use crate::camera::Camera;
use crate::math::Vec3;
use crate::raster::Framebuffer;

/// Integration parameters.
#[derive(Debug, Clone, Copy)]
pub struct StreamlineOptions {
    /// Integration step in field units.
    pub step: f32,
    /// Maximum number of steps.
    pub max_steps: usize,
    /// Stop when the local speed falls below this.
    pub min_speed: f32,
    /// Axis-aligned integration bounds `(lo, hi)`; leaving them stops the
    /// trace.
    pub bounds: ([f32; 3], [f32; 3]),
}

impl StreamlineOptions {
    pub fn within(lo: [f32; 3], hi: [f32; 3]) -> Self {
        Self {
            step: 0.01,
            max_steps: 2000,
            min_speed: 1e-9,
            bounds: (lo, hi),
        }
    }
}

#[inline]
fn inside(p: Vec3, (lo, hi): ([f32; 3], [f32; 3])) -> bool {
    p.x >= lo[0] && p.x <= hi[0] && p.y >= lo[1] && p.y <= hi[1] && p.z >= lo[2] && p.z <= hi[2]
}

/// Trace one streamline from `seed` through the vector field `wind`.
/// Returns the polyline vertices (at least the seed point if it is inside
/// the bounds).
pub fn trace_streamline<F>(wind: F, seed: [f32; 3], opts: &StreamlineOptions) -> Vec<Vec3>
where
    F: Fn([f32; 3]) -> [f32; 3],
{
    let mut p = Vec3::from_array(seed);
    let mut line = Vec::new();
    if !inside(p, opts.bounds) {
        return line;
    }
    line.push(p);
    let eval = |q: Vec3| Vec3::from_array(wind(q.to_array()));
    for _ in 0..opts.max_steps {
        // RK4.
        let h = opts.step;
        let k1 = eval(p);
        if k1.length() < opts.min_speed {
            break;
        }
        let k2 = eval(p + k1 * (h / 2.0));
        let k3 = eval(p + k2 * (h / 2.0));
        let k4 = eval(p + k3 * h);
        let next = p + (k1 + k2 * 2.0 + k3 * 2.0 + k4) * (h / 6.0);
        if !inside(next, opts.bounds) {
            break;
        }
        p = next;
        line.push(p);
    }
    line
}

/// A regular grid of seed points over a z-plane — the usual seeding for
/// storm inflow visualization.
pub fn seed_grid(lo: [f32; 3], hi: [f32; 3], nx: usize, ny: usize, z: f32) -> Vec<[f32; 3]> {
    let mut seeds = Vec::with_capacity(nx * ny);
    for j in 0..ny {
        for i in 0..nx {
            let fx = if nx > 1 {
                i as f32 / (nx - 1) as f32
            } else {
                0.5
            };
            let fy = if ny > 1 {
                j as f32 / (ny - 1) as f32
            } else {
                0.5
            };
            seeds.push([
                lo[0] + fx * (hi[0] - lo[0]),
                lo[1] + fy * (hi[1] - lo[1]),
                z,
            ]);
        }
    }
    seeds
}

impl Framebuffer {
    /// Rasterize a polyline with depth testing (simple DDA in screen
    /// space, depth interpolated per pixel).
    pub fn draw_polyline(&mut self, line: &[Vec3], camera: &Camera, rgb: [u8; 3]) {
        for seg in line.windows(2) {
            let (Some(a), Some(b)) = (
                camera.project(seg[0], self.width(), self.height()),
                camera.project(seg[1], self.width(), self.height()),
            ) else {
                continue;
            };
            let steps = ((b[0] - a[0]).abs().max((b[1] - a[1]).abs()).ceil() as usize).max(1);
            for s in 0..=steps {
                let t = s as f32 / steps as f32;
                let x = a[0] + (b[0] - a[0]) * t;
                let y = a[1] + (b[1] - a[1]) * t;
                let depth = a[2] + (b[2] - a[2]) * t;
                if x < 0.0 || y < 0.0 {
                    continue;
                }
                let (xi, yi) = (x as usize, y as usize);
                if xi < self.width() && yi < self.height() {
                    self.plot_depth_tested(xi, yi, depth, rgb);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::vec3;

    const UNIT: ([f32; 3], [f32; 3]) = ([0.0, 0.0, 0.0], [1.0, 1.0, 1.0]);

    #[test]
    fn uniform_wind_gives_straight_line() {
        let opts = StreamlineOptions {
            step: 0.01,
            ..StreamlineOptions::within(UNIT.0, UNIT.1)
        };
        let line = trace_streamline(|_| [1.0, 0.0, 0.0], [0.1, 0.5, 0.5], &opts);
        assert!(line.len() > 50);
        for p in &line {
            assert!((p.y - 0.5).abs() < 1e-5 && (p.z - 0.5).abs() < 1e-5);
        }
        // Advances in +x until the boundary.
        let last = line.last().unwrap();
        assert!(last.x > 0.98, "should reach the +x face, got {last:?}");
    }

    #[test]
    fn trace_stops_at_bounds() {
        let opts = StreamlineOptions::within(UNIT.0, UNIT.1);
        let line = trace_streamline(|_| [0.0, -1.0, 0.0], [0.5, 0.05, 0.5], &opts);
        assert!(
            line.len() < 20,
            "should exit quickly, got {} points",
            line.len()
        );
        assert!(line.iter().all(|p| p.y >= 0.0));
    }

    #[test]
    fn trace_stops_in_calm_air() {
        let opts = StreamlineOptions::within(UNIT.0, UNIT.1);
        let line = trace_streamline(|_| [0.0, 0.0, 0.0], [0.5, 0.5, 0.5], &opts);
        assert_eq!(line.len(), 1, "no wind, no movement");
    }

    #[test]
    fn seed_outside_bounds_yields_empty() {
        let opts = StreamlineOptions::within(UNIT.0, UNIT.1);
        let line = trace_streamline(|_| [1.0, 0.0, 0.0], [2.0, 0.5, 0.5], &opts);
        assert!(line.is_empty());
    }

    #[test]
    fn rk4_follows_circular_flow() {
        // Rotation about the center: radius must be conserved well by RK4.
        let center = vec3(0.5, 0.5, 0.5);
        let wind = |p: [f32; 3]| [-(p[1] - 0.5), p[0] - 0.5, 0.0];
        let opts = StreamlineOptions {
            step: 0.02,
            max_steps: 1000,
            ..StreamlineOptions::within(UNIT.0, UNIT.1)
        };
        let line = trace_streamline(wind, [0.8, 0.5, 0.5], &opts);
        assert!(line.len() > 500, "rotating flow should keep tracing");
        let r0 = (line[0] - center).length();
        for p in &line {
            let r = (*p - center).length();
            assert!((r - r0).abs() < 0.01, "radius drifted: {r} vs {r0}");
        }
    }

    #[test]
    fn seed_grid_shape() {
        let seeds = seed_grid(UNIT.0, UNIT.1, 3, 2, 0.25);
        assert_eq!(seeds.len(), 6);
        assert!(seeds.iter().all(|s| s[2] == 0.25));
        assert_eq!(seeds[0], [0.0, 0.0, 0.25]);
        assert_eq!(seeds[5], [1.0, 1.0, 0.25]);
    }

    #[test]
    fn polyline_rasterizes_with_depth() {
        let cam = crate::Camera::top_down(vec3(0.0, 0.0, 0.0), vec3(1.0, 1.0, 1.0));
        let mut fb = Framebuffer::new(64, 64, [0, 0, 0]);
        let line = vec![vec3(0.1, 0.5, 0.5), vec3(0.9, 0.5, 0.5)];
        fb.draw_polyline(&line, &cam, [255, 0, 0]);
        assert!(
            fb.coverage() > 0.005,
            "line should cover pixels: {}",
            fb.coverage()
        );
    }
}

//! Color lookup tables and 2D slice colormap rendering (paper Fig 1c/1d).

use apc_grid::Field3;

use crate::image::Image;

/// A scalar → RGB color map over a fixed value range.
#[derive(Debug, Clone, Copy)]
pub struct Colormap {
    pub min: f32,
    pub max: f32,
    pub palette: Palette,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Palette {
    /// Black → white.
    Greyscale,
    /// White → black (scoremaps: "darker regions indicate higher scores").
    GreyscaleInverted,
    /// A compact viridis-like perceptual ramp.
    Viridis,
    /// The classic NWS radar reflectivity palette (what storm colormaps
    /// like paper Fig 1c use).
    Radar,
}

impl Colormap {
    pub fn new(min: f32, max: f32, palette: Palette) -> Self {
        assert!(max > min, "colormap range must be non-empty");
        Self { min, max, palette }
    }

    /// The paper's reflectivity colormap over [−60, 80] dBZ.
    pub fn reflectivity() -> Self {
        Self::new(-60.0, 80.0, Palette::Radar)
    }

    #[inline]
    fn t(&self, v: f32) -> f32 {
        ((v - self.min) / (self.max - self.min)).clamp(0.0, 1.0)
    }

    /// Map a value to RGB.
    pub fn rgb(&self, v: f32) -> [u8; 3] {
        let t = self.t(v);
        match self.palette {
            Palette::Greyscale => {
                let g = (t * 255.0) as u8;
                [g, g, g]
            }
            Palette::GreyscaleInverted => {
                let g = ((1.0 - t) * 255.0) as u8;
                [g, g, g]
            }
            Palette::Viridis => viridis(t),
            Palette::Radar => radar(t),
        }
    }

    /// Render a z-slice of a field as an image (one pixel per sample,
    /// y flipped so north is up).
    pub fn render_slice(&self, field: &Field3, k_plane: usize) -> Image {
        let d = field.dims();
        // apc-lint: allow(unwrap-in-lib): an out-of-range plane is a caller indexing bug, same contract as slice indexing
        let slice = field.slice_z(k_plane).expect("k_plane in range");
        let mut img = Image::new(d.nx, d.ny);
        for j in 0..d.ny {
            for i in 0..d.nx {
                img.set(i, d.ny - 1 - j, self.rgb(slice[j * d.nx + i]));
            }
        }
        img
    }

    /// Render the column-maximum projection of a field (composite
    /// reflectivity — the standard storm plan view).
    pub fn render_column_max(&self, field: &Field3) -> Image {
        let d = field.dims();
        let mut img = Image::new(d.nx, d.ny);
        for j in 0..d.ny {
            for i in 0..d.nx {
                let mut m = f32::MIN;
                for k in 0..d.nz {
                    m = m.max(field.get(i, j, k));
                }
                img.set(i, d.ny - 1 - j, self.rgb(m));
            }
        }
        img
    }
}

/// Piecewise-linear viridis approximation.
fn viridis(t: f32) -> [u8; 3] {
    const STOPS: [[f32; 3]; 5] = [
        [0.267, 0.005, 0.329],
        [0.229, 0.322, 0.545],
        [0.128, 0.567, 0.551],
        [0.369, 0.789, 0.383],
        [0.993, 0.906, 0.144],
    ];
    lerp_stops(&STOPS, t)
}

/// NWS-style reflectivity palette: transparent-grey clear air, then green /
/// yellow / orange / red / magenta with increasing dBZ.
fn radar(t: f32) -> [u8; 3] {
    const STOPS: [[f32; 3]; 8] = [
        [0.05, 0.05, 0.10], // clear air (near −60 dBZ)
        [0.25, 0.25, 0.35],
        [0.00, 0.55, 0.85], // light echo (blue)
        [0.05, 0.80, 0.10], // green
        [0.95, 0.90, 0.10], // yellow
        [0.95, 0.55, 0.05], // orange
        [0.85, 0.05, 0.05], // red
        [0.85, 0.10, 0.85], // magenta (extreme hail core)
    ];
    lerp_stops(&STOPS, t)
}

fn lerp_stops<const N: usize>(stops: &[[f32; 3]; N], t: f32) -> [u8; 3] {
    let x = t.clamp(0.0, 1.0) * (N - 1) as f32;
    let i = (x.floor() as usize).min(N - 2);
    let f = x - i as f32;
    let mut rgb = [0u8; 3];
    for c in 0..3 {
        let v = stops[i][c] + (stops[i + 1][c] - stops[i][c]) * f;
        rgb[c] = (v * 255.0).round().clamp(0.0, 255.0) as u8;
    }
    rgb
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_grid::Dims3;

    #[test]
    fn endpoints_clamp() {
        let cm = Colormap::new(0.0, 10.0, Palette::Greyscale);
        assert_eq!(cm.rgb(-5.0), [0, 0, 0]);
        assert_eq!(cm.rgb(50.0), [255, 255, 255]);
        assert_eq!(cm.rgb(5.0), [127, 127, 127]);
    }

    #[test]
    fn inverted_greyscale_darkens_high_scores() {
        let cm = Colormap::new(0.0, 1.0, Palette::GreyscaleInverted);
        assert!(cm.rgb(1.0)[0] < cm.rgb(0.0)[0]);
    }

    #[test]
    fn radar_palette_orders_hue_energy() {
        let cm = Colormap::reflectivity();
        let clear = cm.rgb(-55.0);
        let storm = cm.rgb(55.0);
        // Storm pixels are much brighter in red than clear air.
        assert!(storm[0] > clear[0] + 100);
    }

    #[test]
    fn slice_render_shape_and_orientation() {
        let d = Dims3::new(3, 2, 2);
        let mut f = Field3::zeros(d);
        f.set(0, 0, 1, 10.0); // south-west corner of plane k=1
        let cm = Colormap::new(0.0, 10.0, Palette::Greyscale);
        let img = cm.render_slice(&f, 1);
        assert_eq!((img.width(), img.height()), (3, 2));
        // y is flipped: j=0 lands at the bottom row (y = height-1).
        assert_eq!(img.get(0, 1), [255, 255, 255]);
        assert_eq!(img.get(0, 0), [0, 0, 0]);
    }

    #[test]
    fn column_max_projects_peaks() {
        let d = Dims3::new(2, 2, 3);
        let mut f = Field3::filled(d, -60.0);
        f.set(1, 1, 2, 60.0);
        let cm = Colormap::reflectivity();
        let img = cm.render_column_max(&f);
        // Pixel (1, flipped j=1 → y=0) must be hot.
        let hot = img.get(1, 0);
        let cold = img.get(0, 1);
        assert_ne!(hot, cold);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_range_rejected() {
        let _ = Colormap::new(5.0, 5.0, Palette::Greyscale);
    }
}

//! Z-buffer triangle rasterization with Lambert shading.

use crate::camera::Camera;
use crate::colormap::Colormap;
use crate::image::Image;
use crate::math::Vec3;
use crate::mesh::TriangleMesh;

/// A color + depth framebuffer.
#[derive(Debug, Clone)]
pub struct Framebuffer {
    width: usize,
    height: usize,
    color: Vec<[u8; 3]>,
    depth: Vec<f32>,
}

impl Framebuffer {
    pub fn new(width: usize, height: usize, background: [u8; 3]) -> Self {
        Self {
            width,
            height,
            color: vec![background; width * height],
            depth: vec![f32::INFINITY; width * height],
        }
    }

    pub fn width(&self) -> usize {
        self.width
    }

    pub fn height(&self) -> usize {
        self.height
    }

    /// Fraction of pixels that received geometry.
    pub fn coverage(&self) -> f64 {
        let covered = self.depth.iter().filter(|d| d.is_finite()).count();
        covered as f64 / self.depth.len() as f64
    }

    /// Rasterize a mesh with a single base color, flat (per-triangle)
    /// two-sided Lambert shading from a fixed directional light.
    pub fn draw_mesh(&mut self, mesh: &TriangleMesh, camera: &Camera, base: [u8; 3]) {
        let light = Vec3 {
            x: -0.4,
            y: -0.55,
            z: 0.73,
        }
        .normalized();
        for t in 0..mesh.triangle_count() {
            let [a, b, c] = mesh.triangle(t);
            let normal = (b - a).cross(c - a).normalized();
            // Two-sided: isosurface winding is not globally consistent.
            let lambert = normal.dot(light).abs().clamp(0.0, 1.0);
            let shade = 0.25 + 0.75 * lambert;
            let rgb = [
                (base[0] as f32 * shade) as u8,
                (base[1] as f32 * shade) as u8,
                (base[2] as f32 * shade) as u8,
            ];
            let (Some(pa), Some(pb), Some(pc)) = (
                camera.project(a, self.width, self.height),
                camera.project(b, self.width, self.height),
                camera.project(c, self.width, self.height),
            ) else {
                continue;
            };
            self.fill_triangle(pa, pb, pc, rgb);
        }
    }

    /// Rasterize coloring each triangle by a scalar through a colormap
    /// (e.g. reflectivity values on the isosurface).
    // `t` is a triangle id used against both mesh and scalars.
    #[allow(clippy::needless_range_loop)]
    pub fn draw_mesh_scalar(
        &mut self,
        mesh: &TriangleMesh,
        scalars: &[f32],
        camera: &Camera,
        cmap: &Colormap,
    ) {
        assert_eq!(
            scalars.len(),
            mesh.triangle_count(),
            "one scalar per triangle"
        );
        let light = Vec3 {
            x: -0.4,
            y: -0.55,
            z: 0.73,
        }
        .normalized();
        for t in 0..mesh.triangle_count() {
            let [a, b, c] = mesh.triangle(t);
            let normal = (b - a).cross(c - a).normalized();
            let shade = 0.35 + 0.65 * normal.dot(light).abs().clamp(0.0, 1.0);
            let base = cmap.rgb(scalars[t]);
            let rgb = [
                (base[0] as f32 * shade) as u8,
                (base[1] as f32 * shade) as u8,
                (base[2] as f32 * shade) as u8,
            ];
            let (Some(pa), Some(pb), Some(pc)) = (
                camera.project(a, self.width, self.height),
                camera.project(b, self.width, self.height),
                camera.project(c, self.width, self.height),
            ) else {
                continue;
            };
            self.fill_triangle(pa, pb, pc, rgb);
        }
    }

    /// Edge-function triangle fill with depth testing.
    fn fill_triangle(&mut self, a: [f32; 3], b: [f32; 3], c: [f32; 3], rgb: [u8; 3]) {
        let min_x = a[0].min(b[0]).min(c[0]).floor().max(0.0) as usize;
        let max_x = (a[0].max(b[0]).max(c[0]).ceil() as usize).min(self.width.saturating_sub(1));
        let min_y = a[1].min(b[1]).min(c[1]).floor().max(0.0) as usize;
        let max_y = (a[1].max(b[1]).max(c[1]).ceil() as usize).min(self.height.saturating_sub(1));
        if min_x > max_x || min_y > max_y {
            return;
        }
        let edge = |p: [f32; 2], q: [f32; 2], r: [f32; 2]| {
            (q[0] - p[0]) * (r[1] - p[1]) - (q[1] - p[1]) * (r[0] - p[0])
        };
        let pa = [a[0], a[1]];
        let pb = [b[0], b[1]];
        let pc = [c[0], c[1]];
        let area = edge(pa, pb, pc);
        if area.abs() < 1e-12 {
            return; // degenerate
        }
        for y in min_y..=max_y {
            for x in min_x..=max_x {
                let p = [x as f32 + 0.5, y as f32 + 0.5];
                let w0 = edge(pb, pc, p) / area;
                let w1 = edge(pc, pa, p) / area;
                let w2 = edge(pa, pb, p) / area;
                if w0 < 0.0 || w1 < 0.0 || w2 < 0.0 {
                    continue;
                }
                let depth = w0 * a[2] + w1 * b[2] + w2 * c[2];
                let idx = y * self.width + x;
                if depth < self.depth[idx] {
                    self.depth[idx] = depth;
                    self.color[idx] = rgb;
                }
            }
        }
    }

    /// Depth-tested single-pixel write (used by polyline rasterization).
    pub(crate) fn plot_depth_tested(&mut self, x: usize, y: usize, depth: f32, rgb: [u8; 3]) {
        debug_assert!(x < self.width && y < self.height);
        let idx = y * self.width + x;
        if depth < self.depth[idx] {
            self.depth[idx] = depth;
            self.color[idx] = rgb;
        }
    }

    /// Convert to an image.
    pub fn into_image(self) -> Image {
        let mut img = Image::new(self.width, self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                img.set(x, y, self.color[y * self.width + x]);
            }
        }
        img
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::vec3;

    fn test_camera() -> Camera {
        Camera::framing(vec3(0.0, 0.0, 0.0), vec3(10.0, 10.0, 10.0))
    }

    fn one_triangle() -> TriangleMesh {
        let mut m = TriangleMesh::new();
        m.push_triangle(
            vec3(2.0, 2.0, 5.0),
            vec3(8.0, 2.0, 5.0),
            vec3(5.0, 8.0, 5.0),
        );
        m
    }

    #[test]
    fn empty_mesh_draws_nothing() {
        let mut fb = Framebuffer::new(64, 64, [0, 0, 0]);
        fb.draw_mesh(&TriangleMesh::new(), &test_camera(), [255, 255, 255]);
        assert_eq!(fb.coverage(), 0.0);
    }

    #[test]
    fn triangle_covers_pixels() {
        let mut fb = Framebuffer::new(64, 64, [0, 0, 0]);
        fb.draw_mesh(&one_triangle(), &test_camera(), [255, 0, 0]);
        assert!(fb.coverage() > 0.01, "coverage {}", fb.coverage());
        let img = fb.into_image();
        // Some pixel must be reddish.
        let mut found = false;
        for y in 0..64 {
            for x in 0..64 {
                let px = img.get(x, y);
                if px[0] > 40 && px[1] == 0 {
                    found = true;
                }
            }
        }
        assert!(found, "no shaded red pixels");
    }

    #[test]
    fn depth_test_prefers_near_geometry() {
        // Two overlapping triangles at different depths viewed top-down:
        // the higher-z one (nearer the top-down camera) must win.
        let cam = Camera::top_down(vec3(0.0, 0.0, 0.0), vec3(10.0, 10.0, 10.0));
        let mut near = TriangleMesh::new();
        near.push_triangle(
            vec3(1.0, 1.0, 8.0),
            vec3(9.0, 1.0, 8.0),
            vec3(5.0, 9.0, 8.0),
        );
        let mut far = TriangleMesh::new();
        far.push_triangle(
            vec3(1.0, 1.0, 2.0),
            vec3(9.0, 1.0, 2.0),
            vec3(5.0, 9.0, 2.0),
        );

        let mut fb = Framebuffer::new(32, 32, [0, 0, 0]);
        fb.draw_mesh(&far, &cam, [0, 0, 200]);
        fb.draw_mesh(&near, &cam, [0, 200, 0]);
        let img = fb.into_image();
        let center = img.get(16, 16);
        assert!(
            center[1] > center[2],
            "near (green) should occlude far (blue): {center:?}"
        );

        // Draw order must not matter.
        let mut fb2 = Framebuffer::new(32, 32, [0, 0, 0]);
        fb2.draw_mesh(&near, &cam, [0, 200, 0]);
        fb2.draw_mesh(&far, &cam, [0, 0, 200]);
        assert_eq!(img.get(16, 16), fb2.into_image().get(16, 16));
    }

    #[test]
    fn scalar_coloring_uses_colormap() {
        let cmap = Colormap::new(0.0, 1.0, crate::colormap::Palette::Greyscale);
        let mut fb = Framebuffer::new(64, 64, [0, 0, 0]);
        fb.draw_mesh_scalar(&one_triangle(), &[1.0], &test_camera(), &cmap);
        let img = fb.into_image();
        let mut max_px = 0u8;
        for y in 0..64 {
            for x in 0..64 {
                max_px = max_px.max(img.get(x, y)[0]);
            }
        }
        assert!(max_px > 100, "high scalar should be bright, max {max_px}");
    }

    #[test]
    #[should_panic(expected = "one scalar per triangle")]
    fn scalar_count_mismatch_panics() {
        let cmap = Colormap::new(0.0, 1.0, crate::colormap::Palette::Greyscale);
        let mut fb = Framebuffer::new(8, 8, [0, 0, 0]);
        fb.draw_mesh_scalar(&one_triangle(), &[], &test_camera(), &cmap);
    }
}

//! The calibrated virtual render-time model.
//!
//! Real work counts in, Blue Waters-scale seconds out. Rendering time on a
//! rank is modeled as
//!
//! ```text
//! t = base + n_blocks·per_block + cells·per_cell + triangles·per_triangle
//! ```
//!
//! multiplied by a seeded log-normal jitter that reproduces "the inherent
//! variability of the visualization task" the paper keeps pointing at
//! (§V-D, §V-F). The constants are calibrated (EXPERIMENTS.md) so that on
//! the default 1:5-scale dataset:
//!
//! * all blocks reduced → ≈1 s (paper: 1 s at both scales — a fixed
//!   pipeline overhead);
//! * nothing reduced, no redistribution → ≈160 s on 64 ranks and ≈50 s on
//!   400 ranks (paper Fig 5/6).
//!
//! Because the scaled domain has 25× fewer surface triangles than the
//! paper's full-size grid, the per-triangle constant absorbs that factor;
//! what the model preserves is the *structure*: cost proportional to real,
//! content-dependent triangle counts, so load imbalance, crossovers and
//! speedup ratios emerge from the data rather than from tuning.

use crate::isosurface::IsoStats;

/// Virtual rendering cost model (per rank, per iteration).
#[derive(Debug, Clone, Copy)]
pub struct RenderCostModel {
    /// Fixed per-iteration pipeline overhead (seconds).
    pub base: f64,
    /// Per-block dataset handling overhead.
    pub per_block: f64,
    /// Marching cost per visited cell.
    pub per_cell: f64,
    /// Triangle generation + rasterization cost per emitted triangle.
    pub per_triangle: f64,
    /// Log-normal jitter sigma (0 disables jitter).
    pub jitter_sigma: f64,
    /// Jitter stream seed.
    pub seed: u64,
}

impl Default for RenderCostModel {
    fn default() -> Self {
        // Calibrated against the 1:5-scale dataset (see the probe run in
        // EXPERIMENTS.md): NONE ≈ 125–170 s on 64 ranks, ≈ 42–52 s on 400
        // ranks, all-reduced ≈ 1–1.8 s.
        Self {
            base: 0.55,
            per_block: 5.0e-4,
            per_cell: 2.0e-7,
            per_triangle: 4.2e-3,
            jitter_sigma: 0.06,
            seed: 0x5EED_CA57,
        }
    }
}

#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RenderCostModel {
    /// A noiseless copy (unit tests, deterministic calibration runs).
    pub fn deterministic(mut self) -> Self {
        self.jitter_sigma = 0.0;
        self
    }

    /// Deterministic standard-normal draw for a jitter key (Box–Muller over
    /// two hash-derived uniforms).
    fn std_normal(&self, key: u64) -> f64 {
        let u1 = (mix64(key ^ self.seed) >> 11) as f64 / (1u64 << 53) as f64;
        let u2 = (mix64(key.wrapping_mul(0xA24B_AED4_963E_E407) ^ self.seed) >> 11) as f64
            / (1u64 << 53) as f64;
        let u1 = u1.max(1e-12);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Jitter key for a `(rank, iteration)` pair.
    pub fn key(rank: usize, iteration: usize) -> u64 {
        (rank as u64) << 32 ^ iteration as u64
    }

    /// Modeled rendering time for the given work on one rank.
    pub fn render_time(&self, stats: IsoStats, n_blocks: usize, jitter_key: u64) -> f64 {
        let raw = self.base
            + n_blocks as f64 * self.per_block
            + stats.cells as f64 * self.per_cell
            + stats.triangles as f64 * self.per_triangle;
        if self.jitter_sigma == 0.0 {
            raw
        } else {
            raw * (self.jitter_sigma * self.std_normal(jitter_key)).exp()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(cells: usize, triangles: usize) -> IsoStats {
        IsoStats { cells, triangles }
    }

    #[test]
    fn reduced_everything_is_about_a_second() {
        let m = RenderCostModel::default().deterministic();
        // 100 reduced blocks on a 64-rank layout: 100 cells, few triangles.
        let t = m.render_time(stats(100, 40), 100, 0);
        assert!((0.6..1.5).contains(&t), "all-reduced time {t}");
    }

    #[test]
    fn monotone_in_work() {
        let m = RenderCostModel::default().deterministic();
        let t0 = m.render_time(stats(1000, 0), 10, 0);
        let t1 = m.render_time(stats(1000, 5000), 10, 0);
        let t2 = m.render_time(stats(100_000, 5000), 10, 0);
        assert!(t0 < t1 && t1 < t2);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let m = RenderCostModel::default();
        let a = m.render_time(stats(10_000, 2_000), 10, RenderCostModel::key(3, 7));
        let b = m.render_time(stats(10_000, 2_000), 10, RenderCostModel::key(3, 7));
        assert_eq!(a, b);
        let c = m.render_time(stats(10_000, 2_000), 10, RenderCostModel::key(3, 8));
        assert_ne!(a, c, "different iterations must jitter differently");
        // With sigma 0.06, 5 sigma is ±35%; all draws stay within that.
        let det = m.deterministic().render_time(stats(10_000, 2_000), 10, 0);
        for it in 0..200 {
            let t = m.render_time(stats(10_000, 2_000), 10, RenderCostModel::key(0, it));
            assert!(
                (t / det - 1.0).abs() < 0.35,
                "jitter too wild: {t} vs {det}"
            );
        }
    }

    #[test]
    fn jitter_mean_is_near_one() {
        let m = RenderCostModel::default();
        let det = m.deterministic().render_time(stats(10_000, 2_000), 10, 0);
        let mean: f64 = (0..500)
            .map(|it| m.render_time(stats(10_000, 2_000), 10, RenderCostModel::key(1, it)))
            .sum::<f64>()
            / 500.0;
        assert!((mean / det - 1.0).abs() < 0.02, "mean ratio {}", mean / det);
    }

    #[test]
    fn triangles_dominate_at_storm_scale() {
        // A storm rank (tens of thousands of triangles) must cost far more
        // than an empty rank scanning the same cells.
        let m = RenderCostModel::default().deterministic();
        let empty = m.render_time(stats(225_000, 0), 100, 0);
        let storm = m.render_time(stats(225_000, 50_000), 100, 0);
        assert!(storm > 20.0 * empty, "storm {storm} vs empty {empty}");
    }
}

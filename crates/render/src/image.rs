//! RGB images and PPM/PGM output.

use std::io::Write;
use std::path::Path;

/// A simple owned RGB8 image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    width: usize,
    height: usize,
    /// Row-major RGB triplets.
    data: Vec<u8>,
}

impl Image {
    pub fn new(width: usize, height: usize) -> Self {
        Self {
            width,
            height,
            data: vec![0; width * height * 3],
        }
    }

    pub fn filled(width: usize, height: usize, rgb: [u8; 3]) -> Self {
        let mut data = Vec::with_capacity(width * height * 3);
        for _ in 0..width * height {
            data.extend_from_slice(&rgb);
        }
        Self {
            width,
            height,
            data,
        }
    }

    pub fn width(&self) -> usize {
        self.width
    }

    pub fn height(&self) -> usize {
        self.height
    }

    #[inline]
    pub fn set(&mut self, x: usize, y: usize, rgb: [u8; 3]) {
        debug_assert!(x < self.width && y < self.height);
        let o = (y * self.width + x) * 3;
        self.data[o..o + 3].copy_from_slice(&rgb);
    }

    #[inline]
    pub fn get(&self, x: usize, y: usize) -> [u8; 3] {
        let o = (y * self.width + x) * 3;
        [self.data[o], self.data[o + 1], self.data[o + 2]]
    }

    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Write binary PPM (P6).
    pub fn write_ppm(&self, path: &Path) -> std::io::Result<()> {
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(out, "P6\n{} {}\n255", self.width, self.height)?;
        out.write_all(&self.data)?;
        out.flush()
    }

    /// Write binary PGM (P5) using luminance.
    pub fn write_pgm(&self, path: &Path) -> std::io::Result<()> {
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(out, "P5\n{} {}\n255", self.width, self.height)?;
        let grey: Vec<u8> = self
            .data
            .chunks_exact(3)
            .map(|px| (0.299 * px[0] as f32 + 0.587 * px[1] as f32 + 0.114 * px[2] as f32) as u8)
            .collect();
        out.write_all(&grey)?;
        out.flush()
    }

    /// Mean absolute per-channel difference to another image (for tests and
    /// the visual-fidelity reporting in EXPERIMENTS.md).
    pub fn mean_abs_diff(&self, other: &Image) -> f64 {
        assert_eq!((self.width, self.height), (other.width, other.height));
        let sum: u64 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a as i32 - b as i32).unsigned_abs() as u64)
            .sum();
        sum as f64 / self.data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get() {
        let mut img = Image::new(4, 3);
        img.set(2, 1, [10, 20, 30]);
        assert_eq!(img.get(2, 1), [10, 20, 30]);
        assert_eq!(img.get(0, 0), [0, 0, 0]);
    }

    #[test]
    fn ppm_pgm_headers() {
        let dir = std::env::temp_dir().join("apc_render_image_test");
        std::fs::create_dir_all(&dir).unwrap();
        let img = Image::filled(5, 4, [255, 0, 0]);
        let ppm = dir.join("t.ppm");
        let pgm = dir.join("t.pgm");
        img.write_ppm(&ppm).unwrap();
        img.write_pgm(&pgm).unwrap();
        let ppm_bytes = std::fs::read(&ppm).unwrap();
        assert!(ppm_bytes.starts_with(b"P6\n5 4\n255\n"));
        assert_eq!(ppm_bytes.len(), 11 + 5 * 4 * 3);
        let pgm_bytes = std::fs::read(&pgm).unwrap();
        assert!(pgm_bytes.starts_with(b"P5\n5 4\n255\n"));
        assert_eq!(pgm_bytes.len(), 11 + 5 * 4);
        // Red luminance ≈ 76.
        assert_eq!(pgm_bytes[11], 76);
    }

    #[test]
    fn mean_abs_diff_zero_for_identical() {
        let a = Image::filled(3, 3, [7, 7, 7]);
        let b = a.clone();
        assert_eq!(a.mean_abs_diff(&b), 0.0);
        let c = Image::filled(3, 3, [8, 7, 7]);
        assert!((a.mean_abs_diff(&c) - 1.0 / 3.0).abs() < 1e-12);
    }
}

//! Cameras: view + projection + viewport transform.

use crate::math::{vec3, Mat4, Vec3};

/// A camera producing screen-space coordinates for the rasterizer.
#[derive(Debug, Clone, Copy)]
pub struct Camera {
    pub eye: Vec3,
    pub target: Vec3,
    pub up: Vec3,
    pub projection: Projection,
}

#[derive(Debug, Clone, Copy)]
pub enum Projection {
    /// Orthographic with the given half-height; aspect follows viewport.
    Orthographic { half_height: f32 },
    /// Perspective with vertical field of view (radians).
    Perspective { fov_y: f32 },
}

impl Camera {
    /// An orthographic camera looking at the center of a bounding box from
    /// an oblique above-southwest vantage — the framing of paper Fig 1a/1b.
    pub fn framing(lo: Vec3, hi: Vec3) -> Self {
        let center = (lo + hi) * 0.5;
        let diag = (hi - lo).length();
        let eye = center + vec3(-0.8, -1.0, 0.9) * diag;
        Self {
            eye,
            target: center,
            up: vec3(0.0, 0.0, 1.0),
            projection: Projection::Orthographic {
                half_height: diag * 0.55,
            },
        }
    }

    /// A top-down camera (for plan-view colormaps of 3D meshes).
    pub fn top_down(lo: Vec3, hi: Vec3) -> Self {
        let center = (lo + hi) * 0.5;
        let diag = (hi - lo).length();
        Self {
            eye: center + vec3(0.0, 0.0, diag),
            target: center,
            up: vec3(0.0, 1.0, 0.0),
            projection: Projection::Orthographic {
                half_height: (hi.y - lo.y) * 0.55,
            },
        }
    }

    /// Combined view-projection matrix for a viewport of the given aspect
    /// ratio (width / height).
    pub fn view_projection(&self, aspect: f32) -> Mat4 {
        let view = Mat4::look_at(self.eye, self.target, self.up);
        let near = 0.01;
        let far = (self.target - self.eye).length() * 4.0 + 10.0;
        let proj = match self.projection {
            Projection::Orthographic { half_height } => Mat4::orthographic(
                -half_height * aspect,
                half_height * aspect,
                -half_height,
                half_height,
                near,
                far,
            ),
            Projection::Perspective { fov_y } => Mat4::perspective(fov_y, aspect, near, far),
        };
        proj * view
    }

    /// Project a world point to `(x_pixel, y_pixel, depth)`; `None` if the
    /// point is behind the camera.
    pub fn project(&self, p: Vec3, width: usize, height: usize) -> Option<[f32; 3]> {
        let clip = self
            .view_projection(width as f32 / height as f32)
            .transform(p);
        if clip[3] <= 0.0 {
            return None;
        }
        let ndc = [clip[0] / clip[3], clip[1] / clip[3], clip[2] / clip[3]];
        Some([
            (ndc[0] + 1.0) * 0.5 * width as f32,
            (1.0 - ndc[1]) * 0.5 * height as f32,
            ndc[2],
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framing_sees_the_box_center() {
        let cam = Camera::framing(vec3(0.0, 0.0, 0.0), vec3(10.0, 10.0, 5.0));
        let p = cam.project(vec3(5.0, 5.0, 2.5), 200, 100).unwrap();
        assert!((p[0] - 100.0).abs() < 1.0, "center x: {}", p[0]);
        assert!((p[1] - 50.0).abs() < 1.0, "center y: {}", p[1]);
    }

    #[test]
    fn framing_keeps_corners_in_view() {
        let lo = vec3(0.0, 0.0, 0.0);
        let hi = vec3(10.0, 10.0, 5.0);
        let cam = Camera::framing(lo, hi);
        for corner in [lo, hi, vec3(10.0, 0.0, 0.0), vec3(0.0, 10.0, 5.0)] {
            let p = cam.project(corner, 400, 300).unwrap();
            assert!(
                p[0] >= 0.0 && p[0] <= 400.0 && p[1] >= 0.0 && p[1] <= 300.0,
                "corner {corner:?} off-screen at {p:?}"
            );
        }
    }

    #[test]
    fn top_down_maps_xy_axis_aligned() {
        let cam = Camera::top_down(vec3(0.0, 0.0, 0.0), vec3(10.0, 10.0, 2.0));
        let a = cam.project(vec3(2.0, 5.0, 1.0), 100, 100).unwrap();
        let b = cam.project(vec3(8.0, 5.0, 1.0), 100, 100).unwrap();
        assert!(b[0] > a[0], "x increases to the right");
        assert!((a[1] - b[1]).abs() < 1e-3, "same y row");
    }

    #[test]
    fn behind_camera_is_rejected() {
        let cam = Camera {
            eye: vec3(0.0, 0.0, 0.0),
            target: vec3(0.0, 0.0, -1.0),
            up: vec3(0.0, 1.0, 0.0),
            projection: Projection::Perspective { fov_y: 1.0 },
        };
        assert!(cam.project(vec3(0.0, 0.0, 5.0), 100, 100).is_none());
        assert!(cam.project(vec3(0.0, 0.0, -5.0), 100, 100).is_some());
    }
}

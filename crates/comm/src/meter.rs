//! Payload size accounting for the network cost model.

/// Types whose transfer size (in bytes) the virtual network can charge.
///
/// Implemented for the primitives and containers the pipeline actually
/// ships; downstream crates implement it for their own message structs.
pub trait Meter {
    /// Number of bytes this value occupies on the (virtual) wire.
    fn nbytes(&self) -> usize;
}

macro_rules! meter_primitive {
    ($($t:ty),*) => {
        $(impl Meter for $t {
            #[inline]
            fn nbytes(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        })*
    };
}

meter_primitive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char);

impl Meter for () {
    fn nbytes(&self) -> usize {
        0
    }
}

impl<T: Meter> Meter for Vec<T> {
    fn nbytes(&self) -> usize {
        self.iter().map(Meter::nbytes).sum()
    }
}

impl<T: Meter> Meter for Option<T> {
    fn nbytes(&self) -> usize {
        self.as_ref().map_or(0, Meter::nbytes)
    }
}

impl<T: Meter, const N: usize> Meter for [T; N] {
    fn nbytes(&self) -> usize {
        self.iter().map(Meter::nbytes).sum()
    }
}

impl<A: Meter, B: Meter> Meter for (A, B) {
    fn nbytes(&self) -> usize {
        self.0.nbytes() + self.1.nbytes()
    }
}

impl<A: Meter, B: Meter, C: Meter> Meter for (A, B, C) {
    fn nbytes(&self) -> usize {
        self.0.nbytes() + self.1.nbytes() + self.2.nbytes()
    }
}

impl Meter for String {
    fn nbytes(&self) -> usize {
        self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        assert_eq!(3.0f32.nbytes(), 4);
        assert_eq!(3.0f64.nbytes(), 8);
        assert_eq!(7u32.nbytes(), 4);
        assert_eq!(().nbytes(), 0);
    }

    #[test]
    fn containers() {
        assert_eq!(vec![1.0f32; 10].nbytes(), 40);
        assert_eq!(Some(5u64).nbytes(), 8);
        assert_eq!(None::<u64>.nbytes(), 0);
        assert_eq!([1.0f32; 8].nbytes(), 32);
        assert_eq!((1u32, 2.0f64).nbytes(), 12);
        assert_eq!(vec![vec![0u8; 3], vec![0u8; 5]].nbytes(), 8);
    }
}

//! The rank runtime: one OS thread per rank, shared rendezvous state.

use std::any::Any;
use std::collections::VecDeque;
use std::sync::{Arc, Barrier};
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::netmodel::NetModel;
use crate::p2p::{Envelope, Tag};

/// How long a blocking receive waits before declaring the program deadlocked.
/// Generous enough for oversubscribed CI machines, small enough that a buggy
/// pipeline fails a test instead of hanging it forever.
const RECV_TIMEOUT: Duration = Duration::from_secs(300);

/// A deposited collective contribution: `(virtual clock, payload)`.
pub(crate) type Contribution = (f64, Box<dyn Any + Send>);

pub(crate) struct Shared {
    pub nranks: usize,
    pub net: NetModel,
    pub barrier: Barrier,
    /// Rendezvous slots for collectives.
    pub slots: Mutex<Vec<Option<Contribution>>>,
}

/// Launch configuration: number of ranks and network model.
#[derive(Debug, Clone)]
pub struct Runtime {
    nranks: usize,
    net: NetModel,
    stack_size: usize,
}

impl Runtime {
    pub fn new(nranks: usize, net: NetModel) -> Self {
        assert!(nranks > 0, "need at least one rank");
        Self { nranks, net, stack_size: 4 << 20 }
    }

    /// Per-rank thread stack size (default 4 MiB).
    pub fn stack_size(mut self, bytes: usize) -> Self {
        self.stack_size = bytes;
        self
    }

    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Run `f` on every rank concurrently; returns the per-rank results in
    /// rank order. Panics in any rank propagate.
    pub fn run<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Rank) -> T + Sync,
    {
        let n = self.nranks;
        let shared = Arc::new(Shared {
            nranks: n,
            net: self.net,
            barrier: Barrier::new(n),
            slots: Mutex::new((0..n).map(|_| None).collect()),
        });

        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<Envelope>();
            txs.push(tx);
            rxs.push(rx);
        }

        let f = &f;
        let results: Vec<T> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = rxs
                .into_iter()
                .enumerate()
                .map(|(id, inbox)| {
                    let senders = txs.clone();
                    let shared = Arc::clone(&shared);
                    scope
                        .builder()
                        .name(format!("rank-{id}"))
                        .stack_size(self.stack_size)
                        .spawn(move |_| {
                            let mut rank = Rank {
                                id,
                                clock: 0.0,
                                shared,
                                senders,
                                inbox,
                                stash: VecDeque::new(),
                            };
                            f(&mut rank)
                        })
                        .expect("failed to spawn rank thread")
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    // Re-raise with the original payload so callers (and
                    // #[should_panic] tests) see the rank's own message.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        })
        .expect("rank scope failed");
        results
    }
}

/// Per-rank communicator handle, passed to the closure given to
/// [`Runtime::run`]. All point-to-point and collective operations live here
/// (collectives are in [`crate::collectives`], implemented on this type).
pub struct Rank {
    pub(crate) id: usize,
    pub(crate) clock: f64,
    pub(crate) shared: Arc<Shared>,
    pub(crate) senders: Vec<Sender<Envelope>>,
    pub(crate) inbox: Receiver<Envelope>,
    pub(crate) stash: VecDeque<Envelope>,
}

impl Rank {
    /// This rank's id in `0..nranks`.
    pub fn rank(&self) -> usize {
        self.id
    }

    pub fn nranks(&self) -> usize {
        self.shared.nranks
    }

    pub fn net(&self) -> NetModel {
        self.shared.net
    }

    /// Current virtual time (seconds since the run started).
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Charge `dt` seconds of local compute to the virtual clock.
    pub fn advance(&mut self, dt: f64) {
        debug_assert!(dt >= 0.0, "cannot advance clock backwards");
        self.clock += dt;
    }

    pub(crate) fn merge_clock(&mut self, t: f64) {
        if t > self.clock {
            self.clock = t;
        }
    }

    pub(crate) fn pop_matching(&mut self, src: usize, tag: Tag) -> Envelope {
        if let Some(pos) = self.stash.iter().position(|e| e.src == src && e.tag == tag) {
            return self.stash.remove(pos).unwrap();
        }
        loop {
            match self.inbox.recv_timeout(RECV_TIMEOUT) {
                Ok(env) => {
                    if env.src == src && env.tag == tag {
                        return env;
                    }
                    self.stash.push_back(env);
                }
                Err(_) => panic!(
                    "rank {} deadlocked waiting for message (src={src}, tag={tag:?}); \
                     {} stashed envelopes",
                    self.id,
                    self.stash.len()
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_returns_results_in_rank_order() {
        let out = Runtime::new(5, NetModel::free()).run(|rank| rank.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn clocks_start_at_zero_and_advance() {
        let clocks = Runtime::new(3, NetModel::free()).run(|rank| {
            assert_eq!(rank.clock(), 0.0);
            rank.advance(1.5);
            rank.advance(0.5);
            rank.clock()
        });
        assert_eq!(clocks, vec![2.0; 3]);
    }

    #[test]
    fn single_rank_works() {
        let out = Runtime::new(1, NetModel::blue_waters()).run(|rank| rank.nranks());
        assert_eq!(out, vec![1]);
    }

    #[test]
    #[should_panic(expected = "need at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Runtime::new(0, NetModel::free());
    }

    #[test]
    fn many_ranks_spawn() {
        // Sanity check that a 400-rank run (the paper's larger scale) is
        // feasible as plain threads.
        let out = Runtime::new(400, NetModel::free()).run(|rank| rank.rank());
        assert_eq!(out.len(), 400);
        assert_eq!(out[399], 399);
    }
}

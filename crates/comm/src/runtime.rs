//! The rank runtime: one OS thread per rank, shared rendezvous state.
//!
//! Two entry points share the same machinery:
//!
//! * [`Runtime::run`] — one-shot SPMD execution (spawn, run, join), the
//!   original API;
//! * [`Runtime::session`] — a persistent [`Session`] that spawns the rank
//!   threads **once** and executes a series of closures over them. This is
//!   the substrate of parameter sweeps: a fig07-style sweep at 400 ranks
//!   replays dozens of configurations, and re-spawning 400 threads per
//!   configuration is pure overhead the session removes.
//!
//! Runs inside one session are isolated from each other by an **epoch**:
//! every envelope and collective contribution is stamped with the epoch of
//! the run that produced it, and each run starts by resetting the rank's
//! virtual clock, clearing its stash, and discarding stale-epoch messages.
//! A closure that leaks unconsumed messages therefore cannot corrupt the
//! next run. `Runtime::run` is implemented as a single-run session, so the
//! two paths produce byte-identical results by construction.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::netmodel::NetModel;
use crate::p2p::{Envelope, Tag};

/// Default for how long a blocking receive — or a collective barrier
/// wait — lasts before declaring the program deadlocked. Generous enough
/// for oversubscribed CI machines, small enough that a buggy pipeline
/// fails a test instead of hanging it forever. Override with
/// `APC_RECV_TIMEOUT` (seconds, float) — the workspace-level
/// `.cargo/config.toml` sets 120 s for everything cargo runs here, so a
/// deadlock regression fails CI in two minutes; full-scale runs on
/// heavily oversubscribed machines can raise it per invocation
/// (`APC_RECV_TIMEOUT=300 APC_SCALE=full cargo run ...`).
const RECV_TIMEOUT_DEFAULT: Duration = Duration::from_secs(300);

/// Parse an `APC_RECV_TIMEOUT` value (seconds, float). Garbage is rejected
/// loudly: a typo that silently restored the 5-minute default would defeat
/// the point of setting the variable.
pub fn parse_recv_timeout(var: Option<&str>) -> Duration {
    match var {
        None => RECV_TIMEOUT_DEFAULT,
        Some(s) => {
            let secs: f64 = s.trim().parse().unwrap_or_else(|_| {
                // apc-lint: allow(unwrap-in-lib): documented contract — a garbage timeout value must fail loudly, not default
                panic!("APC_RECV_TIMEOUT must be a number of seconds, got {s:?}")
            });
            assert!(
                secs.is_finite() && secs > 0.0,
                "APC_RECV_TIMEOUT must be a positive number of seconds, got {s:?}"
            );
            Duration::from_secs_f64(secs)
        }
    }
}

/// The effective receive timeout (read from the environment once).
fn recv_timeout() -> Duration {
    static TIMEOUT: OnceLock<Duration> = OnceLock::new();
    *TIMEOUT.get_or_init(|| parse_recv_timeout(std::env::var("APC_RECV_TIMEOUT").ok().as_deref()))
}

/// A deposited collective contribution: `(epoch, virtual clock, payload)`.
/// The epoch pins the contribution to the session run that deposited it.
pub(crate) type Contribution = (u64, f64, Box<dyn Any + Send>);

/// A reusable (generation-counted) barrier whose wait gives up after the
/// configured receive timeout. `std::sync::Barrier` waits forever, which
/// turns "one rank panicked before its collective" into every *other*
/// rank blocking eternally — and with it the whole run. Here the stranded
/// ranks panic with a diagnostic instead, so the run fails loudly within
/// the timeout and the original panic still propagates.
pub(crate) struct TimeoutBarrier {
    n: usize,
    timeout: Duration,
    state: Mutex<(usize, u64)>, // (waiting count, generation)
    cvar: Condvar,
}

impl TimeoutBarrier {
    fn new(n: usize, timeout: Duration) -> Self {
        Self {
            n,
            timeout,
            state: Mutex::new((0, 0)),
            cvar: Condvar::new(),
        }
    }

    pub fn wait(&self) {
        // apc-lint: allow(unwrap-in-lib): barrier mutex poisoning means a rank already panicked; propagate the abort
        let mut state = self.state.lock().unwrap();
        let generation = state.1;
        state.0 += 1;
        if state.0 == self.n {
            state.0 = 0;
            state.1 += 1;
            self.cvar.notify_all();
            return;
        }
        // apc-lint: allow(wall-clock): deadlock-timeout machinery only — the real clock bounds how long we
        // wait for dead peers and never reaches virtual time or results
        let deadline = Instant::now() + self.timeout;
        while state.1 == generation {
            // apc-lint: allow(wall-clock): deadlock-timeout machinery (see above)
            let remaining = deadline.saturating_duration_since(Instant::now());
            // apc-lint: allow(unwrap-in-lib): condvar mutex poisoning means a rank already panicked; propagate the abort
            let (guard, result) = self.cvar.wait_timeout(state, remaining).unwrap();
            state = guard;
            if result.timed_out() && state.1 == generation {
                let arrived = state.0;
                // Release the lock before unwinding so fellow waiters see
                // their own timeout diagnostic, not a poisoned mutex.
                drop(state);
                // apc-lint: allow(unwrap-in-lib): a barrier deadlock is unrecoverable; the panic is the diagnostic
                panic!(
                    "deadlocked in a collective barrier after {:.1} s: only {arrived} \
                     of {} ranks arrived (a peer died or diverged)",
                    self.timeout.as_secs_f64(),
                    self.n
                );
            }
        }
    }
}

pub(crate) struct Shared {
    pub nranks: usize,
    pub net: NetModel,
    pub barrier: TimeoutBarrier,
    /// Rendezvous slots for collectives.
    pub slots: Mutex<Vec<Option<Contribution>>>,
    /// How long receives and barrier waits block before declaring
    /// deadlock (from `APC_RECV_TIMEOUT`, overridable per runtime).
    pub timeout: Duration,
}

/// Launch configuration: number of ranks and network model.
#[derive(Debug, Clone)]
pub struct Runtime {
    nranks: usize,
    net: NetModel,
    stack_size: usize,
    timeout: Option<Duration>,
}

impl Runtime {
    pub fn new(nranks: usize, net: NetModel) -> Self {
        assert!(nranks > 0, "need at least one rank");
        Self {
            nranks,
            net,
            stack_size: 4 << 20,
            timeout: None,
        }
    }

    /// Per-rank thread stack size (default 4 MiB).
    pub fn stack_size(mut self, bytes: usize) -> Self {
        self.stack_size = bytes;
        self
    }

    /// Override the deadlock timeout (receives and barrier waits) for
    /// runtimes built from this configuration; defaults to
    /// `APC_RECV_TIMEOUT` / 300 s.
    pub fn deadlock_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// How many *extra* worker threads each rank can afford for intra-rank
    /// data parallelism (kernel fan-out) without oversubscribing the host:
    /// the runtime already runs one OS thread per rank, so the budget is
    /// `max(1, cores / nranks)`. Experiment drivers feed this to
    /// `ExecPolicy::clamp_for_ranks` (in `apc-par`, which implements the
    /// same rule) before entering the pipeline.
    pub fn thread_budget(&self) -> usize {
        thread_budget(self.nranks)
    }

    /// Spawn the rank threads once and return a reusable [`Session`].
    /// Each [`Session::run`] executes one SPMD closure over the same
    /// threads; the network model and rank count are fixed for the
    /// session's lifetime.
    pub fn session(&self) -> Session {
        let n = self.nranks;
        let timeout = self.timeout.unwrap_or_else(recv_timeout);
        let shared = Arc::new(Shared {
            nranks: n,
            net: self.net,
            barrier: TimeoutBarrier::new(n, timeout),
            slots: Mutex::new((0..n).map(|_| None).collect()),
            timeout,
        });

        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel::<Envelope>();
            txs.push(tx);
            rxs.push(rx);
        }

        let mut job_txs = Vec::with_capacity(n);
        let mut status_rxs = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for (id, inbox) in rxs.into_iter().enumerate() {
            let (job_tx, job_rx) = channel::<RawJob>();
            let (status_tx, status_rx) = channel::<RunStatus>();
            let senders = txs.clone();
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("rank-{id}"))
                .stack_size(self.stack_size)
                .spawn(move || {
                    let mut rank = Rank {
                        id,
                        epoch: 0,
                        clock: 0.0,
                        shared,
                        senders,
                        inbox,
                        stash: VecDeque::new(),
                    };
                    // The job loop: run each dispatched closure, report its
                    // outcome, and stop on the first panic (the session is
                    // poisoned then — shared barrier/slot state may be out
                    // of step) or when the session is dropped.
                    while let Ok(job) = job_rx.recv() {
                        rank.begin_run(job.epoch);
                        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            // SAFETY: `Session::run` keeps the closure and
                            // result buffer alive until every rank has
                            // reported its status for this job.
                            unsafe { (job.call)(job.data.0, &mut rank) }
                        }));
                        let failed = result.is_err();
                        if status_tx.send(result).is_err() || failed {
                            break;
                        }
                    }
                })
                // apc-lint: allow(unwrap-in-lib): OS refusing to spawn a rank thread is unrecoverable at session start
                .expect("failed to spawn rank thread");
            job_txs.push(job_tx);
            status_rxs.push(status_rx);
            handles.push(handle);
        }
        // Workers hold the only envelope senders, so a rank that stops
        // (panic) makes sends to it fail loudly instead of queueing forever.
        drop(txs);
        Session {
            nranks: n,
            epoch: 0,
            poisoned: false,
            job_txs,
            status_rxs,
            handles,
        }
    }

    /// Run `f` on every rank concurrently; returns the per-rank results in
    /// rank order. Panics in any rank propagate.
    ///
    /// This is the one-shot wrapper over [`Runtime::session`]: it spawns a
    /// fresh session, executes `f` once, and tears the threads down. Use a
    /// session directly when running many closures over the same ranks.
    pub fn run<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Rank) -> T + Sync,
    {
        self.session().run(f)
    }
}

/// Type-erased SPMD job sent to a rank thread. `data` points at the
/// dispatching [`Session::run`] frame (closure + result buffer); `call`
/// reconstitutes the types. Erasure keeps the worker channels free of the
/// caller's lifetimes, which is what lets `Session::run` accept borrowing
/// closures exactly like scoped threads do.
struct RawJob {
    epoch: u64,
    data: SendPtr,
    call: unsafe fn(*const (), &mut Rank),
}

struct SendPtr(*const ());
// SAFETY: the pointee is a `RunCtx` on the dispatching thread's stack; the
// dispatcher blocks until every worker reports completion, so the pointer
// never dangles while a worker can still use it.
unsafe impl Send for SendPtr {}

type RunStatus = std::thread::Result<()>;

/// Per-run bridge between `Session::run` and the rank threads: the shared
/// closure and the raw result slots (one per rank, disjoint writes).
struct RunCtx<T, F> {
    f: *const F,
    results: *mut Option<T>,
}

unsafe fn call_spmd<T, F>(data: *const (), rank: &mut Rank)
where
    T: Send,
    F: Fn(&mut Rank) -> T + Sync,
{
    let ctx = &*(data as *const RunCtx<T, F>);
    let out = (&*ctx.f)(rank);
    // Disjoint per-rank slot; `None` in place, so plain assignment is fine.
    *ctx.results.add(rank.id) = Some(out);
}

/// A persistent group of rank threads created by [`Runtime::session`].
///
/// Each [`Session::run`] call executes one SPMD closure across all ranks
/// and blocks until every rank finishes, so consecutive runs are fully
/// serialized — combined with epoch-stamped envelopes and collective slots,
/// messages from different runs can never cross. Per run, every rank's
/// virtual clock restarts at zero and its stash is cleared, so a session
/// run is observationally identical to a fresh [`Runtime::run`].
///
/// A panic in any rank propagates out of [`Session::run`] with the original
/// payload and **poisons** the session (the shared barrier may be out of
/// step); later runs panic immediately. Dropping the session joins the
/// threads.
///
/// ```
/// use apc_comm::{NetModel, Runtime};
///
/// let mut session = Runtime::new(4, NetModel::free()).session();
/// let a = session.run(|rank| rank.allreduce(1u64, |x, y| x + y));
/// let b = session.run(|rank| rank.rank() * 2); // same threads, fresh clocks
/// assert_eq!(a, vec![4; 4]);
/// assert_eq!(b, vec![0, 2, 4, 6]);
/// ```
pub struct Session {
    nranks: usize,
    epoch: u64,
    poisoned: bool,
    job_txs: Vec<Sender<RawJob>>,
    status_rxs: Vec<Receiver<RunStatus>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Session {
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// How many runs this session has executed (diagnostics).
    pub fn runs_completed(&self) -> u64 {
        self.epoch
    }

    /// Whether an earlier run panicked, making the session unusable.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Run `f` on every rank concurrently; returns the per-rank results in
    /// rank order. Blocks until all ranks finish. Panics in any rank
    /// propagate (lowest rank's payload first, matching the one-shot
    /// join order) and poison the session.
    pub fn run<T, F>(&mut self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Rank) -> T + Sync,
    {
        assert!(
            !self.poisoned,
            "session poisoned by a panic in an earlier run"
        );
        self.epoch += 1;
        let n = self.nranks;
        let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let ctx = RunCtx::<T, F> {
            f: &f,
            results: results.as_mut_ptr(),
        };
        let data = &ctx as *const RunCtx<T, F> as *const ();

        let mut dispatch_failed = false;
        let mut dispatched = 0;
        for tx in &self.job_txs {
            let job = RawJob {
                epoch: self.epoch,
                data: SendPtr(data),
                call: call_spmd::<T, F>,
            };
            if tx.send(job).is_err() {
                // Worker thread gone without poisoning us first — should be
                // unreachable; fail loudly after draining the ranks that did
                // get the job (they must not outlive `ctx`).
                dispatch_failed = true;
                break;
            }
            dispatched += 1;
        }

        // Wait for every dispatched rank before touching the results (or
        // unwinding!) — the workers borrow `f` and `results` until then.
        let mut first_panic: Option<Box<dyn Any + Send>> = None;
        for rx in &self.status_rxs[..dispatched] {
            match rx.recv() {
                Ok(Ok(())) => {}
                Ok(Err(payload)) => {
                    self.poisoned = true;
                    first_panic.get_or_insert(payload);
                }
                Err(_) => {
                    self.poisoned = true;
                    dispatch_failed = true;
                }
            }
        }
        if let Some(payload) = first_panic {
            // Re-raise with the original payload so callers (and
            // #[should_panic] tests) see the rank's own message.
            std::panic::resume_unwind(payload);
        }
        if dispatch_failed {
            self.poisoned = true;
            // apc-lint: allow(unwrap-in-lib): a dead rank thread poisons the session; failing the run loudly is the contract
            panic!("a rank thread died outside a run; session unusable");
        }
        results
            .into_iter()
            // apc-lint: allow(unwrap-in-lib): the panic/dispatch checks above returned early on any failure
            .map(|r| r.expect("every rank reported success, so every slot is filled"))
            .collect()
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // Closing the job channels ends the worker loops; then join.
        self.job_txs.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Per-rank intra-rank worker-thread budget for `nranks` concurrently
/// running rank threads: `max(1, cores / nranks)`. Delegates to
/// [`apc_par::thread_budget`] so the oversubscription rule has exactly one
/// implementation (the same one `ExecPolicy::clamp_for_ranks` applies).
pub fn thread_budget(nranks: usize) -> usize {
    apc_par::thread_budget(nranks)
}

/// Per-rank communicator handle, passed to the closure given to
/// [`Runtime::run`] / [`Session::run`]. All point-to-point and collective
/// operations live here (collectives are in [`crate::collectives`],
/// implemented on this type).
pub struct Rank {
    pub(crate) id: usize,
    /// The session run this rank is currently executing; stamps every
    /// envelope and collective contribution so runs cannot interfere.
    pub(crate) epoch: u64,
    pub(crate) clock: f64,
    pub(crate) shared: Arc<Shared>,
    pub(crate) senders: Vec<Sender<Envelope>>,
    pub(crate) inbox: Receiver<Envelope>,
    pub(crate) stash: VecDeque<Envelope>,
}

impl Rank {
    /// Reset per-run state at the start of a session run: fresh virtual
    /// clock, empty stash, and any *stale-epoch* envelopes still sitting in
    /// the inbox are discarded. Current-epoch envelopes are kept — a peer
    /// that started this run earlier may already have sent to us.
    fn begin_run(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.clock = 0.0;
        self.stash.clear();
        while let Ok(env) = self.inbox.try_recv() {
            if env.epoch == epoch {
                self.stash.push_back(env);
            }
            // Older epochs: leftovers from a run that did not consume all
            // of its messages — exactly the cross-run leak the epoch tag
            // exists to stop. Dropped.
        }
    }

    /// This rank's id in `0..nranks`.
    pub fn rank(&self) -> usize {
        self.id
    }

    pub fn nranks(&self) -> usize {
        self.shared.nranks
    }

    /// This rank's intra-rank worker-thread budget (see
    /// [`Runtime::thread_budget`]).
    pub fn thread_budget(&self) -> usize {
        thread_budget(self.shared.nranks)
    }

    pub fn net(&self) -> NetModel {
        self.shared.net
    }

    /// Current virtual time (seconds since the run started).
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Charge `dt` seconds of local compute to the virtual clock.
    pub fn advance(&mut self, dt: f64) {
        debug_assert!(dt >= 0.0, "cannot advance clock backwards");
        self.clock += dt;
    }

    pub(crate) fn merge_clock(&mut self, t: f64) {
        if t > self.clock {
            self.clock = t;
        }
    }

    /// Advance the clock to at least `t` (no-op if the clock is already
    /// past it). This is the "wait until" primitive for consumers that
    /// account arrival times themselves — the staging engine settles a
    /// lossy queue's deferred arrivals with it when a frame enters
    /// service.
    pub fn merge_clock_to(&mut self, t: f64) {
        self.merge_clock(t);
    }

    pub(crate) fn pop_matching(&mut self, src: usize, tag: Tag) -> Envelope {
        if let Some(pos) = self
            .stash
            .iter()
            .position(|e| e.src == src && e.tag == tag && e.epoch == self.epoch)
        {
            // apc-lint: allow(unwrap-in-lib): `pos` came from `position` on this same stash two lines up
            return self.stash.remove(pos).unwrap();
        }
        loop {
            match self.inbox.recv_timeout(self.shared.timeout) {
                Ok(env) => {
                    // Runs are serialized by the session, so an envelope
                    // from a *future* epoch is impossible; one from a past
                    // epoch is a leak from a sloppy closure — drop it.
                    debug_assert!(env.epoch <= self.epoch, "message from a future run");
                    if env.epoch != self.epoch {
                        continue;
                    }
                    if env.src == src && env.tag == tag {
                        return env;
                    }
                    self.stash.push_back(env);
                }
                // apc-lint: allow(unwrap-in-lib): a recv deadlock is unrecoverable; the panic is the diagnostic
                Err(_) => panic!(
                    "rank {} deadlocked waiting for message (src={src}, tag={tag:?}); \
                     {} stashed envelopes",
                    self.id,
                    self.stash.len()
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_returns_results_in_rank_order() {
        let out = Runtime::new(5, NetModel::free()).run(|rank| rank.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn clocks_start_at_zero_and_advance() {
        let clocks = Runtime::new(3, NetModel::free()).run(|rank| {
            assert_eq!(rank.clock(), 0.0);
            rank.advance(1.5);
            rank.advance(0.5);
            rank.clock()
        });
        assert_eq!(clocks, vec![2.0; 3]);
    }

    #[test]
    fn single_rank_works() {
        let out = Runtime::new(1, NetModel::blue_waters()).run(|rank| rank.nranks());
        assert_eq!(out, vec![1]);
    }

    #[test]
    #[should_panic(expected = "need at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Runtime::new(0, NetModel::free());
    }

    #[test]
    fn thread_budget_never_oversubscribes() {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        for n in [1, 2, 64, 400] {
            let rt = Runtime::new(n, NetModel::free());
            let budget = rt.thread_budget();
            assert!(budget >= 1, "budget is at least one thread");
            assert!(
                n * budget <= cores.max(n),
                "{n} ranks × {budget} threads > {cores} cores"
            );
        }
        let budgets = Runtime::new(3, NetModel::free()).run(|rank| rank.thread_budget());
        assert_eq!(budgets, vec![thread_budget(3); 3]);
    }

    #[test]
    fn many_ranks_spawn() {
        // Sanity check that a 400-rank run (the paper's larger scale) is
        // feasible as plain threads.
        let out = Runtime::new(400, NetModel::free()).run(|rank| rank.rank());
        assert_eq!(out.len(), 400);
        assert_eq!(out[399], 399);
    }

    #[test]
    fn session_reuses_threads_across_runs() {
        let mut session = Runtime::new(4, NetModel::free()).session();
        let names_a = session.run(|_| std::thread::current().name().map(str::to_owned));
        let sums = session.run(|rank| rank.allreduce(rank.rank() as u64, |a, b| a + b));
        let names_b = session.run(|_| std::thread::current().name().map(str::to_owned));
        assert_eq!(sums, vec![6; 4]);
        assert_eq!(names_a, names_b, "the same OS threads serve every run");
        assert_eq!(names_a[2].as_deref(), Some("rank-2"));
        assert_eq!(session.runs_completed(), 3);
    }

    #[test]
    fn session_resets_clocks_per_run() {
        let mut session = Runtime::new(3, NetModel::free()).session();
        let first = session.run(|rank| {
            rank.advance(5.0);
            rank.clock()
        });
        let second = session.run(|rank| rank.clock());
        assert_eq!(first, vec![5.0; 3]);
        assert_eq!(
            second,
            vec![0.0; 3],
            "each run starts from a fresh virtual clock"
        );
    }

    #[test]
    fn stale_messages_cannot_cross_runs() {
        // Run 1 leaks a message (rank 2 sends to rank 0, never received).
        // Run 2 sends a different value on the same (src, tag): the epoch
        // tag must make rank 0 see run 2's message, not run 1's leftover.
        let mut session = Runtime::new(3, NetModel::free()).session();
        session.run(|rank| {
            if rank.rank() == 2 {
                rank.send(0, Tag(9), 111u32);
            }
        });
        let out = session.run(|rank| {
            if rank.rank() == 2 {
                rank.send(0, Tag(9), 222u32);
            }
            if rank.rank() == 0 {
                rank.recv::<u32>(2, Tag(9))
            } else {
                0
            }
        });
        assert_eq!(out[0], 222, "run 2 must not see run 1's leaked message");
    }

    #[test]
    fn session_panic_propagates_and_poisons() {
        let mut session = Runtime::new(2, NetModel::free()).session();
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            session.run(|rank| {
                if rank.rank() == 1 {
                    panic!("rank 1 exploded");
                }
            })
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "rank 1 exploded", "original payload preserved");
        assert!(session.is_poisoned());
        let next = std::panic::catch_unwind(AssertUnwindSafe(|| session.run(|_| ())));
        assert!(next.is_err(), "poisoned session refuses further runs");
    }

    #[test]
    fn panic_next_to_a_collective_fails_the_run_instead_of_hanging() {
        // Rank 2 panics before its allreduce contribution; ranks 0 and 1
        // are stranded in the collective barrier. With std's Barrier they
        // would block forever and the run would hang; the timeout barrier
        // fails them loudly and the run terminates with a panic within
        // the deadlock timeout.
        let t0 = Instant::now();
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            Runtime::new(3, NetModel::free())
                .deadlock_timeout(Duration::from_millis(300))
                .run(|rank| {
                    if rank.rank() == 2 {
                        panic!("scorer blew up");
                    }
                    rank.allreduce(1u64, |a, b| a + b)
                });
        }));
        assert!(caught.is_err(), "the run must fail, not hang");
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "the failure must arrive within the deadlock timeout, not hang CI"
        );
    }

    #[test]
    fn barrier_timeout_panic_is_diagnostic() {
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            Runtime::new(2, NetModel::free())
                .deadlock_timeout(Duration::from_millis(200))
                .run(|rank| {
                    if rank.rank() == 0 {
                        rank.barrier(); // rank 1 never joins
                    }
                });
        }));
        let payload = caught.expect_err("stranded barrier must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("deadlocked in a collective barrier"),
            "diagnostic panic expected, got: {msg}"
        );
    }

    #[test]
    fn session_matches_one_shot_run() {
        let runtime = Runtime::new(4, NetModel::blue_waters());
        let job = |rank: &mut Rank| {
            rank.advance(0.25 * (rank.rank() as f64 + 1.0));
            let sum = rank.allreduce(rank.rank() as u64, |a, b| a + b);
            rank.barrier();
            (sum, rank.clock())
        };
        let one_shot = runtime.run(job);
        let mut session = runtime.session();
        for _ in 0..3 {
            assert_eq!(
                session.run(job),
                one_shot,
                "session runs mirror one-shot runs"
            );
        }
    }

    #[test]
    fn recv_timeout_parsing() {
        assert_eq!(parse_recv_timeout(None), RECV_TIMEOUT_DEFAULT);
        assert_eq!(
            parse_recv_timeout(Some("2.5")),
            Duration::from_secs_f64(2.5)
        );
        assert_eq!(parse_recv_timeout(Some(" 30 ")), Duration::from_secs(30));
    }

    #[test]
    #[should_panic(expected = "APC_RECV_TIMEOUT must be a number")]
    fn recv_timeout_rejects_garbage() {
        let _ = parse_recv_timeout(Some("five minutes"));
    }

    #[test]
    #[should_panic(expected = "positive number")]
    fn recv_timeout_rejects_nonpositive() {
        let _ = parse_recv_timeout(Some("0"));
    }
}

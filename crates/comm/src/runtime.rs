//! The rank runtime: one OS thread per rank, shared rendezvous state.

use std::any::Any;
use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

use crate::netmodel::NetModel;
use crate::p2p::{Envelope, Tag};

/// How long a blocking receive waits before declaring the program deadlocked.
/// Generous enough for oversubscribed CI machines, small enough that a buggy
/// pipeline fails a test instead of hanging it forever.
const RECV_TIMEOUT: Duration = Duration::from_secs(300);

/// A deposited collective contribution: `(virtual clock, payload)`.
pub(crate) type Contribution = (f64, Box<dyn Any + Send>);

pub(crate) struct Shared {
    pub nranks: usize,
    pub net: NetModel,
    pub barrier: Barrier,
    /// Rendezvous slots for collectives.
    pub slots: Mutex<Vec<Option<Contribution>>>,
}

/// Launch configuration: number of ranks and network model.
#[derive(Debug, Clone)]
pub struct Runtime {
    nranks: usize,
    net: NetModel,
    stack_size: usize,
}

impl Runtime {
    pub fn new(nranks: usize, net: NetModel) -> Self {
        assert!(nranks > 0, "need at least one rank");
        Self { nranks, net, stack_size: 4 << 20 }
    }

    /// Per-rank thread stack size (default 4 MiB).
    pub fn stack_size(mut self, bytes: usize) -> Self {
        self.stack_size = bytes;
        self
    }

    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// How many *extra* worker threads each rank can afford for intra-rank
    /// data parallelism (kernel fan-out) without oversubscribing the host:
    /// the runtime already runs one OS thread per rank, so the budget is
    /// `max(1, cores / nranks)`. Experiment drivers feed this to
    /// `ExecPolicy::clamp_for_ranks` (in `apc-par`, which implements the
    /// same rule) before entering the pipeline.
    pub fn thread_budget(&self) -> usize {
        thread_budget(self.nranks)
    }

    /// Run `f` on every rank concurrently; returns the per-rank results in
    /// rank order. Panics in any rank propagate.
    pub fn run<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Rank) -> T + Sync,
    {
        let n = self.nranks;
        let shared = Arc::new(Shared {
            nranks: n,
            net: self.net,
            barrier: Barrier::new(n),
            slots: Mutex::new((0..n).map(|_| None).collect()),
        });

        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel::<Envelope>();
            txs.push(tx);
            rxs.push(rx);
        }

        let f = &f;
        let results: Vec<T> = std::thread::scope(|scope| {
            let handles: Vec<_> = rxs
                .into_iter()
                .enumerate()
                .map(|(id, inbox)| {
                    let senders = txs.clone();
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name(format!("rank-{id}"))
                        .stack_size(self.stack_size)
                        .spawn_scoped(scope, move || {
                            let mut rank = Rank {
                                id,
                                clock: 0.0,
                                shared,
                                senders,
                                inbox,
                                stash: VecDeque::new(),
                            };
                            f(&mut rank)
                        })
                        .expect("failed to spawn rank thread")
                })
                .collect();
            // Rank threads own the only senders now, so a hung-up peer is
            // detected instead of masked by our copies.
            drop(txs);
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    // Re-raise with the original payload so callers (and
                    // #[should_panic] tests) see the rank's own message.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        results
    }
}

/// Per-rank intra-rank worker-thread budget for `nranks` concurrently
/// running rank threads: `max(1, cores / nranks)`. Delegates to
/// [`apc_par::thread_budget`] so the oversubscription rule has exactly one
/// implementation (the same one `ExecPolicy::clamp_for_ranks` applies).
pub fn thread_budget(nranks: usize) -> usize {
    apc_par::thread_budget(nranks)
}

/// Per-rank communicator handle, passed to the closure given to
/// [`Runtime::run`]. All point-to-point and collective operations live here
/// (collectives are in [`crate::collectives`], implemented on this type).
pub struct Rank {
    pub(crate) id: usize,
    pub(crate) clock: f64,
    pub(crate) shared: Arc<Shared>,
    pub(crate) senders: Vec<Sender<Envelope>>,
    pub(crate) inbox: Receiver<Envelope>,
    pub(crate) stash: VecDeque<Envelope>,
}

impl Rank {
    /// This rank's id in `0..nranks`.
    pub fn rank(&self) -> usize {
        self.id
    }

    pub fn nranks(&self) -> usize {
        self.shared.nranks
    }

    /// This rank's intra-rank worker-thread budget (see
    /// [`Runtime::thread_budget`]).
    pub fn thread_budget(&self) -> usize {
        thread_budget(self.shared.nranks)
    }

    pub fn net(&self) -> NetModel {
        self.shared.net
    }

    /// Current virtual time (seconds since the run started).
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Charge `dt` seconds of local compute to the virtual clock.
    pub fn advance(&mut self, dt: f64) {
        debug_assert!(dt >= 0.0, "cannot advance clock backwards");
        self.clock += dt;
    }

    pub(crate) fn merge_clock(&mut self, t: f64) {
        if t > self.clock {
            self.clock = t;
        }
    }

    pub(crate) fn pop_matching(&mut self, src: usize, tag: Tag) -> Envelope {
        if let Some(pos) = self.stash.iter().position(|e| e.src == src && e.tag == tag) {
            return self.stash.remove(pos).unwrap();
        }
        loop {
            match self.inbox.recv_timeout(RECV_TIMEOUT) {
                Ok(env) => {
                    if env.src == src && env.tag == tag {
                        return env;
                    }
                    self.stash.push_back(env);
                }
                Err(_) => panic!(
                    "rank {} deadlocked waiting for message (src={src}, tag={tag:?}); \
                     {} stashed envelopes",
                    self.id,
                    self.stash.len()
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_returns_results_in_rank_order() {
        let out = Runtime::new(5, NetModel::free()).run(|rank| rank.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn clocks_start_at_zero_and_advance() {
        let clocks = Runtime::new(3, NetModel::free()).run(|rank| {
            assert_eq!(rank.clock(), 0.0);
            rank.advance(1.5);
            rank.advance(0.5);
            rank.clock()
        });
        assert_eq!(clocks, vec![2.0; 3]);
    }

    #[test]
    fn single_rank_works() {
        let out = Runtime::new(1, NetModel::blue_waters()).run(|rank| rank.nranks());
        assert_eq!(out, vec![1]);
    }

    #[test]
    #[should_panic(expected = "need at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Runtime::new(0, NetModel::free());
    }

    #[test]
    fn thread_budget_never_oversubscribes() {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        for n in [1, 2, 64, 400] {
            let rt = Runtime::new(n, NetModel::free());
            let budget = rt.thread_budget();
            assert!(budget >= 1, "budget is at least one thread");
            assert!(n * budget <= cores.max(n), "{n} ranks × {budget} threads > {cores} cores");
        }
        let budgets = Runtime::new(3, NetModel::free()).run(|rank| rank.thread_budget());
        assert_eq!(budgets, vec![thread_budget(3); 3]);
    }

    #[test]
    fn many_ranks_spawn() {
        // Sanity check that a 400-rank run (the paper's larger scale) is
        // feasible as plain threads.
        let out = Runtime::new(400, NetModel::free()).run(|rank| rank.rank());
        assert_eq!(out.len(), 400);
        assert_eq!(out[399], 399);
    }
}

//! Point-to-point messaging: tagged, typed, with non-blocking variants.
//!
//! Semantics mirror MPI: messages between a (sender, receiver) pair with the
//! same tag are non-overtaking; receives are selective on `(source, tag)`.
//! Sends are buffered (the virtual network has unbounded eager buffers), so
//! `send` never blocks — matching the paper's use of non-blocking
//! sends/receives for block redistribution (§IV-D).

use std::any::Any;
use std::marker::PhantomData;

use crate::meter::Meter;
use crate::runtime::Rank;

/// Message tag. The pipeline uses small user tags; the runtime reserves the
/// upper half of the space for internal collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag(pub u32);

impl Tag {
    /// Internal tag used by [`crate::collectives::Rank::alltoallv`].
    pub(crate) const ALLTOALLV: Tag = Tag(u32::MAX);
    /// Internal tag used by [`crate::sort::sample_sort`].
    pub(crate) const SAMPLE_SORT: Tag = Tag(u32::MAX - 1);
    /// Base of the internal tag pairs used by [`crate::bounded`] stage
    /// queues; channel `c` occupies `STAGE_BASE - 2c` (data) and
    /// `STAGE_BASE - 2c - 1` (credits).
    pub(crate) const STAGE_BASE: u32 = u32::MAX - 2;
    /// Base of the internal tag pairs used by [`crate::bounded`]
    /// request/reply endpoints, directly below the stage-queue range;
    /// channel `c` occupies `SERVE_BASE - 2c` (requests) and
    /// `SERVE_BASE - 2c - 1` (replies).
    pub(crate) const SERVE_BASE: u32 = Tag::STAGE_BASE - 2 * (1 << 16);
}

pub(crate) struct Envelope {
    pub src: usize,
    pub tag: Tag,
    /// Session run (epoch) that produced the message; receives only match
    /// envelopes from their own run, so session runs cannot interfere.
    pub epoch: u64,
    /// Sender's virtual clock when the message left.
    pub ts: f64,
    pub bytes: usize,
    pub payload: Box<dyn Any + Send>,
}

/// Handle for a posted non-blocking receive. Completing it requires the rank
/// handle again (the runtime is single-threaded per rank, like MPI).
#[must_use = "a posted receive must be waited on"]
pub struct Request<M> {
    src: usize,
    tag: Tag,
    _m: PhantomData<fn() -> M>,
}

impl<M: Send + 'static> Request<M> {
    /// Block until the matching message arrives and return its payload.
    pub fn wait(self, rank: &mut Rank) -> M {
        rank.recv(self.src, self.tag)
    }
}

impl Rank {
    /// Send `msg` to `dst` with `tag`. Never blocks (eager buffering).
    /// Charges the sender the per-message software overhead.
    pub fn send<M: Meter + Send + 'static>(&mut self, dst: usize, tag: Tag, msg: M) {
        assert!(dst < self.nranks(), "invalid destination rank {dst}");
        let bytes = msg.nbytes();
        self.clock += self.net().send_overhead;
        let env = Envelope {
            src: self.id,
            tag,
            epoch: self.epoch,
            ts: self.clock,
            bytes,
            payload: Box::new(msg),
        };
        self.senders[dst]
            .send(env)
            // apc-lint: allow(unwrap-in-lib): a dropped receiver means the destination rank panicked; propagate the abort
            .expect("destination rank hung up");
    }

    /// Non-blocking send. With eager buffering this is identical to
    /// [`Rank::send`]; provided so pipeline code reads like the paper.
    pub fn isend<M: Meter + Send + 'static>(&mut self, dst: usize, tag: Tag, msg: M) {
        self.send(dst, tag, msg);
    }

    /// Blocking receive of a message from `src` with `tag`. Merges the
    /// sender's clock plus the modeled transfer time into this rank's clock.
    pub fn recv<M: Send + 'static>(&mut self, src: usize, tag: Tag) -> M {
        let (msg, arrival, bytes) = self.recv_with_arrival(src, tag);
        self.merge_clock(arrival);
        // Receiver-side software cost (deserialization/ingest). Additive,
        // so a rank receiving many messages pays for each of them.
        let ingest = self.net().ingest(bytes);
        self.advance(ingest);
        msg
    }

    /// Blocking receive that does **not** touch the consumer's clock:
    /// returns the payload together with its virtual arrival time
    /// (sender timestamp plus modeled wire time) and its metered size.
    /// Callers that defer clock accounting — the lossy stage queues in
    /// [`crate::bounded`] pull messages ahead of the consumer clock and settle
    /// when a frame is actually consumed — charge the merge and the ingest
    /// cost themselves.
    pub(crate) fn recv_with_arrival<M: Send + 'static>(
        &mut self,
        src: usize,
        tag: Tag,
    ) -> (M, f64, usize) {
        assert!(src < self.nranks(), "invalid source rank {src}");
        let env = self.pop_matching(src, tag);
        let arrival = env.ts + self.net().p2p(env.bytes);
        let bytes = env.bytes;
        let msg = *env.payload.downcast::<M>().unwrap_or_else(|_| {
            // apc-lint: allow(unwrap-in-lib): a tag/type mismatch is a protocol bug in rank code, not recoverable input
            panic!(
                "rank {} received type mismatch from rank {src} tag {tag:?} \
                 (expected {})",
                self.id,
                std::any::type_name::<M>()
            )
        });
        (msg, arrival, bytes)
    }

    /// Post a non-blocking receive for `(src, tag)`.
    pub fn irecv<M: Send + 'static>(&mut self, src: usize, tag: Tag) -> Request<M> {
        Request {
            src,
            tag,
            _m: PhantomData,
        }
    }

    /// Complete a set of posted receives, in any arrival order.
    pub fn wait_all<M: Send + 'static>(&mut self, reqs: Vec<Request<M>>) -> Vec<M> {
        reqs.into_iter().map(|r| r.wait(self)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netmodel::NetModel;
    use crate::runtime::Runtime;

    #[test]
    fn ping_pong() {
        let out = Runtime::new(2, NetModel::blue_waters()).run(|rank| {
            if rank.rank() == 0 {
                rank.send(1, Tag(1), vec![1.0f32, 2.0, 3.0]);
                rank.recv::<Vec<f32>>(1, Tag(2))
            } else {
                let v = rank.recv::<Vec<f32>>(0, Tag(1));
                let doubled: Vec<f32> = v.iter().map(|x| x * 2.0).collect();
                rank.send(0, Tag(2), doubled.clone());
                doubled
            }
        });
        assert_eq!(out[0], vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn selective_receive_by_tag() {
        let out = Runtime::new(2, NetModel::free()).run(|rank| {
            if rank.rank() == 0 {
                rank.send(1, Tag(10), 111u32);
                rank.send(1, Tag(20), 222u32);
                0
            } else {
                // Receive in the opposite order of sending.
                let b = rank.recv::<u32>(0, Tag(20));
                let a = rank.recv::<u32>(0, Tag(10));
                assert_eq!((a, b), (111, 222));
                1
            }
        });
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn same_tag_messages_are_non_overtaking() {
        let out = Runtime::new(2, NetModel::free()).run(|rank| {
            if rank.rank() == 0 {
                for i in 0..10u32 {
                    rank.send(1, Tag(5), i);
                }
                vec![]
            } else {
                (0..10)
                    .map(|_| rank.recv::<u32>(0, Tag(5)))
                    .collect::<Vec<u32>>()
            }
        });
        assert_eq!(out[1], (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn recv_advances_clock_by_latency_and_bandwidth() {
        let net = NetModel {
            latency: 1e-3,
            bandwidth: 1e6,
            ..NetModel::free()
        };
        let clocks = Runtime::new(2, net).run(|rank| {
            if rank.rank() == 0 {
                // 4000-byte message: 1 ms latency + 4 ms transfer.
                rank.send(1, Tag(0), vec![0.0f32; 1000]);
            } else {
                let _ = rank.recv::<Vec<f32>>(0, Tag(0));
            }
            rank.clock()
        });
        assert!((clocks[1] - 0.005).abs() < 1e-9, "clock = {}", clocks[1]);
    }

    #[test]
    fn receiver_later_than_sender_keeps_its_clock() {
        let net = NetModel {
            latency: 1e-3,
            ..NetModel::free()
        };
        let clocks = Runtime::new(2, net).run(|rank| {
            if rank.rank() == 0 {
                rank.send(1, Tag(0), 1u8);
            } else {
                rank.advance(10.0); // receiver is already far in the future
                let _ = rank.recv::<u8>(0, Tag(0));
            }
            rank.clock()
        });
        assert_eq!(clocks[1], 10.0);
    }

    #[test]
    fn irecv_wait_all() {
        let out = Runtime::new(4, NetModel::free()).run(|rank| {
            if rank.rank() == 0 {
                let reqs: Vec<Request<u64>> =
                    (1..4).map(|src| rank.irecv::<u64>(src, Tag(7))).collect();
                rank.wait_all(reqs).iter().sum::<u64>()
            } else {
                rank.send(0, Tag(7), rank.rank() as u64);
                0
            }
        });
        assert_eq!(out[0], 6);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        Runtime::new(2, NetModel::free()).run(|rank| {
            if rank.rank() == 0 {
                rank.send(1, Tag(0), 1.0f32);
            } else {
                let _ = rank.recv::<u64>(0, Tag(0));
            }
        });
    }
}

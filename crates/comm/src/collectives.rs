//! Collective operations over the rank group.
//!
//! All collectives must be called by every rank in the same order (the usual
//! MPI contract). Data moves through a shared-memory rendezvous; *time*
//! moves through the [`crate::NetModel`] collective cost formulas, and every
//! collective max-synchronizes the participating virtual clocks first —
//! which is what makes "the pipeline is as slow as its slowest rank"
//! (paper §IV-D) hold in the simulation.

use std::any::Any;

use crate::meter::Meter;
use crate::p2p::Tag;
use crate::runtime::Rank;

impl Rank {
    /// Shared-memory rendezvous: deposit `x`, wait for everyone, read all
    /// contributions (in rank order) and the maximum participating clock.
    /// Contributions carry the session-run epoch so a slot left over from
    /// another run can never be mistaken for this run's data.
    fn rendezvous<I: Clone + Send + 'static>(&mut self, x: I) -> (Vec<I>, f64) {
        {
            // apc-lint: allow(unwrap-in-lib): mutex poisoning means another rank already panicked; propagate the abort
            let mut slots = self.shared.slots.lock().unwrap();
            debug_assert!(slots[self.id].is_none(), "collective slot already full");
            slots[self.id] = Some((self.epoch, self.clock, Box::new(x) as Box<dyn Any + Send>));
        }
        self.shared.barrier.wait();
        let (vals, max_clock) = {
            // apc-lint: allow(unwrap-in-lib): mutex poisoning means another rank already panicked; propagate the abort
            let slots = self.shared.slots.lock().unwrap();
            let mut max_clock = f64::MIN;
            let mut vals = Vec::with_capacity(slots.len());
            for slot in slots.iter() {
                // apc-lint: allow(unwrap-in-lib): the barrier above guarantees every rank deposited its slot
                let (epoch, t, payload) = slot.as_ref().expect("missing collective contribution");
                assert_eq!(
                    *epoch, self.epoch,
                    "collective contribution from another session run"
                );
                max_clock = max_clock.max(*t);
                vals.push(
                    payload
                        .downcast_ref::<I>()
                        // apc-lint: allow(unwrap-in-lib): SPMD contract — every rank calls the same collective with the same type
                        .expect("collective type mismatch across ranks")
                        .clone(),
                );
            }
            (vals, max_clock)
        };
        self.shared.barrier.wait();
        // Everyone has read; reclaim our own slot for the next collective.
        // apc-lint: allow(unwrap-in-lib): mutex poisoning means another rank already panicked; propagate the abort
        self.shared.slots.lock().unwrap()[self.id] = None;
        (vals, max_clock)
    }

    /// Synchronize all ranks (and their clocks).
    pub fn barrier(&mut self) {
        let n = self.nranks();
        let (_, max_clock) = self.rendezvous(());
        self.clock = max_clock + self.net().barrier(n);
    }

    /// Broadcast `root`'s value to every rank. Non-root ranks pass `None`.
    pub fn broadcast<M: Meter + Clone + Send + 'static>(
        &mut self,
        root: usize,
        value: Option<M>,
    ) -> M {
        assert!(root < self.nranks(), "invalid root rank {root}");
        assert_eq!(
            value.is_some(),
            self.id == root,
            "exactly the root must supply a value"
        );
        let n = self.nranks();
        let (vals, max_clock) = self.rendezvous(value);
        let out = vals
            .into_iter()
            .nth(root)
            .flatten()
            // apc-lint: allow(unwrap-in-lib): asserted above — the root passed Some and root < nranks
            .expect("root supplied no value");
        self.clock = max_clock + self.net().broadcast(n, out.nbytes());
        out
    }

    /// Gather every rank's value; all ranks receive the full vector in rank
    /// order.
    pub fn allgather<M: Meter + Clone + Send + 'static>(&mut self, value: M) -> Vec<M> {
        let n = self.nranks();
        let (vals, max_clock) = self.rendezvous(value);
        let total: usize = vals.iter().map(Meter::nbytes).sum();
        self.clock = max_clock + self.net().allgather(n, total);
        vals
    }

    /// Gather to `root` only; other ranks get `None`. (The data motion in the
    /// simulation is shared-memory either way; the *charged* time follows the
    /// gather model, which we approximate with the allgather formula.)
    pub fn gather<M: Meter + Clone + Send + 'static>(
        &mut self,
        root: usize,
        value: M,
    ) -> Option<Vec<M>> {
        assert!(root < self.nranks(), "invalid root rank {root}");
        let n = self.nranks();
        let (vals, max_clock) = self.rendezvous(value);
        let total: usize = vals.iter().map(Meter::nbytes).sum();
        self.clock = max_clock + self.net().allgather(n, total);
        (self.id == root).then_some(vals)
    }

    /// Scatter: the root supplies one value per rank; every rank receives
    /// its own entry. Non-root ranks pass `None`.
    pub fn scatter<M: Meter + Clone + Send + 'static>(
        &mut self,
        root: usize,
        values: Option<Vec<M>>,
    ) -> M {
        assert!(root < self.nranks(), "invalid root rank {root}");
        assert_eq!(
            values.is_some(),
            self.id == root,
            "exactly the root must supply values"
        );
        let n = self.nranks();
        let (vals, max_clock) = self.rendezvous(values);
        let all = vals
            .into_iter()
            .nth(root)
            .flatten()
            // apc-lint: allow(unwrap-in-lib): asserted above — the root passed Some and root < nranks
            .expect("root supplied values");
        // Validate *after* the rendezvous so a bad argument panics on every
        // rank together instead of deadlocking the barrier.
        assert_eq!(all.len(), n, "scatter needs one value per rank");
        // Tree scatter moves ~the full payload out of the root.
        let total: usize = all.iter().map(Meter::nbytes).sum();
        self.clock = max_clock + self.net().allgather(n, total);
        // apc-lint: allow(unwrap-in-lib): the length assert above guarantees an element at self.id
        all.into_iter().nth(self.id).expect("one value per rank")
    }

    /// Reduce to `root` only (folded in rank order); other ranks get
    /// `None`. Charged like half an allreduce (no result distribution).
    pub fn reduce<M, F>(&mut self, root: usize, value: M, op: F) -> Option<M>
    where
        M: Meter + Clone + Send + 'static,
        F: FnMut(M, M) -> M,
    {
        assert!(root < self.nranks(), "invalid root rank {root}");
        let n = self.nranks();
        let bytes = value.nbytes();
        let (vals, max_clock) = self.rendezvous(value);
        self.clock = max_clock + self.net().allreduce(n, bytes) / 2.0;
        if self.id != root {
            return None;
        }
        let mut it = vals.into_iter();
        // apc-lint: allow(unwrap-in-lib): a runtime always has at least one rank
        let first = it.next().expect("reduce over empty group");
        Some(it.fold(first, {
            let mut op = op;
            move |acc, v| op(acc, v)
        }))
    }

    /// Reduce all values with `op` (folded in rank order — deterministic);
    /// every rank receives the result.
    pub fn allreduce<M, F>(&mut self, value: M, op: F) -> M
    where
        M: Meter + Clone + Send + 'static,
        F: FnMut(M, M) -> M,
    {
        let n = self.nranks();
        let bytes = value.nbytes();
        let (vals, max_clock) = self.rendezvous(value);
        self.clock = max_clock + self.net().allreduce(n, bytes);
        let mut it = vals.into_iter();
        // apc-lint: allow(unwrap-in-lib): a runtime always has at least one rank
        let first = it.next().expect("allreduce over empty group");
        it.fold(first, {
            let mut op = op;
            move |acc, v| op(acc, v)
        })
    }

    /// Exclusive prefix scan: rank `r` receives `op(v_0, ..., v_{r-1})`,
    /// rank 0 receives `None`.
    pub fn exclusive_scan<M, F>(&mut self, value: M, mut op: F) -> Option<M>
    where
        M: Meter + Clone + Send + 'static,
        F: FnMut(M, M) -> M,
    {
        let n = self.nranks();
        let bytes = value.nbytes();
        let (vals, max_clock) = self.rendezvous(value);
        self.clock = max_clock + self.net().allreduce(n, bytes);
        let mut acc: Option<M> = None;
        for v in vals.into_iter().take(self.id) {
            acc = Some(match acc {
                None => v,
                Some(a) => op(a, v),
            });
        }
        acc
    }

    /// Personalized all-to-all with variable counts: `outgoing[d]` is the
    /// batch of items for rank `d` (including `d == self`, moved locally).
    /// Returns the incoming batches indexed by source rank.
    ///
    /// Unlike the other collectives this one really moves the data through
    /// the point-to-point layer, so per-message sizes are charged
    /// individually — this is the primitive behind the paper's block
    /// redistribution (§IV-D: "a series of nonblocking receives ... and a
    /// series of nonblocking sends").
    // Loop variables double as rank ids for addressing, not just indices.
    #[allow(clippy::needless_range_loop)]
    pub fn alltoallv<M: Meter + Clone + Send + 'static>(
        &mut self,
        mut outgoing: Vec<Vec<M>>,
    ) -> Vec<Vec<M>> {
        let n = self.nranks();
        assert_eq!(
            outgoing.len(),
            n,
            "alltoallv needs one outgoing batch per rank"
        );
        let mut incoming: Vec<Vec<M>> = (0..n).map(|_| Vec::new()).collect();
        incoming[self.id] = std::mem::take(&mut outgoing[self.id]);
        // Post all sends first (non-blocking), then drain receives.
        for dst in 0..n {
            if dst != self.id {
                let batch = std::mem::take(&mut outgoing[dst]);
                self.isend(dst, Tag::ALLTOALLV, batch);
            }
        }
        for src in 0..n {
            if src != self.id {
                incoming[src] = self.recv::<Vec<M>>(src, Tag::ALLTOALLV);
            }
        }
        incoming
    }
}

#[cfg(test)]
mod tests {
    use crate::netmodel::NetModel;
    use crate::runtime::Runtime;

    #[test]
    fn barrier_synchronizes_clocks() {
        let clocks = Runtime::new(4, NetModel::blue_waters()).run(|rank| {
            rank.advance(rank.rank() as f64); // rank 3 is slowest: clock 3.0
            rank.barrier();
            rank.clock()
        });
        for c in &clocks {
            assert!(*c >= 3.0, "clock {c} not synchronized to slowest rank");
            assert!((*c - 3.0) < 1e-3, "barrier cost should be tiny, got {c}");
        }
        assert_eq!(clocks[0], clocks[3]);
    }

    #[test]
    fn broadcast_delivers_root_value() {
        let out = Runtime::new(4, NetModel::free()).run(|rank| {
            let v = if rank.rank() == 2 {
                Some(vec![9u32, 8, 7])
            } else {
                None
            };
            rank.broadcast(2, v)
        });
        for v in out {
            assert_eq!(v, vec![9, 8, 7]);
        }
    }

    #[test]
    fn allgather_rank_order() {
        let out = Runtime::new(4, NetModel::free()).run(|rank| rank.allgather(rank.rank() as u32));
        for v in out {
            assert_eq!(v, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn gather_only_root_receives() {
        let out = Runtime::new(3, NetModel::free()).run(|rank| rank.gather(1, rank.rank() as u64));
        assert_eq!(out[0], None);
        assert_eq!(out[1], Some(vec![0, 1, 2]));
        assert_eq!(out[2], None);
    }

    #[test]
    fn scatter_delivers_per_rank_values() {
        let out = Runtime::new(4, NetModel::free()).run(|rank| {
            let v = (rank.rank() == 1).then(|| vec![10u32, 11, 12, 13]);
            rank.scatter(1, v)
        });
        assert_eq!(out, vec![10, 11, 12, 13]);
    }

    #[test]
    #[should_panic(expected = "one value per rank")]
    fn scatter_validates_length() {
        Runtime::new(3, NetModel::free()).run(|rank| {
            let v = (rank.rank() == 0).then(|| vec![1u32, 2]);
            rank.scatter(0, v)
        });
    }

    #[test]
    fn reduce_only_root_gets_result() {
        let out = Runtime::new(5, NetModel::free())
            .run(|rank| rank.reduce(2, rank.rank() as u64 + 1, |a, b| a + b));
        assert_eq!(out, vec![None, None, Some(15), None, None]);
    }

    #[test]
    fn allreduce_sum_and_max() {
        let out = Runtime::new(8, NetModel::free()).run(|rank| {
            let sum = rank.allreduce(rank.rank() as u64, |a, b| a + b);
            let max = rank.allreduce(rank.rank() as f64, f64::max);
            (sum, max)
        });
        for (sum, max) in out {
            assert_eq!(sum, 28);
            assert_eq!(max, 7.0);
        }
    }

    #[test]
    fn exclusive_scan_prefixes() {
        let out =
            Runtime::new(4, NetModel::free()).run(|rank| rank.exclusive_scan(1u32, |a, b| a + b));
        assert_eq!(out, vec![None, Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn alltoallv_exchanges_batches() {
        let out = Runtime::new(3, NetModel::blue_waters()).run(|rank| {
            let me = rank.rank() as u32;
            // Send `d` copies of my id to rank d.
            let outgoing: Vec<Vec<u32>> = (0..3).map(|d| vec![me; d]).collect();
            rank.alltoallv(outgoing)
        });
        for (r, incoming) in out.iter().enumerate() {
            for (src, batch) in incoming.iter().enumerate() {
                assert_eq!(batch.len(), r, "rank {r} from {src}");
                assert!(batch.iter().all(|&v| v == src as u32));
            }
        }
    }

    #[test]
    fn consecutive_collectives_do_not_interfere() {
        let out = Runtime::new(4, NetModel::free()).run(|rank| {
            let a = rank.allgather(rank.rank() as u32);
            let b = rank.allgather((rank.rank() * 2) as u32);
            rank.barrier();
            let c = rank.allreduce(1u32, |x, y| x + y);
            (a, b, c)
        });
        for (a, b, c) in out {
            assert_eq!(a, vec![0, 1, 2, 3]);
            assert_eq!(b, vec![0, 2, 4, 6]);
            assert_eq!(c, 4);
        }
    }

    #[test]
    fn collectives_are_stable_across_session_runs() {
        // The same collective sequence, repeated over one persistent
        // session, must see fresh slots and clocks every run.
        let mut session = Runtime::new(4, NetModel::free()).session();
        let mut previous = None;
        for _ in 0..3 {
            let out = session.run(|rank| {
                let g = rank.allgather(rank.rank() as u32);
                let s = rank.allreduce(1u64, |a, b| a + b);
                rank.barrier();
                (g, s, rank.clock())
            });
            assert_eq!(out[0].0, vec![0, 1, 2, 3]);
            assert_eq!(out[0].1, 4);
            if let Some(prev) = &previous {
                assert_eq!(prev, &out, "session runs must be identical");
            }
            previous = Some(out);
        }
    }

    #[test]
    fn collective_charges_network_time() {
        let net = NetModel {
            latency: 1e-3,
            bandwidth: 1e6,
            ..NetModel::free()
        };
        let clocks = Runtime::new(4, net).run(|rank| {
            let _ = rank.allgather(vec![0.0f32; 250]); // 1000 bytes each
            rank.clock()
        });
        // allgather model: depth(4)=2 * 1ms + 3/4 * 4000B / 1e6 B/s = 5 ms.
        for c in clocks {
            assert!((c - 0.005).abs() < 1e-9, "clock = {c}");
        }
    }
}

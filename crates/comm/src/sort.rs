//! Distributed sorting of `<block id, score>` pairs.
//!
//! The paper (§IV-C) globally sorts all pairs by increasing score and
//! broadcasts the sorted array to every rank. We provide the paper's
//! gather-sort-broadcast and, as an ablation (DESIGN.md §4), a real
//! parallel *sample sort* whose final allgather yields the same
//! everyone-has-everything result.

use std::cmp::Ordering;

use crate::meter::Meter;
use crate::p2p::Tag;
use crate::runtime::Rank;

/// Cost charged per element of a comparison sort, seconds. Calibrated to a
/// few tens of ns per element per log-level — negligible next to rendering,
/// as the paper observes.
pub const SORT_COST_PER_ELEM: f64 = 2.5e-8;

fn sort_compute_cost(n: usize) -> f64 {
    if n < 2 {
        return 0.0;
    }
    n as f64 * (n as f64).log2() * SORT_COST_PER_ELEM
}

/// The paper's strategy: gather all pairs, sort at the root, broadcast the
/// sorted array back. Every rank returns the full sorted vector.
///
/// `cmp` must be a total order (ties broken deterministically by the
/// caller, e.g. by block id — §IV-C).
pub fn gather_sort_broadcast<K, F>(rank: &mut Rank, local: Vec<K>, cmp: F) -> Vec<K>
where
    K: Meter + Clone + Send + 'static,
    F: Fn(&K, &K) -> Ordering,
{
    let gathered = rank.allgather(local);
    let mut all: Vec<K> = gathered.into_iter().flatten().collect();
    // The root sorts; everyone then waits on the broadcast, so the root's
    // compute time gates all ranks. We charge it uniformly after the
    // allgather's clock synchronization (equivalent under max-sync).
    rank.advance(sort_compute_cost(all.len()));
    all.sort_by(&cmp);
    // Model the broadcast of the sorted array (data is already everywhere
    // in the simulation; only time needs to move).
    let bytes: usize = all.iter().map(Meter::nbytes).sum();
    let n = rank.nranks();
    let t = rank.net().broadcast(n, bytes);
    rank.advance(t);
    all
}

/// Parallel sample sort (ablation): local sort, regular sampling, splitter
/// selection, bucket exchange via point-to-point, local merge, and a final
/// allgather so every rank holds the full sorted vector — same contract as
/// [`gather_sort_broadcast`].
// Loop variables double as rank ids for addressing, not just indices.
#[allow(clippy::needless_range_loop)]
pub fn sample_sort<K, F>(rank: &mut Rank, mut local: Vec<K>, cmp: F) -> Vec<K>
where
    K: Meter + Clone + Send + 'static,
    F: Fn(&K, &K) -> Ordering,
{
    let n = rank.nranks();
    if n == 1 {
        rank.advance(sort_compute_cost(local.len()));
        local.sort_by(&cmp);
        return local;
    }

    rank.advance(sort_compute_cost(local.len()));
    local.sort_by(&cmp);

    // Regular sampling: n samples per rank (with repetition if short).
    let samples: Vec<K> = if local.is_empty() {
        Vec::new()
    } else {
        (0..n).map(|i| local[i * local.len() / n].clone()).collect()
    };
    let mut all_samples: Vec<K> = rank.allgather(samples).into_iter().flatten().collect();
    all_samples.sort_by(&cmp);

    // n-1 splitters at regular positions.
    let splitters: Vec<K> = if all_samples.is_empty() {
        Vec::new()
    } else {
        (1..n)
            .map(|i| all_samples[i * all_samples.len() / n].clone())
            .collect()
    };

    // Partition the sorted local run into n buckets.
    let mut buckets: Vec<Vec<K>> = (0..n).map(|_| Vec::new()).collect();
    let mut b = 0;
    for item in local {
        while b < splitters.len() && cmp(&item, &splitters[b]) != Ordering::Less {
            b += 1;
        }
        buckets[b].push(item);
    }

    // Exchange buckets (real p2p traffic, charged per message).
    for dst in 0..n {
        if dst != rank.rank() {
            let batch = std::mem::take(&mut buckets[dst]);
            rank.isend(dst, Tag::SAMPLE_SORT, batch);
        }
    }
    let mut mine: Vec<Vec<K>> = Vec::with_capacity(n);
    for src in 0..n {
        if src == rank.rank() {
            mine.push(std::mem::take(&mut buckets[src]));
        } else {
            mine.push(rank.recv::<Vec<K>>(src, Tag::SAMPLE_SORT));
        }
    }

    // Merge the sorted runs (charged as one comparison sort of the total).
    let total: usize = mine.iter().map(Vec::len).sum();
    rank.advance(sort_compute_cost(total));
    let mut merged: Vec<K> = Vec::with_capacity(total);
    for run in mine {
        merged.extend(run);
    }
    merged.sort_by(&cmp);

    // Everyone needs the whole sorted list (paper contract): allgather and
    // concatenate — partitions are globally ordered by construction.
    rank.allgather(merged).into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netmodel::NetModel;
    use crate::runtime::Runtime;

    fn scored_pairs(rank: usize, n_per_rank: usize) -> Vec<(u32, f64)> {
        // Deterministic pseudo-random scores, distinct per (rank, i).
        (0..n_per_rank)
            .map(|i| {
                let id = (rank * n_per_rank + i) as u32;
                let score = ((id as f64 * 0.7371 + 0.213).sin() * 1000.0).round() / 10.0;
                (id, score)
            })
            .collect()
    }

    fn cmp_pairs(a: &(u32, f64), b: &(u32, f64)) -> Ordering {
        // Increasing score; ties broken by id (paper §IV-C).
        a.1.total_cmp(&b.1).then(a.0.cmp(&b.0))
    }

    fn assert_sorted(v: &[(u32, f64)]) {
        assert!(v
            .windows(2)
            .all(|w| cmp_pairs(&w[0], &w[1]) != Ordering::Greater));
    }

    #[test]
    fn gsb_sorts_globally() {
        let out = Runtime::new(4, NetModel::blue_waters()).run(|rank| {
            let local = scored_pairs(rank.rank(), 25);
            gather_sort_broadcast(rank, local, cmp_pairs)
        });
        for v in &out {
            assert_eq!(v.len(), 100);
            assert_sorted(v);
        }
        assert_eq!(out[0], out[3], "all ranks must agree on the sorted list");
    }

    #[test]
    fn sample_sort_matches_gsb() {
        let (a, b) = {
            let gsb = Runtime::new(4, NetModel::blue_waters())
                .run(|rank| gather_sort_broadcast(rank, scored_pairs(rank.rank(), 40), cmp_pairs));
            let ss = Runtime::new(4, NetModel::blue_waters())
                .run(|rank| sample_sort(rank, scored_pairs(rank.rank(), 40), cmp_pairs));
            (gsb, ss)
        };
        assert_eq!(a[0], b[0]);
        assert_eq!(b[0], b[2]);
        assert_sorted(&b[1]);
    }

    #[test]
    fn sample_sort_single_rank() {
        let out = Runtime::new(1, NetModel::free())
            .run(|rank| sample_sort(rank, scored_pairs(0, 10), cmp_pairs));
        assert_eq!(out[0].len(), 10);
        assert_sorted(&out[0]);
    }

    #[test]
    fn sample_sort_empty_input() {
        let out = Runtime::new(3, NetModel::free())
            .run(|rank| sample_sort(rank, Vec::<(u32, f64)>::new(), cmp_pairs));
        assert!(out.iter().all(Vec::is_empty));
    }

    #[test]
    fn uneven_inputs() {
        let out = Runtime::new(3, NetModel::free()).run(|rank| {
            let local = scored_pairs(rank.rank(), rank.rank() * 7); // 0, 7, 14 items
            sample_sort(rank, local, cmp_pairs)
        });
        assert_eq!(out[0].len(), 21);
        assert_sorted(&out[0]);
    }

    #[test]
    fn both_sorts_are_stable_across_session_runs() {
        // Sweeps re-run the global sort many times over one session; the
        // internal SAMPLE_SORT p2p tags must not leak between runs.
        let mut session = Runtime::new(4, NetModel::blue_waters()).session();
        let gsb = session
            .run(|rank| gather_sort_broadcast(rank, scored_pairs(rank.rank(), 40), cmp_pairs));
        for _ in 0..2 {
            let ss =
                session.run(|rank| sample_sort(rank, scored_pairs(rank.rank(), 40), cmp_pairs));
            assert_eq!(gsb[0], ss[0], "session reuse must not perturb the sort");
            assert_sorted(&ss[2]);
        }
    }

    #[test]
    fn sorting_charges_time() {
        let clocks = Runtime::new(2, NetModel::blue_waters()).run(|rank| {
            let t0 = rank.clock();
            let _ = gather_sort_broadcast(rank, scored_pairs(rank.rank(), 1000), cmp_pairs);
            rank.clock() - t0
        });
        assert!(clocks[0] > 0.0);
        // Must stay tiny relative to rendering (order of ms for 2k pairs).
        assert!(
            clocks[0] < 0.1,
            "sort cost unexpectedly large: {}",
            clocks[0]
        );
    }
}

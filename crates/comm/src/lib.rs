//! A threaded, MPI-like message-passing runtime with virtual-time accounting.
//!
//! The paper runs its pipeline over Cray MPI on Blue Waters at 64 and 400
//! ranks. The Rust MPI ecosystem is thin and no 400-core allocation exists
//! here, so this crate substitutes a *simulated* communicator (see
//! DESIGN.md §2):
//!
//! * **Ranks are OS threads.** [`Runtime::run`] spawns one thread per rank;
//!   each receives a [`Rank`] handle exposing point-to-point messaging
//!   (`send`/`recv`/`isend`/`irecv` with tags) and the collectives the
//!   pipeline needs (barrier, broadcast, gather, allgather, reduce,
//!   allreduce, alltoall(v), exclusive scan).
//! * **Reusable rank sessions.** [`Runtime::session`] spawns the rank
//!   threads once and executes a series of closures over them
//!   ([`Session::run`]) — the substrate of parameter sweeps, which replay
//!   many configurations over the same ranks. Runs are isolated by
//!   epoch-stamped envelopes and collective slots plus a per-run
//!   virtual-clock reset, so a session run is observationally identical to
//!   a one-shot `Runtime::run` (which is itself implemented as a
//!   single-run session).
//! * **Virtual time.** Every rank owns a virtual clock ([`Rank::clock`]).
//!   Local compute charges the clock through [`Rank::advance`]; messages and
//!   collectives charge it through a latency+bandwidth [`NetModel`].
//!   Collectives max-synchronize clocks, so "the step is as slow as the
//!   slowest rank" holds exactly as on a real machine, while wall-clock
//!   execution stays laptop-scale and deterministic.
//! * **Distributed sorting** ([`sort`]): the paper's gather-sort-broadcast
//!   (§IV-C) plus a real parallel sample sort used as an ablation.
//! * **Bounded stage queues and serve endpoints** ([`bounded`]):
//!   flow-controlled producer → consumer channels (credit-based or lossy)
//!   whose capacity semantics live in virtual time — the substrate of
//!   `apc-stage`'s dedicated-core asynchronous in situ mode — plus
//!   request/reply endpoints ([`ServeClient`] / [`ServeServer`]) on a
//!   second reserved tag range, the substrate of `apc-serve`'s frame
//!   serving protocol.
//!
//! ```
//! use apc_comm::{NetModel, Runtime};
//!
//! let sums = Runtime::new(4, NetModel::blue_waters()).run(|rank| {
//!     let contribution = (rank.rank() + 1) as u64;
//!     rank.allreduce(contribution, |a, b| a + b)
//! });
//! assert_eq!(sums, vec![10, 10, 10, 10]);
//! ```

pub mod bounded;
pub mod collectives;
pub mod meter;
pub mod netmodel;
pub mod p2p;
pub mod runtime;
pub mod sort;

pub use bounded::{Dequeued, FlowControl, QueueReceiver, QueueSender, ServeClient, ServeServer};
pub use meter::Meter;
pub use netmodel::NetModel;
pub use p2p::{Request, Tag};
pub use runtime::{parse_recv_timeout, Rank, Runtime, Session};

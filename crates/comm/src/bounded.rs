//! Bounded stage queues: the flow-controlled point-to-point channels that
//! dedicated-core staging is built on (`apc-stage`).
//!
//! A queue connects one producer rank (a simulation rank) to one consumer
//! rank (a staging rank). Data rides the ordinary epoch-stamped envelope
//! layer — non-overtaking per `(src, tag)`, isolated per session run — on a
//! pair of reserved internal tags, so *what* moves is exactly a normal
//! message; what the queue adds is **capacity semantics in virtual time**:
//!
//! * **Credit flow** ([`FlowControl::Credit`]): the producer may have at
//!   most `depth` messages enqueued beyond the one the consumer is
//!   servicing. Before enqueueing message `k ≥ depth` it receives the
//!   consumer's credit for message `k − depth`; the ordinary clock-merge
//!   semantics of [`Rank::recv`] turn that receive into exactly the right
//!   virtual-time behavior — if the credit's arrival predates the
//!   producer's clock the wait costs nothing (the queue had room), and if
//!   it postdates it the merge *is* the producer's stall. Backpressure
//!   policies that block or degrade are built on this flow.
//! * **Lossy flow** ([`FlowControl::Lossy`]): no credits — the producer
//!   never stalls, and the consumer decides (in virtual time, from the
//!   recorded arrival timestamps) which messages overflowed the queue and
//!   were dropped. [`QueueReceiver::dequeue_deferred`] supports this by
//!   receiving *without* touching the consumer clock; the caller settles
//!   the clock via [`Rank::merge_clock_to`] plus the ingest charge when a
//!   surviving message actually enters service.
//!
//! Every blocking wait here goes through the runtime's receive path, so
//! the `APC_RECV_TIMEOUT` deadlock machinery applies unchanged: a producer
//! stranded on a credit because its consumer panicked fails loudly within
//! the timeout and poisons the session, exactly like any other stranded
//! receive (guarded by the stager-panic case in `tests/session_stress.rs`).
//!
//! On a second reserved tag range the module also provides **request/reply
//! endpoints** ([`ServeClient`] / [`ServeServer`]): a client sends a typed
//! request and blocks for the typed reply; the server receives requests
//! selectively per client (so a fixed service order is deterministic no
//! matter how the OS schedules the client threads) and answers when it
//! chooses — immediately, or deferred to a later point of its own
//! timeline, which is how `apc-serve` models replies that wait for a frame
//! still being produced. Requests and replies are ordinary envelopes, so
//! the same clock-merge arithmetic that prices queue traffic prices the
//! round trip, and the same timeout machinery fails a stranded side loudly
//! when its peer dies mid-request.

use crate::meter::Meter;
use crate::p2p::Tag;
use crate::runtime::Rank;

/// How a queue bounds its capacity. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowControl {
    /// Credit-based: the producer stalls (in virtual time) when the queue
    /// is full.
    Credit,
    /// No flow control: the producer never stalls; the consumer accounts
    /// overflow drops itself from the deferred arrival timestamps.
    Lossy,
}

/// Highest channel id; keeps the reserved stage-tag range well clear of
/// the other internal tags and of any realistic user tag.
const MAX_CHANNEL: u32 = 1 << 16;

fn data_tag(channel: u32) -> Tag {
    assert!(
        channel < MAX_CHANNEL,
        "stage channel {channel} out of range"
    );
    Tag(Tag::STAGE_BASE - 2 * channel)
}

fn credit_tag(channel: u32) -> Tag {
    assert!(
        channel < MAX_CHANNEL,
        "stage channel {channel} out of range"
    );
    Tag(Tag::STAGE_BASE - 2 * channel - 1)
}

fn request_tag(channel: u32) -> Tag {
    assert!(
        channel < MAX_CHANNEL,
        "serve channel {channel} out of range"
    );
    Tag(Tag::SERVE_BASE - 2 * channel)
}

fn reply_tag(channel: u32) -> Tag {
    assert!(
        channel < MAX_CHANNEL,
        "serve channel {channel} out of range"
    );
    Tag(Tag::SERVE_BASE - 2 * channel - 1)
}

/// Producer half of a bounded queue to `dst`.
#[derive(Debug)]
pub struct QueueSender {
    dst: usize,
    channel: u32,
    depth: usize,
    flow: FlowControl,
    seq: u64,
}

impl QueueSender {
    /// A queue of `depth` waiting slots toward `dst` on `channel` (both
    /// halves must agree on the channel; one logical queue per
    /// `(producer, consumer, channel)` triple).
    pub fn new(dst: usize, channel: u32, depth: usize, flow: FlowControl) -> Self {
        assert!(depth >= 1, "queue depth must be at least one");
        Self {
            dst,
            channel,
            depth,
            flow,
            seq: 0,
        }
    }

    /// Messages enqueued so far.
    pub fn enqueued(&self) -> u64 {
        self.seq
    }

    /// Enqueue `msg`, returning the virtual stall this enqueue cost the
    /// producer (always `0.0` under [`FlowControl::Lossy`]; under credit
    /// flow it is the queue-full wait — the time the producer spent ahead
    /// of the credit's arrival — exactly zero whenever the queue had
    /// room). The fixed software cost of receiving the credit (its ingest
    /// charge) is still paid on the clock, but counts as enqueue overhead,
    /// not stall.
    pub fn enqueue<M: Meter + Send + 'static>(&mut self, rank: &mut Rank, msg: M) -> f64 {
        let mut stall = 0.0;
        if self.flow == FlowControl::Credit && self.seq >= self.depth as u64 {
            let expect = self.seq - self.depth as u64;
            let before = rank.clock();
            let (ack, arrival, bytes) =
                rank.recv_with_arrival::<u64>(self.dst, credit_tag(self.channel));
            debug_assert_eq!(ack, expect, "stage credit out of sequence");
            stall = (arrival - before).max(0.0);
            rank.merge_clock_to(arrival);
            let ingest = rank.net().ingest(bytes);
            rank.advance(ingest);
        }
        rank.send(self.dst, data_tag(self.channel), msg);
        self.seq += 1;
        stall
    }
}

/// One dequeued message plus its virtual-time coordinates.
#[derive(Debug)]
pub struct Dequeued<M> {
    pub msg: M,
    /// Virtual time at which the message finished arriving (producer
    /// timestamp + modeled wire time).
    pub arrival: f64,
    /// Metered payload size (what the ingest charge is based on).
    pub bytes: usize,
}

/// Consumer half of a bounded queue from `src`.
#[derive(Debug)]
pub struct QueueReceiver {
    src: usize,
    channel: u32,
    flow: FlowControl,
    seq: u64,
}

impl QueueReceiver {
    pub fn new(src: usize, channel: u32, flow: FlowControl) -> Self {
        Self {
            src,
            channel,
            flow,
            seq: 0,
        }
    }

    /// Messages dequeued so far.
    pub fn dequeued(&self) -> u64 {
        self.seq
    }

    /// Blocking dequeue: merges the arrival into the consumer's clock,
    /// charges the ingest cost, and — under credit flow — releases the
    /// slot by sending the credit back (stamped with the consumer's clock,
    /// which is what makes a stalled producer resume at the right virtual
    /// time).
    pub fn dequeue<M: Send + 'static>(&mut self, rank: &mut Rank) -> Dequeued<M> {
        let d = self.dequeue_deferred(rank);
        rank.merge_clock_to(d.arrival);
        let ingest = rank.net().ingest(d.bytes);
        rank.advance(ingest);
        if self.flow == FlowControl::Credit {
            rank.send(self.src, credit_tag(self.channel), self.seq - 1);
        }
        d
    }

    /// Dequeue without touching the consumer's clock and without releasing
    /// a credit — the lossy drain primitive. The caller settles virtual
    /// time itself ([`Rank::merge_clock_to`] to the service start, then
    /// [`Rank::advance`] by `rank.net().ingest(bytes)` for the messages it
    /// actually consumes).
    pub fn dequeue_deferred<M: Send + 'static>(&mut self, rank: &mut Rank) -> Dequeued<M> {
        let (msg, arrival, bytes) = rank.recv_with_arrival(self.src, data_tag(self.channel));
        self.seq += 1;
        Dequeued {
            msg,
            arrival,
            bytes,
        }
    }
}

/// Client half of a request/reply endpoint toward `server`. One endpoint
/// per `(client, server, channel)` triple; requests on an endpoint are
/// answered in order.
#[derive(Debug)]
pub struct ServeClient {
    server: usize,
    channel: u32,
    sent: u64,
    answered: u64,
}

impl ServeClient {
    pub fn new(server: usize, channel: u32) -> Self {
        Self {
            server,
            channel,
            sent: 0,
            answered: 0,
        }
    }

    /// Post a request (never blocks — eager buffering, like any send).
    pub fn send_request<Q: Meter + Send + 'static>(&mut self, rank: &mut Rank, request: Q) {
        rank.send(self.server, request_tag(self.channel), request);
        self.sent += 1;
    }

    /// Block for the next reply: merges its arrival into the client's
    /// clock and charges the ingest cost, so `rank.clock()` before the
    /// request and after this call bracket the full virtual round trip —
    /// including however long the server chose to sit on the reply.
    pub fn recv_reply<R: Send + 'static>(&mut self, rank: &mut Rank) -> Dequeued<R> {
        assert!(
            self.answered < self.sent,
            "no outstanding request to receive a reply for"
        );
        let (msg, arrival, bytes) = rank.recv_with_arrival(self.server, reply_tag(self.channel));
        rank.merge_clock_to(arrival);
        let ingest = rank.net().ingest(bytes);
        rank.advance(ingest);
        self.answered += 1;
        Dequeued {
            msg,
            arrival,
            bytes,
        }
    }

    /// Requests still awaiting a reply.
    pub fn outstanding(&self) -> u64 {
        self.sent - self.answered
    }
}

/// Server half of a request/reply endpoint from `client`. A server rank
/// holds one of these per client it serves; receiving from them in a
/// fixed order is what makes multi-client service deterministic.
#[derive(Debug)]
pub struct ServeServer {
    client: usize,
    channel: u32,
    taken: u64,
    replied: u64,
}

impl ServeServer {
    pub fn new(client: usize, channel: u32) -> Self {
        Self {
            client,
            channel,
            taken: 0,
            replied: 0,
        }
    }

    /// The client rank this endpoint serves.
    pub fn client(&self) -> usize {
        self.client
    }

    /// Block for the client's next request, merging its arrival into the
    /// server's clock and charging the ingest cost.
    pub fn recv_request<Q: Send + 'static>(&mut self, rank: &mut Rank) -> Dequeued<Q> {
        let (msg, arrival, bytes) = rank.recv_with_arrival(self.client, request_tag(self.channel));
        rank.merge_clock_to(arrival);
        let ingest = rank.net().ingest(bytes);
        rank.advance(ingest);
        self.taken += 1;
        Dequeued {
            msg,
            arrival,
            bytes,
        }
    }

    /// Answer the oldest unanswered request. The reply is stamped with the
    /// server's *current* clock, so deferring this call is exactly how a
    /// server makes a client wait in virtual time.
    pub fn send_reply<R: Meter + Send + 'static>(&mut self, rank: &mut Rank, reply: R) {
        assert!(self.replied < self.taken, "no received request to reply to");
        rank.send(self.client, reply_tag(self.channel), reply);
        self.replied += 1;
    }

    /// Requests received but not yet answered.
    pub fn pending(&self) -> u64 {
        self.taken - self.replied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netmodel::NetModel;
    use crate::runtime::Runtime;

    /// A producer that is faster than its consumer must stall once the
    /// queue fills, and the steady-state stall equals the service surplus.
    #[test]
    fn credit_flow_stalls_fast_producer() {
        let depth = 2;
        let frames = 12;
        let out = Runtime::new(2, NetModel::free()).run(|rank| {
            if rank.rank() == 0 {
                let mut tx = QueueSender::new(1, 0, depth, FlowControl::Credit);
                let mut stalls = Vec::new();
                for k in 0..frames {
                    rank.advance(1.0); // produce: 1 s/frame
                    stalls.push(tx.enqueue(rank, k as u64));
                }
                (stalls, rank.clock())
            } else {
                let mut rx = QueueReceiver::new(0, 0, FlowControl::Credit);
                for _ in 0..frames {
                    let _ = rx.dequeue::<u64>(rank);
                    rank.advance(3.0); // service: 3 s/frame
                }
                (Vec::new(), rank.clock())
            }
        });
        let (stalls, _) = &out[0];
        // First `depth + 1` frames ride free (depth waiting + one in
        // service); after that the producer pays the 2 s/frame surplus.
        assert_eq!(stalls[0], 0.0);
        assert_eq!(stalls[1], 0.0);
        for s in &stalls[4..] {
            assert!((s - 2.0).abs() < 1e-9, "steady-state stall 2 s, got {s}");
        }
        let total: f64 = stalls.iter().sum();
        assert!(total > 0.0);
    }

    /// A consumer faster than its producer never induces a stall.
    #[test]
    fn credit_flow_free_when_consumer_keeps_up() {
        let out = Runtime::new(2, NetModel::free()).run(|rank| {
            if rank.rank() == 0 {
                let mut tx = QueueSender::new(1, 0, 1, FlowControl::Credit);
                let mut total = 0.0;
                for k in 0..10u64 {
                    rank.advance(1.0);
                    total += tx.enqueue(rank, k);
                }
                total
            } else {
                let mut rx = QueueReceiver::new(0, 0, FlowControl::Credit);
                for _ in 0..10 {
                    let _ = rx.dequeue::<u64>(rank);
                    rank.advance(0.25);
                }
                0.0
            }
        });
        assert_eq!(out[0], 0.0, "no stall when the consumer keeps up");
    }

    /// Lossy flow never stalls the producer, and deferred dequeues leave
    /// the consumer clock untouched until it settles them itself.
    #[test]
    fn lossy_flow_never_stalls_and_defers_clock() {
        let out = Runtime::new(2, NetModel::free()).run(|rank| {
            if rank.rank() == 0 {
                let mut tx = QueueSender::new(1, 0, 1, FlowControl::Lossy);
                let mut total = 0.0;
                for k in 0..20u64 {
                    rank.advance(0.01);
                    total += tx.enqueue(rank, k);
                }
                total
            } else {
                let mut rx = QueueReceiver::new(0, 0, FlowControl::Lossy);
                let mut arrivals = Vec::new();
                for _ in 0..20 {
                    let d = rx.dequeue_deferred::<u64>(rank);
                    arrivals.push(d.arrival);
                    assert_eq!(
                        rank.clock(),
                        0.0,
                        "deferred dequeue must not move the clock"
                    );
                }
                assert!(
                    arrivals.windows(2).all(|w| w[1] >= w[0]),
                    "arrivals are monotone"
                );
                rank.merge_clock_to(*arrivals.last().unwrap());
                rank.clock()
            }
        });
        assert_eq!(out[0], 0.0, "lossy producers never stall");
    }

    /// Messages keep their payloads and order through the queue, and the
    /// wire/ingest charges follow the ordinary NetModel accounting.
    #[test]
    fn queue_charges_netmodel_costs() {
        let net = NetModel {
            latency: 1e-3,
            bandwidth: 1e6,
            ..NetModel::free()
        };
        let out = Runtime::new(2, net).run(|rank| {
            if rank.rank() == 0 {
                let mut tx = QueueSender::new(1, 0, 4, FlowControl::Credit);
                for k in 0..3 {
                    tx.enqueue(rank, vec![k as f32; 1000]); // 4000 B each
                }
                Vec::new()
            } else {
                let mut rx = QueueReceiver::new(0, 0, FlowControl::Credit);
                (0..3)
                    .map(|_| rx.dequeue::<Vec<f32>>(rank).msg[0])
                    .collect::<Vec<f32>>()
            }
        });
        assert_eq!(out[1], vec![0.0, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "queue depth must be at least one")]
    fn zero_depth_rejected() {
        let _ = QueueSender::new(0, 0, 0, FlowControl::Credit);
    }

    /// A request/reply round trip prices the full virtual path: the
    /// client's clock after the reply reflects the server's service time.
    #[test]
    fn serve_round_trip_accounts_service_time() {
        let out = Runtime::new(2, NetModel::free()).run(|rank| {
            if rank.rank() == 0 {
                let mut ep = ServeClient::new(1, 0);
                let t0 = rank.clock();
                ep.send_request(rank, 7u64);
                let d = ep.recv_reply::<u64>(rank);
                assert_eq!(d.msg, 14);
                assert_eq!(ep.outstanding(), 0);
                rank.clock() - t0
            } else {
                let mut ep = ServeServer::new(0, 0);
                let q = ep.recv_request::<u64>(rank);
                rank.advance(3.0); // service time
                ep.send_reply(rank, q.msg * 2);
                assert_eq!(ep.pending(), 0);
                0.0
            }
        });
        assert!(
            (out[0] - 3.0).abs() < 1e-9,
            "round-trip latency must carry the 3 s service time, got {}",
            out[0]
        );
    }

    /// A server deferring its reply makes the client wait in virtual time.
    #[test]
    fn deferred_replies_cost_the_client_virtual_time() {
        let out = Runtime::new(2, NetModel::free()).run(|rank| {
            if rank.rank() == 0 {
                let mut ep = ServeClient::new(1, 0);
                ep.send_request(rank, ());
                ep.send_request(rank, ());
                let a = ep.recv_reply::<u64>(rank);
                let t_first = rank.clock();
                let b = ep.recv_reply::<u64>(rank);
                assert_eq!((a.msg, b.msg), (0, 1));
                (t_first, rank.clock())
            } else {
                let mut ep = ServeServer::new(0, 0);
                let _ = ep.recv_request::<()>(rank);
                let _ = ep.recv_request::<()>(rank);
                ep.send_reply(rank, 0u64);
                rank.advance(10.0); // sit on the second reply
                ep.send_reply(rank, 1u64);
                (0.0, 0.0)
            }
        });
        let (t_first, t_second) = out[0];
        assert!(t_first < 1.0, "first reply is immediate");
        assert!(
            t_second >= 10.0,
            "deferred reply must arrive 10 virtual seconds later, got {t_second}"
        );
    }

    /// Two clients of one server stay isolated: each sees only its own
    /// replies, and the server's fixed receive order is deterministic.
    #[test]
    fn serve_clients_are_isolated() {
        let out = Runtime::new(3, NetModel::free()).run(|rank| {
            if rank.rank() < 2 {
                let mut ep = ServeClient::new(2, 0);
                ep.send_request(rank, rank.rank() as u64);
                ep.recv_reply::<u64>(rank).msg
            } else {
                let mut eps: Vec<ServeServer> = (0..2).map(|c| ServeServer::new(c, 0)).collect();
                // Fixed order: client 1 first, then client 0.
                let q1 = eps[1].recv_request::<u64>(rank).msg;
                eps[1].send_reply(rank, q1 * 100);
                let q0 = eps[0].recv_request::<u64>(rank).msg;
                eps[0].send_reply(rank, q0 * 100);
                0
            }
        });
        assert_eq!(&out[..2], &[0, 100]);
    }

    #[test]
    #[should_panic(expected = "no received request to reply to")]
    fn reply_without_request_rejected() {
        Runtime::new(2, NetModel::free()).run(|rank| {
            if rank.rank() == 1 {
                let mut ep = ServeServer::new(0, 0);
                ep.send_reply(rank, 1u64);
            }
        });
    }

    /// Serve endpoints and stage queues between the same pair of ranks
    /// never collide: their reserved tag ranges are disjoint.
    #[test]
    fn serve_and_stage_tags_are_disjoint() {
        const {
            assert!(Tag::SERVE_BASE < Tag::STAGE_BASE - 2 * (MAX_CHANNEL - 1) - 1);
        }
        let out = Runtime::new(2, NetModel::free()).run(|rank| {
            if rank.rank() == 0 {
                let mut tx = QueueSender::new(1, 0, 2, FlowControl::Credit);
                let mut ep = ServeClient::new(1, 0);
                ep.send_request(rank, 5u64);
                tx.enqueue(rank, 77u64);
                ep.recv_reply::<u64>(rank).msg
            } else {
                let mut rx = QueueReceiver::new(0, 0, FlowControl::Credit);
                let mut ep = ServeServer::new(0, 0);
                let q = ep.recv_request::<u64>(rank).msg;
                let d = rx.dequeue::<u64>(rank).msg;
                ep.send_reply(rank, q + d);
                0
            }
        });
        assert_eq!(out[0], 82);
    }

    /// Two channels between the same pair of ranks stay independent.
    #[test]
    fn channels_are_independent() {
        let out = Runtime::new(2, NetModel::free()).run(|rank| {
            if rank.rank() == 0 {
                let mut a = QueueSender::new(1, 0, 2, FlowControl::Credit);
                let mut b = QueueSender::new(1, 1, 2, FlowControl::Credit);
                a.enqueue(rank, 10u64);
                b.enqueue(rank, 20u64);
                a.enqueue(rank, 11u64);
                0
            } else {
                let mut a = QueueReceiver::new(0, 0, FlowControl::Credit);
                let mut b = QueueReceiver::new(0, 1, FlowControl::Credit);
                let b0 = b.dequeue::<u64>(rank).msg;
                let a0 = a.dequeue::<u64>(rank).msg;
                let a1 = a.dequeue::<u64>(rank).msg;
                assert_eq!((a0, a1, b0), (10, 11, 20));
                1
            }
        });
        assert_eq!(out, vec![0, 1]);
    }
}

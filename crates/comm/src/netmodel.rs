//! Latency + bandwidth network cost model.
//!
//! Virtual communication time is `latency + bytes / bandwidth` per message,
//! with standard log-tree factors for collectives. The default constants are
//! Gemini-like (Blue Waters' 3D-torus interconnect): a few microseconds of
//! latency and multi-GB/s per-link bandwidth, which reproduces the paper's
//! observation that redistribution costs ~1 s while rendering costs tens to
//! hundreds of seconds (§IV-D).

/// Cost model of the virtual interconnect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetModel {
    /// One-way small-message latency (seconds).
    pub latency: f64,
    /// Point-to-point bandwidth (bytes/second).
    pub bandwidth: f64,
    /// Fixed software overhead charged to a sender per message (seconds).
    pub send_overhead: f64,
    /// Multiplier applied to byte counts before the bandwidth/ingest terms.
    /// Experiments that run a 1:5-per-axis scaled dataset set this to 125
    /// so the virtual network moves full-scale volumes (DESIGN.md §2) —
    /// the communication analogue of the render model's per-triangle
    /// calibration.
    pub byte_scale: f64,
    /// Receiver-side software cost per (scaled) byte: deserialization and
    /// dataset ingestion. Charged *additively* on the receiver, so many
    /// incoming messages serialize — which is what makes the paper's
    /// redistribution cost ~1 s rather than a pure wire-time estimate.
    pub ingest_per_byte: f64,
}

impl NetModel {
    /// Gemini-like constants (Blue Waters): ~1.5 µs latency, ~4.7 GB/s
    /// per-direction link bandwidth. Pure wire model (no scaling/ingest).
    pub fn blue_waters() -> Self {
        Self {
            latency: 1.5e-6,
            bandwidth: 4.7e9,
            send_overhead: 0.3e-6,
            byte_scale: 1.0,
            ingest_per_byte: 0.0,
        }
    }

    /// A deliberately slow network (commodity GigE-like) used by the
    /// "platforms with lower network performance" discussion in §VI.
    pub fn gigabit_ethernet() -> Self {
        Self {
            latency: 50e-6,
            bandwidth: 117e6,
            send_overhead: 5e-6,
            byte_scale: 1.0,
            ingest_per_byte: 0.0,
        }
    }

    /// Zero-cost network, useful in unit tests that only check plumbing.
    pub fn free() -> Self {
        Self {
            latency: 0.0,
            bandwidth: f64::INFINITY,
            send_overhead: 0.0,
            byte_scale: 1.0,
            ingest_per_byte: 0.0,
        }
    }

    /// Calibration for the 1:5-scale paper dataset: full-scale byte volumes
    /// (125×) plus the ingest cost that reproduces the paper's measured
    /// redistribution time (~1.2 s at 64 ranks when nothing is reduced).
    pub fn for_paper_scale(mut self) -> Self {
        self.byte_scale = 125.0;
        self.ingest_per_byte = 1.05e-8;
        self
    }

    /// Scaled byte count used by bandwidth and ingest terms.
    #[inline]
    pub fn scaled(&self, bytes: usize) -> f64 {
        bytes as f64 * self.byte_scale
    }

    /// Receiver-side software time for a message of `bytes`.
    #[inline]
    pub fn ingest(&self, bytes: usize) -> f64 {
        self.scaled(bytes) * self.ingest_per_byte
    }

    /// Wire time for one point-to-point message of `bytes`.
    #[inline]
    pub fn p2p(&self, bytes: usize) -> f64 {
        self.latency + self.scaled(bytes) / self.bandwidth
    }

    /// `ceil(log2(n))`, the depth of a binomial communication tree.
    #[inline]
    pub fn tree_depth(n: usize) -> u32 {
        debug_assert!(n > 0);
        usize::BITS - (n - 1).leading_zeros()
    }

    /// Barrier: a dissemination barrier of small messages.
    pub fn barrier(&self, nranks: usize) -> f64 {
        Self::tree_depth(nranks) as f64 * self.latency
    }

    /// Broadcast of `bytes` from one root (binomial tree). Metadata-class
    /// traffic: raw bytes, like the other collectives.
    pub fn broadcast(&self, nranks: usize, bytes: usize) -> f64 {
        Self::tree_depth(nranks) as f64 * (self.latency + bytes as f64 / self.bandwidth)
    }

    /// Gather/allgather where `total_bytes` is the sum over all ranks
    /// (ring model: latency term is linear in tree depth, bandwidth term
    /// moves `(n-1)/n` of the data through each rank).
    ///
    /// Collectives carry *metadata* (scores, counters), whose volume does
    /// not grow with the simulated data scale — so collective formulas use
    /// raw bytes, without [`NetModel::byte_scale`]/ingest. Bulk block data
    /// moves through point-to-point messages, which do carry them.
    pub fn allgather(&self, nranks: usize, total_bytes: usize) -> f64 {
        if nranks <= 1 {
            return 0.0;
        }
        let frac = (nranks - 1) as f64 / nranks as f64;
        Self::tree_depth(nranks) as f64 * self.latency + frac * total_bytes as f64 / self.bandwidth
    }

    /// Reduce/allreduce of `bytes` per rank (Rabenseifner-style model:
    /// reduce-scatter + allgather, ~2× allgather bandwidth term).
    pub fn allreduce(&self, nranks: usize, bytes: usize) -> f64 {
        if nranks <= 1 {
            return 0.0;
        }
        let frac = (nranks - 1) as f64 / nranks as f64;
        2.0 * (Self::tree_depth(nranks) as f64 * self.latency
            + frac * bytes as f64 / self.bandwidth)
    }

    /// Personalized all-to-all where `max_outgoing_bytes` is the largest
    /// per-rank outgoing volume. Pairwise-exchange model: `n-1` rounds of
    /// latency, bandwidth bound by the busiest rank. Unlike the other
    /// collective formulas this one describes a *data* exchange, so it
    /// carries the byte-scale and ingest calibration.
    pub fn alltoall(&self, nranks: usize, max_outgoing_bytes: usize) -> f64 {
        if nranks <= 1 {
            return 0.0;
        }
        (nranks - 1) as f64 * self.latency
            + self.scaled(max_outgoing_bytes) / self.bandwidth
            + self.ingest(max_outgoing_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_depth() {
        assert_eq!(NetModel::tree_depth(1), 0);
        assert_eq!(NetModel::tree_depth(2), 1);
        assert_eq!(NetModel::tree_depth(3), 2);
        assert_eq!(NetModel::tree_depth(4), 2);
        assert_eq!(NetModel::tree_depth(64), 6);
        assert_eq!(NetModel::tree_depth(400), 9);
    }

    #[test]
    fn p2p_cost_monotone_in_bytes() {
        let n = NetModel::blue_waters();
        assert!(n.p2p(1 << 20) > n.p2p(1 << 10));
        assert!(n.p2p(0) >= n.latency);
    }

    #[test]
    fn collective_costs_scale_with_ranks() {
        let n = NetModel::blue_waters();
        assert!(n.barrier(400) > n.barrier(64));
        assert!(n.broadcast(400, 1024) > n.broadcast(64, 1024));
        assert_eq!(n.allgather(1, 1024), 0.0);
        assert!(n.allreduce(64, 1024) > 0.0);
    }

    #[test]
    fn free_network_is_free() {
        let n = NetModel::free();
        assert_eq!(n.p2p(1 << 30), 0.0);
        assert_eq!(n.alltoall(64, 1 << 30), 0.0);
    }

    #[test]
    fn redistribution_magnitude_matches_paper() {
        // Paper §IV-D: exchanging the storm's blocks costs ~1 s on Blue
        // Waters. At paper calibration, a 64-rank exchange of ~0.9 MB of
        // scaled data per rank (= ~114 MB full-scale) lands near 1.2 s.
        let n = NetModel::blue_waters().for_paper_scale();
        let t = n.alltoall(64, 920_000);
        assert!(t > 0.5 && t < 2.5, "t = {t}");
        // The pure wire model stays far below the software-inclusive time.
        let wire = NetModel::blue_waters().alltoall(64, 920_000);
        assert!(wire < 0.01, "wire = {wire}");
    }

    #[test]
    fn ingest_serializes_receives() {
        let n = NetModel::blue_waters().for_paper_scale();
        // 98 incoming full blocks of ~9.2 KB each: ingest dominates and
        // accumulates per message.
        let one = n.ingest(9200);
        assert!((one - 9200.0 * 125.0 * 1.05e-8).abs() < 1e-12);
        assert!(
            98.0 * one > 1.0 && 98.0 * one < 1.5,
            "total = {}",
            98.0 * one
        );
    }
}

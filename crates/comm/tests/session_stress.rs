//! Session stress test: many sequential runs with randomized rank panic
//! injection. The contract under test is the session's failure story —
//! every run either **completes** or **panics and poisons the session**;
//! nothing is allowed to deadlock past the configured receive timeout,
//! no matter where in the SPMD workload the panic lands (before a
//! collective, between a collective and the p2p ring, or after a
//! receive).
//!
//! All randomness comes from the in-tree seeded PRNG, so a failure here
//! replays deterministically.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use apc_comm::{
    FlowControl, NetModel, QueueReceiver, QueueSender, Runtime, ServeClient, ServeServer, Tag,
};
use apc_par::SplitMix64;

const ROUNDS: usize = 10;
/// Short so stranded-peer rounds resolve quickly; the workload itself
/// needs microseconds.
const TIMEOUT: Duration = Duration::from_millis(400);

/// One SPMD job: an allreduce, a ring exchange, a barrier — with an
/// optional panic injected at one of three sites on one victim rank.
fn job(rank: &mut apc_comm::Rank, inject_site: Option<(usize, usize)>) -> (u64, u64) {
    let r = rank.rank();
    let n = rank.nranks();
    let boom = |site: usize| {
        if inject_site == Some((r, site)) {
            panic!("injected panic on rank {r} at site {site}");
        }
    };
    boom(0); // before the collective: peers strand in the barrier
    let sum = rank.allreduce(r as u64 + 1, |a, b| a + b);
    boom(1); // between collective and ring: peers strand in recv
    rank.send((r + 1) % n, Tag(7), r as u64);
    let left = rank.recv::<u64>((r + n - 1) % n, Tag(7));
    boom(2); // after the exchange: peers strand in the closing barrier
    rank.barrier();
    (sum, left)
}

#[test]
fn randomized_rank_panics_complete_or_poison_never_deadlock() {
    let mut rng = SplitMix64::new(0x5E55_1011);
    let overall = Instant::now();
    let mut injected_total = 0;
    let mut clean_total = 0;

    for round in 0..ROUNDS {
        let nranks = 2 + rng.below(4); // 2..=5 ranks
        let mut session = Runtime::new(nranks, NetModel::free())
            .deadlock_timeout(TIMEOUT)
            .session();
        let runs = 1 + rng.below(8);
        for run_idx in 0..runs {
            // ~1/3 of runs sabotage one rank at a random site.
            let inject_site = (rng.below(3) == 0).then(|| (rng.below(nranks), rng.below(3)));
            let t0 = Instant::now();
            let result = catch_unwind(AssertUnwindSafe(|| {
                session.run(|rank| job(rank, inject_site))
            }));
            let elapsed = t0.elapsed();
            // The hard bound: no run may block past the deadlock timeout
            // (plus generous slack for an oversubscribed CI box). A hang
            // here would previously have been "wait for APC_RECV_TIMEOUT
            // or forever"; the timeout barrier turns it into a panic.
            assert!(
                elapsed < Duration::from_secs(30),
                "round {round} run {run_idx} blocked for {elapsed:?}"
            );
            match inject_site {
                Some(_) => {
                    injected_total += 1;
                    assert!(
                        result.is_err(),
                        "round {round} run {run_idx}: injected panic did not propagate"
                    );
                    assert!(session.is_poisoned(), "panic must poison the session");
                    break; // poisoned sessions take no further runs
                }
                None => {
                    clean_total += 1;
                    let out = result.unwrap_or_else(|_| {
                        panic!("round {round} run {run_idx}: clean run failed")
                    });
                    let expect_sum = (nranks as u64 * (nranks as u64 + 1)) / 2;
                    for (r, &(sum, left)) in out.iter().enumerate() {
                        assert_eq!(sum, expect_sum, "allreduce wrong on rank {r}");
                        assert_eq!(
                            left,
                            ((r + nranks - 1) % nranks) as u64,
                            "ring value wrong on rank {r}"
                        );
                    }
                }
            }
        }
        if session.is_poisoned() {
            // A poisoned session refuses instantly — it must not hang or
            // limp along with a broken barrier.
            let t0 = Instant::now();
            let refused = catch_unwind(AssertUnwindSafe(|| session.run(|_| ())));
            assert!(refused.is_err(), "poisoned session accepted a run");
            assert!(
                t0.elapsed() < Duration::from_secs(1),
                "refusal must be immediate"
            );
        }
    }

    assert!(
        injected_total > 0,
        "seed never injected a panic — stress test is vacuous"
    );
    assert!(
        clean_total > 0,
        "seed never ran a clean job — stress test is vacuous"
    );
    assert!(
        overall.elapsed() < Duration::from_secs(120),
        "stress suite exceeded its wall budget: {:?}",
        overall.elapsed()
    );
}

/// The staged-queue failure story: simulation ranks feed a stager through
/// credit-flow bounded queues; the stager panics after consuming one
/// frame. The producers are then stranded waiting for credits that will
/// never come — exactly the shape of a dead helper core. The
/// `APC_RECV_TIMEOUT` deadlock machinery must turn that into a loud panic
/// within the timeout (never a hang), the panic must poison the session,
/// and a fresh session must recover.
#[test]
fn stager_panic_fails_blocked_producers_instead_of_stranding_them() {
    const NRANKS: usize = 4; // ranks 0..3 produce, rank 3 stages
    const FRAMES: usize = 5;
    let runtime = Runtime::new(NRANKS, NetModel::free()).deadlock_timeout(TIMEOUT);
    let mut session = runtime.session();

    let t0 = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        session.run(|rank| {
            let r = rank.rank();
            if r < NRANKS - 1 {
                // Producer: depth-1 credited queue to the stager. Frame 2
                // needs the credit for frame 1, which the dead stager
                // never sends — the recv must time out, not hang.
                let mut tx = QueueSender::new(NRANKS - 1, 0, 1, FlowControl::Credit);
                for k in 0..FRAMES as u64 {
                    tx.enqueue(rank, vec![k as f32; 64]);
                }
            } else {
                let mut rxs: Vec<QueueReceiver> = (0..NRANKS - 1)
                    .map(|src| QueueReceiver::new(src, 0, FlowControl::Credit))
                    .collect();
                for rx in &mut rxs {
                    let _ = rx.dequeue::<Vec<f32>>(rank);
                }
                panic!("stager died mid-run");
            }
        })
    }));
    let elapsed = t0.elapsed();
    assert!(result.is_err(), "the run must fail, not complete");
    assert!(
        elapsed < Duration::from_secs(30),
        "blocked producers must fail within the deadlock timeout, took {elapsed:?}"
    );
    assert!(session.is_poisoned(), "a dead stager poisons the session");

    // Recovery: drop the poisoned session, a fresh one works.
    drop(session);
    let mut fresh = runtime.session();
    let sums = fresh.run(|rank| rank.allreduce(1u64, |a, b| a + b));
    assert_eq!(sums, vec![NRANKS as u64; NRANKS]);
}

/// The frame-serving failure story, server side: a serving stager dies
/// between taking a request and answering it. The client is stranded in
/// `recv_reply` — the deadlock machinery must fail it loudly within the
/// timeout, the panic must poison the session, and a fresh session must
/// recover.
#[test]
fn server_panic_mid_request_fails_waiting_clients_not_strands_them() {
    let runtime = Runtime::new(3, NetModel::free()).deadlock_timeout(TIMEOUT);
    let mut session = runtime.session();

    let t0 = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        session.run(|rank| {
            match rank.rank() {
                0 | 1 => {
                    // Clients: first round trip completes, the second
                    // request is never answered.
                    let mut ep = ServeClient::new(2, 0);
                    ep.send_request(rank, 1u64);
                    let _ = ep.recv_reply::<u64>(rank);
                    ep.send_request(rank, 2u64);
                    let _ = ep.recv_reply::<u64>(rank); // strands here
                }
                _ => {
                    let mut eps: Vec<ServeServer> =
                        (0..2).map(|c| ServeServer::new(c, 0)).collect();
                    for ep in &mut eps {
                        let q = ep.recv_request::<u64>(rank).msg;
                        ep.send_reply(rank, q);
                    }
                    // Take round two's requests, answer nothing.
                    for ep in &mut eps {
                        let _ = ep.recv_request::<u64>(rank);
                    }
                    panic!("server died mid-request");
                }
            }
        })
    }));
    assert!(result.is_err(), "the run must fail, not complete");
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "stranded clients must fail within the deadlock timeout"
    );
    assert!(session.is_poisoned(), "a dead server poisons the session");

    drop(session);
    let mut fresh = runtime.session();
    let sums = fresh.run(|rank| rank.allreduce(1u64, |a, b| a + b));
    assert_eq!(sums, vec![3; 3]);
}

/// The frame-serving failure story, client side: a client dies after one
/// round trip while its server still expects another request. The server
/// is stranded in `recv_request` — loud failure within the timeout,
/// poisoned session, fresh-session recovery.
#[test]
fn client_panic_mid_request_fails_the_server_not_strands_it() {
    let runtime = Runtime::new(2, NetModel::free()).deadlock_timeout(TIMEOUT);
    let mut session = runtime.session();

    let t0 = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        session.run(|rank| {
            if rank.rank() == 0 {
                let mut ep = ServeClient::new(1, 0);
                ep.send_request(rank, 7u64);
                let _ = ep.recv_reply::<u64>(rank);
                panic!("client died mid-conversation");
            } else {
                let mut ep = ServeServer::new(0, 0);
                let q = ep.recv_request::<u64>(rank).msg;
                ep.send_reply(rank, q);
                // The second request never comes.
                let _ = ep.recv_request::<u64>(rank);
            }
        })
    }));
    assert!(result.is_err(), "the run must fail, not complete");
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "a stranded server must fail within the deadlock timeout"
    );
    assert!(session.is_poisoned(), "a dead client poisons the session");

    drop(session);
    let mut fresh = runtime.session();
    let out = fresh.run(|rank| rank.rank());
    assert_eq!(out, vec![0, 1]);
}

/// The sharded-store failure story: ranks read their chunks out of one
/// shared shard container via byte-range partial reads, then meet in a
/// barrier. One rank panics mid-read — after fetching its bytes but
/// before the rendezvous — so its peers are stranded in the barrier.
/// The `APC_RECV_TIMEOUT` deadlock machinery must fail them within the
/// timeout, the panic must poison the session, and a fresh session must
/// replay the **same shard files** successfully: shard state lives in
/// the store, not the session, so rank death never corrupts it.
#[test]
fn rank_panic_mid_shard_read_poisons_and_recovers() {
    use apc_store::{DirStore, ShardReader, ShardWriter};

    const NRANKS: usize = 4;
    let root = std::env::temp_dir()
        .join("apc_session_stress_tests")
        .join("shard-read-panic");
    let _ = std::fs::remove_dir_all(&root);
    let store = DirStore::create(&root).unwrap();
    let mut writer = ShardWriter::new();
    let payload_of = |r: usize| vec![r as u8 ^ 0x5C; 512];
    for r in 0..NRANKS {
        writer
            .append(&format!("c/000100/{r:06}"), &payload_of(r))
            .unwrap();
    }
    writer.write_to(&store, "c/000100/s000000").unwrap();

    let runtime = Runtime::new(NRANKS, NetModel::free()).deadlock_timeout(TIMEOUT);
    let mut session = runtime.session();

    let read_own_chunk = |r: usize| {
        let reader = ShardReader::open(&store, "c/000100/s000000").unwrap();
        reader.read_range(&format!("c/000100/{r:06}")).unwrap()
    };

    let t0 = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        session.run(|rank| {
            let r = rank.rank();
            let bytes = read_own_chunk(r);
            if r == 2 {
                // Mid-read: the bytes are in hand but the barrier that
                // publishes them never happens — peers strand there.
                panic!("rank {r} died mid-shard-read");
            }
            rank.barrier();
            bytes
        })
    }));
    assert!(result.is_err(), "the run must fail, not complete");
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "stranded peers must fail within the deadlock timeout"
    );
    assert!(
        session.is_poisoned(),
        "a mid-read panic poisons the session"
    );

    // Recovery against the *same* shard files: the panic left the
    // container untouched, so a fresh session reads every chunk.
    drop(session);
    let mut fresh = runtime.session();
    let out = fresh.run(|rank| {
        let bytes = read_own_chunk(rank.rank());
        rank.barrier();
        bytes
    });
    for (r, bytes) in out.iter().enumerate() {
        assert_eq!(*bytes, payload_of(r), "rank {r} chunk damaged by the panic");
    }
}

#[test]
fn fresh_session_recovers_after_a_poisoned_one() {
    // The recovery story: a poisoned session is dropped (joining its
    // threads despite the dead rank) and a fresh session over the same
    // runtime configuration works normally.
    let runtime = Runtime::new(3, NetModel::free()).deadlock_timeout(TIMEOUT);
    let mut session = runtime.session();
    let poisoned = catch_unwind(AssertUnwindSafe(|| {
        session.run(|rank| {
            if rank.rank() == 1 {
                panic!("die");
            }
            rank.allreduce(1u64, |a, b| a + b)
        })
    }));
    assert!(poisoned.is_err());
    assert!(session.is_poisoned());
    drop(session); // must join cleanly, not hang

    let mut fresh = runtime.session();
    let sums = fresh.run(|rank| rank.allreduce(1u64, |a, b| a + b));
    assert_eq!(sums, vec![3; 3]);
}

/// The replay-pool failure story: a replay server dies mid-request (after
/// receiving a request, before replying), stranding every client waiting
/// on its replies. The `APC_RECV_TIMEOUT` machinery must fail the
/// stranded ranks within the timeout, the panic must poison the session —
/// and because the run lives in the store, not the session, a fresh
/// session must replay the same trace byte-identically, twice.
#[test]
fn replay_server_death_mid_request_poisons_and_fresh_session_replays() {
    use std::sync::Arc;

    use apc_core::run_replay_serving_in_session;
    use apc_replay::{small_run, ArrivalTrace, PoolParams, ReplayFault, RouteMode, TraceSpec};
    use apc_store::{MemStore, StoreBackend};

    let backend: Arc<dyn StoreBackend> = Arc::new(MemStore::new());
    let manifest = small_run(Arc::clone(&backend), "stress-replay");
    let trace = ArrivalTrace::generate(&TraceSpec::new(6, 6, 17), &manifest);
    let nranks = 4 + trace.clients;
    let runtime = Runtime::new(nranks, NetModel::free()).deadlock_timeout(TIMEOUT);

    let faulty = PoolParams::new(4, RouteMode::RoutedStealing).with_fault(ReplayFault {
        server: 1,
        after_requests: 2,
    });
    let mut session = runtime.session();
    let t0 = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        run_replay_serving_in_session(
            &mut session,
            Arc::clone(&backend),
            "stress-replay",
            &trace,
            &faulty,
            apc_par::ExecPolicy::Serial,
        )
    }));
    assert!(
        result.is_err(),
        "the faulted replay must fail, not complete"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "stranded replay clients must fail within the deadlock timeout"
    );
    assert!(
        session.is_poisoned(),
        "a dead replay server poisons the session"
    );
    drop(session); // must join cleanly, not hang

    // Fresh sessions over the same persisted run replay identically: the
    // panic touched session state only, never the store.
    let sound = PoolParams::new(4, RouteMode::RoutedStealing);
    let replay = |_: usize| {
        let mut fresh = runtime.session();
        run_replay_serving_in_session(
            &mut fresh,
            Arc::clone(&backend),
            "stress-replay",
            &trace,
            &sound,
            apc_par::ExecPolicy::Serial,
        )
    };
    let a = replay(0);
    let b = replay(1);
    assert_eq!(a, b, "fresh sessions must replay byte-identically");
    assert_eq!(
        a.requests.len(),
        trace.len(),
        "the recovered replay answers every recorded arrival"
    );
}

/// Stealing under churn: the same bursty trace replayed many times over
/// one reused session, alternating `Serial` and `Threads(8)` for the
/// resolution pass, must produce one byte-identical result — stealing
/// decisions come from the recorded plan, never from thread timing.
#[test]
fn stealing_under_churn_is_byte_identical_across_exec_policies() {
    use std::sync::Arc;

    use apc_core::run_replay_serving_in_session;
    use apc_replay::{small_run, ArrivalTrace, PoolParams, RouteMode, TraceSpec};
    use apc_store::{MemStore, StoreBackend};

    let backend: Arc<dyn StoreBackend> = Arc::new(MemStore::new());
    let manifest = small_run(Arc::clone(&backend), "stress-churn");
    // Hard bursts so the plan actually steals.
    let spec = TraceSpec::new(16, 8, 29).with_intervals(1e-2, 5e-4);
    let trace = ArrivalTrace::generate(&spec, &manifest);
    let params = PoolParams::new(4, RouteMode::RoutedStealing);
    let runtime = Runtime::new(4 + trace.clients, NetModel::free()).deadlock_timeout(TIMEOUT);
    let mut session = runtime.session();

    let mut runs = Vec::new();
    for i in 0..4 {
        let exec = if i % 2 == 0 {
            apc_par::ExecPolicy::Serial
        } else {
            apc_par::ExecPolicy::Threads(8)
        };
        runs.push(run_replay_serving_in_session(
            &mut session,
            Arc::clone(&backend),
            "stress-churn",
            &trace,
            &params,
            exec,
        ));
    }
    assert!(runs[0].stolen_total > 0, "burst load must trigger steals");
    for (i, run) in runs.iter().enumerate().skip(1) {
        assert_eq!(&runs[0], run, "run {i} diverged under churn");
    }
}

/// Adaptive-serving death: a stager running a tight latency budget dies
/// **mid-degraded-reply** — after the reply has been built and pushed
/// down the fidelity ladder, before the bytes go out — stranding its
/// clients waiting on replies. The `APC_RECV_TIMEOUT` machinery must
/// fail the stranded ranks within the timeout and the panic must poison
/// the session; sound fresh sessions over the same configuration then
/// run byte-identically, proving the fault touched session state only.
#[test]
fn stager_death_mid_degraded_reply_poisons_within_recv_timeout() {
    use std::sync::Arc;

    use apc_cm1::ReflectivityDataset;
    use apc_core::{
        run_staged_serving_in_session, BackpressurePolicy, FrameSink, PipelineConfig, ServeFault,
        ServeParams, ServePolicy, ServingRun, StagedParams,
    };
    use apc_store::{CodecKind, MemStore, StoreBackend};

    // The tight-budget serving fixture: per-reply service cost far above
    // the latency budget, so the per-stager controller walks the
    // fidelity ladder and replies are degraded well before the fault
    // fires. Stager 1 serves clients 1 and 3 (6 requests each): dying
    // after its 10th request lands deep in the run, when the controller
    // has long since pushed replies down the ladder.
    let dataset = ReflectivityDataset::tiny(8, 42).unwrap();
    let iters = dataset.sample_iterations(4);
    let serve_base = ServeParams::new(4, 6, ServePolicy::BestEffort)
        .with_think_time(0.1)
        .with_cache_bytes(2048)
        .with_serve_costs(0.05, 1e-4)
        .with_latency_budget(0.01);
    let config_for = |backend: &Arc<dyn StoreBackend>| {
        let sink = FrameSink::new(Arc::clone(backend), "stress-serve", CodecKind::Fpz);
        let params = StagedParams::new(2, 2, BackpressurePolicy::Block)
            .with_sim_compute(5.0)
            .with_persist(sink);
        PipelineConfig::default()
            .deterministic()
            .with_fixed_percent(40.0)
            .with_staged(params)
    };
    let runtime =
        Runtime::new(dataset.decomp().nranks(), NetModel::blue_waters()).deadlock_timeout(TIMEOUT);

    let faulty = serve_base.with_fault(ServeFault {
        stager: 1,
        after_requests: 10,
    });
    let backend: Arc<dyn StoreBackend> = Arc::new(MemStore::new());
    let config = config_for(&backend);
    let mut session = runtime.session();
    let t0 = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        run_staged_serving_in_session(
            &mut session,
            dataset.decomp(),
            dataset.coords(),
            &config,
            &iters,
            &faulty,
            &|it, rank| dataset.rank_blocks(it, rank),
        )
    }));
    assert!(
        result.is_err(),
        "the faulted serving run must fail, not complete"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "stranded serving clients must fail within the deadlock timeout"
    );
    assert!(session.is_poisoned(), "a dead stager poisons the session");
    drop(session); // must join cleanly, not hang

    // The fault touched session state only: sound fresh sessions over
    // the same configuration serve byte-identically — the same recovery
    // story as the replay-pool death above.
    let sound = |_: usize| -> ServingRun {
        let backend: Arc<dyn StoreBackend> = Arc::new(MemStore::new());
        let config = config_for(&backend);
        let mut fresh = runtime.session();
        let run = run_staged_serving_in_session(
            &mut fresh,
            dataset.decomp(),
            dataset.coords(),
            &config,
            &iters,
            &serve_base,
            &|it, rank| dataset.rank_blocks(it, rank),
        );
        assert!(!fresh.is_poisoned(), "a sound run must not poison");
        run
    };
    let a = sound(0);
    let b = sound(1);
    assert_eq!(a, b, "fresh sessions must serve byte-identically");
    assert!(
        a.degraded_replies() > 0,
        "the tight budget must actually degrade replies in the sound runs"
    );
}

//! Parallel compressor-ratio probe passes.
//!
//! Compressor metrics (paper §IV-B-e) score a block by *running the codec
//! on it* and taking the compressed-size ratio — by far the most expensive
//! scoring family (Table I). The probes are independent per array, so a
//! sweep over a rank's block set parallelizes embarrassingly; this module
//! is the batch entry point the execution layer ([`apc_par`]) plugs into.

use apc_par::{par_map, ExecPolicy, RecommendedConcurrency};

use crate::{FloatCodec, Shape};

/// How much parallelism a probe pass can use: codec kernels are heavy
/// enough that even two blocks per worker amortize fan-out.
pub fn recommended_concurrency(narrays: usize) -> RecommendedConcurrency {
    RecommendedConcurrency::per_items(narrays, 2)
}

/// Compressed-size ratio of every array under `codec`, in input order.
/// The serial path is exactly `arrays.iter().map(|a| codec.compressed_ratio(..))`.
pub fn probe_ratios<C: FloatCodec + Sync>(
    codec: &C,
    arrays: &[(Vec<f32>, Shape)],
    policy: ExecPolicy,
) -> Vec<f64> {
    let policy = policy.for_kernel(recommended_concurrency(arrays.len()));
    par_map(policy, arrays, |(data, shape)| {
        codec.compressed_ratio(data, *shape)
    })
}

/// Probe one array against several codecs concurrently (the
/// "which compressor ranks this block highest" ablation pass).
pub fn probe_codecs(
    codecs: &[&(dyn FloatCodec + Sync)],
    data: &[f32],
    shape: Shape,
    policy: ExecPolicy,
) -> Vec<f64> {
    let policy = policy.for_kernel(RecommendedConcurrency::per_items(codecs.len(), 1));
    par_map(policy, codecs, |codec| codec.compressed_ratio(data, shape))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fpz, Lz77, Zfpx};

    fn arrays(n: usize) -> Vec<(Vec<f32>, Shape)> {
        (0..n)
            .map(|i| {
                let shape = (6, 6, 6);
                let data = (0..216)
                    .map(|j| (((i * 216 + j) as f32) * 0.737).sin())
                    .collect();
                (data, shape)
            })
            .collect()
    }

    #[test]
    fn parallel_probe_matches_serial_bitwise() {
        let arrays = arrays(16);
        let serial = probe_ratios(&Fpz, &arrays, ExecPolicy::Serial);
        let par = probe_ratios(&Fpz, &arrays, ExecPolicy::Threads(8));
        assert_eq!(serial.len(), par.len());
        for (a, b) in serial.iter().zip(&par) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn probe_codecs_covers_all() {
        let (data, shape) = &arrays(1)[0];
        let codecs: Vec<&(dyn FloatCodec + Sync)> = vec![&Fpz, &Lz77, &Zfpx { tolerance: 1e-3 }];
        let ratios = probe_codecs(&codecs, data, *shape, ExecPolicy::Threads(3));
        assert_eq!(ratios.len(), 3);
        for r in ratios {
            assert!(r > 0.0);
        }
    }
}

//! `fpz`: a lossless fpzip-like predictive floating-point codec.
//!
//! Pipeline per sample (Lindstrom & Isenburg 2006 family):
//!
//! 1. map the IEEE-754 bits to an **order-preserving unsigned integer** so
//!    arithmetic on residuals behaves monotonically;
//! 2. predict each sample with the **3D Lorenzo predictor** (the
//!    inclusion–exclusion sum of the 7 previously-seen corner neighbors);
//! 3. zig-zag the signed residual and store it as a significant-bit-count
//!    (itself delta-coded against the previous sample's count with a
//!    unary zig-zag code — counts are locally stable) followed by the
//!    residual's payload bits.
//!
//! Smooth regions predict well ⇒ tiny residuals ⇒ few payload bits; noisy
//! storm cores predict poorly ⇒ ~32-bit residuals. The compressed size is
//! therefore a direct information measure, which is exactly how the paper's
//! FPZIP metric uses it.

use crate::bitio::{BitReader, BitWriter};
use crate::{CodecError, FloatCodec, Shape};

/// Order-preserving map from IEEE-754 `f32` bits to `u32`.
#[inline]
fn float_to_ordered(v: f32) -> u32 {
    let bits = v.to_bits();
    if bits & 0x8000_0000 != 0 {
        !bits
    } else {
        bits | 0x8000_0000
    }
}

/// Inverse of [`float_to_ordered`].
#[inline]
fn ordered_to_float(m: u32) -> f32 {
    let bits = if m & 0x8000_0000 != 0 {
        m & 0x7FFF_FFFF
    } else {
        !m
    };
    f32::from_bits(bits)
}

/// Zig-zag encode a signed (wrapping) residual to an unsigned magnitude.
#[inline]
fn zigzag(r: i32) -> u32 {
    ((r << 1) ^ (r >> 31)) as u32
}

#[inline]
fn unzigzag(m: u32) -> i32 {
    ((m >> 1) as i32) ^ -((m & 1) as i32)
}

/// 3D Lorenzo predictor over the ordered-integer field.
struct Lorenzo<'a> {
    data: &'a [u32],
    nx: usize,
    ny: usize,
}

impl<'a> Lorenzo<'a> {
    #[inline]
    fn at(&self, i: isize, j: isize, k: isize) -> u32 {
        if i < 0 || j < 0 || k < 0 {
            return 0;
        }
        self.data[i as usize + self.nx * (j as usize + self.ny * k as usize)]
    }

    /// Prediction for point `(i, j, k)` from its causal corner neighbors.
    #[inline]
    fn predict(&self, i: usize, j: usize, k: usize) -> u32 {
        let (i, j, k) = (i as isize, j as isize, k as isize);
        self.at(i - 1, j, k)
            .wrapping_add(self.at(i, j - 1, k))
            .wrapping_add(self.at(i, j, k - 1))
            .wrapping_sub(self.at(i - 1, j - 1, k))
            .wrapping_sub(self.at(i - 1, j, k - 1))
            .wrapping_sub(self.at(i, j - 1, k - 1))
            .wrapping_add(self.at(i - 1, j - 1, k - 1))
    }
}

/// The fpzip-like codec. Stateless; the default instance is what the FPZIP
/// scoring metric uses.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fpz;

impl FloatCodec for Fpz {
    fn name(&self) -> &'static str {
        "FPZIP"
    }

    fn encode(&self, data: &[f32], shape: Shape) -> Vec<u8> {
        let (nx, ny, nz) = shape;
        assert_eq!(data.len(), nx * ny * nz, "shape/data mismatch");
        let ordered: Vec<u32> = data.iter().map(|&v| float_to_ordered(v)).collect();
        let ctx = Lorenzo {
            data: &ordered,
            nx,
            ny,
        };
        let mut w = BitWriter::new();
        let mut idx = 0;
        let mut prev_nbits = 0i32;
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let pred = ctx.predict(i, j, k);
                    let residual = ordered[idx].wrapping_sub(pred) as i32;
                    let m = zigzag(residual);
                    let nbits = (32 - m.leading_zeros()) as i32;
                    // Counts are locally stable: delta-code them in unary.
                    w.write_unary(zigzag(nbits - prev_nbits));
                    prev_nbits = nbits;
                    if nbits > 1 {
                        // The MSB of an nbits-wide value is always 1; skip it.
                        w.write_bits((m & !(1 << (nbits - 1))) as u64, nbits as u32 - 1);
                    }
                    idx += 1;
                }
            }
        }
        w.into_bytes()
    }

    fn decode(&self, stream: &[u8], shape: Shape) -> Result<Vec<f32>, CodecError> {
        let (nx, ny, nz) = shape;
        let n = nx * ny * nz;
        let mut r = BitReader::new(stream);
        let mut ordered = vec![0u32; n];
        let mut idx = 0;
        let mut prev_nbits = 0i32;
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let delta = unzigzag(r.read_unary()?);
                    let nbits_i = prev_nbits + delta;
                    if !(0..=32).contains(&nbits_i) {
                        return Err(CodecError::Corrupt("residual width out of range"));
                    }
                    prev_nbits = nbits_i;
                    let nbits = nbits_i as u32;
                    let m = match nbits {
                        0 => 0u32,
                        1 => 1u32,
                        _ => (r.read_bits(nbits - 1)? as u32) | (1 << (nbits - 1)),
                    };
                    let residual = unzigzag(m);
                    let pred = Lorenzo {
                        data: &ordered,
                        nx,
                        ny,
                    }
                    .predict(i, j, k);
                    ordered[idx] = pred.wrapping_add(residual as u32);
                    idx += 1;
                }
            }
        }
        Ok(ordered.into_iter().map(ordered_to_float).collect())
    }

    fn is_lossless(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[f32], shape: Shape) {
        let codec = Fpz;
        let enc = codec.encode(data, shape);
        let dec = codec.decode(&enc, shape).unwrap();
        assert_eq!(dec.len(), data.len());
        for (a, b) in data.iter().zip(&dec) {
            assert_eq!(a.to_bits(), b.to_bits(), "lossless roundtrip violated");
        }
    }

    #[test]
    fn ordered_map_preserves_order() {
        let vals = [-1e30f32, -5.0, -1.0, -0.0, 0.0, 1e-20, 1.0, 5.0, 1e30];
        for w in vals.windows(2) {
            assert!(
                float_to_ordered(w[0]) <= float_to_ordered(w[1]),
                "{} vs {}",
                w[0],
                w[1]
            );
        }
        for v in vals {
            assert_eq!(ordered_to_float(float_to_ordered(v)).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for r in [-5i32, -1, 0, 1, 7, i32::MAX, i32::MIN] {
            assert_eq!(unzigzag(zigzag(r)), r);
        }
    }

    #[test]
    fn roundtrip_smooth() {
        let (nx, ny, nz) = (8, 7, 5);
        let data: Vec<f32> = (0..nx * ny * nz)
            .map(|idx| {
                let i = idx % nx;
                let j = (idx / nx) % ny;
                let k = idx / (nx * ny);
                (i as f32 * 0.3 + j as f32 * 0.1 - k as f32 * 0.2).sin()
            })
            .collect();
        roundtrip(&data, (nx, ny, nz));
    }

    #[test]
    fn roundtrip_constants_and_specials() {
        roundtrip(&[0.0; 27], (3, 3, 3));
        roundtrip(&[-42.5; 27], (3, 3, 3));
        let mut data = vec![1.0f32; 27];
        data[13] = f32::MAX;
        data[5] = f32::MIN_POSITIVE;
        data[20] = -0.0;
        roundtrip(&data, (3, 3, 3));
    }

    #[test]
    fn roundtrip_single_point_and_planes() {
        roundtrip(&[3.25], (1, 1, 1));
        let plane: Vec<f32> = (0..30).map(|i| i as f32 * 0.5).collect();
        roundtrip(&plane, (6, 5, 1));
        roundtrip(&plane, (1, 6, 5));
    }

    #[test]
    fn smooth_beats_noise() {
        let shape = (8, 8, 8);
        let smooth: Vec<f32> = (0..512).map(|i| (i as f32 * 0.01).sin()).collect();
        let noise: Vec<f32> = (0..512)
            .map(|i| ((i as f32 * 12.9898).sin() * 43758.547).fract() * 100.0)
            .collect();
        let c = Fpz;
        assert!(c.encode(&smooth, shape).len() < c.encode(&noise, shape).len());
    }

    #[test]
    fn constant_block_compresses_hard() {
        let shape = (8, 8, 8);
        let data = vec![7.5f32; 512];
        let ratio = Fpz.compressed_ratio(&data, shape);
        assert!(
            ratio < 0.1,
            "constant block ratio should be tiny, got {ratio}"
        );
    }

    #[test]
    fn truncated_stream_is_error() {
        let shape = (4, 4, 4);
        let data: Vec<f32> = (0..64)
            .map(|i| ((i as f32 * 12.9898).sin() * 43758.547).fract())
            .collect();
        let enc = Fpz.encode(&data, shape);
        assert!(Fpz.decode(&enc[..enc.len() / 2], shape).is_err());
    }
}

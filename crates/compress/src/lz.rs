//! `lz`: LZ77 over byte-plane-transposed float bytes.
//!
//! The paper's third compressor family ("LZ", after Gomez & Cappello 2013,
//! who improve float compression with binary masking before a byte
//! compressor). We apply the same idea as a byte-plane transposition: all
//! sign/exponent bytes first, then each mantissa byte plane. Smooth fields
//! make the high planes nearly constant and long LZ matches appear; noisy
//! storm cores do not — which is what makes the ratio a relevance score.
//! The core is a classic greedy LZ77 with a 4-byte rolling hash table,
//! 64 KiB window and a byte-oriented token format:
//!
//! * control byte `0x00..=0x7F` — literal run of `ctrl + 1` bytes follows;
//! * control byte `0x80..=0xFF` — match of length `(ctrl & 0x7F) + MIN_MATCH`
//!   at the 16-bit little-endian offset that follows.

use crate::{CodecError, FloatCodec, Shape};

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 0x7F + MIN_MATCH;
const MAX_LITERALS: usize = 0x80;
const WINDOW: usize = u16::MAX as usize;
const HASH_BITS: u32 = 15;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

fn compress_bytes(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut pos = 0;
    let mut lit_start = 0;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize, input: &[u8]| {
        let mut s = from;
        while s < to {
            let n = (to - s).min(MAX_LITERALS);
            out.push((n - 1) as u8);
            out.extend_from_slice(&input[s..s + n]);
            s += n;
        }
    };

    while pos < input.len() {
        let mut matched = 0usize;
        let mut offset = 0usize;
        if pos + MIN_MATCH <= input.len() {
            let h = hash4(&input[pos..]);
            let cand = head[h];
            head[h] = pos;
            if cand != usize::MAX && pos - cand <= WINDOW {
                let mut len = 0;
                let max = (input.len() - pos).min(MAX_MATCH);
                while len < max && input[cand + len] == input[pos + len] {
                    len += 1;
                }
                if len >= MIN_MATCH {
                    matched = len;
                    offset = pos - cand;
                }
            }
        }
        if matched >= MIN_MATCH {
            flush_literals(&mut out, lit_start, pos, input);
            out.push(0x80 | ((matched - MIN_MATCH) as u8));
            out.extend_from_slice(&(offset as u16).to_le_bytes());
            // Insert hashes inside the match so later data can reference it.
            let end = pos + matched;
            let mut p = pos + 1;
            while p + MIN_MATCH <= input.len() && p < end {
                head[hash4(&input[p..])] = p;
                p += 1;
            }
            pos = end;
            lit_start = pos;
        } else {
            pos += 1;
        }
    }
    flush_literals(&mut out, lit_start, input.len(), input);
    out
}

fn decompress_bytes(stream: &[u8], expected_len: usize) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::with_capacity(expected_len);
    let mut pos = 0;
    while pos < stream.len() {
        let ctrl = stream[pos];
        pos += 1;
        if ctrl < 0x80 {
            let n = ctrl as usize + 1;
            if pos + n > stream.len() {
                return Err(CodecError::Corrupt("literal run past end"));
            }
            out.extend_from_slice(&stream[pos..pos + n]);
            pos += n;
        } else {
            let len = (ctrl & 0x7F) as usize + MIN_MATCH;
            if pos + 2 > stream.len() {
                return Err(CodecError::Corrupt("match token truncated"));
            }
            let offset = u16::from_le_bytes([stream[pos], stream[pos + 1]]) as usize;
            pos += 2;
            if offset == 0 || offset > out.len() {
                return Err(CodecError::Corrupt("match offset out of range"));
            }
            let start = out.len() - offset;
            for i in 0..len {
                let b = out[start + i];
                out.push(b);
            }
        }
    }
    if out.len() != expected_len {
        // A stream that decodes cleanly but to the wrong length is a
        // corrupt/truncated stream, not a caller shape error — the caller's
        // shape is what `expected_len` came from.
        return Err(CodecError::Corrupt("decompressed length mismatch"));
    }
    Ok(out)
}

/// The LZ77 codec. Shape-agnostic (treats the array as a byte stream).
#[derive(Debug, Clone, Copy, Default)]
pub struct Lz77;

impl FloatCodec for Lz77 {
    fn name(&self) -> &'static str {
        "LZ"
    }

    fn encode(&self, data: &[f32], shape: Shape) -> Vec<u8> {
        let (nx, ny, nz) = shape;
        assert_eq!(data.len(), nx * ny * nz, "shape/data mismatch");
        // Byte-plane transposition, most significant plane first.
        let mut bytes = Vec::with_capacity(data.len() * 4);
        for plane in (0..4).rev() {
            for v in data {
                bytes.push(v.to_le_bytes()[plane]);
            }
        }
        compress_bytes(&bytes)
    }

    fn decode(&self, stream: &[u8], shape: Shape) -> Result<Vec<f32>, CodecError> {
        let (nx, ny, nz) = shape;
        let n = nx * ny * nz;
        let bytes = decompress_bytes(stream, n * 4)?;
        let mut out = vec![[0u8; 4]; n];
        for (p, plane) in (0..4).rev().enumerate() {
            for (i, dst) in out.iter_mut().enumerate() {
                dst[plane] = bytes[p * n + i];
            }
        }
        Ok(out.into_iter().map(f32::from_le_bytes).collect())
    }

    fn is_lossless(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[f32], shape: Shape) -> usize {
        let enc = Lz77.encode(data, shape);
        let dec = Lz77.decode(&enc, shape).unwrap();
        assert_eq!(data.len(), dec.len());
        for (a, b) in data.iter().zip(&dec) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        enc.len()
    }

    #[test]
    fn roundtrip_constant() {
        let n = roundtrip(&[3.5; 1000], (10, 10, 10));
        assert!(n < 200, "constant data should shrink a lot, got {n} bytes");
    }

    #[test]
    fn roundtrip_ramp_and_noise() {
        let ramp: Vec<f32> = (0..512).map(|i| i as f32).collect();
        roundtrip(&ramp, (8, 8, 8));
        let noise: Vec<f32> = (0..512)
            .map(|i| ((i as f32 * 12.9898).sin() * 43758.547).fract())
            .collect();
        let n = roundtrip(&noise, (8, 8, 8));
        // Incompressible data may expand slightly but never by more than
        // 1/128 (one control byte per 128 literals) plus slack.
        assert!(
            n <= 512 * 4 + 512 * 4 / 128 + 8,
            "noise expanded too much: {n}"
        );
    }

    #[test]
    fn roundtrip_empty_and_single() {
        roundtrip(&[], (0, 0, 0));
        roundtrip(&[42.0], (1, 1, 1));
    }

    #[test]
    fn repeating_pattern_compresses() {
        let pattern: Vec<f32> = (0..1024).map(|i| [1.0f32, -2.5, 7.125][i % 3]).collect();
        let n = roundtrip(&pattern, (16, 16, 4));
        assert!(n < 1024, "pattern should compress, got {n} bytes");
    }

    #[test]
    fn overlapping_match_decodes() {
        // RLE-style overlap: offset smaller than length.
        let stream = [0x00, 0xAB, 0x80 | 0x04, 0x01, 0x00]; // literal AB, match len 8 off 1
        let out = decompress_bytes(&stream, 9).unwrap();
        assert_eq!(out, vec![0xAB; 9]);
    }

    #[test]
    fn corrupt_streams_rejected() {
        assert!(
            decompress_bytes(&[0x05, 0x01], 6).is_err(),
            "literal run past end"
        );
        assert!(decompress_bytes(&[0x80], 4).is_err(), "truncated match");
        assert!(
            decompress_bytes(&[0x80, 0x05, 0x00], 4).is_err(),
            "offset into nothing"
        );
        let ok = decompress_bytes(&[0x00, 0x01], 1).unwrap();
        assert_eq!(ok, vec![0x01]);
        assert!(
            decompress_bytes(&[0x00, 0x01], 2).is_err(),
            "length mismatch"
        );
    }
}

//! `zfpx`: a fixed-accuracy zfp-like transform codec.
//!
//! Per 4×4×4 block (edge blocks padded by replication):
//!
//! 1. **block floating point**: align all 64 samples to the block's maximum
//!    exponent and quantize to signed integers with `Q` fraction bits;
//! 2. a separable, reversible **integer lifting transform** along x, y, z
//!    decorrelates the block (smooth content concentrates energy in a few
//!    coefficients);
//! 3. **embedded bit-plane coding** from the most significant plane down:
//!    significance bits for not-yet-significant coefficients (plus a sign on
//!    first significance) and refinement bits for the rest. Encoding stops
//!    at the plane where the remaining error drops below the requested
//!    absolute `tolerance`.
//!
//! The output size therefore *adapts to content*: flat blocks terminate
//! after a couple of planes, storm cores need most of them — which is what
//! makes the codec usable as a relevance score (paper §IV-B-e: "FPZIP and
//! ZFP also have knowledge of the fact that blocks are 3D arrays").

use crate::bitio::{BitReader, BitWriter};
use crate::{CodecError, FloatCodec, Shape};

/// Fraction bits used by block-floating-point quantization.
const Q: i32 = 20;
/// Highest bit plane that can carry data after the transform. The three
/// separable lifting passes can each roughly double a magnitude, so leave
/// six bits of headroom over the 2^Q quantization range.
const TOP_PLANE: i32 = Q + 6;

/// The zfp-like codec with an absolute error tolerance.
///
/// Lossy by design; two sanitizations keep adversarial inputs safe
/// (pinned by `tests/adversarial.rs`): non-finite samples are flushed to
/// zero at encode time, and blocks whose largest magnitude is subnormal
/// are stored as empty blocks.
#[derive(Debug, Clone, Copy)]
pub struct Zfpx {
    /// Absolute reconstruction tolerance (in data units).
    pub tolerance: f32,
}

impl Default for Zfpx {
    fn default() -> Self {
        // Tight enough that reflectivity (range ~[-60, 80] dBZ) keeps
        // sub-0.1 dBZ fidelity.
        Self { tolerance: 1e-2 }
    }
}

impl Zfpx {
    /// Map a reduction-pressure percent (0 = no pressure, 100 = shed
    /// everything) to an absolute tolerance, sweeping two decades
    /// geometrically: `1e-3 · 10^(p/25)` — 1e-3 (near-lossless for dBZ
    /// reflectivity) at zero pressure up to 1e-1 at 50 %. Pressure is
    /// clamped into [0, 100] and non-finite inputs saturate to the
    /// loosest tolerance, so the adaptive serving controller can feed
    /// its raw percent output straight in.
    pub fn graded_tolerance(percent: f64) -> f32 {
        if !percent.is_finite() {
            return Self::graded_tolerance(100.0);
        }
        let p = percent.clamp(0.0, 100.0);
        (1e-3 * 10f64.powf(p / 25.0)) as f32
    }

    /// A codec at the [`Zfpx::graded_tolerance`] for `percent`.
    pub fn graded(percent: f64) -> Self {
        Self {
            tolerance: Self::graded_tolerance(percent),
        }
    }
}

/// Forward 4-point reversible lifting transform.
#[inline]
fn lift_fwd(v: &mut [i64; 4]) {
    let [mut a, mut b, mut c, mut d] = *v;
    b -= a;
    a += b >> 1;
    d -= c;
    c += d >> 1;
    c -= a;
    a += c >> 1;
    d -= b;
    b += d >> 1;
    *v = [a, b, c, d];
}

/// Exact inverse of [`lift_fwd`].
#[inline]
fn lift_inv(v: &mut [i64; 4]) {
    let [mut a, mut b, mut c, mut d] = *v;
    b -= d >> 1;
    d += b;
    a -= c >> 1;
    c += a;
    c -= d >> 1;
    d += c;
    a -= b >> 1;
    b += a;
    *v = [a, b, c, d];
}

/// Apply the 1D lifting along each of the three axes of a 4×4×4 block.
fn transform_fwd(block: &mut [i64; 64]) {
    for axis in 0..3 {
        for u in 0..4 {
            for v in 0..4 {
                let mut line = [0i64; 4];
                for w in 0..4 {
                    line[w] = block[lane_index(axis, u, v, w)];
                }
                lift_fwd(&mut line);
                for w in 0..4 {
                    block[lane_index(axis, u, v, w)] = line[w];
                }
            }
        }
    }
}

fn transform_inv(block: &mut [i64; 64]) {
    for axis in (0..3).rev() {
        for u in 0..4 {
            for v in 0..4 {
                let mut line = [0i64; 4];
                for w in 0..4 {
                    line[w] = block[lane_index(axis, u, v, w)];
                }
                lift_inv(&mut line);
                for w in 0..4 {
                    block[lane_index(axis, u, v, w)] = line[w];
                }
            }
        }
    }
}

/// Linear index of the `w`-th element of the lane `(u, v)` along `axis`.
#[inline]
fn lane_index(axis: usize, u: usize, v: usize, w: usize) -> usize {
    match axis {
        0 => w + 4 * (u + 4 * v),
        1 => u + 4 * (w + 4 * v),
        _ => u + 4 * (v + 4 * w),
    }
}

/// Encode one transformed block's coefficients as embedded bit planes down
/// to `min_plane` (exclusive of planes below it).
///
/// Each plane writes (a) refinement bits for already-significant
/// coefficients, then (b) the *newly* significant positions as a sequence of
/// `1 + unary-gap + sign` records terminated by a single `0` — so planes
/// where nothing becomes significant cost one bit, which is what lets flat
/// blocks terminate almost immediately (zfp's group testing plays the same
/// role).
fn encode_planes(w: &mut BitWriter, coeffs: &[i64; 64], min_plane: i32) {
    let mag: Vec<u64> = coeffs.iter().map(|&c| c.unsigned_abs()).collect();
    let mut significant = [false; 64];
    let mut plane = TOP_PLANE;
    while plane >= min_plane && plane >= 0 {
        let bit = 1u64 << plane;
        for i in 0..64 {
            if significant[i] {
                w.write_bit(mag[i] & bit != 0);
            }
        }
        // Significance pass over the insignificant coefficients, in order.
        let insig: Vec<usize> = (0..64).filter(|&i| !significant[i]).collect();
        if insig.is_empty() {
            plane -= 1;
            continue;
        }
        let mut cursor = 0;
        loop {
            let next = insig[cursor..].iter().position(|&i| mag[i] & bit != 0);
            match next {
                None => {
                    w.write_bit(false);
                    break;
                }
                Some(gap) => {
                    w.write_bit(true);
                    w.write_unary(gap as u32);
                    let i = insig[cursor + gap];
                    w.write_bit(coeffs[i] < 0);
                    significant[i] = true;
                    cursor += gap + 1;
                    if cursor == insig.len() {
                        // Nothing left to test in this plane.
                        break;
                    }
                }
            }
        }
        plane -= 1;
    }
}

fn decode_planes(r: &mut BitReader<'_>, min_plane: i32) -> Result<[i64; 64], CodecError> {
    let mut mag = [0u64; 64];
    let mut neg = [false; 64];
    let mut significant = [false; 64];
    let mut plane = TOP_PLANE;
    while plane >= min_plane && plane >= 0 {
        let bit = 1u64 << plane;
        for i in 0..64 {
            if significant[i] && r.read_bit()? {
                mag[i] |= bit;
            }
        }
        let insig: Vec<usize> = (0..64).filter(|&i| !significant[i]).collect();
        let mut cursor = 0;
        while cursor < insig.len() {
            if !r.read_bit()? {
                break;
            }
            let gap = r.read_unary()? as usize;
            if cursor + gap >= insig.len() {
                return Err(CodecError::Corrupt("significance gap out of range"));
            }
            let i = insig[cursor + gap];
            significant[i] = true;
            mag[i] |= bit;
            neg[i] = r.read_bit()?;
            cursor += gap + 1;
        }
        plane -= 1;
    }
    let mut out = [0i64; 64];
    for i in 0..64 {
        // Mid-tread reconstruction: add half of the last coded plane for
        // significant coefficients to halve the truncation error.
        let mut m = mag[i] as i64;
        if significant[i] && min_plane > 0 {
            m += 1i64 << (min_plane - 1);
        }
        out[i] = if neg[i] { -m } else { m };
    }
    Ok(out)
}

impl Zfpx {
    /// The cut-off plane for a block with maximum exponent `emax`.
    fn min_plane(&self, emax: i32) -> i32 {
        if self.tolerance <= 0.0 {
            return 0;
        }
        // Quantized units: 1 ulp of the plane-p cut = 2^p * 2^emax / 2^Q.
        let p = (self.tolerance.log2().floor() as i32) + Q - emax;
        p.clamp(0, TOP_PLANE)
    }
}

impl FloatCodec for Zfpx {
    fn name(&self) -> &'static str {
        "ZFP"
    }

    fn encode(&self, data: &[f32], shape: Shape) -> Vec<u8> {
        let (nx, ny, nz) = shape;
        assert_eq!(data.len(), nx * ny * nz, "shape/data mismatch");
        let mut w = BitWriter::new();
        let bx = nx.div_ceil(4);
        let by = ny.div_ceil(4);
        let bz = nz.div_ceil(4);
        for kb in 0..bz {
            for jb in 0..by {
                for ib in 0..bx {
                    // Gather the (edge-replicated) 4×4×4 block. Non-finite
                    // samples are flushed to zero: the codec is lossy and
                    // block floating point has no exponent for NaN/±inf —
                    // letting them through would overflow the quantizer.
                    let mut samples = [0.0f32; 64];
                    for dz in 0..4 {
                        for dy in 0..4 {
                            for dx in 0..4 {
                                let i = (ib * 4 + dx).min(nx - 1);
                                let j = (jb * 4 + dy).min(ny - 1);
                                let k = (kb * 4 + dz).min(nz - 1);
                                let v = data[i + nx * (j + ny * k)];
                                samples[dx + 4 * (dy + 4 * dz)] =
                                    if v.is_finite() { v } else { 0.0 };
                            }
                        }
                    }
                    // Block floating point. An all-subnormal block is
                    // stored as empty: its emax would underflow the 9-bit
                    // biased exponent field, and |v| < 2^-126 is far below
                    // any meaningful tolerance anyway.
                    let amax = samples.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                    if amax < f32::MIN_POSITIVE {
                        w.write_bit(false); // empty-block flag
                        continue;
                    }
                    w.write_bit(true);
                    let emax = amax.log2().floor() as i32;
                    w.write_bits((emax + 127) as u64, 9);
                    let scale = (Q - emax) as f32;
                    let mut q = [0i64; 64];
                    for (dst, &s) in q.iter_mut().zip(samples.iter()) {
                        *dst = (s * scale.exp2()) as i64;
                    }
                    transform_fwd(&mut q);
                    encode_planes(&mut w, &q, self.min_plane(emax));
                }
            }
        }
        w.into_bytes()
    }

    fn decode(&self, stream: &[u8], shape: Shape) -> Result<Vec<f32>, CodecError> {
        let (nx, ny, nz) = shape;
        let mut out = vec![0.0f32; nx * ny * nz];
        let mut r = BitReader::new(stream);
        let bx = nx.div_ceil(4);
        let by = ny.div_ceil(4);
        let bz = nz.div_ceil(4);
        for kb in 0..bz {
            for jb in 0..by {
                for ib in 0..bx {
                    if !r.read_bit()? {
                        continue; // all-zero block
                    }
                    let emax = r.read_bits(9)? as i32 - 127;
                    let mut q = decode_planes(&mut r, self.min_plane(emax))?;
                    transform_inv(&mut q);
                    let scale = (emax - Q) as f32;
                    for dz in 0..4 {
                        for dy in 0..4 {
                            for dx in 0..4 {
                                let i = ib * 4 + dx;
                                let j = jb * 4 + dy;
                                let k = kb * 4 + dz;
                                if i < nx && j < ny && k < nz {
                                    out[i + nx * (j + ny * k)] =
                                        q[dx + 4 * (dy + 4 * dz)] as f32 * scale.exp2();
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    fn is_lossless(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifting_roundtrip() {
        let cases = [
            [0i64, 0, 0, 0],
            [1, 2, 3, 4],
            [-1000, 999, 7, -3],
            [1 << 20, -(1 << 20), 123456, -654321],
        ];
        for case in cases {
            let mut v = case;
            lift_fwd(&mut v);
            lift_inv(&mut v);
            assert_eq!(v, case);
        }
    }

    #[test]
    fn transform_roundtrip() {
        let mut block = [0i64; 64];
        for (i, b) in block.iter_mut().enumerate() {
            *b = (i as i64 * 37 % 1001) - 500;
        }
        let orig = block;
        transform_fwd(&mut block);
        transform_inv(&mut block);
        assert_eq!(block, orig);
    }

    #[test]
    fn transform_concentrates_smooth_energy() {
        // A linear ramp should have most energy in few coefficients.
        let mut block = [0i64; 64];
        for dz in 0..4usize {
            for dy in 0..4usize {
                for dx in 0..4usize {
                    block[dx + 4 * (dy + 4 * dz)] = (dx + dy + dz) as i64 * 1000;
                }
            }
        }
        transform_fwd(&mut block);
        let mut mags: Vec<i64> = block.iter().map(|c| c.abs()).collect();
        mags.sort_unstable_by(|a, b| b.cmp(a));
        let top4: i64 = mags[..4].iter().sum();
        let rest: i64 = mags[4..].iter().sum();
        assert!(top4 > rest, "top4={top4} rest={rest}");
    }

    fn max_err(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn reconstruction_within_tolerance() {
        let shape = (9, 6, 5); // deliberately non-multiple of 4
        let data: Vec<f32> = (0..shape.0 * shape.1 * shape.2)
            .map(|i| (i as f32 * 0.13).sin() * 60.0 + 10.0)
            .collect();
        for tol in [1.0f32, 0.1, 0.01] {
            let codec = Zfpx { tolerance: tol };
            let enc = codec.encode(&data, shape);
            let dec = codec.decode(&enc, shape).unwrap();
            let err = max_err(&data, &dec);
            // The separable lifting can amplify truncation error by a small
            // constant; 4× tolerance is a safe envelope.
            assert!(err <= 4.0 * tol, "tol {tol}: err {err}");
        }
    }

    #[test]
    fn zero_block_is_one_bit() {
        let codec = Zfpx::default();
        let enc = codec.encode(&[0.0; 64], (4, 4, 4));
        assert_eq!(enc.len(), 1);
        let dec = codec.decode(&enc, (4, 4, 4)).unwrap();
        assert!(dec.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn tighter_tolerance_costs_more_bits() {
        let shape = (8, 8, 8);
        let data: Vec<f32> = (0..512)
            .map(|i| ((i as f32 * 12.9898).sin() * 43758.547).fract() * 50.0)
            .collect();
        let loose = Zfpx { tolerance: 1.0 }.encode(&data, shape).len();
        let tight = Zfpx { tolerance: 1e-3 }.encode(&data, shape).len();
        assert!(tight > loose, "tight {tight} loose {loose}");
    }

    #[test]
    fn graded_tolerance_sweeps_two_decades_monotonically() {
        assert!((Zfpx::graded_tolerance(0.0) - 1e-3).abs() < 1e-9);
        assert!((Zfpx::graded_tolerance(50.0) - 1e-1).abs() < 1e-6);
        let mut prev = 0.0f32;
        for p in 0..=100 {
            let t = Zfpx::graded_tolerance(p as f64);
            assert!(t > prev, "tolerance must grow with pressure at {p}%");
            assert!(t.is_finite() && t > 0.0);
            prev = t;
        }
        // Out-of-range and non-finite pressure saturates, never panics.
        assert_eq!(Zfpx::graded_tolerance(-5.0), Zfpx::graded_tolerance(0.0));
        assert_eq!(Zfpx::graded_tolerance(1e9), Zfpx::graded_tolerance(100.0));
        assert_eq!(
            Zfpx::graded_tolerance(f64::NAN),
            Zfpx::graded_tolerance(100.0)
        );
        assert_eq!(Zfpx::graded(30.0).tolerance, Zfpx::graded_tolerance(30.0));
    }

    #[test]
    fn truncated_stream_is_error() {
        let shape = (8, 8, 8);
        let data: Vec<f32> = (0..512).map(|i| (i as f32 * 0.37).sin() * 30.0).collect();
        let enc = Zfpx::default().encode(&data, shape);
        assert!(Zfpx::default()
            .decode(&enc[..enc.len() / 3], shape)
            .is_err());
    }
}

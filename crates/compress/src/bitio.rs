//! Bit-granular I/O over byte buffers, shared by the codecs.

use crate::CodecError;

/// Append-only bit writer (LSB-first within each byte).
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits already used in the last byte of `buf` (0 ⇒ byte boundary).
    used: u32,
}

impl BitWriter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.used == 0 {
            self.buf.len() * 8
        } else {
            (self.buf.len() - 1) * 8 + self.used as usize
        }
    }

    /// Write the low `n` bits of `value` (n ≤ 64), LSB first.
    pub fn write_bits(&mut self, mut value: u64, mut n: u32) {
        debug_assert!(n <= 64);
        if n < 64 {
            value &= (1u64 << n) - 1;
        }
        while n > 0 {
            if self.used == 0 {
                self.buf.push(0);
                self.used = 0;
            }
            let free = 8 - self.used;
            let take = free.min(n);
            // apc-lint: allow(unwrap-in-lib): the `used == 0` branch above just pushed a byte
            let last = self.buf.last_mut().expect("buffer non-empty");
            *last |= ((value & ((1u64 << take) - 1)) as u8) << self.used;
            self.used = (self.used + take) % 8;
            // When the byte fills exactly, `used` wraps to 0 but the byte
            // stays in `buf`; the next write pushes a fresh byte.
            if self.used == 0 && take == free {
                // full byte consumed
            }
            value >>= take;
            n -= take;
        }
    }

    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u64, 1);
    }

    /// Unary code: `value` zero bits then a one bit.
    pub fn write_unary(&mut self, value: u32) {
        for _ in 0..value {
            self.write_bit(false);
        }
        self.write_bit(true);
    }

    /// Finish and return the byte buffer (final partial byte zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bit reader matching [`BitWriter`]'s layout.
#[derive(Debug)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bits remaining (counting zero padding in the final byte).
    pub fn remaining(&self) -> usize {
        self.buf.len() * 8 - self.pos
    }

    /// Read `n` bits (n ≤ 64), LSB first.
    pub fn read_bits(&mut self, n: u32) -> Result<u64, CodecError> {
        debug_assert!(n <= 64);
        if self.remaining() < n as usize {
            return Err(CodecError::Corrupt("bitstream underrun"));
        }
        let mut out = 0u64;
        let mut got = 0u32;
        while got < n {
            let byte = self.buf[self.pos / 8];
            let off = (self.pos % 8) as u32;
            let avail = 8 - off;
            let take = avail.min(n - got);
            let bits = ((byte >> off) as u64) & ((1u64 << take) - 1);
            out |= bits << got;
            got += take;
            self.pos += take as usize;
        }
        Ok(out)
    }

    pub fn read_bit(&mut self) -> Result<bool, CodecError> {
        Ok(self.read_bits(1)? != 0)
    }

    /// Read a unary code written by [`BitWriter::write_unary`].
    pub fn read_unary(&mut self) -> Result<u32, CodecError> {
        let mut count = 0u32;
        loop {
            if self.read_bit()? {
                return Ok(count);
            }
            count += 1;
            if count as usize > self.buf.len() * 8 {
                return Err(CodecError::Corrupt("runaway unary code"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xFFFF, 16);
        w.write_bits(0, 0);
        w.write_bits(0x12345678_9ABCDEF0, 64);
        w.write_bit(true);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(16).unwrap(), 0xFFFF);
        assert_eq!(r.read_bits(64).unwrap(), 0x12345678_9ABCDEF0);
        assert!(r.read_bit().unwrap());
    }

    #[test]
    fn unary_roundtrip() {
        let mut w = BitWriter::new();
        for v in [0u32, 1, 5, 13, 40] {
            w.write_unary(v);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for v in [0u32, 1, 5, 13, 40] {
            assert_eq!(r.read_unary().unwrap(), v);
        }
    }

    #[test]
    fn bit_len_counts() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(1, 1);
        assert_eq!(w.bit_len(), 1);
        w.write_bits(0, 7);
        assert_eq!(w.bit_len(), 8);
        w.write_bits(0b11, 2);
        assert_eq!(w.bit_len(), 10);
    }

    #[test]
    fn underrun_is_error() {
        let bytes = vec![0xAB];
        let mut r = BitReader::new(&bytes);
        assert!(r.read_bits(8).is_ok());
        assert!(r.read_bits(1).is_err());
    }

    #[test]
    fn write_masks_high_bits() {
        let mut w = BitWriter::new();
        w.write_bits(0xFF, 4); // only low 4 bits must land
        w.write_bits(0, 4);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0x0F]);
    }
}

//! From-scratch floating-point compressors used as block-scoring metrics.
//!
//! The paper (§IV-B-e) scores blocks by how well floating-point compressors
//! squeeze them: highly compressible ⇒ little information ⇒ low relevance.
//! It uses FPZIP (Lindstrom & Isenburg 2006), ZFP (Lindstrom 2014) and an
//! LZ-based byte compressor. None of those C libraries are available here,
//! so this crate implements the same *family* of algorithms from scratch
//! (DESIGN.md §2):
//!
//! * [`fpz`] — a lossless predictive codec: 3D Lorenzo prediction over an
//!   order-preserving integer mapping of IEEE-754 floats, residuals stored
//!   with a significant-bit-count code (fpzip-like);
//! * [`zfpx`] — a fixed-accuracy transform codec: 4×4×4 blocks,
//!   block-floating-point quantization, a reversible integer lifting
//!   transform, and embedded bit-plane coding (zfp-like);
//! * [`lz`] — LZ77 over the raw float bytes with hash-table match search.
//!
//! All codecs implement [`FloatCodec`]; the scoring metric consumes only
//! [`FloatCodec::compressed_ratio`].

pub mod bitio;
pub mod fpz;
pub mod lz;
pub mod probe;
pub mod zfpx;

pub use fpz::Fpz;
pub use lz::Lz77;
pub use probe::{probe_codecs, probe_ratios};
pub use zfpx::Zfpx;

/// Shape of a 3D array, `(nx, ny, nz)`, x-fastest layout. (Deliberately a
/// bare tuple: this crate sits below `apc-grid` in the dependency graph.)
pub type Shape = (usize, usize, usize);

/// Errors produced by decoders on malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The compressed stream ended prematurely or is inconsistent.
    Corrupt(&'static str),
    /// The supplied shape does not match the data length.
    ShapeMismatch { expected: usize, got: usize },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Corrupt(what) => write!(f, "corrupt stream: {what}"),
            CodecError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected} samples, got {got}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// A 3D floating-point codec.
pub trait FloatCodec {
    /// Codec name as used in experiment output (e.g. `"FPZIP"`).
    fn name(&self) -> &'static str;

    /// Compress `data` (shaped `shape`, x-fastest).
    fn encode(&self, data: &[f32], shape: Shape) -> Vec<u8>;

    /// Decompress a stream produced by [`FloatCodec::encode`] with the same
    /// shape.
    fn decode(&self, stream: &[u8], shape: Shape) -> Result<Vec<f32>, CodecError>;

    /// Whether decode returns bit-exact data.
    fn is_lossless(&self) -> bool;

    /// Compressed size over original size — the quantity the scoring metric
    /// uses (higher ⇒ less compressible ⇒ more information).
    fn compressed_ratio(&self, data: &[f32], shape: Shape) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let compressed = self.encode(data, shape).len();
        compressed as f64 / std::mem::size_of_val(data) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_of_empty_is_zero() {
        assert_eq!(Fpz.compressed_ratio(&[], (0, 0, 0)), 0.0);
    }

    #[test]
    fn constant_data_compresses_better_than_noise() {
        let shape = (8, 8, 8);
        let n = 512;
        let constant = vec![1.25f32; n];
        let noise: Vec<f32> = (0..n)
            .map(|i| ((i as f32 * 12.9898).sin() * 43758.547).fract())
            .collect();
        for codec in [&Fpz as &dyn FloatCodec, &Zfpx::default(), &Lz77] {
            let rc = codec.compressed_ratio(&constant, shape);
            let rn = codec.compressed_ratio(&noise, shape);
            assert!(
                rc < rn,
                "{}: constant ratio {rc} should beat noise ratio {rn}",
                codec.name()
            );
        }
    }
}

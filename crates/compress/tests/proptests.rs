//! Property-based tests: codec roundtrips on arbitrary shapes and data.
//!
//! Cases come from the in-tree seeded PRNG ([`apc_par::SplitMix64`]) so
//! every run exercises the same inputs deterministically.

use apc_compress::{FloatCodec, Fpz, Lz77, Zfpx};
use apc_par::SplitMix64;

const CASES: usize = 64;

/// A small 3D array of finite floats mixing magnitudes (large, unit-scale,
/// zero and denormal-adjacent values).
fn arb_array(rng: &mut SplitMix64) -> (Vec<f32>, (usize, usize, usize)) {
    let shape = (1 + rng.below(7), 1 + rng.below(7), 1 + rng.below(7));
    let n = shape.0 * shape.1 * shape.2;
    let data = (0..n)
        .map(|_| match rng.below(4) {
            0 => rng.range_f32(-1e6, 1e6),
            1 => rng.range_f32(-1.0, 1.0),
            2 => 0.0,
            _ => rng.range_f32(-1e-12, 1e-12),
        })
        .collect();
    (data, shape)
}

fn garbage(rng: &mut SplitMix64) -> Vec<u8> {
    (0..rng.below(256)).map(|_| rng.next_u64() as u8).collect()
}

#[test]
fn fpz_roundtrip_is_bit_exact() {
    let mut rng = SplitMix64::new(0xC1);
    for case in 0..CASES {
        let (data, shape) = arb_array(&mut rng);
        let enc = Fpz.encode(&data, shape);
        let dec = Fpz.decode(&enc, shape).unwrap();
        assert_eq!(data.len(), dec.len(), "case {case}");
        for (a, b) in data.iter().zip(&dec) {
            assert_eq!(a.to_bits(), b.to_bits(), "case {case}: {a} vs {b}");
        }
    }
}

#[test]
fn lz77_roundtrip_is_bit_exact() {
    let mut rng = SplitMix64::new(0xC2);
    for case in 0..CASES {
        let (data, shape) = arb_array(&mut rng);
        let enc = Lz77.encode(&data, shape);
        let dec = Lz77.decode(&enc, shape).unwrap();
        for (a, b) in data.iter().zip(&dec) {
            assert_eq!(a.to_bits(), b.to_bits(), "case {case}: {a} vs {b}");
        }
    }
}

#[test]
fn zfpx_error_bounded() {
    let mut rng = SplitMix64::new(0xC3);
    for case in 0..CASES {
        let (data, shape) = arb_array(&mut rng);
        // Use a tolerance scaled to the data so the bound is meaningful for
        // any magnitude mix.
        let amax = data.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let tol = (amax * 1e-3).max(1e-20);
        let codec = Zfpx { tolerance: tol };
        let enc = codec.encode(&data, shape);
        let dec = codec.decode(&enc, shape).unwrap();
        for (a, b) in data.iter().zip(&dec) {
            // Separable lifting amplifies the per-plane cut by a small
            // constant factor; 8x is a conservative envelope.
            assert!(
                (a - b).abs() <= 8.0 * tol,
                "case {case}: a={a} b={b} tol={tol}"
            );
        }
    }
}

#[test]
fn fpz_decode_never_panics_on_garbage() {
    let mut rng = SplitMix64::new(0xC4);
    for _ in 0..CASES {
        // Decoding arbitrary bytes must return Ok or Err, never panic.
        let _ = Fpz.decode(&garbage(&mut rng), (4, 4, 4));
    }
}

#[test]
fn lz77_decode_never_panics_on_garbage() {
    let mut rng = SplitMix64::new(0xC5);
    for _ in 0..CASES {
        let _ = Lz77.decode(&garbage(&mut rng), (4, 4, 4));
    }
}

#[test]
fn zfpx_decode_never_panics_on_garbage() {
    let mut rng = SplitMix64::new(0xC6);
    for _ in 0..CASES {
        let _ = Zfpx::default().decode(&garbage(&mut rng), (4, 4, 4));
    }
}

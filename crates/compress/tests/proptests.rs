//! Property-based tests: codec roundtrips on arbitrary shapes and data.

use apc_compress::{FloatCodec, Fpz, Lz77, Zfpx};
use proptest::prelude::*;

/// Arbitrary small 3D arrays of finite floats (mix of magnitudes).
fn arb_array() -> impl Strategy<Value = (Vec<f32>, (usize, usize, usize))> {
    (1usize..8, 1usize..8, 1usize..8).prop_flat_map(|(nx, ny, nz)| {
        let n = nx * ny * nz;
        (
            proptest::collection::vec(
                prop_oneof![
                    (-1e6f32..1e6f32),
                    (-1.0f32..1.0f32),
                    Just(0.0f32),
                    (-1e-12f32..1e-12f32),
                ],
                n,
            ),
            Just((nx, ny, nz)),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fpz_roundtrip_is_bit_exact((data, shape) in arb_array()) {
        let enc = Fpz.encode(&data, shape);
        let dec = Fpz.decode(&enc, shape).unwrap();
        prop_assert_eq!(data.len(), dec.len());
        for (a, b) in data.iter().zip(&dec) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn lz77_roundtrip_is_bit_exact((data, shape) in arb_array()) {
        let enc = Lz77.encode(&data, shape);
        let dec = Lz77.decode(&enc, shape).unwrap();
        for (a, b) in data.iter().zip(&dec) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn zfpx_error_bounded((data, shape) in arb_array()) {
        // Use a tolerance scaled to the data so the bound is meaningful for
        // any magnitude mix.
        let amax = data.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let tol = (amax * 1e-3).max(1e-20);
        let codec = Zfpx { tolerance: tol };
        let enc = codec.encode(&data, shape);
        let dec = codec.decode(&enc, shape).unwrap();
        for (a, b) in data.iter().zip(&dec) {
            // Separable lifting amplifies the per-plane cut by a small
            // constant factor; 8x is a conservative envelope.
            prop_assert!((a - b).abs() <= 8.0 * tol,
                "a={a} b={b} tol={tol}");
        }
    }

    #[test]
    fn fpz_decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Decoding arbitrary bytes must return Ok or Err, never panic.
        let _ = Fpz.decode(&bytes, (4, 4, 4));
    }

    #[test]
    fn lz77_decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Lz77.decode(&bytes, (4, 4, 4));
    }

    #[test]
    fn zfpx_decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Zfpx::default().decode(&bytes, (4, 4, 4));
    }
}

//! Adversarial codec property tests — the inputs `proptests.rs` skips.
//!
//! Four families, all driven by the in-tree seeded PRNG
//! ([`apc_par::SplitMix64`]) so every run replays the same cases:
//!
//! 1. **Special payloads** — NaN (several bit patterns), ±inf, -0.0 and
//!    subnormals. The lossless codecs must round-trip them bit-exactly;
//!    `zfpx` must never panic (it documents non-finite → 0).
//! 2. **Constant blocks** — including special constants, across shapes.
//! 3. **Degenerate shapes** — 1×1×1 and the three 1×N×1-style pencils.
//! 4. **Truncated streams** — decode of any prefix must return an error
//!    (a meaningful truncation yields `CodecError::Corrupt`), never panic.

use apc_compress::{CodecError, FloatCodec, Fpz, Lz77, Zfpx};
use apc_par::SplitMix64;

type Shape = (usize, usize, usize);

const CASES: usize = 48;

fn lossless_codecs() -> [&'static dyn FloatCodec; 2] {
    [&Fpz, &Lz77]
}

fn all_codecs() -> [&'static dyn FloatCodec; 3] {
    const ZFPX: Zfpx = Zfpx { tolerance: 1e-2 };
    [&Fpz, &Lz77, &ZFPX]
}

/// A shape whose volume stays test-sized, biased toward degenerate axes.
fn arb_shape(rng: &mut SplitMix64) -> Shape {
    let axis = |rng: &mut SplitMix64| match rng.below(4) {
        0 => 1,
        _ => 1 + rng.below(8),
    };
    (axis(rng), axis(rng), axis(rng))
}

/// One sample drawn from a pool heavy in special values.
fn special_value(rng: &mut SplitMix64) -> f32 {
    match rng.below(10) {
        0 => f32::NAN,
        1 => f32::from_bits(0x7FC0_DEAD), // a non-canonical NaN payload
        2 => f32::from_bits(0xFFC0_0001), // negative NaN
        3 => f32::INFINITY,
        4 => f32::NEG_INFINITY,
        5 => -0.0,
        6 => f32::from_bits(rng.below(0x007F_FFFF) as u32 + 1), // subnormal
        7 => f32::MAX,
        8 => f32::MIN,
        _ => rng.range_f32(-1e3, 1e3),
    }
}

fn special_payload(rng: &mut SplitMix64, n: usize) -> Vec<f32> {
    (0..n).map(|_| special_value(rng)).collect()
}

fn assert_bit_exact(codec: &dyn FloatCodec, data: &[f32], shape: Shape, what: &str) {
    let enc = codec.encode(data, shape);
    let dec = codec
        .decode(&enc, shape)
        .unwrap_or_else(|e| panic!("{} failed to decode {what}: {e}", codec.name()));
    assert_eq!(dec.len(), data.len(), "{} length on {what}", codec.name());
    for (i, (a, b)) in data.iter().zip(&dec).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{} not bit-exact on {what} at {i}: {a:?} vs {b:?}",
            codec.name()
        );
    }
}

#[test]
fn lossless_codecs_roundtrip_nan_inf_negzero_bit_exact() {
    let mut rng = SplitMix64::new(0xAD01);
    for case in 0..CASES {
        let shape = arb_shape(&mut rng);
        let data = special_payload(&mut rng, shape.0 * shape.1 * shape.2);
        for codec in lossless_codecs() {
            assert_bit_exact(
                codec,
                &data,
                shape,
                &format!("special case {case} {shape:?}"),
            );
        }
    }
}

#[test]
fn zfpx_never_panics_on_special_payloads() {
    let mut rng = SplitMix64::new(0xAD02);
    let codec = Zfpx::default();
    for case in 0..CASES {
        let shape = arb_shape(&mut rng);
        let data = special_payload(&mut rng, shape.0 * shape.1 * shape.2);
        let enc = codec.encode(&data, shape);
        let dec = codec.decode(&enc, shape).unwrap_or_else(|e| {
            panic!("zfpx rejected its own stream on case {case} {shape:?}: {e}")
        });
        // Documented sanitization: whatever comes back is finite.
        assert!(
            dec.iter().all(|v| v.is_finite()),
            "zfpx emitted a non-finite sample on case {case}"
        );
    }
}

#[test]
fn zfpx_bound_survives_nonfinite_neighbors() {
    // Block floating point makes the error bound relative to the block's
    // largest magnitude, so this family keeps finite values moderate and
    // checks that flushed NaN/inf neighbors don't break the bound for the
    // ordinary samples sharing their 4×4×4 block.
    let mut rng = SplitMix64::new(0xAD07);
    let codec = Zfpx::default();
    for case in 0..CASES {
        let shape = arb_shape(&mut rng);
        let data: Vec<f32> = (0..shape.0 * shape.1 * shape.2)
            .map(|_| match rng.below(6) {
                0 => f32::NAN,
                1 => f32::INFINITY,
                2 => f32::NEG_INFINITY,
                3 => -0.0,
                _ => rng.range_f32(-1e3, 1e3),
            })
            .collect();
        let dec = codec
            .decode(&codec.encode(&data, shape), shape)
            .expect("zfpx decode");
        for (a, b) in data.iter().zip(&dec) {
            if a.is_finite() {
                assert!(
                    (a - b).abs() <= 8.0 * codec.tolerance,
                    "case {case} {shape:?}: {a} vs {b}"
                );
            }
        }
    }
}

#[test]
fn constant_blocks_roundtrip_across_all_codecs() {
    let mut rng = SplitMix64::new(0xAD03);
    let constants = [
        0.0f32,
        -0.0,
        1.0,
        -42.5,
        f32::MAX,
        f32::MIN_POSITIVE,
        f32::from_bits(1), // smallest subnormal
        f32::NAN,
        f32::INFINITY,
    ];
    for &c in &constants {
        for _ in 0..4 {
            let shape = arb_shape(&mut rng);
            let data = vec![c; shape.0 * shape.1 * shape.2];
            for codec in lossless_codecs() {
                assert_bit_exact(codec, &data, shape, &format!("constant {c:?} {shape:?}"));
            }
            // zfpx: must decode cleanly; exact only for ordinary constants.
            let z = Zfpx::default();
            let dec = z
                .decode(&z.encode(&data, shape), shape)
                .expect("zfpx constant");
            if c.is_finite() && c.abs() < 1e3 && c.abs() >= 1e-3 || c == 0.0 {
                for v in &dec {
                    assert!(
                        (v - c).abs() <= 8.0 * z.tolerance,
                        "zfpx constant {c}: got {v}"
                    );
                }
            }
        }
    }
}

#[test]
fn degenerate_shapes_roundtrip() {
    let mut rng = SplitMix64::new(0xAD04);
    let mut shapes: Vec<Shape> = vec![(1, 1, 1)];
    for n in [2usize, 3, 5, 17] {
        shapes.extend([(n, 1, 1), (1, n, 1), (1, 1, n)]);
    }
    for &shape in &shapes {
        let n = shape.0 * shape.1 * shape.2;
        let smooth: Vec<f32> = (0..n).map(|i| i as f32 * 0.25 - 1.0).collect();
        let noisy: Vec<f32> = (0..n).map(|_| rng.range_f32(-50.0, 50.0)).collect();
        for data in [&smooth, &noisy] {
            for codec in lossless_codecs() {
                assert_bit_exact(codec, data, shape, &format!("degenerate {shape:?}"));
            }
            let z = Zfpx { tolerance: 1e-3 };
            let dec = z
                .decode(&z.encode(data, shape), shape)
                .expect("zfpx degenerate");
            for (a, b) in data.iter().zip(&dec) {
                assert!((a - b).abs() <= 8.0 * z.tolerance, "{shape:?}: {a} vs {b}");
            }
        }
    }
}

/// Noisy data large enough that every codec emits a stream with real
/// content in both halves.
fn noisy_block(rng: &mut SplitMix64, n: usize) -> Vec<f32> {
    (0..n).map(|_| rng.range_f32(-1e4, 1e4)).collect()
}

#[test]
fn truncated_streams_error_never_panic() {
    let mut rng = SplitMix64::new(0xAD05);
    let shape = (6, 5, 4);
    let n = shape.0 * shape.1 * shape.2;
    for codec in all_codecs() {
        for case in 0..8 {
            let data = noisy_block(&mut rng, n);
            let enc = codec.encode(&data, shape);
            assert!(enc.len() > 8, "{} stream suspiciously small", codec.name());
            // A meaningful truncation (half the stream gone) must be
            // reported as a corrupt stream.
            let half = codec.decode(&enc[..enc.len() / 2], shape);
            assert!(
                matches!(half, Err(CodecError::Corrupt(_))),
                "{} case {case}: half-truncation gave {half:?}",
                codec.name()
            );
            // Any prefix whatsoever must decode without panicking.
            for _ in 0..16 {
                let cut = rng.below(enc.len());
                let _ = codec.decode(&enc[..cut], shape);
            }
            // So must a prefix with trailing garbage appended.
            let mut mangled = enc[..enc.len() / 2].to_vec();
            mangled.extend((0..rng.below(32)).map(|_| rng.next_u64() as u8));
            let _ = codec.decode(&mangled, shape);
        }
    }
}

#[test]
fn bitflipped_streams_error_or_decode_never_panic() {
    // Single-bit corruption anywhere in the stream: decode may succeed
    // (the flip can land in payload bits) but must never panic, and for
    // the lossless codecs a successful decode must still have the right
    // length.
    let mut rng = SplitMix64::new(0xAD06);
    let shape = (5, 5, 3);
    let n = shape.0 * shape.1 * shape.2;
    for codec in all_codecs() {
        let data = noisy_block(&mut rng, n);
        let enc = codec.encode(&data, shape);
        for _ in 0..64 {
            let mut bad = enc.clone();
            let bit = rng.below(bad.len() * 8);
            bad[bit / 8] ^= 1 << (bit % 8);
            if let Ok(dec) = codec.decode(&bad, shape) {
                assert_eq!(dec.len(), n, "{} decoded to wrong length", codec.name());
            }
        }
    }
}

//! A small semi-Lagrangian advection–diffusion solver.
//!
//! The paper replays stored data "to avoid running CM1's computational part
//! for every experiment … the real CM1 would normally alternate between
//! computation and visualization phases" (§V-A). This solver is the
//! stand-in for that computation phase: examples run it between pipeline
//! invocations so the end-to-end loop (compute → in situ visualize → adapt)
//! is exercised by real code rather than a sleep.

use apc_grid::{Dims3, Field3};

use crate::storm::StormModel;

/// Semi-Lagrangian advection of a scalar tracer by the storm's wind field,
/// plus explicit diffusion.
#[derive(Debug, Clone)]
pub struct AdvectionSolver {
    field: Field3,
    storm: StormModel,
    /// Time step in iteration units.
    pub dt: f32,
    /// Diffusion coefficient (stability requires `6·κ ≤ 1`).
    pub kappa: f32,
    step_count: usize,
}

impl AdvectionSolver {
    pub fn new(initial: Field3, storm: StormModel) -> Self {
        Self {
            field: initial,
            storm,
            dt: 1.0,
            kappa: 0.05,
            step_count: 0,
        }
    }

    pub fn field(&self) -> &Field3 {
        &self.field
    }

    pub fn steps_taken(&self) -> usize {
        self.step_count
    }

    /// Normalized position of a grid point (index space → [0,1]³).
    #[inline]
    fn norm_pos(dims: Dims3, i: usize, j: usize, k: usize) -> [f32; 3] {
        [
            i as f32 / (dims.nx.max(2) - 1) as f32,
            j as f32 / (dims.ny.max(2) - 1) as f32,
            k as f32 / (dims.nz.max(2) - 1) as f32,
        ]
    }

    /// Sample the field at a continuous index-space position with trilinear
    /// interpolation and edge clamping.
    fn sample(field: &Field3, x: f32, y: f32, z: f32) -> f32 {
        let d = field.dims();
        let cx = x.clamp(0.0, (d.nx - 1) as f32);
        let cy = y.clamp(0.0, (d.ny - 1) as f32);
        let cz = z.clamp(0.0, (d.nz - 1) as f32);
        let (i0, j0, k0) = (
            cx.floor() as usize,
            cy.floor() as usize,
            cz.floor() as usize,
        );
        let (i1, j1, k1) = (
            (i0 + 1).min(d.nx - 1),
            (j0 + 1).min(d.ny - 1),
            (k0 + 1).min(d.nz - 1),
        );
        let (u, v, w) = (cx - i0 as f32, cy - j0 as f32, cz - k0 as f32);
        let c000 = field.get(i0, j0, k0);
        let c100 = field.get(i1, j0, k0);
        let c010 = field.get(i0, j1, k0);
        let c110 = field.get(i1, j1, k0);
        let c001 = field.get(i0, j0, k1);
        let c101 = field.get(i1, j0, k1);
        let c011 = field.get(i0, j1, k1);
        let c111 = field.get(i1, j1, k1);
        let c00 = c000 + (c100 - c000) * u;
        let c10 = c010 + (c110 - c010) * u;
        let c01 = c001 + (c101 - c001) * u;
        let c11 = c011 + (c111 - c011) * u;
        let c0 = c00 + (c10 - c00) * v;
        let c1 = c01 + (c11 - c01) * v;
        c0 + (c1 - c0) * w
    }

    /// Advance one time step at simulation iteration `iteration` (which
    /// selects the wind field's evolution stage).
    pub fn step(&mut self, iteration: usize) {
        let dims = self.field.dims();
        let tau = self.storm.tau(iteration);
        let mut next = Field3::zeros(dims);
        // Index-space wind scale: normalized wind × points per unit.
        let scale = [
            (dims.nx.max(2) - 1) as f32,
            (dims.ny.max(2) - 1) as f32,
            (dims.nz.max(2) - 1) as f32,
        ];
        for k in 0..dims.nz {
            for j in 0..dims.ny {
                for i in 0..dims.nx {
                    let p = Self::norm_pos(dims, i, j, k);
                    let wind = self.storm.wind(p, tau);
                    // Backtrack the characteristic.
                    let x = i as f32 - wind[0] * scale[0] * self.dt;
                    let y = j as f32 - wind[1] * scale[1] * self.dt;
                    let z = k as f32 - wind[2] * scale[2] * self.dt;
                    next.set(i, j, k, Self::sample(&self.field, x, y, z));
                }
            }
        }
        // Explicit 7-point diffusion.
        if self.kappa > 0.0 {
            let src = next.clone();
            let at = |i: usize, j: usize, k: usize, di: isize, dj: isize, dk: isize| {
                let ii = (i as isize + di).clamp(0, dims.nx as isize - 1) as usize;
                let jj = (j as isize + dj).clamp(0, dims.ny as isize - 1) as usize;
                let kk = (k as isize + dk).clamp(0, dims.nz as isize - 1) as usize;
                src.get(ii, jj, kk)
            };
            for k in 0..dims.nz {
                for j in 0..dims.ny {
                    for i in 0..dims.nx {
                        let lap = at(i, j, k, 1, 0, 0)
                            + at(i, j, k, -1, 0, 0)
                            + at(i, j, k, 0, 1, 0)
                            + at(i, j, k, 0, -1, 0)
                            + at(i, j, k, 0, 0, 1)
                            + at(i, j, k, 0, 0, -1)
                            - 6.0 * src.get(i, j, k);
                        next.set(i, j, k, src.get(i, j, k) + self.kappa * lap);
                    }
                }
            }
        }
        self.field = next;
        self.step_count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_field(dims: Dims3, ci: usize, cj: usize) -> Field3 {
        Field3::from_fn(dims, |i, j, _k| {
            let d2 = (i as f32 - ci as f32).powi(2) + (j as f32 - cj as f32).powi(2);
            (-d2 / 8.0).exp()
        })
    }

    #[test]
    fn max_principle_holds() {
        // Semi-Lagrangian + diffusion never exceeds the initial bounds.
        let dims = Dims3::new(24, 24, 6);
        let init = blob_field(dims, 12, 12);
        let (lo0, hi0) = init.min_max().unwrap();
        let mut solver = AdvectionSolver::new(init, StormModel::default());
        for it in 0..5 {
            solver.step(it * 50);
        }
        let (lo, hi) = solver.field().min_max().unwrap();
        assert!(
            lo >= lo0 - 1e-5 && hi <= hi0 + 1e-5,
            "[{lo}, {hi}] vs [{lo0}, {hi0}]"
        );
    }

    #[test]
    fn diffusion_smooths_peaks() {
        let dims = Dims3::new(16, 16, 4);
        let mut init = Field3::zeros(dims);
        init.set(8, 8, 2, 1.0);
        let mut solver = AdvectionSolver::new(init, StormModel::default());
        solver.dt = 0.0; // isolate diffusion
        let hi0 = solver.field().min_max().unwrap().1;
        solver.step(0);
        let hi1 = solver.field().min_max().unwrap().1;
        assert!(hi1 < hi0, "diffusion must lower the peak: {hi1} vs {hi0}");
    }

    #[test]
    fn updraft_lifts_tracer() {
        // A tracer sheet at the bottom of the storm core should rise.
        let dims = Dims3::new(32, 32, 16);
        let storm = StormModel::default();
        let tau = 0.5;
        let c = storm.center(tau);
        let ci = (c[0] * 31.0) as usize;
        let cj = (c[1] * 31.0) as usize;
        let init = Field3::from_fn(dims, |_i, _j, k| if k == 2 { 1.0 } else { 0.0 });
        let mut solver = AdvectionSolver::new(init, storm);
        solver.kappa = 0.0;
        solver.dt = 4.0;
        for _ in 0..4 {
            solver.step(286); // mid-timeline wind
        }
        // Mass above the sheet at the core column must now be nonzero.
        let mut above = 0.0;
        for k in 3..10 {
            above += solver.field().get(ci, cj, k);
        }
        assert!(above > 0.05, "updraft should lift tracer, got {above}");
    }

    #[test]
    fn deterministic() {
        let dims = Dims3::new(12, 12, 4);
        let run = || {
            let mut s = AdvectionSolver::new(blob_field(dims, 6, 6), StormModel::new(3));
            s.step(0);
            s.step(1);
            s.field().clone()
        };
        assert_eq!(run(), run());
    }
}

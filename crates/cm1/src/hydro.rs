//! Microphysics-style radar reflectivity derivation.
//!
//! CM1's reflectivity "derives from a calculation based on cloud rain,
//! hail, and snow microphysical variables, and it can be compared with real
//! weather radar observations" (paper §II-A). We follow the standard
//! single-moment relations (Smith et al. 1975 family, as used by CM1's
//! radar-reflectivity diagnostic): each species contributes a power law in
//! its *rain-water content* `ρ·q`, summed in linear Z (mm⁶/m³) and
//! converted to dBZ.

use apc_grid::Field3;

/// Mixing ratios (kg/kg) of the three precipitating species on a grid box.
#[derive(Debug, Clone)]
pub struct Hydrometeors {
    /// Rain.
    pub qr: Field3,
    /// Snow.
    pub qs: Field3,
    /// Graupel / hail.
    pub qg: Field3,
}

/// Air density (kg/m³) at normalized height `z ∈ [0,1]` (≈0–20 km):
/// exponential profile with ~8 km scale height.
#[inline]
pub fn air_density(z: f32) -> f32 {
    1.2 * (-2.5 * z).exp()
}

/// Z–q power laws, linear Z in mm⁶/m³ for content in kg/m³.
#[inline]
fn z_rain(rwc: f32) -> f32 {
    if rwc <= 0.0 {
        0.0
    } else {
        3.63e9 * rwc.powf(1.75)
    }
}

#[inline]
fn z_snow(swc: f32) -> f32 {
    if swc <= 0.0 {
        0.0
    } else {
        9.80e8 * swc.powf(1.66)
    }
}

#[inline]
fn z_hail(gwc: f32) -> f32 {
    if gwc <= 0.0 {
        0.0
    } else {
        4.33e10 * gwc.powf(1.71)
    }
}

/// Convert hydrometeor fields to radar reflectivity (dBZ).
///
/// `heights` gives the normalized height (`z ∈ [0,1]`) of each z-plane of
/// the box — callers generating a sub-box of a larger domain must pass the
/// *global* heights so air density matches the full-field computation.
pub fn reflectivity_from_hydrometeors_at(h: &Hydrometeors, heights: &[f32]) -> Field3 {
    let dims = h.qr.dims();
    assert_eq!(dims, h.qs.dims(), "hydrometeor fields must share dims");
    assert_eq!(dims, h.qg.dims(), "hydrometeor fields must share dims");
    assert_eq!(heights.len(), dims.nz, "one height per z-plane");
    let qr = h.qr.as_slice();
    let qs = h.qs.as_slice();
    let qg = h.qg.as_slice();
    let plane = dims.nx * dims.ny;
    let mut out = Vec::with_capacity(dims.len());
    for (idx, ((&r, &s), &g)) in qr.iter().zip(qs).zip(qg).enumerate() {
        let rho = air_density(heights[idx / plane.max(1)]);
        let zsum = z_rain(rho * r) + z_snow(rho * s) + z_hail(rho * g);
        // 1e-6 mm⁶/m³ floor ⇒ −60 dBZ, the radar sensitivity floor.
        out.push(10.0 * zsum.max(1e-6).log10());
    }
    // apc-lint: allow(unwrap-in-lib): `out` is filled by one push per grid cell of `dims`
    Field3::from_vec(dims, out).expect("capacity matches dims")
}

/// [`reflectivity_from_hydrometeors_at`] with the box assumed to span the
/// full height range `[0, 1]`.
pub fn reflectivity_from_hydrometeors(h: &Hydrometeors) -> Field3 {
    let nz = h.qr.dims().nz;
    let denom = (nz.max(2) - 1) as f32;
    let heights: Vec<f32> = (0..nz).map(|k| k as f32 / denom).collect();
    reflectivity_from_hydrometeors_at(h, &heights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_grid::Dims3;

    #[test]
    fn density_profile_decreases() {
        assert!(air_density(0.0) > air_density(0.5));
        assert!(air_density(0.5) > air_density(1.0));
        assert!((air_density(0.0) - 1.2).abs() < 1e-6);
    }

    #[test]
    fn zero_hydrometeors_hit_the_floor() {
        let dims = Dims3::new(3, 3, 3);
        let h = Hydrometeors {
            qr: Field3::zeros(dims),
            qs: Field3::zeros(dims),
            qg: Field3::zeros(dims),
        };
        let dbz = reflectivity_from_hydrometeors(&h);
        assert!(dbz.as_slice().iter().all(|&v| (v - (-60.0)).abs() < 1e-4));
    }

    #[test]
    fn heavy_rain_is_realistic_dbz() {
        // 6 g/kg of rain at the surface ⇒ upper-50s dBZ, a strong storm.
        let dims = Dims3::new(1, 1, 2);
        let h = Hydrometeors {
            qr: Field3::from_vec(dims, vec![6.0e-3, 0.0]).unwrap(),
            qs: Field3::zeros(dims),
            qg: Field3::zeros(dims),
        };
        let dbz = reflectivity_from_hydrometeors(&h);
        let surface = dbz.get(0, 0, 0);
        assert!((50.0..65.0).contains(&surface), "surface dBZ = {surface}");
    }

    #[test]
    fn hail_outshines_equal_snow() {
        let dims = Dims3::new(1, 1, 2);
        let mk = |qs: f32, qg: f32| Hydrometeors {
            qr: Field3::zeros(dims),
            qs: Field3::from_vec(dims, vec![qs, 0.0]).unwrap(),
            qg: Field3::from_vec(dims, vec![qg, 0.0]).unwrap(),
        };
        let snow = reflectivity_from_hydrometeors(&mk(3e-3, 0.0)).get(0, 0, 0);
        let hail = reflectivity_from_hydrometeors(&mk(0.0, 3e-3)).get(0, 0, 0);
        assert!(hail > snow + 10.0, "hail {hail} dBZ vs snow {snow} dBZ");
    }

    #[test]
    fn reflectivity_monotone_in_content() {
        let dims = Dims3::new(1, 1, 2);
        let mut prev = f32::MIN;
        for q in [1e-4f32, 1e-3, 3e-3, 8e-3] {
            let h = Hydrometeors {
                qr: Field3::from_vec(dims, vec![q, 0.0]).unwrap(),
                qs: Field3::zeros(dims),
                qg: Field3::zeros(dims),
            };
            let v = reflectivity_from_hydrometeors(&h).get(0, 0, 0);
            assert!(v > prev, "dBZ must grow with rain content");
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "share dims")]
    fn mismatched_dims_rejected() {
        let h = Hydrometeors {
            qr: Field3::zeros(Dims3::new(2, 2, 2)),
            qs: Field3::zeros(Dims3::new(3, 2, 2)),
            qg: Field3::zeros(Dims3::new(2, 2, 2)),
        };
        let _ = reflectivity_from_hydrometeors(&h);
    }
}

//! Deterministic 3D value noise and fractional Brownian motion.
//!
//! Hash-based (no tables, no global state): the same `(position, seed)`
//! always yields the same value, which keeps every experiment in the
//! workspace reproducible bit-for-bit.

/// SplitMix64 finalizer — a high-quality 64-bit mix.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform value in [0, 1) at integer lattice point `(i, j, k)`.
#[inline]
fn lattice(i: i64, j: i64, k: i64, seed: u64) -> f32 {
    let h = mix64(
        (i as u64)
            .wrapping_mul(0x8DA6_B343)
            .wrapping_add((j as u64).wrapping_mul(0xD8163841))
            .wrapping_add((k as u64).wrapping_mul(0xCB1A_B31F))
            .wrapping_add(seed.wrapping_mul(0x2545_F491_4F6C_DD1D)),
    );
    (h >> 40) as f32 / (1u64 << 24) as f32
}

#[inline]
fn smoothstep(t: f32) -> f32 {
    t * t * (3.0 - 2.0 * t)
}

/// Trilinearly interpolated value noise in [-1, 1] at continuous position
/// `(x, y, z)` (lattice spacing 1).
pub fn value_noise3(x: f32, y: f32, z: f32, seed: u64) -> f32 {
    let (xf, yf, zf) = (x.floor(), y.floor(), z.floor());
    let (i, j, k) = (xf as i64, yf as i64, zf as i64);
    let (u, v, w) = (smoothstep(x - xf), smoothstep(y - yf), smoothstep(z - zf));
    let mut acc = 0.0;
    for dk in 0..2i64 {
        let wk = if dk == 0 { 1.0 - w } else { w };
        for dj in 0..2i64 {
            let wj = if dj == 0 { 1.0 - v } else { v };
            for di in 0..2i64 {
                let wi = if di == 0 { 1.0 - u } else { u };
                acc += wi * wj * wk * lattice(i + di, j + dj, k + dk, seed);
            }
        }
    }
    acc * 2.0 - 1.0
}

/// Fractional Brownian motion: `octaves` layers of value noise, each at
/// double frequency and half amplitude. Output roughly in [-1, 1].
pub fn fbm3(x: f32, y: f32, z: f32, octaves: u32, seed: u64) -> f32 {
    let mut acc = 0.0;
    let mut amp = 0.5;
    let mut freq = 1.0;
    let mut norm = 0.0;
    for oct in 0..octaves {
        acc += amp * value_noise3(x * freq, y * freq, z * freq, seed.wrapping_add(oct as u64));
        norm += amp;
        amp *= 0.5;
        freq *= 2.0;
    }
    acc / norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = value_noise3(1.7, -2.3, 0.5, 42);
        let b = value_noise3(1.7, -2.3, 0.5, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn seed_changes_field() {
        let a = value_noise3(1.7, 2.3, 0.5, 1);
        let b = value_noise3(1.7, 2.3, 0.5, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn bounded() {
        for i in 0..500 {
            let t = i as f32 * 0.173;
            let v = value_noise3(t, t * 0.7, t * 1.3, 7);
            assert!((-1.0..=1.0).contains(&v), "noise out of range: {v}");
            let f = fbm3(t, t * 0.7, t * 1.3, 5, 7);
            assert!((-1.2..=1.2).contains(&f), "fbm out of range: {f}");
        }
    }

    #[test]
    fn continuous_at_lattice_points() {
        // Value just left and just right of a lattice plane must agree.
        let eps = 1e-4;
        let a = value_noise3(3.0 - eps, 1.5, 2.5, 11);
        let b = value_noise3(3.0 + eps, 1.5, 2.5, 11);
        assert!((a - b).abs() < 0.01, "{a} vs {b}");
    }

    #[test]
    fn has_variation() {
        let vals: Vec<f32> = (0..100)
            .map(|i| value_noise3(i as f32 * 0.37, 0.0, 0.0, 3))
            .collect();
        let min = vals.iter().cloned().fold(f32::MAX, f32::min);
        let max = vals.iter().cloned().fold(f32::MIN, f32::max);
        assert!(max - min > 0.5, "noise too flat: [{min}, {max}]");
    }

    #[test]
    fn fbm_adds_detail() {
        // fBm with more octaves differs from the base octave (has detail).
        let base = value_noise3(0.4, 0.9, 1.1, 5);
        let detailed = fbm3(0.4, 0.9, 1.1, 5, 5);
        assert_ne!(base, detailed);
    }
}

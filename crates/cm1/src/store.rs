//! Persist a simulated reflectivity time series into an `apc-store`
//! chunked dataset, and reopen it for replay.
//!
//! This is the modern successor of the flat [`crate::io`] format: chunks
//! align with the block decomposition, each chunk is independently
//! compressed through an `apc-compress` `FloatCodec` (selected by
//! [`CodecKind`]), and a reopened dataset replays through the pipeline
//! **byte-identically** to in-memory generation when the codec is lossless
//! (the workspace `store_roundtrip` integration test pins this).
//!
//! The producing side is [`write_dataset`] (disk) /
//! [`write_dataset_to`] (any backend — tests use `MemStore`); the
//! consuming side is [`open_dataset`], which yields a
//! [`StoredTimeSeries`]: stored blocks plus the deterministic geometry
//! (decomposition and stretched coordinate axes) rebuilt from the
//! metadata, which is everything `apc-core`'s `Prepared::from_store`
//! needs to drive a rank session with lazy per-chunk reads.

use std::path::Path;

use apc_grid::{Block, BlockData, BlockId, DomainDecomp, RectilinearCoords};
use apc_store::{
    CacheStats, ChunkedDataset, CodecKind, DatasetMeta, DirStore, DynChunkedDataset, ShardedStore,
    SharedCachedBackend, StoreBackend, StoreError,
};

use crate::dataset::ReflectivityDataset;
use crate::storm::StormModel;

fn dataset_meta(
    dataset: &ReflectivityDataset,
    iterations: &[usize],
    codec: CodecKind,
    shard_chunks: Option<usize>,
) -> DatasetMeta {
    let decomp = dataset.decomp();
    let mut iters: Vec<usize> = iterations.to_vec();
    iters.sort_unstable();
    iters.dedup();
    DatasetMeta {
        domain: decomp.domain(),
        chunk: decomp.block_dims(),
        procs: decomp.procs(),
        codec,
        seed: dataset.storm().seed,
        iterations: iters,
        shard_chunks,
    }
}

fn write_chunks<B: StoreBackend>(
    store: &ChunkedDataset<B>,
    dataset: &ReflectivityDataset,
) -> Result<(), StoreError> {
    let decomp = dataset.decomp();
    for &it in store.iterations() {
        for id in decomp.all_blocks() {
            let block = dataset.block(it, id);
            let BlockData::Full(samples) = &block.data else {
                unreachable!("dataset blocks are always full")
            };
            store.write_chunk(it, id, samples)?;
        }
    }
    Ok(())
}

/// Write `iterations` of `dataset` into `backend` as a chunked dataset,
/// one chunk per block, compressed with `codec`. Blocks are generated one
/// at a time, so peak memory stays at one block regardless of domain size.
pub fn write_dataset_to<B: StoreBackend>(
    dataset: &ReflectivityDataset,
    iterations: &[usize],
    backend: B,
    codec: CodecKind,
) -> Result<ChunkedDataset<B>, StoreError> {
    let meta = dataset_meta(dataset, iterations, codec, None);
    let store = ChunkedDataset::create(backend, meta)?;
    write_chunks(&store, dataset)?;
    Ok(store)
}

/// [`write_dataset_to`] with the shard layout: chunks are packed
/// `chunks_per_shard` at a time into shard containers, and the layout is
/// recorded in the metadata so `open_auto` / [`open_dataset`] readers
/// transparently read back through byte ranges.
pub fn write_dataset_sharded_to<B: StoreBackend>(
    dataset: &ReflectivityDataset,
    iterations: &[usize],
    backend: B,
    codec: CodecKind,
    chunks_per_shard: usize,
) -> Result<ChunkedDataset<ShardedStore<B>>, StoreError> {
    let meta = dataset_meta(dataset, iterations, codec, Some(chunks_per_shard));
    let store = ChunkedDataset::create(ShardedStore::new(backend, chunks_per_shard), meta)?;
    write_chunks(&store, dataset)?;
    // Seal the partial tail shard of each iteration now, so readers never
    // depend on the writer staying alive.
    store.backend().flush()?;
    Ok(store)
}

/// [`write_dataset_to`] targeting a directory on disk (created if
/// missing). The directory then holds `meta.json` plus one file per
/// chunk — point `APC_DATASET` at it to run experiments from the store.
pub fn write_dataset(
    dataset: &ReflectivityDataset,
    iterations: &[usize],
    dir: &Path,
    codec: CodecKind,
) -> Result<ChunkedDataset<DirStore>, StoreError> {
    write_dataset_to(dataset, iterations, DirStore::create(dir)?, codec)
}

/// [`write_dataset_sharded_to`] targeting a directory on disk: the
/// directory holds `meta.json` plus one shard container per
/// `chunks_per_shard` chunks instead of one file each.
pub fn write_dataset_sharded(
    dataset: &ReflectivityDataset,
    iterations: &[usize],
    dir: &Path,
    codec: CodecKind,
    chunks_per_shard: usize,
) -> Result<ChunkedDataset<ShardedStore<DirStore>>, StoreError> {
    write_dataset_sharded_to(
        dataset,
        iterations,
        DirStore::create(dir)?,
        codec,
        chunks_per_shard,
    )
}

/// Reopen a stored dataset directory written by [`write_dataset`].
pub fn open_dataset(dir: &Path) -> Result<StoredTimeSeries, StoreError> {
    StoredTimeSeries::from_backend(Box::new(DirStore::open(dir)?))
}

/// [`open_dataset`] with a chunk cache + iteration-order readahead over
/// the backend (see [`StoredTimeSeries::from_backend_cached`]).
pub fn open_dataset_cached(dir: &Path, cache_bytes: usize) -> Result<StoredTimeSeries, StoreError> {
    StoredTimeSeries::from_backend_cached(Box::new(DirStore::open(dir)?), cache_bytes)
}

/// A reopened stored time series: chunked block data plus the
/// deterministic geometry rebuilt from the metadata.
///
/// Block *data* always comes from the store — the rebuilt
/// [`ReflectivityDataset`] only supplies the decomposition and the
/// CM1-stretched coordinate axes (both fully determined by the stored
/// domain geometry), so a consumer never regenerates the simulation.
pub struct StoredTimeSeries {
    store: DynChunkedDataset,
    geometry: ReflectivityDataset,
    /// Present when opened through [`StoredTimeSeries::from_backend_cached`]:
    /// the caching layer's handle, kept for statistics and cache control.
    cache: Option<SharedCachedBackend>,
}

impl StoredTimeSeries {
    /// Open over any (type-erased) backend; `MemStore`-backed tests and
    /// `DirStore`-backed experiments share this path. The chunk layout
    /// recorded in the metadata is honored transparently: sharded
    /// datasets read back through shard byte ranges, plain ones as-is.
    pub fn from_backend(backend: Box<dyn StoreBackend>) -> Result<Self, StoreError> {
        let store = ChunkedDataset::open_auto(backend)?;
        let geometry =
            ReflectivityDataset::new(*store.decomp(), StormModel::new(store.meta().seed));
        Ok(Self {
            store,
            geometry,
            cache: None,
        })
    }

    /// [`StoredTimeSeries::from_backend`] with a byte-budgeted chunk
    /// cache and iteration-order readahead layered over the (possibly
    /// sharded) backend: repeat reads of a chunk are answered from
    /// memory, and a sequential replay prefetches the next iteration's
    /// chunk for the same rank. Replay results are byte-identical to the
    /// uncached open; only speed and [`StoredTimeSeries::cache_stats`]
    /// change.
    pub fn from_backend_cached(
        backend: Box<dyn StoreBackend>,
        cache_bytes: usize,
    ) -> Result<Self, StoreError> {
        let (store, cache) = ChunkedDataset::open_auto_cached(backend, cache_bytes)?;
        let geometry =
            ReflectivityDataset::new(*store.decomp(), StormModel::new(store.meta().seed));
        Ok(Self {
            store,
            geometry,
            cache: Some(cache),
        })
    }

    /// Chunk-cache counters, when this series was opened through
    /// [`StoredTimeSeries::from_backend_cached`].
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Drop every cached chunk (counters keep counting); no-op without a
    /// cache. Lets benchmarks measure cold reads from a warm process.
    pub fn cache_clear(&self) {
        if let Some(c) = &self.cache {
            c.clear();
        }
    }

    /// The geometry twin of the stored dataset (decomposition +
    /// coordinates; its field generators are *not* what replay uses).
    pub fn geometry(&self) -> &ReflectivityDataset {
        &self.geometry
    }

    pub fn decomp(&self) -> &DomainDecomp {
        self.store.decomp()
    }

    pub fn coords(&self) -> &RectilinearCoords {
        self.geometry.coords()
    }

    /// Stored iterations, strictly increasing.
    pub fn iterations(&self) -> &[usize] {
        self.store.iterations()
    }

    /// Storm seed recorded at write time (provenance).
    pub fn seed(&self) -> u64 {
        self.store.meta().seed
    }

    pub fn codec(&self) -> CodecKind {
        self.store.meta().codec
    }

    /// The underlying chunked dataset.
    pub fn store(&self) -> &DynChunkedDataset {
        &self.store
    }

    /// One block, read and decompressed from the store.
    pub fn block(&self, iteration: usize, id: BlockId) -> Result<Block, StoreError> {
        self.store.read_block(iteration, id)
    }

    /// All blocks of `rank` at `iteration` — the lazy per-rank read the
    /// pipeline drives from inside its rank threads.
    pub fn rank_blocks(&self, iteration: usize, rank: usize) -> Result<Vec<Block>, StoreError> {
        self.store.read_rank_blocks(iteration, rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_store::MemStore;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("apc_cm1_store_tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn disk_roundtrip_matches_generated_blocks() {
        let dataset = ReflectivityDataset::tiny(4, 99).unwrap();
        let dir = tmp_dir("roundtrip");
        let iters = [300, 100, 100]; // unsorted + duplicate on purpose
        write_dataset(&dataset, &iters, &dir, CodecKind::Fpz).unwrap();

        let stored = open_dataset(&dir).unwrap();
        assert_eq!(stored.iterations(), &[100, 300]);
        assert_eq!(stored.seed(), 99);
        assert_eq!(stored.decomp(), dataset.decomp());
        assert_eq!(stored.coords(), dataset.coords());
        for &it in &[100usize, 300] {
            for rank in 0..4 {
                assert_eq!(
                    stored.rank_blocks(it, rank).unwrap(),
                    dataset.rank_blocks(it, rank),
                    "iter {it} rank {rank}"
                );
            }
        }
    }

    #[test]
    fn mem_roundtrip_per_lossless_codec() {
        let dataset = ReflectivityDataset::tiny(1, 7).unwrap();
        for codec in [CodecKind::Raw, CodecKind::Fpz, CodecKind::Lz] {
            let store = write_dataset_to(&dataset, &[200], MemStore::new(), codec).unwrap();
            for id in [0u32, 63, 127] {
                assert_eq!(
                    store.read_block(200, id).unwrap(),
                    dataset.block(200, id),
                    "{} block {id}",
                    codec.name()
                );
            }
        }
    }

    #[test]
    fn lossless_codecs_shrink_the_tiny_dataset() {
        let dataset = ReflectivityDataset::tiny(4, 42).unwrap();
        let raw = MemStore::new();
        write_dataset_to(&dataset, &[250], raw, CodecKind::Raw).unwrap();
        // Re-create stores to measure (consume backends by value).
        let measure = |codec: CodecKind| {
            let mem = MemStore::new();
            let store = write_dataset_to(&dataset, &[250], mem, codec).unwrap();
            store.backend().nbytes()
        };
        let raw_bytes = measure(CodecKind::Raw);
        let fpz_bytes = measure(CodecKind::Fpz);
        assert!(
            fpz_bytes < raw_bytes,
            "fpz should beat raw on storm data: {fpz_bytes} vs {raw_bytes}"
        );
    }

    #[test]
    fn zfpx_store_is_close_but_smaller() {
        let dataset = ReflectivityDataset::tiny(1, 7).unwrap();
        let tol = 0.05f32;
        let store = write_dataset_to(
            &dataset,
            &[200],
            MemStore::new(),
            CodecKind::Zfpx { tolerance: tol },
        )
        .unwrap();
        let exact = dataset.block(200, 40);
        let lossy = store.read_block(200, 40).unwrap();
        let (BlockData::Full(a), BlockData::Full(b)) = (&exact.data, &lossy.data) else {
            panic!("full blocks expected")
        };
        let max_err = a
            .iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        // Reflectivity spans ~[-60, 80]; the lifting can amplify the cut
        // by a small factor, so allow the conservative 8x envelope.
        assert!(
            max_err <= 8.0 * tol * 80.0f32.log2().ceil(),
            "err {max_err}"
        );
        assert!(
            max_err > 0.0,
            "zfpx at tol {tol} should not be bit-exact here"
        );
    }

    #[test]
    fn cached_open_replays_identically_and_prefetches() {
        let dataset = ReflectivityDataset::tiny(4, 55).unwrap();
        let dir = tmp_dir("cached-roundtrip");
        write_dataset_sharded(&dataset, &[100, 200, 300], &dir, CodecKind::Fpz, 48).unwrap();

        let plain = open_dataset(&dir).unwrap();
        assert!(plain.cache_stats().is_none());
        let cached = open_dataset_cached(&dir, 8 << 20).unwrap();

        // Sequential replay, every rank: bytes identical to the uncached
        // open, and readahead keeps pulling the next iteration's chunks.
        for &it in &[100usize, 200, 300] {
            for rank in 0..4 {
                assert_eq!(
                    cached.rank_blocks(it, rank).unwrap(),
                    plain.rank_blocks(it, rank).unwrap(),
                    "iter {it} rank {rank}"
                );
            }
        }
        let first = cached.cache_stats().unwrap();
        assert!(first.prefetched > 0, "sequential replay must prefetch");
        assert!(first.prefetch_used > 0, "prefetched chunks must be used");

        // A second sweep is answered from memory: no new misses.
        for &it in &[100usize, 200, 300] {
            for rank in 0..4 {
                cached.rank_blocks(it, rank).unwrap();
            }
        }
        let second = cached.cache_stats().unwrap();
        assert_eq!(second.misses, first.misses, "warm sweep must not miss");
        assert!(second.hits > first.hits);

        // cache_clear drops contents, so the next sweep misses again.
        cached.cache_clear();
        cached.rank_blocks(100, 0).unwrap();
        assert!(cached.cache_stats().unwrap().misses > second.misses);
    }

    #[test]
    fn open_missing_dir_is_error() {
        assert!(open_dataset(&tmp_dir("never-written")).is_err());
    }

    #[test]
    fn sharded_disk_roundtrip_matches_generated_blocks() {
        let dataset = ReflectivityDataset::tiny(4, 55).unwrap();
        let dir = tmp_dir("sharded-roundtrip");
        // 128 blocks per iteration, 48 per shard → 2 full + 1 tail shard.
        write_dataset_sharded(&dataset, &[100, 300], &dir, CodecKind::Fpz, 48).unwrap();
        // The chunk directory holds shard containers, not per-chunk files.
        assert!(dir.join("c/000100/s000000").is_file());
        assert!(!dir.join("c/000100/000000").is_file());

        // open_dataset sees the recorded layout and reads through it.
        let stored = open_dataset(&dir).unwrap();
        assert_eq!(stored.store().meta().shard_chunks, Some(48));
        assert_eq!(stored.iterations(), &[100, 300]);
        for &it in &[100usize, 300] {
            for rank in 0..4 {
                assert_eq!(
                    stored.rank_blocks(it, rank).unwrap(),
                    dataset.rank_blocks(it, rank),
                    "iter {it} rank {rank}"
                );
            }
        }
    }
}

//! The replayable reflectivity dataset the experiments feed to the
//! pipeline.
//!
//! Mirrors the paper's setup (§V-A): a 572-iteration timeline of a
//! 2200×2200×380 reflectivity field decomposed over 64 or 400 ranks with
//! 55×55×38-point blocks (16,000 blocks). Our default experiments run the
//! 1:5-per-axis scale — 440×440×76 with 11×11×19 blocks, 6,400 blocks —
//! documented in DESIGN.md §2; the full-size decomposition is available for
//! anyone with the memory budget.

use apc_grid::{
    Block, BlockId, Dims3, DomainDecomp, Field3, GridError, ProcGrid, RectilinearCoords,
};

use crate::storm::StormModel;

/// A deterministic, lazily-generated reflectivity timeline bound to a
/// domain decomposition.
#[derive(Debug, Clone)]
pub struct ReflectivityDataset {
    decomp: DomainDecomp,
    coords: RectilinearCoords,
    storm: StormModel,
}

impl ReflectivityDataset {
    /// Build with explicit decomposition and storm model. The coordinate
    /// axes get the CM1-style stretched border (§II-A).
    pub fn new(decomp: DomainDecomp, storm: StormModel) -> Self {
        let coords = RectilinearCoords::stretched(decomp.domain(), 1.0, 8, 1.12);
        Self {
            decomp,
            coords,
            storm,
        }
    }

    /// The paper's experiment geometry at 1:5 scale: 440×440×76 domain,
    /// 11×11×19 blocks (6,400 of them), `nranks` ∈ {64, 400} (or any count
    /// whose auto 2D grid divides 440×440).
    pub fn paper_scaled(nranks: usize, seed: u64) -> Result<Self, GridError> {
        let domain = Dims3::new(440, 440, 76);
        let block = Dims3::new(11, 11, 19);
        let decomp = DomainDecomp::new(domain, ProcGrid::auto2d(nranks), block)?;
        Ok(Self::new(decomp, StormModel::new(seed)))
    }

    /// The paper's full-size geometry (2200×2200×380, 55×55×38 blocks,
    /// 16,000 blocks). ~7.4 GB per iteration as `f32` — bench-cluster
    /// territory, provided for completeness.
    pub fn paper_full(nranks: usize, seed: u64) -> Result<Self, GridError> {
        let domain = Dims3::new(2200, 2200, 380);
        let block = Dims3::new(55, 55, 38);
        let decomp = DomainDecomp::new(domain, ProcGrid::auto2d(nranks), block)?;
        Ok(Self::new(decomp, StormModel::new(seed)))
    }

    /// A small geometry for unit tests: 80×80×16 domain, 10×10×8 blocks,
    /// 128 blocks. `nranks` must tile 8×8×2 blocks (1, 4, 16 work).
    pub fn tiny(nranks: usize, seed: u64) -> Result<Self, GridError> {
        let domain = Dims3::new(80, 80, 16);
        let block = Dims3::new(10, 10, 8);
        let decomp = DomainDecomp::new(domain, ProcGrid::auto2d(nranks), block)?;
        Ok(Self::new(decomp, StormModel::new(seed)))
    }

    pub fn decomp(&self) -> &DomainDecomp {
        &self.decomp
    }

    pub fn coords(&self) -> &RectilinearCoords {
        &self.coords
    }

    pub fn storm(&self) -> &StormModel {
        &self.storm
    }

    /// Total iterations in the timeline.
    pub fn n_iterations(&self) -> usize {
        self.storm.n_iterations
    }

    /// `n` iteration indices equally spaced through the timeline, starting
    /// after spin-up — the paper uses 10 for component experiments and 30
    /// for the adaptation runs, "starting after approximately 5,000
    /// iterations of the simulation".
    pub fn sample_iterations(&self, n: usize) -> Vec<usize> {
        let total = self.n_iterations();
        let start = total / 10; // skip spin-up
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![start];
        }
        (0..n)
            .map(|i| start + i * (total - 1 - start) / (n - 1))
            .collect()
    }

    /// The whole-domain field at `iteration` (examples / image rendering).
    pub fn field(&self, iteration: usize) -> Field3 {
        self.storm.reflectivity(&self.coords, iteration)
    }

    /// One rank's subdomain field, generated directly on the subdomain's
    /// extent (what a real CM1 rank would hand the in situ library).
    pub fn rank_field(&self, iteration: usize, rank: usize) -> Field3 {
        let ext = self.decomp.subdomain_extent(rank);
        self.storm
            .reflectivity_on(&self.coords, ext.lo, ext.dims(), iteration)
    }

    /// One rank's blocks at `iteration`, in the decomposition's block
    /// order — the pipeline's per-iteration input.
    pub fn rank_blocks(&self, iteration: usize, rank: usize) -> Vec<Block> {
        let sub = self.decomp.subdomain_extent(rank);
        let field = self.rank_field(iteration, rank);
        self.decomp
            .blocks_of_rank(rank)
            .into_iter()
            .map(|id| {
                let ext = self.decomp.block_extent(id);
                // Re-base the block extent into subdomain-local indices.
                let local = apc_grid::Extent3::new(
                    (
                        ext.lo.0 - sub.lo.0,
                        ext.lo.1 - sub.lo.1,
                        ext.lo.2 - sub.lo.2,
                    ),
                    (
                        ext.hi.0 - sub.lo.0,
                        ext.hi.1 - sub.lo.1,
                        ext.hi.2 - sub.lo.2,
                    ),
                );
                // apc-lint: allow(unwrap-in-lib): block extents are produced by partitioning this same subdomain
                let data = field.extract(local).expect("block inside subdomain");
                Block {
                    id,
                    extent: ext,
                    data: apc_grid::BlockData::Full(data),
                }
            })
            .collect()
    }

    /// A single block's data (used by scoring harnesses that don't need the
    /// whole subdomain).
    pub fn block(&self, iteration: usize, id: BlockId) -> Block {
        let ext = self.decomp.block_extent(id);
        let field = self
            .storm
            .reflectivity_on(&self.coords, ext.lo, ext.dims(), iteration);
        Block {
            id,
            extent: ext,
            data: apc_grid::BlockData::Full(field.into_vec()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scaled_counts() {
        let ds = ReflectivityDataset::paper_scaled(64, 1).unwrap();
        assert_eq!(ds.decomp().n_blocks(), 6400);
        assert_eq!(ds.decomp().blocks_per_rank(), 100);
        let ds = ReflectivityDataset::paper_scaled(400, 1).unwrap();
        assert_eq!(ds.decomp().n_blocks(), 6400);
        assert_eq!(ds.decomp().blocks_per_rank(), 16);
    }

    #[test]
    fn tiny_counts() {
        let ds = ReflectivityDataset::tiny(4, 1).unwrap();
        assert_eq!(ds.decomp().n_blocks(), 128);
        assert_eq!(ds.decomp().blocks_per_rank(), 32);
    }

    #[test]
    fn sample_iterations_spacing() {
        let ds = ReflectivityDataset::tiny(4, 1).unwrap();
        let iters = ds.sample_iterations(10);
        assert_eq!(iters.len(), 10);
        assert!(iters.windows(2).all(|w| w[1] > w[0]));
        assert!(*iters.last().unwrap() < ds.n_iterations());
        assert_eq!(ds.sample_iterations(1).len(), 1);
        assert!(ds.sample_iterations(0).is_empty());
    }

    #[test]
    fn rank_fields_tile_the_domain() {
        let ds = ReflectivityDataset::tiny(4, 7).unwrap();
        let full = ds.field(200);
        for rank in 0..4 {
            let sub = ds.rank_field(200, rank);
            let ext = ds.decomp().subdomain_extent(rank);
            // Spot-check a few points.
            for &(i, j, k) in &[
                (0, 0, 0),
                (3, 5, 7),
                (9, 9, 9).min((ext.dims().nx - 1, ext.dims().ny - 1, ext.dims().nz - 1)),
            ] {
                assert_eq!(
                    sub.get(i, j, k),
                    full.get(ext.lo.0 + i, ext.lo.1 + j, ext.lo.2 + k),
                    "rank {rank} point ({i},{j},{k})"
                );
            }
        }
    }

    #[test]
    fn rank_blocks_cover_rank_ids() {
        let ds = ReflectivityDataset::tiny(4, 7).unwrap();
        for rank in 0..4 {
            let blocks = ds.rank_blocks(100, rank);
            let expect = ds.decomp().blocks_of_rank(rank);
            assert_eq!(blocks.len(), expect.len());
            for (b, id) in blocks.iter().zip(expect) {
                assert_eq!(b.id, id);
                assert_eq!(b.extent, ds.decomp().block_extent(id));
                assert!(!b.is_reduced());
            }
        }
    }

    #[test]
    fn block_matches_rank_blocks() {
        let ds = ReflectivityDataset::tiny(4, 7).unwrap();
        let via_rank = &ds.rank_blocks(100, 1)[3];
        let direct = ds.block(100, via_rank.id);
        assert_eq!(direct, *via_rank);
    }

    #[test]
    fn load_is_imbalanced_across_ranks() {
        // The premise of §II-B: blocks containing the storm cluster on few
        // ranks. Count per-rank points above the isovalue.
        let ds = ReflectivityDataset::tiny(16, 1).unwrap();
        let iter = ds.sample_iterations(10)[5];
        let mut per_rank = Vec::new();
        for rank in 0..16 {
            let f = ds.rank_field(iter, rank);
            let hot = f
                .as_slice()
                .iter()
                .filter(|&&v| v > crate::DBZ_ISOVALUE)
                .count();
            per_rank.push(hot);
        }
        let max = *per_rank.iter().max().unwrap() as f64;
        let mean = per_rank.iter().sum::<usize>() as f64 / 16.0;
        assert!(max > 0.0, "someone must hold the storm");
        assert!(
            max / mean.max(1.0) > 3.0,
            "imbalance expected: per-rank hot counts {per_rank:?}"
        );
    }
}

//! A synthetic CM1-like atmospheric simulation substrate.
//!
//! The paper replays a 572-iteration reflectivity dataset produced by a
//! 3-day CM1 (Bryan & Fritsch 2002) run on Blue Waters. Neither CM1 nor the
//! dataset is available here, so this crate builds the closest synthetic
//! equivalent (DESIGN.md §2):
//!
//! * [`noise`] — deterministic hash-based 3D value noise / fBm, the
//!   turbulence texture of the storm;
//! * [`storm`] — a procedural supercell: condensate envelope with updraft
//!   core, weak-echo region, hook echo, anvil and flanking cells, evolving
//!   deterministically over iterations;
//! * [`hydro`] — CM1-style microphysics split of the condensate into rain /
//!   snow / hail mixing ratios and the radar-reflectivity derivation
//!   ("derives from a calculation based on cloud rain, hail, and snow
//!   microphysical variables", paper §II-A);
//! * [`solver`] — a small semi-Lagrangian advection–diffusion solver that
//!   stands in for the simulation's compute phase;
//! * [`dataset`] — the replayable iteration sequence the experiments feed
//!   to the pipeline, at the paper's two scales (64 and 400 ranks);
//! * [`store`] — persistence through the `apc-store` chunked dataset
//!   ([`write_dataset`] / [`open_dataset`]): write a time series once,
//!   replay it forever, byte-identically under a lossless codec. The
//!   older flat per-iteration file format lives on in [`io`].
//!
//! The property the experiments depend on — and which [`storm`]'s tests
//! pin — is *spatial locality*: the storm covers a small fraction of the
//! domain, so a regular decomposition puts nearly all of the rendering and
//! scoring load on a few ranks.

pub mod dataset;
pub mod hydro;
pub mod io;
pub mod noise;
pub mod solver;
pub mod store;
pub mod storm;

pub use dataset::ReflectivityDataset;
pub use hydro::{reflectivity_from_hydrometeors, reflectivity_from_hydrometeors_at, Hydrometeors};
pub use io::StoredDataset;
pub use noise::{fbm3, value_noise3};
pub use solver::AdvectionSolver;
pub use store::{
    open_dataset, open_dataset_cached, write_dataset, write_dataset_sharded,
    write_dataset_sharded_to, write_dataset_to, StoredTimeSeries,
};
pub use storm::StormModel;

/// Reflectivity bounds in dBZ — the known range the ITL metric relies on
/// (paper §IV-B-c).
pub const DBZ_MIN: f32 = -60.0;
pub const DBZ_MAX: f32 = 80.0;

/// The isovalue the paper renders: the 45 dBZ surface whose interior hides
/// the weak echo region (§II-A).
pub const DBZ_ISOVALUE: f32 = 45.0;

//! Block-oriented dataset files — the stand-in for the Block I/O Library
//! (BIL, Kendall et al. 2011). This is the legacy *flat* format (one
//! uncompressed file per iteration); new code should prefer the chunked,
//! compressed [`crate::store`] layer, which the experiment drivers load
//! through `APC_DATASET`.
//!
//! The paper avoids re-running CM1 by storing 572 iterations of
//! reflectivity and reloading them "using the Block I/O Library (BIL) into
//! an in situ visualization kernel" (§V-A). This module provides that
//! storage path: one file per iteration, blocks stored *contiguously in
//! block-id order*, so a rank can seek straight to its own blocks without
//! reading the rest of the domain — BIL's defining access pattern.
//!
//! File layout (little-endian):
//!
//! ```text
//! magic   b"APCD"                     4 bytes
//! version u32                         (currently 1)
//! domain  3 × u32                     points per axis
//! block   3 × u32                     block dims
//! procs   3 × u32                     process grid the writer used
//! iter    u32                         simulation iteration stored
//! seed    u64                         storm seed (provenance)
//! data    n_blocks × block_len × f32  x-fastest samples, block-id order
//! ```

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use apc_grid::{Block, BlockData, BlockId, Dims3, DomainDecomp, ProcGrid};

use crate::dataset::ReflectivityDataset;

const MAGIC: &[u8; 4] = b"APCD";
const VERSION: u32 = 1;
const HEADER_LEN: u64 = 4 + 4 + 12 + 12 + 12 + 4 + 8;

/// Errors from dataset files.
#[derive(Debug)]
pub enum IoError {
    Io(io::Error),
    /// Not an APCD file or unsupported version.
    BadHeader(&'static str),
    /// Header geometry is inconsistent (e.g. indivisible decomposition).
    BadGeometry(apc_grid::GridError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::BadHeader(what) => write!(f, "bad dataset header: {what}"),
            IoError::BadGeometry(e) => write!(f, "bad dataset geometry: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_dims(w: &mut impl Write, d: Dims3) -> io::Result<()> {
    write_u32(w, d.nx as u32)?;
    write_u32(w, d.ny as u32)?;
    write_u32(w, d.nz as u32)
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_dims(r: &mut impl Read) -> io::Result<Dims3> {
    Ok(Dims3::new(
        read_u32(r)? as usize,
        read_u32(r)? as usize,
        read_u32(r)? as usize,
    ))
}

/// File name used for iteration `it` under a dataset directory.
pub fn iteration_file_name(it: usize) -> String {
    format!("iter_{it:06}.apcd")
}

/// Write one iteration of a dataset to `path` in block order.
pub fn write_iteration(
    dataset: &ReflectivityDataset,
    iteration: usize,
    path: &Path,
) -> Result<(), IoError> {
    let decomp = dataset.decomp();
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    write_u32(&mut w, VERSION)?;
    write_dims(&mut w, decomp.domain())?;
    write_dims(&mut w, decomp.block_dims())?;
    let p = decomp.procs();
    write_dims(&mut w, Dims3::new(p.px, p.py, p.pz))?;
    write_u32(&mut w, iteration as u32)?;
    w.write_all(&dataset.storm().seed.to_le_bytes())?;
    // Blocks in id order (generate per block to bound memory).
    for id in decomp.all_blocks() {
        let block = dataset.block(iteration, id);
        let BlockData::Full(samples) = &block.data else {
            unreachable!("dataset blocks are always full")
        };
        for v in samples {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Write `iterations` of `dataset` into `dir` (created if missing).
pub fn write_dataset(
    dataset: &ReflectivityDataset,
    iterations: &[usize],
    dir: &Path,
) -> Result<Vec<PathBuf>, IoError> {
    std::fs::create_dir_all(dir)?;
    iterations
        .iter()
        .map(|&it| {
            let path = dir.join(iteration_file_name(it));
            write_iteration(dataset, it, &path)?;
            Ok(path)
        })
        .collect()
}

/// One stored iteration, readable block by block.
pub struct IterationFile {
    file: BufReader<File>,
    decomp: DomainDecomp,
    iteration: usize,
    seed: u64,
}

impl IterationFile {
    pub fn open(path: &Path) -> Result<Self, IoError> {
        let mut file = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 4];
        file.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(IoError::BadHeader("magic mismatch"));
        }
        if read_u32(&mut file)? != VERSION {
            return Err(IoError::BadHeader("unsupported version"));
        }
        let domain = read_dims(&mut file)?;
        let block = read_dims(&mut file)?;
        let procs = read_dims(&mut file)?;
        let iteration = read_u32(&mut file)? as usize;
        let mut seed_b = [0u8; 8];
        file.read_exact(&mut seed_b)?;
        let decomp = DomainDecomp::new(domain, ProcGrid::new(procs.nx, procs.ny, procs.nz), block)
            .map_err(IoError::BadGeometry)?;
        Ok(Self {
            file,
            decomp,
            iteration,
            seed: u64::from_le_bytes(seed_b),
        })
    }

    pub fn decomp(&self) -> &DomainDecomp {
        &self.decomp
    }

    pub fn iteration(&self) -> usize {
        self.iteration
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Read one block by id — a single seek + contiguous read, the BIL
    /// access pattern.
    pub fn read_block(&mut self, id: BlockId) -> Result<Block, IoError> {
        let block_len = self.decomp.block_dims().len();
        let offset = HEADER_LEN + id as u64 * (block_len as u64 * 4);
        self.file.seek(SeekFrom::Start(offset))?;
        let mut bytes = vec![0u8; block_len * 4];
        self.file.read_exact(&mut bytes)?;
        let samples: Vec<f32> = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        Ok(Block {
            id,
            extent: self.decomp.block_extent(id),
            data: BlockData::Full(samples),
        })
    }

    /// Read all blocks of one rank, as the in situ kernel would at the
    /// start of an iteration.
    pub fn read_rank_blocks(&mut self, rank: usize) -> Result<Vec<Block>, IoError> {
        self.decomp
            .blocks_of_rank(rank)
            .into_iter()
            .map(|id| self.read_block(id))
            .collect()
    }
}

/// A stored, replayable dataset directory (the paper's "dataset already
/// generated by atmospheric scientists").
pub struct StoredDataset {
    dir: PathBuf,
    iterations: Vec<usize>,
}

impl StoredDataset {
    /// Scan `dir` for iteration files.
    pub fn open(dir: &Path) -> Result<Self, IoError> {
        let mut iterations = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(num) = name
                .strip_prefix("iter_")
                .and_then(|s| s.strip_suffix(".apcd"))
            {
                if let Ok(it) = num.parse::<usize>() {
                    iterations.push(it);
                }
            }
        }
        if iterations.is_empty() {
            return Err(IoError::BadHeader("no iteration files found"));
        }
        iterations.sort_unstable();
        Ok(Self {
            dir: dir.to_path_buf(),
            iterations,
        })
    }

    pub fn iterations(&self) -> &[usize] {
        &self.iterations
    }

    pub fn iteration_file(&self, it: usize) -> Result<IterationFile, IoError> {
        IterationFile::open(&self.dir.join(iteration_file_name(it)))
    }

    /// Blocks of `rank` at stored iteration `it` — drop-in for
    /// [`ReflectivityDataset::rank_blocks`] in the experiment driver.
    pub fn rank_blocks(&self, it: usize, rank: usize) -> Result<Vec<Block>, IoError> {
        self.iteration_file(it)?.read_rank_blocks(rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("apc_cm1_io_tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_matches_generated_blocks() {
        let dataset = ReflectivityDataset::tiny(4, 99).unwrap();
        let dir = tmp_dir("roundtrip");
        let iters = vec![100, 300];
        write_dataset(&dataset, &iters, &dir).unwrap();

        let stored = StoredDataset::open(&dir).unwrap();
        assert_eq!(stored.iterations(), &[100, 300]);
        for &it in &iters {
            for rank in 0..4 {
                let from_disk = stored.rank_blocks(it, rank).unwrap();
                let generated = dataset.rank_blocks(it, rank);
                assert_eq!(from_disk, generated, "iter {it} rank {rank}");
            }
        }
    }

    #[test]
    fn single_block_seek_read() {
        let dataset = ReflectivityDataset::tiny(4, 7).unwrap();
        let dir = tmp_dir("seek");
        write_dataset(&dataset, &[200], &dir).unwrap();
        let stored = StoredDataset::open(&dir).unwrap();
        let mut f = stored.iteration_file(200).unwrap();
        assert_eq!(f.iteration(), 200);
        assert_eq!(f.seed(), 7);
        // Read blocks out of order; each must match direct generation.
        for id in [77u32, 0, 127, 5] {
            let b = f.read_block(id).unwrap();
            assert_eq!(b, dataset.block(200, id), "block {id}");
        }
    }

    #[test]
    fn header_validation() {
        let dir = tmp_dir("badheader");
        let path = dir.join(iteration_file_name(1));
        std::fs::write(&path, b"NOPE").unwrap();
        assert!(matches!(
            IterationFile::open(&path),
            Err(IoError::BadHeader(_)) | Err(IoError::Io(_))
        ));
    }

    #[test]
    fn empty_dir_is_error() {
        let dir = tmp_dir("empty");
        assert!(matches!(
            StoredDataset::open(&dir),
            Err(IoError::BadHeader(_))
        ));
    }

    #[test]
    fn file_size_matches_geometry() {
        let dataset = ReflectivityDataset::tiny(4, 1).unwrap();
        let dir = tmp_dir("size");
        let paths = write_dataset(&dataset, &[50], &dir).unwrap();
        let meta = std::fs::metadata(&paths[0]).unwrap();
        let expect = HEADER_LEN + dataset.decomp().domain().len() as u64 * 4;
        assert_eq!(meta.len(), expect);
    }
}

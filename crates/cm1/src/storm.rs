//! A procedural supercell: the storm whose locality drives the paper's
//! load-imbalance story.
//!
//! The model composes, in normalized coordinates `p ∈ [0,1]³`, a condensate
//! envelope with the classic supercell anatomy that Fig. 1 of the paper
//! shows: a rotating core, a *weak echo region* (the vault under the
//! updraft the 45 dBZ isosurface reveals), a low-level *hook echo*, an
//! *anvil* spreading aloft, and a flanking line of smaller cells. A
//! multi-octave turbulence texture gives the interior the high local
//! variability that information-theoretic metrics key on (ITL/FPZIP score
//! the storm's inside high, §V-B).
//!
//! Everything is a pure function of `(position, iteration, seed)`.

use apc_grid::{Dims3, Field3, RectilinearCoords};

use crate::hydro::Hydrometeors;
use crate::noise::fbm3;

#[inline]
fn smoothstep01(t: f32) -> f32 {
    let t = t.clamp(0.0, 1.0);
    t * t * (3.0 - 2.0 * t)
}

/// The storm model and its timeline.
#[derive(Debug, Clone)]
pub struct StormModel {
    pub seed: u64,
    /// Length of the replayed timeline (the paper's dataset has 572
    /// iterations).
    pub n_iterations: usize,
}

impl Default for StormModel {
    fn default() -> Self {
        Self {
            seed: 0xC1_5EED,
            n_iterations: 572,
        }
    }
}

impl StormModel {
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Normalized time `τ ∈ [0, 1]` of an iteration.
    pub fn tau(&self, iteration: usize) -> f32 {
        if self.n_iterations <= 1 {
            return 0.0;
        }
        (iteration.min(self.n_iterations - 1)) as f32 / (self.n_iterations - 1) as f32
    }

    /// Horizontal storm-center position at time `τ` (the storm tracks
    /// northeastward across the domain, staying clear of the stretched
    /// border — CM1 domains are sized for exactly that, §II-A).
    pub fn center(&self, tau: f32) -> [f32; 2] {
        [0.33 + 0.30 * tau, 0.36 + 0.24 * tau]
    }

    /// Storm intensity at time `τ`: spin-up ramp plus a slow pulse.
    pub fn intensity(&self, tau: f32) -> f32 {
        smoothstep01(tau / 0.2 + 0.35) * (0.92 + 0.08 * (tau * 12.0).sin())
    }

    /// Horizontal core radius at normalized height `z` (anvil spreads
    /// aloft; kept moderate so the echo stays spatially local — the
    /// property the paper's whole pipeline exploits).
    fn sigma_h(&self, z: f32) -> f32 {
        let anvil = smoothstep01((z - 0.55) / 0.40);
        0.060 * (1.0 + 0.8 * anvil)
    }

    /// Condensate below this saturation floor evaporates. Without it the
    /// Gaussian envelope's tail stays radar-visible for ~5σ in log space
    /// and the echo loses the spatial locality the paper's data has.
    const CONDENSATE_FLOOR: f32 = 0.05;

    /// Condensate envelope in `[0, 1]` at normalized position `p`, time `τ`.
    pub fn condensate(&self, p: [f32; 3], tau: f32) -> f32 {
        let [x, y, z] = p;
        let c = self.center(tau);
        let intensity = self.intensity(tau);

        // Main cell.
        let sh = self.sigma_h(z);
        let dx = x - c[0];
        let dy = y - c[1];
        let r2 = dx * dx + dy * dy;
        let vertical = if z < 0.60 {
            1.0
        } else {
            1.0 - 0.65 * smoothstep01((z - 0.60) / 0.38)
        } * (1.0 - smoothstep01((z - 0.93) / 0.07)); // echo top
        let mut env = intensity * vertical * (-r2 / (2.0 * sh * sh)).exp();

        // Flanking line: three smaller cells trailing southwest.
        for (idx, (dist, amp)) in [(0.085f32, 0.45f32), (0.16, 0.35), (0.23, 0.25)]
            .iter()
            .enumerate()
        {
            let pulse = 0.8 + 0.2 * ((tau * 17.0) + idx as f32 * 2.1).sin();
            let fx = c[0] - dist * 0.83;
            let fy = c[1] - dist * 0.55;
            let fr2 = (x - fx).powi(2) + (y - fy).powi(2);
            let fsh = 0.028;
            env += intensity
                * amp
                * pulse
                * vertical
                * (1.0 - smoothstep01((z - 0.55) / 0.2))
                * (-fr2 / (2.0 * fsh * fsh)).exp();
        }

        // Hook echo: a low-level appendage curling around the mesocyclone.
        if z < 0.30 {
            let rot = 2.2 * tau; // the hook precesses as the storm matures
            let theta = dy.atan2(dx);
            let hook_theta = -2.3 + rot;
            let mut dth = theta - hook_theta;
            while dth > std::f32::consts::PI {
                dth -= 2.0 * std::f32::consts::PI;
            }
            while dth < -std::f32::consts::PI {
                dth += 2.0 * std::f32::consts::PI;
            }
            let rh = 1.35 * sh;
            let r = r2.sqrt();
            env += intensity
                * 0.55
                * (1.0 - z / 0.30)
                * (-((r - rh) * (r - rh)) / (2.0 * 0.014 * 0.014)).exp()
                * (-dth * dth / (2.0 * 0.55 * 0.55)).exp();
        }

        // Weak echo region: the inflow vault carved out at low levels,
        // offset toward the storm's inflow flank.
        if z < 0.38 {
            let wx = c[0] + 0.022;
            let wy = c[1] - 0.020;
            let wr2 = (x - wx).powi(2) + (y - wy).powi(2);
            let depth = (1.0 - z / 0.38) * 0.85;
            env -= depth * env * (-wr2 / (2.0 * 0.020 * 0.020)).exp();
        }

        // Turbulent texture: strong inside the storm, absent outside. The
        // additive part is proportional to the envelope so the storm's
        // faint fringe stays smooth (in log-reflectivity space a relative
        // perturbation is a bounded dB wiggle).
        if env > 1e-3 {
            let freq = 11.0;
            let drift = tau * 3.0;
            let tex = fbm3(
                x * freq + drift,
                y * freq - 0.6 * drift,
                z * freq * 0.7,
                5,
                self.seed,
            );
            env = env * (1.0 + 0.45 * tex) + 0.35 * env * tex.max(0.0);
        }

        // Saturation floor: evaporate the faint tail, renormalize the rest.
        ((env - Self::CONDENSATE_FLOOR).max(0.0) / (1.0 - Self::CONDENSATE_FLOOR)).clamp(0.0, 1.0)
    }

    /// Wind field (normalized units/iteration) at `p`, time `τ`: steering
    /// flow plus mesocyclone rotation plus the updraft core. Used by the
    /// advection solver and the streamline visualization scenario the paper
    /// mentions (§IV-B).
    pub fn wind(&self, p: [f32; 3], tau: f32) -> [f32; 3] {
        let [x, y, z] = p;
        let c = self.center(tau);
        let dx = x - c[0];
        let dy = y - c[1];
        let r2 = dx * dx + dy * dy;
        let sh = self.sigma_h(z);
        let g = (-r2 / (2.0 * (1.8 * sh) * (1.8 * sh))).exp();
        let omega = 5.0 * self.intensity(tau);
        // Steering flow matches the storm-center drift per iteration.
        let steering = [0.30 * 0.001, 0.24 * 0.001, 0.0];
        [
            steering[0] - omega * dy * g * 0.01,
            steering[1] + omega * dx * g * 0.01,
            0.035 * self.intensity(tau) * g * (std::f32::consts::PI * z).sin(),
        ]
    }

    /// Normalize grid coordinates to `[0,1]³` using the physical bounds.
    fn normalizer(coords: &RectilinearCoords) -> impl Fn(usize, usize, usize) -> [f32; 3] + '_ {
        let (lo, hi) = coords.bounds();
        let span = [
            (hi[0] - lo[0]).max(f32::MIN_POSITIVE),
            (hi[1] - lo[1]).max(f32::MIN_POSITIVE),
            (hi[2] - lo[2]).max(f32::MIN_POSITIVE),
        ];
        move |i, j, k| {
            let p = coords.position(i, j, k);
            [
                (p[0] - lo[0]) / span[0],
                (p[1] - lo[1]) / span[1],
                (p[2] - lo[2]) / span[2],
            ]
        }
    }

    /// Hydrometeor mixing-ratio fields on (part of) the grid.
    /// `offset`/`dims` select a sub-box of the coordinate arrays, so ranks
    /// can generate just their subdomain.
    pub fn hydrometeors_on(
        &self,
        coords: &RectilinearCoords,
        offset: (usize, usize, usize),
        dims: Dims3,
        iteration: usize,
    ) -> Hydrometeors {
        let tau = self.tau(iteration);
        let norm = Self::normalizer(coords);
        let mut qr = Vec::with_capacity(dims.len());
        let mut qs = Vec::with_capacity(dims.len());
        let mut qg = Vec::with_capacity(dims.len());
        for k in 0..dims.nz {
            for j in 0..dims.ny {
                for i in 0..dims.nx {
                    let p = norm(offset.0 + i, offset.1 + j, offset.2 + k);
                    let c = self.condensate(p, tau);
                    let z = p[2];
                    // Height partition: rain below the freezing level, snow
                    // aloft, hail (graupel) in the strong core only. The
                    // snow onset is wide so the anvil base is a gentle dB
                    // gradient rather than a block-scale cliff.
                    qr.push(c * (1.0 - smoothstep01((z - 0.15) / 0.45)) * 6.0e-3);
                    qs.push(c * smoothstep01((z - 0.35) / 0.45) * 4.0e-3);
                    let core = (-(((z - 0.33) / 0.22) * ((z - 0.33) / 0.22))).exp();
                    qg.push(c * c * core * 8.0e-3);
                }
            }
        }
        Hydrometeors {
            // apc-lint: allow(unwrap-in-lib): each vec gets one push per grid cell of `dims`
            qr: Field3::from_vec(dims, qr).expect("capacity matches dims"),
            // apc-lint: allow(unwrap-in-lib): each vec gets one push per grid cell of `dims`
            qs: Field3::from_vec(dims, qs).expect("capacity matches dims"),
            // apc-lint: allow(unwrap-in-lib): each vec gets one push per grid cell of `dims`
            qg: Field3::from_vec(dims, qg).expect("capacity matches dims"),
        }
    }

    /// Reflectivity (dBZ) on a sub-box of the grid — the field the paper's
    /// whole evaluation renders.
    pub fn reflectivity_on(
        &self,
        coords: &RectilinearCoords,
        offset: (usize, usize, usize),
        dims: Dims3,
        iteration: usize,
    ) -> Field3 {
        let hydro = self.hydrometeors_on(coords, offset, dims, iteration);
        let norm = Self::normalizer(coords);
        let tau = self.tau(iteration);
        // Global normalized height of each z-plane of this sub-box.
        let heights: Vec<f32> = (0..dims.nz)
            .map(|k| norm(offset.0, offset.1, offset.2 + k)[2])
            .collect();
        let mut dbz = crate::hydro::reflectivity_from_hydrometeors_at(&hydro, &heights);
        // Clear-air background: weak, *flat* noise near the sensitivity
        // floor. Real clear air returns essentially nothing to the radar;
        // keeping it flat is what gives the paper its "set of blocks that
        // all metrics agree are not variable enough" (§V-B).
        let data = dbz.as_mut_slice();
        let mut idx = 0;
        for k in 0..dims.nz {
            for j in 0..dims.ny {
                for i in 0..dims.nx {
                    let p = norm(offset.0 + i, offset.1 + j, offset.2 + k);
                    let bg = -58.0
                        + 2.0
                            * (fbm3(
                                p[0] * 5.0 + tau,
                                p[1] * 5.0,
                                p[2] * 3.0,
                                3,
                                self.seed ^ 0xBA5E,
                            ) * 0.5
                                + 0.5);
                    if data[idx] < bg {
                        data[idx] = bg;
                    }
                    data[idx] = data[idx].clamp(crate::DBZ_MIN, crate::DBZ_MAX);
                    idx += 1;
                }
            }
        }
        dbz
    }

    /// Whole-domain reflectivity field.
    pub fn reflectivity(&self, coords: &RectilinearCoords, iteration: usize) -> Field3 {
        self.reflectivity_on(coords, (0, 0, 0), coords.dims(), iteration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DBZ_ISOVALUE, DBZ_MAX, DBZ_MIN};

    fn small_coords() -> RectilinearCoords {
        RectilinearCoords::uniform(Dims3::new(48, 48, 12), 1.0)
    }

    #[test]
    fn condensate_is_bounded_and_deterministic() {
        let m = StormModel::default();
        for i in 0..200 {
            let p = [
                (i % 20) as f32 / 20.0,
                (i / 20) as f32 / 10.0,
                (i % 7) as f32 / 7.0,
            ];
            let c = m.condensate(p, 0.5);
            assert!((0.0..=1.0).contains(&c), "condensate {c} at {p:?}");
            assert_eq!(c, m.condensate(p, 0.5));
        }
    }

    #[test]
    fn storm_core_is_wet_and_far_field_is_dry() {
        let m = StormModel::default();
        let tau = 0.5;
        let c = m.center(tau);
        let core = m.condensate([c[0], c[1], 0.45], tau);
        let far = m.condensate([0.05, 0.9, 0.45], tau);
        assert!(core > 0.4, "core condensate too weak: {core}");
        assert!(far < 0.01, "far field should be clear: {far}");
    }

    #[test]
    fn weak_echo_region_carves_the_low_levels() {
        let m = StormModel {
            seed: 1,
            ..Default::default()
        };
        let tau = 0.5;
        let c = m.center(tau);
        // At the WER position, low-level condensate is depressed relative
        // to the same column higher up.
        let wer_low = m.condensate([c[0] + 0.022, c[1] - 0.020, 0.06], tau);
        let wer_mid = m.condensate([c[0] + 0.022, c[1] - 0.020, 0.50], tau);
        assert!(
            wer_low < 0.6 * wer_mid,
            "WER should carve low levels: low {wer_low} vs mid {wer_mid}"
        );
    }

    #[test]
    fn reflectivity_in_valid_range_with_isosurface_present() {
        let m = StormModel::default();
        let coords = small_coords();
        let f = m.reflectivity(&coords, 300);
        let (lo, hi) = f.min_max().unwrap();
        assert!(lo >= DBZ_MIN && hi <= DBZ_MAX, "range [{lo}, {hi}]");
        assert!(
            hi > DBZ_ISOVALUE,
            "storm must pierce the 45 dBZ isovalue, max {hi}"
        );
        assert!(lo < -40.0, "clear air must stay near the floor, min {lo}");
    }

    #[test]
    fn storm_is_spatially_localized() {
        // The paper's central premise: the interesting region is a small
        // fraction of the domain. Count columns whose max dBZ exceeds the
        // isovalue.
        let m = StormModel::default();
        let coords = small_coords();
        let f = m.reflectivity(&coords, 300);
        let d = f.dims();
        let mut hot_columns = 0;
        for j in 0..d.ny {
            for i in 0..d.nx {
                let mut colmax = f32::MIN;
                for k in 0..d.nz {
                    colmax = colmax.max(f.get(i, j, k));
                }
                if colmax > DBZ_ISOVALUE {
                    hot_columns += 1;
                }
            }
        }
        let frac = hot_columns as f64 / (d.nx * d.ny) as f64;
        assert!(
            frac > 0.005 && frac < 0.25,
            "storm covers {frac:.3} of the domain (want localized but present)"
        );
    }

    #[test]
    fn storm_moves_over_time() {
        let m = StormModel::default();
        let c0 = m.center(m.tau(0));
        let c1 = m.center(m.tau(571));
        let d = ((c1[0] - c0[0]).powi(2) + (c1[1] - c0[1]).powi(2)).sqrt();
        assert!(d > 0.2, "storm should traverse the domain, moved {d}");
        assert!(
            c1[0] < 0.85 && c1[1] < 0.85,
            "storm must stay inside the domain"
        );
    }

    #[test]
    fn subbox_generation_matches_full_field() {
        let m = StormModel::default();
        let coords = small_coords();
        let full = m.reflectivity(&coords, 100);
        let sub = m.reflectivity_on(&coords, (10, 20, 3), Dims3::new(5, 4, 6), 100);
        for k in 0..6 {
            for j in 0..4 {
                for i in 0..5 {
                    assert_eq!(sub.get(i, j, k), full.get(10 + i, 20 + j, 3 + k));
                }
            }
        }
    }

    #[test]
    fn wind_rotates_around_center() {
        let m = StormModel::default();
        let tau = 0.5;
        let c = m.center(tau);
        // East of center the rotational component points north (+v).
        let east = m.wind([c[0] + 0.03, c[1], 0.3], tau);
        let west = m.wind([c[0] - 0.03, c[1], 0.3], tau);
        assert!(east[1] > west[1], "cyclonic rotation expected");
        // Updraft at core.
        let updraft = m.wind([c[0], c[1], 0.5], tau);
        assert!(updraft[2] > 0.0);
    }
}

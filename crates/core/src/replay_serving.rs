//! The replay-serving executor: a pool of server ranks answering client
//! ranks out of a *persisted* run — zero live sim or stage ranks in the
//! session.
//!
//! [`run_replay_serving_in_session`] splits the session's ranks two ways
//! — `[replay servers][clients]` — and realizes a pre-computed
//! [`PoolPlan`] over `apc_comm`'s request/reply endpoints:
//!
//! * every server opens the same completed run ([`open_run`]; flat or
//!   sharded) behind its **own** [`CachedBackend`], so the pool's cache
//!   behavior is per-rank and attributable;
//! * clients post their recorded [`ArrivalTrace`] arrivals eagerly (the
//!   runtime's sends never block), each encoded through the
//!   [`FrameRequest`] wire codec, to the server the plan assigned;
//! * each server walks its planned service order, *attributing* every
//!   step to the next unconsumed request of that step's (client, server)
//!   pair — per-pair issue order is the wire contract, the plan's
//!   cross-client interleaving decides cache and queueing behavior;
//! * virtual charges are explicit: `service_base` per request,
//!   `steal_overhead` on stolen requests, and a storage-tier read cost
//!   (`miss_read + read_per_byte × bytes`) per cache-missed frame. Cache
//!   hits move no bytes and charge nothing.
//!
//! **Why this cannot deadlock, and why it replays bit-identically.**
//! Clients send *all* requests before receiving anything, so no server
//! ever blocks on a request that depends on a reply. Servers receive in
//! plan order (a pure function of the recorded trace), clients receive
//! pair-by-pair in issue order, and every quantity is virtual-time
//! arithmetic over deterministic inputs — so a replay run is a pure
//! function of `(trace, params, manifest)`, byte-stable across OS
//! scheduling, [`ExecPolicy`], and session reuse.

use std::sync::Arc;

use apc_comm::{NetModel, Rank, ServeClient, ServeServer, Session};
use apc_par::{par_map, ExecPolicy};
use apc_replay::{resolve, ArrivalTrace, PoolParams, PoolPlan, QosTier, Resolution};
use apc_serve::{
    frame_key, open_run, Fidelity, Frame, FrameReply, FrameRequest, FrameStore, ServedFrame,
};
use apc_store::{CacheStats, CachedBackend, StoreBackend};

use crate::stats::percentile;

/// One replayed request as the client experienced it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayRequestLog {
    /// Trace slot (canonical arrival order).
    pub slot: usize,
    /// Issuing client.
    pub client: usize,
    /// The issuing client's tier.
    pub tier: QosTier,
    pub request: FrameRequest,
    /// The routed primary server.
    pub primary: usize,
    /// The server that actually answered.
    pub executor: usize,
    /// Whether a steal moved the request off its primary.
    pub stolen: bool,
    /// Frames the reply carried.
    pub frames: usize,
    /// Of those, how many were answered from the executor's cache.
    pub cache_hits: usize,
    /// Whether the reply answered the request exactly as asked.
    pub exact: bool,
    /// Virtual seconds from the recorded arrival to the reply's arrival
    /// back at the client — queueing, stealing, service and store reads
    /// included.
    pub latency: f64,
}

/// Per-server totals of a replay run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ReplayServerStats {
    /// Requests this server answered.
    pub requests: usize,
    /// Frame payloads it shipped.
    pub frames_served: usize,
    /// Requests it executed that a steal moved onto it.
    pub stolen: usize,
    /// Of its requests, how many came from premium-tier clients.
    pub premium: usize,
    /// The server's full per-rank cache counters ([`CachedBackend`]).
    pub cache: CacheStats,
    /// The server's final virtual clock.
    pub finish: f64,
}

/// A completed replay run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayRun {
    /// Every request, in trace-slot order.
    pub requests: Vec<ReplayRequestLog>,
    /// Per-server totals, in server-rank order.
    pub servers: Vec<ReplayServerStats>,
    /// Each client's final virtual clock, in client-slot order.
    pub client_finish: Vec<f64>,
    /// Requests a steal moved off their primary.
    pub stolen_total: usize,
}

impl ReplayRun {
    /// Total frame payloads served.
    pub fn frames_served(&self) -> usize {
        self.servers.iter().map(|s| s.frames_served).sum()
    }

    /// Pool-wide cache hit rate over frame reads (0 when nothing was
    /// read).
    pub fn cache_hit_rate(&self) -> f64 {
        let hits: usize = self.servers.iter().map(|s| s.cache.hits).sum();
        let misses: usize = self.servers.iter().map(|s| s.cache.misses).sum();
        if hits + misses == 0 {
            return 0.0;
        }
        hits as f64 / (hits + misses) as f64
    }

    /// Requests answered inexactly (substituted, `NotYet`, or
    /// `NoSuchIteration`).
    pub fn total_inexact(&self) -> usize {
        self.requests.iter().filter(|r| !r.exact).count()
    }

    /// The `p`-th percentile (0–100) of virtual service latency over all
    /// requests.
    pub fn latency_percentile(&self, p: f64) -> f64 {
        percentile(self.requests.iter().map(|r| r.latency), p)
    }

    /// The `p`-th percentile of latency over one tier's requests.
    pub fn tier_latency_percentile(&self, tier: QosTier, p: f64) -> f64 {
        percentile(
            self.requests
                .iter()
                .filter(|r| r.tier == tier)
                .map(|r| r.latency),
            p,
        )
    }
}

/// Per-rank result (internal).
enum ReplayRankOut {
    Server(ReplayServerStats),
    Client(Vec<ReplayRequestLog>, f64),
}

/// Replay-serve a persisted run over a caller-owned [`Session`]. The
/// session's ranks split `[params.nservers servers][trace.clients
/// clients]` — nothing else; the producing simulation is long gone.
///
/// `exec` parallelizes the pre-session resolution/cost pass
/// ([`par_map`]); the run's observables are byte-identical across
/// policies (guarded by `tests/replay_fanout.rs`).
pub fn run_replay_serving_in_session(
    session: &mut Session,
    backend: Arc<dyn StoreBackend>,
    run_id: &str,
    trace: &ArrivalTrace,
    params: &PoolParams,
    exec: ExecPolicy,
) -> ReplayRun {
    let nservers = params.nservers;
    assert_eq!(
        session.nranks(),
        nservers + trace.clients,
        "session ranks must split [servers][clients] exactly"
    );
    let (store, manifest) = open_run(backend, run_id)
        // apc-lint: allow(unwrap-in-lib): driver-level setup — an unopenable run fails before any rank spawns
        .unwrap_or_else(|e| panic!("replay pool failed to open run {run_id:?}: {e}"));
    let reader: Arc<dyn StoreBackend> = Arc::clone(store.backend());

    // Resolve every arrival and estimate its service cost (pessimistic
    // all-miss store reads) under the caller's ExecPolicy. par_map
    // returns results in input order, so the pass is policy-invariant.
    let resolved: Vec<(Resolution, f64)> = par_map(exec, &trace.arrivals, |a| {
        let res = resolve(a.request, a.stager, a.tier, &manifest.iterations);
        let mut cost = params.service_base;
        for &(it, st) in res.keys() {
            let bytes = reader.size(&frame_key(run_id, it, st)).unwrap_or(0);
            cost += params.miss_read + params.read_per_byte * bytes as f64;
        }
        (res, cost)
    });
    let est_cost: Vec<f64> = resolved.iter().map(|(_, c)| *c).collect();
    let plan = PoolPlan::plan(trace, params, &manifest.iterations, &est_cost);

    // Per-(server, client) slot lists in issue order — the wire contract
    // both send and receive loops follow — plus each client's own issue
    // order. Built in O(N log N), not via per-pair scans.
    let mut by_client: Vec<Vec<(usize, usize)>> = vec![Vec::new(); trace.clients];
    for a in &trace.arrivals {
        by_client[a.client].push((a.index, a.slot));
    }
    for v in &mut by_client {
        v.sort_unstable();
    }
    let client_issue: Vec<Vec<usize>> = by_client
        .iter()
        .map(|v| v.iter().map(|&(_, s)| s).collect())
        .collect();
    let mut pair_slots: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); trace.clients]; nservers];
    for issue in &client_issue {
        for &slot in issue {
            let a = &trace.arrivals[slot];
            pair_slots[plan.assignments[slot].executor][a.client].push(slot);
        }
    }

    let outs: Vec<ReplayRankOut> = session.run(|rank| {
        let r = rank.rank();
        if r < nservers {
            ReplayRankOut::Server(server_program(
                rank,
                r,
                run_id,
                &reader,
                trace,
                params,
                &plan,
                &resolved,
                &pair_slots[r],
            ))
        } else {
            let c = r - nservers;
            let (logs, finish) = client_program(
                rank,
                c,
                nservers,
                trace,
                &manifest.iterations,
                &plan,
                &client_issue[c],
                &pair_slots,
            );
            ReplayRankOut::Client(logs, finish)
        }
    });

    let mut servers = Vec::with_capacity(nservers);
    let mut requests = vec![None; trace.len()];
    let mut client_finish = Vec::with_capacity(trace.clients);
    for out in outs {
        match out {
            ReplayRankOut::Server(stats) => servers.push(stats),
            ReplayRankOut::Client(logs, finish) => {
                for log in logs {
                    requests[log.slot] = Some(log);
                }
                client_finish.push(finish);
            }
        }
    }
    ReplayRun {
        requests: requests
            .into_iter()
            .map(|r| {
                // apc-lint: allow(unwrap-in-lib): every trace slot is owned by exactly one client rank
                r.expect("every trace slot logged")
            })
            .collect(),
        servers,
        client_finish,
        stolen_total: plan.stolen_total,
    }
}

/// One-shot replay run: spawns its own session (small rank stacks — the
/// fan-out benches run thousands of client ranks) and tears it down.
pub fn run_replay_serving(
    backend: Arc<dyn StoreBackend>,
    run_id: &str,
    trace: &ArrivalTrace,
    params: &PoolParams,
    exec: ExecPolicy,
    net: NetModel,
) -> ReplayRun {
    let mut session = apc_comm::Runtime::new(params.nservers + trace.clients, net)
        .stack_size(512 << 10)
        .session();
    run_replay_serving_in_session(&mut session, backend, run_id, trace, params, exec)
}

/// The SPMD program of one replay server rank.
#[allow(clippy::too_many_arguments)]
fn server_program(
    rank: &mut Rank,
    s: usize,
    run_id: &str,
    reader: &Arc<dyn StoreBackend>,
    trace: &ArrivalTrace,
    params: &PoolParams,
    plan: &PoolPlan,
    resolved: &[(Resolution, f64)],
    my_pairs: &[Vec<usize>],
) -> ReplayServerStats {
    // Each server fronts the shared run reader with its own cache: hit
    // rates are per-rank observables, and eviction pressure on one server
    // never disturbs another.
    let cached = CachedBackend::new(Arc::clone(reader), params.cache_bytes);
    let store = FrameStore::new(&cached, run_id);
    let mut eps: Vec<Option<ServeServer>> = (0..trace.clients).map(|_| None).collect();
    let mut cursor = vec![0usize; trace.clients];
    let mut stats = ReplayServerStats::default();

    for &planned in &plan.server_order[s] {
        // Attribute this service step to the next unconsumed request of
        // the planned slot's client — per-pair issue order is the wire
        // contract (see the module docs).
        let c = trace.arrivals[planned].client;
        let slot = my_pairs[c][cursor[c]];
        cursor[c] += 1;
        let a = &trace.arrivals[slot];
        let asg = &plan.assignments[slot];
        debug_assert_eq!(asg.executor, s);

        let ep = eps[c].get_or_insert_with(|| ServeServer::new(params.nservers + c, 0));
        let wire: Vec<u8> = ep.recv_request(rank).msg;
        // The wire codec is the trust boundary: decode totally, then pin
        // the decoded request to the recorded trace.
        let request = FrameRequest::decode(&wire)
            // apc-lint: allow(unwrap-in-lib): inside a rank program a corrupt request fails the replay loudly (poisons the session)
            .unwrap_or_else(|e| panic!("replay server {s} received a corrupt request: {e}"));
        assert_eq!(request, a.request, "wire request diverged from the trace");

        if let Some(f) = params.fault {
            if f.server == s && stats.requests == f.after_requests {
                // apc-lint: allow(unwrap-in-lib): deliberate fault injection for the session-stress suites
                panic!("replay server {s} dying mid-request (fault injection)");
            }
        }

        if asg.stolen {
            rank.advance(params.steal_overhead);
            stats.stolen += 1;
        }
        rank.advance(params.service_base);
        if a.tier == QosTier::Premium {
            stats.premium += 1;
        }

        let reply = match &resolved[slot].0 {
            Resolution::Frames { exact, keys } => {
                let mut frames = Vec::with_capacity(keys.len());
                for &(it, st) in keys {
                    let before = cached.stats().misses;
                    let stream = store.encoded(it, st).unwrap_or_else(|e| {
                        // apc-lint: allow(unwrap-in-lib): inside a rank program a failed store read fails the replay loudly
                        panic!("replay server {s} failed to read frame ({it}, {st}): {e}")
                    });
                    let hit = cached.stats().misses == before;
                    if !hit {
                        // The storage tier is real data movement with its
                        // own latency floor; a hit moves no bytes.
                        rank.advance(params.miss_read + params.read_per_byte * stream.len() as f64);
                    }
                    frames.push(ServedFrame {
                        iteration: it,
                        stager: st,
                        cache_hit: hit,
                        // The replay pool serves persisted bytes verbatim
                        // — no budget controller, no degradation.
                        fidelity: Fidelity::Full,
                        stream,
                    });
                }
                stats.frames_served += frames.len();
                FrameReply::Frames {
                    exact: *exact,
                    frames,
                }
            }
            Resolution::NotYet => FrameReply::NotYet,
            Resolution::NoSuchIteration(it) => FrameReply::NoSuchIteration(*it),
        };
        // Replies ride the wire as their encoded bytes — the same codec
        // boundary the requests cross, charged at exactly the encoded
        // length.
        ep.send_reply(rank, reply.encode());
        stats.requests += 1;
    }

    debug_assert!(
        (0..trace.clients).all(|c| cursor[c] == my_pairs[c].len()),
        "server drained every pair"
    );
    stats.cache = cached.stats();
    stats.finish = rank.clock();
    stats
}

/// The SPMD program of one client rank: post every recorded arrival
/// eagerly, then collect replies pair-by-pair and verify them end to end.
#[allow(clippy::too_many_arguments)]
fn client_program(
    rank: &mut Rank,
    c: usize,
    nservers: usize,
    trace: &ArrivalTrace,
    iterations: &[usize],
    plan: &PoolPlan,
    my_issue: &[usize],
    pair_slots: &[Vec<Vec<usize>>],
) -> (Vec<ReplayRequestLog>, f64) {
    let mut eps: Vec<Option<ServeClient>> = (0..nservers).map(|_| None).collect();
    // Send phase: entirely eager — the virtual runtime buffers sends, so
    // posting every request up front is deadlock-free by construction.
    for &slot in my_issue {
        let a = &trace.arrivals[slot];
        rank.merge_clock_to(a.time);
        let s = plan.assignments[slot].executor;
        let ep = eps[s].get_or_insert_with(|| ServeClient::new(s, 0));
        ep.send_request(rank, a.request.encode());
    }
    // Receive phase: per pair, replies come back in issue order (the
    // endpoint is FIFO); across pairs, server-rank order is fixed.
    let mut logs = Vec::with_capacity(my_issue.len());
    for (s, ep) in eps.iter_mut().enumerate() {
        let Some(ep) = ep else { continue };
        for &slot in &pair_slots[s][c] {
            let a = &trace.arrivals[slot];
            let d = ep.recv_reply::<Vec<u8>>(rank);
            let reply = FrameReply::decode(&d.msg).unwrap_or_else(|e| {
                // apc-lint: allow(unwrap-in-lib): end-to-end check in a rank program — a corrupt reply fails the replay loudly
                panic!("client {c} received an undecodable reply: {e}")
            });
            let reply = &reply;
            // End-to-end verification: the reply must match the pure
            // resolution of the recorded request, and every frame must
            // decode to the key it claims.
            let expect = resolve(a.request, a.stager, a.tier, iterations);
            let keys = expect.keys();
            assert_eq!(reply.frames().len(), keys.len(), "reply frame count");
            let mut cache_hits = 0;
            for (served, &(it, st)) in reply.frames().iter().zip(keys) {
                assert_eq!((served.iteration, served.stager), (it, st), "frame key");
                let frame = Frame::decode(&served.stream).unwrap_or_else(|e| {
                    // apc-lint: allow(unwrap-in-lib): end-to-end check in a rank program — a corrupt frame fails the replay loudly
                    panic!("client {c} received an undecodable frame: {e}")
                });
                assert_eq!(frame.iteration, it, "decoded frame iteration");
                assert_eq!(frame.stager, st, "decoded frame stager");
                cache_hits += usize::from(served.cache_hit);
            }
            let asg = &plan.assignments[slot];
            logs.push(ReplayRequestLog {
                slot,
                client: c,
                tier: a.tier,
                request: a.request,
                primary: asg.primary,
                executor: asg.executor,
                stolen: asg.stolen,
                frames: reply.frames().len(),
                cache_hits,
                exact: reply.exact(),
                latency: d.arrival - a.time,
            });
        }
    }
    (logs, rank.clock())
}

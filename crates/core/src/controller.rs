//! The adaptation controller — paper Algorithm 1, verbatim.
//!
//! Given the `(time, percent)` observations of the two previous iterations,
//! fit `t = a·p + b` and solve for the percentage that hits the target
//! time. Two guards: identical consecutive percentages would make the slope
//! vertical (lines 2–7: nudge by ±1 instead), and a non-negative slope —
//! possible "because of randomness in rendering time" (line 11) — falls
//! back to increasing the percentage by 1.

/// One step of Algorithm 1.
///
/// Arguments mirror the paper: `target` run time, the previous iteration's
/// `(t_prev, p_prev)` and the current one's `(t_cur, p_cur)`. Returns
/// `p_next ∈ [0, 100]`.
pub fn adapt_percent(target: f64, t_prev: f64, p_prev: f64, t_cur: f64, p_cur: f64) -> f64 {
    debug_assert!(target > 0.0);
    // Lines 2-7: vertical slope — the same percentage was used twice.
    if (p_prev - p_cur).abs() < 1e-9 {
        if t_cur > target && p_cur < 100.0 {
            return (p_cur + 1.0).min(100.0);
        }
        if t_cur < target && p_cur > 0.0 {
            return (p_cur - 1.0).max(0.0);
        }
        return p_cur;
    }
    // Lines 8-10: linear estimate t = a·p + b.
    let a = (t_cur - t_prev) / (p_cur - p_prev);
    let b = t_cur - a * p_cur;
    // Line 11: reducing more blocks should never cost more; if it did,
    // rendering-time randomness broke assumption (2) — nudge up instead.
    if a >= 0.0 {
        return (p_cur + 1.0).min(100.0);
    }
    // Line 13: solve for the target.
    let p = (target - b) / a;
    p.clamp(0.0, 100.0)
}

/// Stateful wrapper: feeds Algorithm 1 with the paper's initial conditions
/// (`t₀ = 0` at `p₀ = 100`; the first iteration runs unreduced, `p₁ = 0`)
/// and keeps the two-iteration history.
#[derive(Debug, Clone)]
pub struct BudgetController {
    target: f64,
    /// User bound on the percentage (paper §IV-E: "the maximum percentage
    /// of reduced blocks could easily be bounded by the user").
    max_percent: f64,
    /// `(t, p)` of iteration n−1.
    prev: (f64, f64),
    /// `p` of the iteration currently in flight (time not yet observed).
    current_percent: f64,
    iterations_seen: usize,
}

impl BudgetController {
    pub fn new(target: f64) -> Self {
        Self::with_max_percent(target, 100.0)
    }

    pub fn with_max_percent(target: f64, max_percent: f64) -> Self {
        assert!(target > 0.0, "target time must be positive");
        assert!(
            (0.0..=100.0).contains(&max_percent),
            "max percent must be in [0, 100]"
        );
        Self {
            target,
            max_percent,
            prev: (0.0, 100.0),   // t0 = 0 when everything is reduced
            current_percent: 0.0, // p1 = 0: first output is not reduced
            iterations_seen: 0,
        }
    }

    pub fn target(&self) -> f64 {
        self.target
    }

    /// Percentage to use for the next iteration.
    pub fn percent(&self) -> f64 {
        self.current_percent
    }

    /// Record the observed pipeline time for the iteration that just ran at
    /// [`BudgetController::percent`], and compute the next percentage.
    pub fn observe(&mut self, t: f64) -> f64 {
        self.observe_at(t, self.current_percent)
    }

    /// Like [`BudgetController::observe`], but for an iteration that
    /// actually ran at `p_used` instead of the controller's own output —
    /// the staged pipeline's `DegradeHarder` policy boosts the percentage
    /// past the controller under backpressure, and feeding the fit with
    /// the true `(time, percent)` pair keeps Algorithm 1's linear model
    /// honest.
    pub fn observe_at(&mut self, t: f64, p_used: f64) -> f64 {
        // Callers can legitimately land on (or, with a buggy boost
        // policy, beyond) the [0, 100] boundary — `DegradeHarder{boost}`
        // adds its boost *after* the controller's output. Clamp instead
        // of asserting so release builds keep Algorithm 1's fit anchored
        // to a percentage that can exist, and only reject values that
        // are not numbers at all.
        debug_assert!(p_used.is_finite(), "observed percent must be finite");
        let p_used = if p_used.is_finite() {
            p_used.clamp(0.0, 100.0)
        } else {
            100.0
        };
        let (t_prev, p_prev) = self.prev;
        let next = adapt_percent(self.target, t_prev, p_prev, t, p_used).min(self.max_percent);
        self.prev = (t, p_used);
        self.current_percent = next;
        self.iterations_seen += 1;
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_iteration_runs_unreduced() {
        let c = BudgetController::new(20.0);
        assert_eq!(c.percent(), 0.0);
    }

    #[test]
    fn observe_at_clamps_out_of_range_percent() {
        // `DegradeHarder{boost}` can push the effective percent onto (or,
        // with an over-eager boost, past) the [0, 100] boundary. The fit
        // must see the clamped value — identical next-percent to feeding
        // the boundary directly — rather than an impossible percentage
        // that would bend Algorithm 1's linear model.
        let mut boosted = BudgetController::new(20.0);
        let mut clamped = BudgetController::new(20.0);
        let over = boosted.observe_at(37.0, 105.0);
        let at_edge = clamped.observe_at(37.0, 100.0);
        assert_eq!(over.to_bits(), at_edge.to_bits());
        assert!((0.0..=100.0).contains(&over));

        let mut below = BudgetController::new(20.0);
        let mut at_zero = BudgetController::new(20.0);
        let under = below.observe_at(5.0, -3.0);
        let zero = at_zero.observe_at(5.0, 0.0);
        assert_eq!(under.to_bits(), zero.to_bits());

        // The stored history is the clamped pair too: the *next* step's
        // fit anchors to (t, 100), not (t, 105).
        let n1 = boosted.observe_at(30.0, 50.0);
        let n2 = clamped.observe_at(30.0, 50.0);
        assert_eq!(n1.to_bits(), n2.to_bits());
    }

    #[test]
    fn linear_system_converges_in_one_estimate() {
        // Ideal monotone system: t(p) = 160·(1 - p/100).
        let t = |p: f64| 160.0 * (1.0 - p / 100.0);
        let mut c = BudgetController::new(20.0);
        let p1 = c.percent();
        let p2 = c.observe(t(p1));
        // With t0=0 @ p=100 and t1=160 @ p=0 the fit is exact: t=20 at p=87.5.
        assert!((p2 - 87.5).abs() < 1e-9, "p2 = {p2}");
        let p3 = c.observe(t(p2));
        assert!((t(p3) - 20.0).abs() < 1e-6, "converged time {}", t(p3));
    }

    #[test]
    fn converges_on_nonlinear_system() {
        // Convex decreasing response (most gain at high p, like Fig 7).
        let t = |p: f64| 160.0 * (1.0 - p / 100.0).powi(3) + 1.0;
        let mut c = BudgetController::new(20.0);
        let mut p = c.percent();
        for _ in 0..30 {
            p = c.observe(t(p));
        }
        let err = (t(p) - 20.0).abs() / 20.0;
        assert!(err < 0.15, "final time {} vs target 20", t(p));
    }

    #[test]
    fn vertical_slope_guard_steps_by_one() {
        // Same percentage twice: nudge by 1 in the right direction.
        assert_eq!(adapt_percent(10.0, 30.0, 50.0, 30.0, 50.0), 51.0);
        assert_eq!(adapt_percent(100.0, 30.0, 50.0, 30.0, 50.0), 49.0);
        // Saturated at the ends.
        assert_eq!(adapt_percent(10.0, 30.0, 100.0, 30.0, 100.0), 100.0);
        assert_eq!(adapt_percent(100.0, 3.0, 0.0, 3.0, 0.0), 0.0);
        // Exactly on target: stay.
        assert_eq!(adapt_percent(30.0, 30.0, 50.0, 30.0, 50.0), 50.0);
    }

    #[test]
    fn positive_slope_guard_increases_percent() {
        // Reduced more blocks (p: 40→60) yet time went UP (assumption 2
        // broken): Algorithm 1 line 11 nudges up by 1.
        let p = adapt_percent(20.0, 50.0, 40.0, 55.0, 60.0);
        assert_eq!(p, 61.0);
        // Saturates at 100.
        assert_eq!(adapt_percent(20.0, 50.0, 99.5, 55.0, 100.0), 100.0);
    }

    #[test]
    fn result_is_always_in_range() {
        // Extreme targets stay inside [0, 100] (line 13-14).
        assert_eq!(adapt_percent(1000.0, 0.0, 100.0, 160.0, 0.0), 0.0);
        let p = adapt_percent(0.001, 0.0, 100.0, 160.0, 0.0);
        assert!((99.9..=100.0).contains(&p), "p = {p}");
    }

    #[test]
    fn controller_tracks_load_changes() {
        // The phenomenon grows mid-run: cost per unreduced percent doubles.
        let mut c = BudgetController::new(30.0);
        let cost = |p: f64, scale: f64| scale * (1.0 - p / 100.0) + 0.5;
        let mut p = c.percent();
        for _ in 0..15 {
            p = c.observe(cost(p, 100.0));
        }
        assert!(
            (cost(p, 100.0) - 30.0).abs() < 5.0,
            "pre-change convergence"
        );
        for _ in 0..25 {
            p = c.observe(cost(p, 200.0));
        }
        assert!(
            (cost(p, 200.0) - 30.0).abs() < 6.0,
            "post-change re-convergence"
        );
    }

    #[test]
    #[should_panic(expected = "target time must be positive")]
    fn zero_target_rejected() {
        let _ = BudgetController::new(0.0);
    }

    #[test]
    fn max_percent_bound_is_honored() {
        // An infeasible target (0 is unreachable) would drive p to 100;
        // the user bound caps it (paper §IV-E).
        let t = |p: f64| 160.0 * (1.0 - p / 100.0) + 5.0;
        let mut c = BudgetController::with_max_percent(1.0, 70.0);
        let mut p = c.percent();
        for _ in 0..30 {
            p = c.observe(t(p));
            assert!(p <= 70.0, "p = {p} exceeds the user bound");
        }
        assert!(
            p > 60.0,
            "controller should saturate near the bound, p = {p}"
        );
    }

    #[test]
    #[should_panic(expected = "max percent must be in [0, 100]")]
    fn bad_max_percent_rejected() {
        let _ = BudgetController::with_max_percent(10.0, 150.0);
    }

    #[test]
    fn observe_at_feeds_the_fit_with_the_percent_actually_used() {
        // Linear system t(p) = 100 − p. A degrade path runs iteration 2 at
        // a boosted percentage; observe_at must anchor the fit at the
        // boosted point, so the solve lands where the *true* line says.
        let t = |p: f64| 100.0 - p;
        let mut c = BudgetController::new(40.0);
        let p1 = c.percent(); // 0
        c.observe(t(p1)); // history: (0, 100) and (100, 0)
        let boosted = 80.0; // ran much harder than asked
        let next = c.observe_at(t(boosted), boosted);
        // Fit through (100@0, 20@80): t = 100 − p ⇒ target 40 at p = 60.
        assert!((next - 60.0).abs() < 1e-9, "next = {next}");
    }

    /// Paper §IV-E bound, saturation low side: a target far below the
    /// p = 100 floor time drives the controller to the ceiling and keeps
    /// it pinned — never outside [0, 100] — and when the load later
    /// collapses it re-converges onto the now-feasible target.
    #[test]
    fn infeasible_low_target_saturates_then_recovers() {
        // t(p) = scale·(1 − p/100) + floor; floor = 4 s even at p = 100.
        let t = |p: f64, scale: f64| scale * (1.0 - p / 100.0) + 4.0;
        let mut c = BudgetController::new(1.0); // target below the floor
        let mut p = c.percent();
        for i in 0..60 {
            p = c.observe(t(p, 160.0));
            assert!(
                (0.0..=100.0).contains(&p),
                "iteration {i}: p = {p} escaped [0, 100]"
            );
        }
        assert_eq!(p, 100.0, "infeasible target must saturate at the ceiling");
        // Stays clamped under continued pressure.
        for _ in 0..10 {
            p = c.observe(t(p, 160.0));
            assert_eq!(p, 100.0);
        }
        // The phenomenon collapses: the floor drops to 0.2 s and the slope
        // to 16 s, so the 1 s target is now reachable at p = 95; the
        // controller must come down off the ceiling and find it.
        let t2 = |p: f64| 16.0 * (1.0 - p / 100.0) + 0.2;
        for _ in 0..60 {
            p = c.observe(t2(p));
            assert!(
                (0.0..=100.0).contains(&p),
                "recovery kept p in range, p = {p}"
            );
        }
        let err = (t2(p) - 1.0).abs();
        assert!(p < 100.0, "controller must leave the ceiling once feasible");
        assert!(err < 0.25, "re-converged time {} vs target 1.0", t2(p));
    }

    /// Saturation high side: a target far above the unreduced (p = 0)
    /// time pins the controller at the floor; when the load later grows
    /// past the target it re-converges from below.
    #[test]
    fn overgenerous_target_pins_at_zero_then_recovers() {
        let t = |p: f64, scale: f64| scale * (1.0 - p / 100.0) + 2.0;
        let mut c = BudgetController::new(500.0); // far above t(0) = 162
        let mut p = c.percent();
        for i in 0..40 {
            p = c.observe(t(p, 160.0));
            assert!(
                (0.0..=100.0).contains(&p),
                "iteration {i}: p = {p} escaped [0, 100]"
            );
        }
        assert_eq!(p, 0.0, "nothing to reduce when even p = 0 beats the target");
        // The storm intensifies 10×: t(0) = 1602 now misses the target;
        // the right percentage is ~69.
        for _ in 0..80 {
            p = c.observe(t(p, 1600.0));
            assert!((0.0..=100.0).contains(&p));
        }
        let err = (t(p, 1600.0) - 500.0).abs() / 500.0;
        assert!(p > 0.0, "controller must leave the floor under new load");
        assert!(
            err < 0.2,
            "re-converged time {} vs target 500",
            t(p, 1600.0)
        );
    }

    /// Oscillating render noise (the paper's "inherent variability of the
    /// visualization task"): the controller must stay clamped and keep the
    /// post-warmup median near the target despite ±25% swings.
    #[test]
    fn oscillating_noise_stays_clamped_and_tracks_target() {
        let base = |p: f64| 160.0 * (1.0 - p / 100.0) + 1.0;
        let mut c = BudgetController::new(30.0);
        let mut p = c.percent();
        let mut settled = Vec::new();
        for i in 0..80 {
            // Deterministic ±25% oscillation, period 2 (worst case for a
            // two-point linear fit).
            let noise = if i % 2 == 0 { 1.25 } else { 0.75 };
            let t = base(p) * noise;
            p = c.observe(t);
            assert!(
                (0.0..=100.0).contains(&p),
                "iteration {i}: p = {p} escaped [0, 100]"
            );
            if i >= 40 {
                settled.push(base(p));
            }
        }
        settled.sort_by(f64::total_cmp);
        let median = settled[settled.len() / 2];
        let err = (median - 30.0).abs() / 30.0;
        assert!(
            err < 0.35,
            "post-warmup median {median} should track target 30"
        );
    }
}

//! The staged (dedicated-core, asynchronous) execution of the in situ
//! pipeline — [`InSituMode::Staged`]'s implementation over the
//! `apc-stage` frame engine.
//!
//! The synchronous pipeline puts all six steps on every rank's critical
//! path. Here the rank group is split by a static [`apc_stage::Partition`]:
//!
//! * **Simulation ranks** replay the solver (a configurable virtual
//!   compute charge per iteration), **score** their blocks with the
//!   config's metric, optionally **pre-reduce** the lowest-scored
//!   percentage, and deal the scored blocks into bounded per-stager
//!   queues — score-aware: blocks sorted by descending score are dealt
//!   round-robin across the stagers, so each stager receives a balanced
//!   share of the expensive (geometry-rich) blocks, the same idea as the
//!   paper's round-robin redistribution. Then they move on; the only
//!   visualization cost they ever see again is queue backpressure.
//! * **Staging ranks** drain the queues and run the remaining steps with
//!   the existing `apc-core` machinery: the paper's score order
//!   ([`score_order`]), reduction-set selection, block downsampling, the
//!   isosurface render-cost model (through the shared [`crate::StatsCache`] when
//!   one is attached), and a per-stager Algorithm 1 [`BudgetController`].
//!   Under [`apc_stage::BackpressurePolicy::DegradeHarder`] a frame that sat in the
//!   queue is reduced `boost` percentage points harder than the
//!   controller asked — the controller then observes the percentage
//!   actually used ([`BudgetController::observe_at`]), so its linear model
//!   stays fed with true `(time, percent)` pairs.
//!
//! Each rank returns a per-frame log; [`StagedRun`] merges the logs into
//! the same [`IterationReport`] stream the synchronous pipeline emits
//! (step times are max-over-ranks, triangle counters summed) plus the
//! staged-only observables: simulation-visible stall/in situ time and
//! dropped/degraded frame counts. The merge runs on the driver thread
//! over rank-ordered logs, so staged reports are byte-stable across
//! repeated runs and execution policies exactly like synchronous ones
//! (`tests/staged_determinism.rs` pins this).

use std::collections::{BTreeMap, BTreeSet};

use apc_comm::{Rank, Session};
use apc_grid::{Block, BlockId, DomainDecomp, RectilinearCoords};
use apc_par::par_map;
use apc_render::{IsoStats, RenderCostModel};
use apc_stage::{run_staged, Partition, RankLog, SimFrameLog, StageFrameLog, StagedSpec};

use crate::config::{InSituMode, PipelineConfig, StagedParams};
use crate::controller::BudgetController;
use crate::pipeline::{cached_block_stats, REDUCE_COST_PER_BLOCK};
use crate::report::IterationReport;
use crate::selection::{reduction_set, score_order, ScoredBlock};

/// A block slice on the wire: `(encoded block, score)` pairs. Scores ride
/// along so stagers never re-score what the simulation already measured.
type Slice = Vec<(Vec<f32>, f64)>;

/// What a simulation rank logs per frame (beyond the engine's timing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct SimAux {
    t_score: f64,
    t_prereduce: f64,
    blocks_prereduced: usize,
}

/// What a staging rank logs per frame (beyond the engine's timing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct StageOut {
    percent: f64,
    degraded: bool,
    /// Blocks this stager rendered this frame (explicitly zero when every
    /// slice it was dealt was empty or dropped).
    blocks: usize,
    blocks_reduced: usize,
    triangles: usize,
    t_reduce: f64,
    t_render: f64,
}

/// One staged iteration: the synchronous-compatible report plus the
/// staged-only observables.
#[derive(Debug, Clone, PartialEq)]
pub struct StagedFrame {
    /// The familiar per-iteration report. Staged semantics of the step
    /// fields: `t_score` is the (max-over-sim-ranks) sim-side scoring
    /// time, `t_sort` is zero (stagers sort locally, no collective),
    /// `t_reduce` covers pre-reduction and stager reduction,
    /// `t_redistribute` is the queue transfer/ingest time visible at the
    /// stagers, `t_render` the stager render step, and `t_total` the
    /// end-to-end frame latency from the last simulation rank finishing
    /// the frame's production to the last stager finishing its render.
    pub report: IterationReport,
    /// Queue-full stall this frame cost the simulation (max over sim
    /// ranks) — the quantity staging exists to minimize.
    pub t_sim_stall: f64,
    /// Everything the simulation saw of in situ processing this frame
    /// (max over sim ranks): scoring + pre-reduction + enqueue overhead +
    /// stall. The synchronous equivalent is the whole `t_total`.
    pub t_sim_visible: f64,
    /// Frame slices evicted by `DropOldest` this frame (over all queues).
    pub slices_dropped: usize,
    /// Stagers that rendered this frame at a degraded (boosted) reduction
    /// percentage.
    pub stagers_degraded: usize,
    /// Blocks each stager rendered this frame, in stager-slot order —
    /// always `n_stage` entries, with an **explicit zero** for a stager
    /// that rendered nothing (empty slices, or every slice dropped by
    /// `DropOldest`), so per-stager accounting stays aligned across rank
    /// counts and policies instead of silently losing rows.
    pub blocks_by_stager: Vec<usize>,
}

/// A completed staged run: one [`StagedFrame`] per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct StagedRun {
    pub frames: Vec<StagedFrame>,
}

impl StagedRun {
    /// The run's [`IterationReport`] stream (what sweep callers consume).
    pub fn reports(&self) -> Vec<IterationReport> {
        self.frames.iter().map(|f| f.report).collect()
    }

    /// Total frame slices dropped over the run.
    pub fn total_dropped(&self) -> usize {
        self.frames.iter().map(|f| f.slices_dropped).sum()
    }

    /// Total degraded stager-frames over the run.
    pub fn total_degraded(&self) -> usize {
        self.frames.iter().map(|f| f.stagers_degraded).sum()
    }

    /// Mean simulation-visible in situ time per frame.
    pub fn mean_sim_visible(&self) -> f64 {
        mean(self.frames.iter().map(|f| f.t_sim_visible))
    }

    /// Mean simulation stall per frame.
    pub fn mean_sim_stall(&self) -> f64 {
        mean(self.frames.iter().map(|f| f.t_sim_stall))
    }

    /// Mean end-to-end frame latency.
    pub fn mean_latency(&self) -> f64 {
        mean(self.frames.iter().map(|f| f.report.t_total))
    }

    /// Total blocks rendered per stager over the run, in stager-slot
    /// order. Stagers that rendered nothing contribute explicit zeros,
    /// so the vector length is always the partition's stager count.
    pub fn blocks_by_stager(&self) -> Vec<usize> {
        let n = self.frames.first().map_or(0, |f| f.blocks_by_stager.len());
        let mut totals = vec![0usize; n];
        for f in &self.frames {
            for (t, b) in totals.iter_mut().zip(&f.blocks_by_stager) {
                *t += b;
            }
        }
        totals
    }
}

fn mean(it: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = it.collect();
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

/// Run a staged configuration over a caller-owned [`Session`] — the staged
/// counterpart of [`crate::run_sweep_in_session`], and what that function
/// dispatches to when it meets an [`InSituMode::Staged`] config. The
/// session's rank count is split by the config's [`StagedParams`]; the
/// dataset decomposition's ranks are folded onto the simulation ranks
/// (sim slot `i` produces the blocks of every dataset rank `r ≡ i` mod
/// `n_sim`), so a staged run at N total ranks visualizes exactly the same
/// domain as a synchronous run at N ranks.
///
/// Like [`crate::Pipeline::run_iteration`], this low-level entry uses the
/// config's [`crate::ExecPolicy`] exactly as given; the experiment drivers
/// ([`crate::run_sweep_in_session`], [`crate::Prepared`]) clamp it to the
/// host's per-rank thread budget first.
pub fn run_staged_in_session<F>(
    session: &mut Session,
    decomp: &DomainDecomp,
    coords: &RectilinearCoords,
    config: &PipelineConfig,
    iterations: &[usize],
    blocks: &F,
) -> StagedRun
where
    F: Fn(usize, usize) -> Vec<Block> + Sync,
{
    let params = match &config.mode {
        InSituMode::Staged(p) => p.clone(),
        InSituMode::Synchronous => {
            // apc-lint: allow(unwrap-in-lib): misconfiguration caught at entry, before any rank spawns
            panic!("run_staged_in_session needs an InSituMode::Staged config")
        }
    };
    assert_eq!(
        session.nranks(),
        decomp.nranks(),
        "session rank count must match the decomposition"
    );
    let nranks = session.nranks();
    params.validate(nranks);
    let partition = Partition::new(nranks, params.viz_ranks);
    let spec = StagedSpec::new(partition, params.queue_depth, params.policy);
    if let Some(sink) = &params.persist {
        // Make the stored run self-describing before any frame lands:
        // backends deliberately offer no key listing, so the manifest is
        // how a later reader discovers what this run persisted.
        let gb = decomp.global_block_grid();
        sink.store()
            .put_manifest(&apc_serve::RunManifest {
                run_id: sink.run_id().to_owned(),
                n_stagers: params.viz_ranks,
                width: gb.nx,
                height: gb.ny,
                codec: sink.codec(),
                iterations: iterations.to_vec(),
                shard_chunks: sink.shard_chunks(),
            })
            // apc-lint: allow(unwrap-in-lib): driver-level setup — a manifest write failure fails the run before it starts
            .expect("write the run manifest");
    }
    let iters = iterations.to_vec();
    let logs: Vec<RankLog<SimAux, StageOut>> = session.run(|rank| {
        rank_program(
            rank, &spec, &params, config, decomp, coords, &iters, blocks, None,
        )
    });
    if let Some(sink) = &params.persist {
        // Seal partially-filled shard groups so a stored run is complete
        // the moment the run call returns.
        // apc-lint: allow(unwrap-in-lib): driver-level teardown — failing to seal the run is unrecoverable and must be loud
        sink.flush().expect("seal the run's tail shards");
    }
    merge_logs(&spec, iterations, logs)
}

/// One-shot staged run (spawns its own session) — the staged counterpart
/// of [`crate::run_experiment_prepared`], minus the driver's exec-policy
/// clamp (like [`run_staged_in_session`], it runs the policy as given —
/// which is what lets the policy-determinism guards exercise `Threads(n)`
/// on small hosts).
pub fn run_staged_prepared<F>(
    decomp: &DomainDecomp,
    coords: &RectilinearCoords,
    config: &PipelineConfig,
    iterations: &[usize],
    net: apc_comm::NetModel,
    blocks: F,
) -> StagedRun
where
    F: Fn(usize, usize) -> Vec<Block> + Sync,
{
    let mut session = apc_comm::Runtime::new(decomp.nranks(), net).session();
    run_staged_in_session(&mut session, decomp, coords, config, iterations, &blocks)
}

/// The SPMD program of one staged rank (both roles). `serve` is the
/// per-stager serving state the `crate::serving` executor threads in —
/// `None` for plain staged runs; when present, the stager also answers
/// its assigned clients' frame requests between frames.
#[allow(clippy::too_many_arguments)]
pub(crate) fn rank_program<F>(
    rank: &mut Rank,
    spec: &StagedSpec,
    params: &StagedParams,
    config: &PipelineConfig,
    decomp: &DomainDecomp,
    coords: &RectilinearCoords,
    iterations: &[usize],
    blocks: &F,
    mut serve: Option<&mut crate::serving::StagerServe<'_>>,
) -> RankLog<SimAux, StageOut>
where
    F: Fn(usize, usize) -> Vec<Block> + Sync,
{
    let scorer = apc_metrics::by_name(&config.metric)
        // apc-lint: allow(unwrap-in-lib): misconfiguration caught before the pipeline moves any data
        .unwrap_or_else(|| panic!("unknown metric {:?}", config.metric));
    let n_sim = spec.partition.n_sim();
    let n_stage = spec.partition.n_stage();
    let mut controller = config
        .target_time
        .map(|t| BudgetController::with_max_percent(t, config.max_percent));

    run_staged(
        rank,
        spec,
        iterations.len(),
        // ---- simulation side -------------------------------------------
        |rank, k| {
            let slot = rank.rank(); // sim slots are the low rank ids
            let it = iterations[k];
            // The solver step this frame's visualization overlaps with.
            rank.advance(params.sim_compute);
            // This sim rank stands in for every dataset rank folded onto
            // its slot, producing (and paying to score) their blocks.
            let mut held: Vec<Block> = (slot..decomp.nranks())
                .step_by(n_sim)
                .flat_map(|r| blocks(it, r))
                .collect();
            let t0 = rank.clock();
            let scored = apc_metrics::score_blocks(scorer.as_ref(), &held, config.exec);
            let points: usize = scored.iter().map(|r| r.points).sum();
            rank.advance(points as f64 * scorer.cost_per_point());
            let t_score = rank.clock() - t0;

            let mut order: Vec<ScoredBlock> = scored
                .iter()
                .map(|r| ScoredBlock {
                    id: r.id,
                    score: r.score,
                })
                .collect();
            order.sort_by(score_order);

            let t1 = rank.clock();
            let mut blocks_prereduced = 0;
            if params.pre_reduce_percent > 0.0 {
                let to_reduce: BTreeSet<BlockId> = reduction_set(&order, params.pre_reduce_percent);
                for b in &mut held {
                    if to_reduce.contains(&b.id) && !b.is_reduced() {
                        b.downsample(config.reduce_keep);
                        blocks_prereduced += 1;
                    }
                }
                rank.advance(blocks_prereduced as f64 * REDUCE_COST_PER_BLOCK);
            }
            let t_prereduce = rank.clock() - t1;

            // Score-aware dealing: highest-scored block to stager 0, next
            // to stager 1, ... — every stager gets a balanced share of the
            // expensive blocks.
            let by_id: BTreeMap<BlockId, &Block> = held.iter().map(|b| (b.id, b)).collect();
            let mut batches: Vec<Slice> = (0..n_stage).map(|_| Vec::new()).collect();
            for (pos, sb) in order.iter().rev().enumerate() {
                let b = by_id[&sb.id];
                batches[pos % n_stage].push((b.encode(), sb.score));
            }
            (
                batches,
                SimAux {
                    t_score,
                    t_prereduce,
                    blocks_prereduced,
                },
            )
        },
        // ---- staging side ----------------------------------------------
        |rank, k, parts, ctx| {
            let it = iterations[k];
            let mut held: Vec<Block> = Vec::new();
            let mut entries: Vec<ScoredBlock> = Vec::new();
            for (_slot, slice) in parts {
                for (buf, score) in slice {
                    // apc-lint: allow(unwrap-in-lib): the bytes came from an in-process peer's `encode`; a decode failure is a codec bug, not input
                    let b = Block::decode(&buf).expect("simulation rank sent a malformed block");
                    entries.push(ScoredBlock { id: b.id, score });
                    held.push(b);
                }
            }
            entries.sort_by(score_order);
            held.sort_by_key(|b| b.id);

            let base = controller
                .as_ref()
                .map_or(config.fixed_percent, BudgetController::percent);
            let percent = if ctx.degrade_boost > 0.0 {
                (base + ctx.degrade_boost).min(config.max_percent)
            } else {
                base
            };
            let degraded = percent > base;

            let t0 = rank.clock();
            let to_reduce = reduction_set(&entries, percent);
            let mut blocks_reduced = 0;
            for b in &mut held {
                if to_reduce.contains(&b.id) && !b.is_reduced() {
                    b.downsample(config.reduce_keep);
                    blocks_reduced += 1;
                }
            }
            rank.advance(blocks_reduced as f64 * REDUCE_COST_PER_BLOCK);
            let t_reduce = rank.clock() - t0;

            let t1 = rank.clock();
            let per_block: Vec<IsoStats> = par_map(
                config
                    .exec
                    .for_kernel(apc_render::isosurface::recommended_concurrency(held.len())),
                &held,
                |b| cached_block_stats(config, coords, it, b),
            );
            let mut stats = IsoStats::default();
            for s in per_block {
                stats.merge(s);
            }
            let render_t =
                config
                    .cost
                    .render_time(stats, held.len(), RenderCostModel::key(rank.rank(), it));
            rank.advance(render_t);
            let t_render = rank.clock() - t1;

            if let Some(ctrl) = &mut controller {
                // The stager's controllable frame time, against the
                // percentage actually used (which the degrade path may
                // have boosted past the controller's own output).
                ctrl.observe_at(t_reduce + t_render, percent);
            }

            if let Some(sink) = &params.persist {
                // The rendered frame as a durable artifact: the plan-view
                // score footprint of the blocks this stager rendered (the
                // paper's Fig 4 scoremap idea, kept as f32 so apc-compress
                // codecs apply). The write is modeled as off the critical
                // path, so persisting charges no virtual time.
                let gb = decomp.global_block_grid();
                let mut pixels = vec![0.0f32; gb.nx * gb.ny];
                for sb in &entries {
                    let (bi, bj, _bk) = decomp.block_coords(sb.id);
                    let px = &mut pixels[bj * gb.nx + bi];
                    *px = px.max(sb.score as f32);
                }
                let slot = rank.rank() - spec.partition.n_sim();
                let frame = apc_serve::Frame::new(
                    it as u64,
                    slot as u32,
                    gb.nx as u32,
                    gb.ny as u32,
                    pixels,
                )
                .with_render_info(stats.triangles as u64, percent);
                let stream = sink.persist_stream(&frame);
                if let Some(srv) = serve.as_deref_mut() {
                    srv.on_frame_rendered(k, it as u64, stream);
                }
            }
            if let Some(srv) = serve.as_deref_mut() {
                // Serve this stager's clients up to frame k's quota (and
                // flush replies that waited for this frame).
                srv.after_frame(rank, k, iterations.len());
            }

            StageOut {
                percent,
                degraded,
                blocks: held.len(),
                blocks_reduced,
                triangles: stats.triangles,
                t_reduce,
                t_render,
            }
        },
    )
}

/// Fold the per-rank logs into the per-iteration stream. Pure arithmetic
/// over rank-ordered data — deterministic by construction.
pub(crate) fn merge_logs(
    spec: &StagedSpec,
    iterations: &[usize],
    logs: Vec<RankLog<SimAux, StageOut>>,
) -> StagedRun {
    let mut sims: Vec<Vec<(SimAux, SimFrameLog)>> = Vec::new();
    let mut stages: Vec<Vec<(StageOut, StageFrameLog)>> = Vec::new();
    for log in logs {
        match log {
            RankLog::Sim(v) => sims.push(v),
            RankLog::Stage(v) => stages.push(v),
        }
    }
    assert_eq!(sims.len(), spec.partition.n_sim());
    assert_eq!(stages.len(), spec.partition.n_stage());

    let mut frames = Vec::with_capacity(iterations.len());
    for (k, &iteration) in iterations.iter().enumerate() {
        let mut t_score = 0.0f64;
        let mut t_prereduce = 0.0f64;
        let mut produced = 0.0f64;
        let mut t_sim_stall = 0.0f64;
        let mut t_sim_visible = 0.0f64;
        let mut blocks_reduced = 0usize;
        for sim in &sims {
            let (aux, f) = &sim[k];
            t_score = t_score.max(aux.t_score);
            t_prereduce = t_prereduce.max(aux.t_prereduce);
            produced = produced.max(f.produced);
            t_sim_stall = t_sim_stall.max(f.stall);
            t_sim_visible = t_sim_visible
                .max(f.visible() - (f.produced - f.start) + (aux.t_score + aux.t_prereduce));
            blocks_reduced += aux.blocks_prereduced;
        }
        let mut t_reduce = t_prereduce;
        let mut t_redistribute = 0.0f64;
        let mut t_render = 0.0f64;
        let mut finish = 0.0f64;
        let mut percent = 0.0f64;
        let mut triangles_total = 0usize;
        let mut triangles_max = 0usize;
        let mut slices_dropped = 0usize;
        let mut stagers_degraded = 0usize;
        let mut blocks_by_stager = Vec::with_capacity(stages.len());
        for stage in &stages {
            let (out, f) = &stage[k];
            blocks_by_stager.push(out.blocks);
            let prev_finish = if k == 0 { 0.0 } else { stage[k - 1].1.finish };
            t_reduce = t_reduce.max(out.t_reduce);
            t_redistribute = t_redistribute.max((f.start - f.arrival.max(prev_finish)).max(0.0));
            t_render = t_render.max(out.t_render);
            finish = finish.max(f.finish);
            percent = percent.max(out.percent);
            triangles_total += out.triangles;
            triangles_max = triangles_max.max(out.triangles);
            blocks_reduced += out.blocks_reduced;
            slices_dropped += f.slices_dropped;
            stagers_degraded += usize::from(out.degraded);
        }
        let report = IterationReport {
            iteration,
            percent_reduced: percent,
            blocks_reduced,
            t_score,
            t_sort: 0.0,
            t_reduce,
            t_redistribute,
            t_render,
            t_total: (finish - produced).max(0.0),
            triangles_total,
            triangles_max_rank: triangles_max,
        };
        frames.push(StagedFrame {
            report,
            t_sim_stall,
            t_sim_visible,
            slices_dropped,
            stagers_degraded,
            blocks_by_stager,
        });
    }
    StagedRun { frames }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_cm1::ReflectivityDataset;
    use apc_comm::NetModel;
    use apc_stage::BackpressurePolicy;

    fn staged_config(params: StagedParams) -> PipelineConfig {
        PipelineConfig::default()
            .deterministic()
            .with_fixed_percent(40.0)
            .with_staged(params)
    }

    fn run_tiny(params: StagedParams, iters: usize) -> StagedRun {
        let dataset = ReflectivityDataset::tiny(4, 42).unwrap();
        let its = dataset.sample_iterations(iters);
        run_staged_prepared(
            dataset.decomp(),
            dataset.coords(),
            &staged_config(params),
            &its,
            NetModel::blue_waters(),
            |it, rank| dataset.rank_blocks(it, rank),
        )
    }

    #[test]
    fn staged_run_covers_the_whole_domain() {
        // 3 sim ranks stand in for all 4 dataset ranks; the staged run must
        // render exactly the geometry a synchronous run renders.
        let params = StagedParams::new(1, 2, BackpressurePolicy::Block);
        let staged = run_tiny(params.clone(), 2);
        let dataset = ReflectivityDataset::tiny(4, 42).unwrap();
        let its = dataset.sample_iterations(2);
        let sync = crate::run_experiment(
            &dataset,
            PipelineConfig::default()
                .deterministic()
                .with_fixed_percent(0.0),
            &its,
        );
        assert_eq!(staged.frames.len(), 2);
        for (f, s) in staged.frames.iter().zip(&sync) {
            // 40% reduction drops some geometry; an unreduced staged run
            // must match the sync triangle total exactly.
            assert!(f.report.triangles_total <= s.triangles_total);
            assert!(f.report.triangles_total > 0);
        }
        let unreduced = run_staged_prepared(
            dataset.decomp(),
            dataset.coords(),
            &PipelineConfig::default()
                .deterministic()
                .with_staged(params),
            &its,
            NetModel::blue_waters(),
            |it, rank| dataset.rank_blocks(it, rank),
        );
        for (f, s) in unreduced.frames.iter().zip(&sync) {
            assert_eq!(
                f.report.triangles_total, s.triangles_total,
                "same domain, same isovalue, same geometry"
            );
        }
    }

    #[test]
    fn overlap_hides_viz_when_sim_is_slow() {
        // Give the solver plenty of virtual work per iteration: the
        // stager finishes each frame before the next arrives, so the
        // simulation never stalls and its visible in situ time is just
        // scoring + enqueue overhead.
        let params = StagedParams::new(1, 2, BackpressurePolicy::Block).with_sim_compute(500.0);
        let run = run_tiny(params, 3);
        for f in &run.frames {
            assert_eq!(f.t_sim_stall, 0.0, "full overlap expected");
            assert!(
                f.t_sim_visible < 10.0,
                "visible {} should be scoring-scale",
                f.t_sim_visible
            );
            assert_eq!(f.slices_dropped, 0);
        }
    }

    #[test]
    fn backpressure_stalls_a_fast_sim_under_block_policy() {
        // A solver that produces frames back to back outruns the stager;
        // with Block the queue fills and stalls appear.
        let params = StagedParams::new(1, 1, BackpressurePolicy::Block);
        let run = run_tiny(params, 6);
        let late_stall: f64 = run.frames[3..].iter().map(|f| f.t_sim_stall).sum();
        assert!(
            late_stall > 0.0,
            "steady-state stall expected with sim_compute = 0"
        );
        assert_eq!(run.total_dropped(), 0);
    }

    #[test]
    fn drop_policy_sheds_frames_instead_of_stalling() {
        let params = StagedParams::new(1, 1, BackpressurePolicy::DropOldest);
        let run = run_tiny(params, 6);
        assert!(
            run.frames.iter().all(|f| f.t_sim_stall == 0.0),
            "lossy sims never stall"
        );
        assert!(run.total_dropped() > 0, "pressure must shed frames");
    }

    #[test]
    fn degrade_policy_raises_percent_under_pressure() {
        let dataset = ReflectivityDataset::tiny(4, 42).unwrap();
        let its = dataset.sample_iterations(6);
        let params = StagedParams::new(1, 1, BackpressurePolicy::DegradeHarder { boost: 30.0 });
        // Adaptive config so the controller is live; infeasibly large
        // target keeps its own percentage low, letting the boost show.
        let config = PipelineConfig::default()
            .deterministic()
            .with_target(1e6)
            .with_staged(params);
        let run = run_staged_prepared(
            dataset.decomp(),
            dataset.coords(),
            &config,
            &its,
            NetModel::blue_waters(),
            |it, rank| dataset.rank_blocks(it, rank),
        );
        assert!(run.total_degraded() > 0, "backlogged frames must degrade");
        let boosted = run
            .frames
            .iter()
            .filter(|f| f.stagers_degraded > 0)
            .map(|f| f.report.percent_reduced);
        for p in boosted {
            assert!(
                p >= 30.0,
                "boost must show in the effective percent, got {p}"
            );
        }
    }

    #[test]
    fn pre_reduction_moves_reduction_to_the_sim_side() {
        let params = StagedParams::new(1, 2, BackpressurePolicy::Block).with_pre_reduce(50.0);
        let dataset = ReflectivityDataset::tiny(4, 42).unwrap();
        let its = dataset.sample_iterations(2);
        let config = PipelineConfig::default()
            .deterministic()
            .with_staged(params);
        let run = run_staged_prepared(
            dataset.decomp(),
            dataset.coords(),
            &config,
            &its,
            NetModel::blue_waters(),
            |it, rank| dataset.rank_blocks(it, rank),
        );
        for f in &run.frames {
            assert_eq!(
                f.report.blocks_reduced, 64,
                "half of 128 blocks pre-reduced"
            );
        }
    }

    /// Attaching a frame sink is invisible to the run's observables (the
    /// write is off the critical path), and every `(iteration, stager)`
    /// frame lands in the store.
    #[test]
    fn persisting_frames_is_invisible_and_durable() {
        use apc_serve::{FrameSink, FrameStore};
        use apc_store::{CodecKind, MemStore, StoreBackend};
        use std::sync::Arc;

        let params = StagedParams::new(2, 2, BackpressurePolicy::Block);
        let plain = run_tiny(params.clone(), 3);

        let backend: Arc<dyn StoreBackend> = Arc::new(MemStore::new());
        let sink = FrameSink::new(Arc::clone(&backend), "staged", CodecKind::Fpz);
        let persisted = run_tiny(params.with_persist(sink), 3);
        assert_eq!(
            plain, persisted,
            "persisting frames must not perturb any report or clock"
        );

        let dataset = ReflectivityDataset::tiny(4, 42).unwrap();
        let its = dataset.sample_iterations(3);
        let store = FrameStore::new(&*backend, "staged");
        // Plain staged runs are self-describing too: the manifest is
        // written even when no serving executor is involved.
        let manifest = store.manifest().unwrap();
        assert_eq!(manifest.n_stagers, 2);
        assert_eq!(manifest.iterations, its);
        for &it in &its {
            for stager in 0..2u32 {
                let frame = store.get_frame(it as u64, stager).unwrap();
                assert_eq!(frame.iteration, it as u64);
                assert_eq!(frame.stager, stager);
                assert!(frame.pixels.iter().any(|&p| p != 0.0), "scores painted");
            }
        }
    }

    /// Per-stager block counts always cover every stager — a stager whose
    /// every slice was dropped contributes an explicit zero, not a
    /// missing row.
    #[test]
    fn blocks_by_stager_emits_explicit_zero_rows() {
        // 1 sim feeding 1 stager, depth-1 lossy queue, back-to-back
        // production: whole frames get dropped, and those frames must
        // still carry a (zero) entry for the stager.
        let dataset = ReflectivityDataset::tiny(2, 42).unwrap();
        let its = dataset.sample_iterations(6);
        let run = run_staged_prepared(
            dataset.decomp(),
            dataset.coords(),
            &staged_config(StagedParams::new(1, 1, BackpressurePolicy::DropOldest)),
            &its,
            NetModel::blue_waters(),
            |it, rank| dataset.rank_blocks(it, rank),
        );
        assert!(
            run.frames.iter().all(|f| f.blocks_by_stager.len() == 1),
            "every frame covers every stager"
        );
        let zero_rows = run
            .frames
            .iter()
            .filter(|f| f.blocks_by_stager[0] == 0)
            .count();
        assert!(zero_rows > 0, "fully-dropped frames must appear as zeros");
        for f in &run.frames {
            assert_eq!(
                f.blocks_by_stager[0] == 0,
                f.slices_dropped == 1,
                "a zero row is exactly a fully-dropped frame here"
            );
        }
        assert_eq!(run.blocks_by_stager().len(), 1);
    }

    /// Under a lossless policy the per-stager counts partition the whole
    /// domain every frame.
    #[test]
    fn blocks_by_stager_partitions_the_domain() {
        let run = run_tiny(StagedParams::new(2, 2, BackpressurePolicy::Block), 2);
        let dataset = ReflectivityDataset::tiny(4, 42).unwrap();
        for f in &run.frames {
            assert_eq!(f.blocks_by_stager.len(), 2);
            assert_eq!(
                f.blocks_by_stager.iter().sum::<usize>(),
                dataset.decomp().n_blocks(),
                "every block lands on exactly one stager"
            );
        }
        let totals = run.blocks_by_stager();
        assert_eq!(totals.len(), 2);
        assert!(totals.iter().all(|&t| t > 0));
    }

    #[test]
    #[should_panic(expected = "needs an InSituMode::Staged config")]
    fn sync_config_rejected() {
        let dataset = ReflectivityDataset::tiny(4, 42).unwrap();
        let _ = run_staged_prepared(
            dataset.decomp(),
            dataset.coords(),
            &PipelineConfig::default(),
            &[300],
            NetModel::blue_waters(),
            |it, rank| dataset.rank_blocks(it, rank),
        );
    }

    #[test]
    #[should_panic(expected = "synchronous executor")]
    fn pipeline_rejects_staged_configs() {
        let dataset = ReflectivityDataset::tiny(4, 42).unwrap();
        let params = StagedParams::new(1, 1, BackpressurePolicy::Block);
        let _ = crate::Pipeline::new(
            staged_config(params),
            *dataset.decomp(),
            dataset.coords().clone(),
        );
    }
}

//! Block redistribution (shuffling) across ranks — paper §IV-D.
//!
//! All ranks hold the same globally-sorted score list, so each can compute
//! the full assignment independently (same seed ⇒ same shuffle) and then
//! exchange blocks with non-blocking sends/receives — realized here over
//! [`apc_comm`]'s `alltoallv`.

use apc_comm::Rank;
use apc_grid::{Block, BlockId};
use apc_par::SplitMix64;

use crate::config::Redistribution;
use crate::selection::ScoredBlock;

/// Compute the destination rank of every block. `sorted` is the global
/// score list in ascending order; returns `assignment[block_id] = rank`.
///
/// Both strategies keep the per-rank block count constant (`n / nranks`),
/// as the paper specifies for random shuffling and as round-robin dealing
/// guarantees by construction.
pub fn assignment(
    strategy: Redistribution,
    sorted: &[ScoredBlock],
    nranks: usize,
    producer: impl Fn(BlockId) -> usize,
) -> Vec<usize> {
    let n = sorted.len();
    let mut assign = vec![0usize; n];
    match strategy {
        Redistribution::None => {
            for s in sorted {
                assign[s.id as usize] = producer(s.id);
            }
        }
        Redistribution::RandomShuffle { seed } => {
            // Deterministic shuffle computed identically on every rank
            // (paper: "making sure all processes use the same seed").
            let mut ids: Vec<BlockId> = (0..n as BlockId).collect();
            SplitMix64::new(seed).shuffle(&mut ids);
            let per_rank = n / nranks;
            let remainder = n % nranks;
            let mut cursor = 0;
            for rank in 0..nranks {
                let take = per_rank + usize::from(rank < remainder);
                for &id in &ids[cursor..cursor + take] {
                    assign[id as usize] = rank;
                }
                cursor += take;
            }
        }
        Redistribution::RoundRobin => {
            // "Process 0 takes the block with the highest score; process 1
            // the block with the second highest score, and so on."
            for (pos, s) in sorted.iter().rev().enumerate() {
                assign[s.id as usize] = pos % nranks;
            }
        }
    }
    assign
}

/// Exchange blocks according to `assign`; returns the blocks this rank now
/// holds (its own kept blocks plus received ones), ordered by block id for
/// determinism.
pub fn exchange(rank: &mut Rank, held: Vec<Block>, assign: &[usize]) -> Vec<Block> {
    let n = rank.nranks();
    let mut outgoing: Vec<Vec<Vec<f32>>> = (0..n).map(|_| Vec::new()).collect();
    for block in held {
        let dst = assign[block.id as usize];
        outgoing[dst].push(block.encode());
    }
    let incoming = rank.alltoallv(outgoing);
    let mut blocks: Vec<Block> = incoming
        .into_iter()
        .flatten()
        // apc-lint: allow(unwrap-in-lib): the bytes came from an in-process peer's `encode`; a decode failure is a codec bug, not input
        .map(|buf| Block::decode(&buf).expect("peer sent a malformed block"))
        .collect();
    blocks.sort_by_key(|b| b.id);
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_comm::{NetModel, Runtime};
    use apc_grid::{BlockData, Extent3};

    fn sorted_fixture(n: usize) -> Vec<ScoredBlock> {
        // Ascending scores; block id i has score i.
        (0..n)
            .map(|i| ScoredBlock {
                id: i as BlockId,
                score: i as f64,
            })
            .collect()
    }

    #[test]
    fn none_keeps_producers() {
        let sorted = sorted_fixture(8);
        let assign = assignment(Redistribution::None, &sorted, 4, |id| (id as usize) / 2);
        assert_eq!(assign, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn round_robin_deals_from_the_top() {
        let sorted = sorted_fixture(8);
        let assign = assignment(Redistribution::RoundRobin, &sorted, 4, |_| 0);
        // Highest score = id 7 → rank 0; id 6 → rank 1; ...
        assert_eq!(assign[7], 0);
        assert_eq!(assign[6], 1);
        assert_eq!(assign[5], 2);
        assert_eq!(assign[4], 3);
        assert_eq!(assign[3], 0);
        // Equal counts.
        for r in 0..4 {
            assert_eq!(assign.iter().filter(|&&a| a == r).count(), 2);
        }
    }

    #[test]
    fn random_shuffle_is_deterministic_and_balanced() {
        let sorted = sorted_fixture(100);
        let a = assignment(Redistribution::RandomShuffle { seed: 9 }, &sorted, 4, |_| 0);
        let b = assignment(Redistribution::RandomShuffle { seed: 9 }, &sorted, 4, |_| 0);
        assert_eq!(a, b, "same seed must agree across ranks");
        let c = assignment(
            Redistribution::RandomShuffle { seed: 10 },
            &sorted,
            4,
            |_| 0,
        );
        assert_ne!(a, c, "different seeds should differ");
        for r in 0..4 {
            assert_eq!(a.iter().filter(|&&x| x == r).count(), 25);
        }
    }

    #[test]
    fn random_shuffle_handles_non_divisible_counts() {
        let sorted = sorted_fixture(10);
        let a = assignment(Redistribution::RandomShuffle { seed: 1 }, &sorted, 4, |_| 0);
        let mut counts = [0usize; 4];
        for &r in &a {
            counts[r] += 1;
        }
        counts.sort_unstable();
        assert_eq!(counts, [2, 2, 3, 3]);
    }

    fn tiny_block(id: BlockId, value: f32) -> Block {
        Block {
            id,
            extent: Extent3::new((0, 0, 0), (2, 2, 2)),
            data: BlockData::Reduced([value; 8]),
        }
    }

    #[test]
    fn exchange_moves_blocks_to_assignees() {
        let out = Runtime::new(4, NetModel::blue_waters()).run(|rank| {
            // Each rank produces 2 blocks: ids 2r and 2r+1.
            let r = rank.rank();
            let held = vec![
                tiny_block(2 * r as BlockId, r as f32),
                tiny_block(2 * r as BlockId + 1, r as f32),
            ];
            // Reverse assignment: block b goes to rank 3 - b/2.
            let assign: Vec<usize> = (0..8).map(|b| 3 - b / 2).collect();
            exchange(rank, held, &assign)
        });
        for (r, blocks) in out.iter().enumerate() {
            let expect: Vec<BlockId> = vec![2 * (3 - r) as BlockId, 2 * (3 - r) as BlockId + 1];
            let got: Vec<BlockId> = blocks.iter().map(|b| b.id).collect();
            assert_eq!(got, expect, "rank {r}");
        }
    }

    #[test]
    fn exchange_with_identity_assignment_is_local() {
        let out = Runtime::new(2, NetModel::blue_waters()).run(|rank| {
            let r = rank.rank();
            let held = vec![tiny_block(r as BlockId, 1.0)];
            let assign = vec![0usize, 1];
            let t0 = rank.clock();
            let blocks = exchange(rank, held, &assign);
            (blocks, rank.clock() - t0)
        });
        assert_eq!(out[0].0[0].id, 0);
        assert_eq!(out[1].0[0].id, 1);
        // Only empty envelopes crossed the wire: cost stays tiny.
        assert!(out[0].1 < 1e-3, "identity exchange cost {}", out[0].1);
    }
}

//! Per-iteration measurements of the pipeline.

use apc_comm::Meter;

/// Timing and work measurements of one pipeline iteration, identical on all
/// ranks (each step time is the max over ranks, which is what the paper's
/// per-iteration plots show).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationReport {
    /// Simulation iteration replayed.
    pub iteration: usize,
    /// Reduction percentage used this iteration.
    pub percent_reduced: f64,
    /// Number of blocks actually reduced.
    pub blocks_reduced: usize,
    /// Scoring step time (max over ranks, virtual seconds).
    pub t_score: f64,
    /// Global sort step time.
    pub t_sort: f64,
    /// Block reduction step time.
    pub t_reduce: f64,
    /// Redistribution (communication) step time — Fig 8's quantity.
    pub t_redistribute: f64,
    /// Rendering step time — Figs 5/6/7/9's quantity.
    pub t_render: f64,
    /// Full pipeline time — Figs 10/11's quantity.
    pub t_total: f64,
    /// Total triangles over all ranks.
    pub triangles_total: usize,
    /// Triangles on the busiest rank (load imbalance diagnostic).
    pub triangles_max_rank: usize,
}

impl IterationReport {
    /// CSV header matching [`IterationReport::to_csv_row`].
    pub fn csv_header() -> &'static str {
        "iteration,percent_reduced,blocks_reduced,t_score,t_sort,t_reduce,\
         t_redistribute,t_render,t_total,triangles_total,triangles_max_rank"
    }

    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{:.4},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{},{}",
            self.iteration,
            self.percent_reduced,
            self.blocks_reduced,
            self.t_score,
            self.t_sort,
            self.t_reduce,
            self.t_redistribute,
            self.t_render,
            self.t_total,
            self.triangles_total,
            self.triangles_max_rank
        )
    }

    /// Load-imbalance factor of the rendering work (max/mean over ranks).
    pub fn imbalance(&self, nranks: usize) -> f64 {
        if self.triangles_total == 0 {
            return 1.0;
        }
        self.triangles_max_rank as f64 / (self.triangles_total as f64 / nranks as f64)
    }
}

impl Meter for IterationReport {
    fn nbytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> IterationReport {
        IterationReport {
            iteration: 3,
            percent_reduced: 42.5,
            blocks_reduced: 2720,
            t_score: 0.5,
            t_sort: 0.01,
            t_reduce: 0.002,
            t_redistribute: 0.8,
            t_render: 30.0,
            t_total: 31.5,
            triangles_total: 100_000,
            triangles_max_rank: 40_000,
        }
    }

    #[test]
    fn csv_round_shape() {
        let row = fixture().to_csv_row();
        assert_eq!(
            row.split(',').count(),
            IterationReport::csv_header().split(',').count()
        );
        assert!(row.starts_with("3,42.5"));
    }

    #[test]
    fn imbalance_factor() {
        let r = fixture();
        // mean = 100k/64, max = 40k → imbalance 25.6.
        assert!((r.imbalance(64) - 25.6).abs() < 1e-9);
        let balanced = IterationReport {
            triangles_max_rank: 1563,
            ..r
        };
        assert!(balanced.imbalance(64) < 1.01);
        let empty = IterationReport {
            triangles_total: 0,
            triangles_max_rank: 0,
            ..r
        };
        assert_eq!(empty.imbalance(64), 1.0);
    }
}

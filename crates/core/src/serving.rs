//! The frame-serving executor: simulated client ranks co-scheduled
//! against the stager pool, in one session.
//!
//! [`run_staged_serving_in_session`] splits the session's ranks three
//! ways — `[simulation ranks][staging ranks][client ranks]`. The first
//! two run the ordinary staged pipeline (`crate::staged`), with two
//! additions wired through the stager's per-frame hook:
//!
//! * every rendered frame is **persisted** through the config's
//!   [`FrameSink`] and seeded into the stager's byte-bounded LRU
//!   [`FrameCache`];
//! * after rendering frame `k`, the stager **serves its clients** up to
//!   frame `k`'s request quota over `apc_comm`'s request/reply endpoints.
//!   Virtual read charges are cache-aware: a cache hit costs zero, a miss
//!   charges the ranged store read of the encoded stream's bytes.
//!
//! Client ranks issue a deterministic request mix ([`FrameRequest`]:
//! `Latest` / `AtIteration` / `Range`, some deliberately targeting frames
//! *ahead* of production) and measure virtual service latency per
//! request. Requests that race production are the [`ServePolicy`]'s
//! call: `WaitForFrame` defers the reply until the frame exists (the
//! client's latency absorbs the wait), `BestEffort` answers immediately
//! with the newest frame available.
//!
//! **Why this cannot deadlock, and why it replays bit-identically.** A
//! client sends request `j + 1` only after receiving reply `j`, and a
//! stager blocks on a client only when every earlier reply to it has been
//! sent (a deferred reply marks the client *blocked* and the stager skips
//! it until the due frame is rendered — the due frame depends only on the
//! sim queues, never on clients, so production always advances). Receive
//! orders are fixed (clients in slot order, requests in sequence order),
//! every quantity is virtual-time arithmetic over deterministic inputs,
//! and the quota schedule is pure integer math — so a serving run is a
//! pure function of its configuration, byte-stable across OS scheduling,
//! `ExecPolicy`, and session reuse (`tests/staged_determinism.rs` pins
//! this).

use std::collections::VecDeque;

use apc_comm::{Rank, ServeClient, ServeServer, Session};
use apc_grid::{Block, DomainDecomp, RectilinearCoords};
use apc_serve::{
    degrade_stream, Fidelity, Frame, FrameCache, FrameReply, FrameRequest, FrameSink, RunManifest,
    ServePolicy, ServedFrame,
};
use apc_stage::{Partition, RankLog, StagedSpec};
use apc_store::CacheStats;

use crate::config::{InSituMode, PipelineConfig};
use crate::controller::BudgetController;
use crate::staged::{merge_logs, rank_program, SimAux, StageOut, StagedRun};
use crate::stats::percentile;

/// Parameters of one serving run: how many client ranks, how hard they
/// ask, and how the stagers answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeParams {
    /// Simulated client ranks (the last ranks of the session).
    pub clients: usize,
    /// Requests each client issues over the run.
    pub requests_per_client: usize,
    /// What a stager does with a request whose frame is not rendered yet.
    pub policy: ServePolicy,
    /// Virtual seconds a client waits between a reply and its next
    /// request.
    pub think_time: f64,
    /// Byte budget of each stager's LRU hot-frame cache (0 disables
    /// caching — the uncached baseline).
    pub cache_bytes: usize,
    /// Virtual reply-latency budget. `Some(b)`: every stager runs a
    /// [`BudgetController`] (paper Algorithm 1, second life) over a
    /// sliding window of its observed reply latencies and degrades reply
    /// fidelity ([`Fidelity::for_percent`]) to keep the window's worst
    /// latency within `b`. The controller's set point is `b / 2`: the
    /// headroom absorbs the control loop's hunting overshoot so the
    /// *delivered* tail stays inside `b`. `None`: fixed full fidelity,
    /// the pre-adaptive behavior.
    pub latency_budget: Option<f64>,
    /// Sliding-window length (latency samples) the controller observes.
    pub budget_window: usize,
    /// Virtual seconds of per-reply service work on the stager clock.
    /// Zero (the default) keeps pre-adaptive runs byte-identical.
    pub service_base: f64,
    /// Virtual seconds per encoded reply byte on the stager clock — the
    /// cost the fidelity ladder actually shrinks. Zero by default.
    pub reply_per_byte: f64,
    /// Virtual seconds of start stagger per client slot: client `c`
    /// idles `c · client_ramp` before its first request, so offered load
    /// ramps up over the run instead of arriving as one t=0 burst. Zero
    /// (the default) keeps the original all-at-once start.
    pub client_ramp: f64,
    /// Deterministic fault injection: the named stager panics mid-reply
    /// after shipping `after_requests` requests (crash-harness tests).
    pub fault: Option<ServeFault>,
}

/// A scripted stager crash: stager `stager` panics while serving its
/// `after_requests`-th request (0-based), *after* resolving and degrading
/// the reply but before the bytes reach the client — mirroring
/// `apc_replay::ReplayFault` for the staged serving executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeFault {
    pub stager: usize,
    pub after_requests: usize,
}

impl ServeParams {
    pub fn new(clients: usize, requests_per_client: usize, policy: ServePolicy) -> Self {
        assert!(clients >= 1, "need at least one client rank");
        assert!(
            requests_per_client >= 1,
            "each client must issue at least one request"
        );
        Self {
            clients,
            requests_per_client,
            policy,
            think_time: 0.0,
            cache_bytes: 1 << 20,
            latency_budget: None,
            budget_window: 32,
            service_base: 0.0,
            reply_per_byte: 0.0,
            client_ramp: 0.0,
            fault: None,
        }
    }

    /// Set the virtual think time between requests.
    pub fn with_think_time(mut self, seconds: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "think time must be finite and non-negative"
        );
        self.think_time = seconds;
        self
    }

    /// Set the per-stager hot-frame cache byte budget (0 disables
    /// caching).
    pub fn with_cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Enable adaptive serving: run a per-stager [`BudgetController`]
    /// against this virtual reply-latency budget.
    pub fn with_latency_budget(mut self, budget: f64) -> Self {
        assert!(
            budget.is_finite() && budget > 0.0,
            "latency budget must be finite and positive"
        );
        self.latency_budget = Some(budget);
        self
    }

    /// Set the controller's sliding latency-window length.
    pub fn with_budget_window(mut self, samples: usize) -> Self {
        assert!(samples >= 1, "the latency window needs at least one slot");
        self.budget_window = samples;
        self
    }

    /// Set the explicit per-reply serve costs: `base` virtual seconds of
    /// service work plus `per_byte` seconds per encoded reply byte, both
    /// charged on the stager's clock before the reply is sent. These are
    /// what make client pressure *cost* something the controller can
    /// observe; both default to zero so budget-less runs are unchanged.
    pub fn with_serve_costs(mut self, base: f64, per_byte: f64) -> Self {
        assert!(
            base.is_finite() && base >= 0.0 && per_byte.is_finite() && per_byte >= 0.0,
            "serve costs must be finite and non-negative"
        );
        self.service_base = base;
        self.reply_per_byte = per_byte;
        self
    }

    /// Stagger client starts: client `c` idles `c · seconds` before its
    /// first request, turning the t=0 request burst into a load ramp the
    /// budget controller can adapt ahead of.
    pub fn with_client_ramp(mut self, seconds: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "client ramp must be finite and non-negative"
        );
        self.client_ramp = seconds;
        self
    }

    /// Script a deterministic stager crash (see [`ServeFault`]).
    pub fn with_fault(mut self, fault: ServeFault) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Check the three-way split fits a concrete rank count.
    pub fn validate(&self, nranks: usize, viz_ranks: usize) {
        assert!(
            viz_ranks + self.clients < nranks,
            "serving run dedicates {} viz + {} client of {nranks} ranks; at \
             least one simulation rank must remain",
            viz_ranks,
            self.clients
        );
    }
}

/// One client request as the client experienced it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestLog {
    /// Client slot that issued the request.
    pub client: usize,
    pub request: FrameRequest,
    /// Frames the reply carried.
    pub frames: usize,
    /// Of those, how many were answered from the stager's hot cache.
    pub cache_hits: usize,
    /// Whether the reply answered the request exactly as asked
    /// (`BestEffort` may substitute the newest frame; `NotYet` and
    /// `NoSuchIteration` are never exact).
    pub exact: bool,
    /// Virtual seconds from posting the request to holding the reply —
    /// including any production wait a deferred reply absorbed.
    pub latency: f64,
    /// The most degraded fidelity across the reply's frames
    /// ([`Fidelity::Full`] for frameless replies): how good an answer the
    /// client actually got.
    pub fidelity: Fidelity,
}

/// How many replies a stager shipped at each rung of the fidelity
/// ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FidelityMix {
    pub full: usize,
    pub lossy: usize,
    pub dropped: usize,
    pub header_only: usize,
}

impl FidelityMix {
    /// Record one reply shipped at `fidelity`.
    pub fn count(&mut self, fidelity: Fidelity) {
        match fidelity {
            Fidelity::Full => self.full += 1,
            Fidelity::Lossy { .. } => self.lossy += 1,
            Fidelity::Dropped { .. } => self.dropped += 1,
            Fidelity::HeaderOnly => self.header_only += 1,
        }
    }

    /// Replies shipped below full fidelity.
    pub fn degraded(&self) -> usize {
        self.lossy + self.dropped + self.header_only
    }

    /// All replies counted.
    pub fn total(&self) -> usize {
        self.full + self.degraded()
    }

    /// Merge another mix into this one.
    pub fn merge(&mut self, other: &FidelityMix) {
        self.full += other.full;
        self.lossy += other.lossy;
        self.dropped += other.dropped;
        self.header_only += other.header_only;
    }

    /// Compact `full/lossy/dropped/header` column for report rows.
    pub fn summary(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            self.full, self.lossy, self.dropped, self.header_only
        )
    }
}

/// Per-stager serving totals.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServerStats {
    /// Requests this stager received.
    pub requests: usize,
    /// Frame payloads it shipped.
    pub frames_served: usize,
    /// Cache hits / misses over those payloads.
    pub cache_hits: usize,
    pub cache_misses: usize,
    /// Replies deferred to a later frame (`WaitForFrame` racing
    /// production).
    pub deferred: usize,
    /// The stager's full per-rank cache counters (insertions, evictions,
    /// evicted bytes, oversized rejects — not just the hit/miss totals
    /// above), so policy comparisons can attribute hit-rate differences
    /// to individual servers.
    pub cache: CacheStats,
    /// Frame-carrying replies by fidelity rung (adaptive serving's
    /// observable: all-`full` when no budget is set).
    pub fidelity: FidelityMix,
    /// The stager's final controller output (0 without a budget): where
    /// on the ladder the controller settled by end of run.
    pub final_percent: f64,
}

/// A completed serving run: the staged pipeline's own observables plus
/// the serving-side ones.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingRun {
    /// The underlying staged run (reports, stalls, drops, per-stager
    /// block counts).
    pub staged: StagedRun,
    /// Per-stager serving totals, in stager-slot order.
    pub servers: Vec<ServerStats>,
    /// Every request, clients in slot order, requests in issue order.
    pub requests: Vec<RequestLog>,
    /// Each client's final virtual clock, in client-slot order.
    pub client_finish: Vec<f64>,
}

impl ServingRun {
    /// Total frame payloads served.
    pub fn frames_served(&self) -> usize {
        self.servers.iter().map(|s| s.frames_served).sum()
    }

    /// Cache hit rate over all served payloads (0 when nothing was
    /// served).
    pub fn cache_hit_rate(&self) -> f64 {
        let hits: usize = self.servers.iter().map(|s| s.cache_hits).sum();
        let misses: usize = self.servers.iter().map(|s| s.cache_misses).sum();
        if hits + misses == 0 {
            return 0.0;
        }
        hits as f64 / (hits + misses) as f64
    }

    /// Replies that waited for a frame still in production.
    pub fn total_deferred(&self) -> usize {
        self.servers.iter().map(|s| s.deferred).sum()
    }

    /// Requests a best-effort stager answered inexactly (substituted or
    /// empty).
    pub fn total_inexact(&self) -> usize {
        self.requests.iter().filter(|r| !r.exact).count()
    }

    /// The `p`-th percentile (0–100) of virtual service latency, by the
    /// shared nearest-rank rule ([`crate::stats::percentile`]).
    pub fn latency_percentile(&self, p: f64) -> f64 {
        percentile(self.requests.iter().map(|r| r.latency), p)
    }

    /// Replies by fidelity rung, summed over every stager.
    pub fn fidelity_mix(&self) -> FidelityMix {
        let mut mix = FidelityMix::default();
        for s in &self.servers {
            mix.merge(&s.fidelity);
        }
        mix
    }

    /// Replies shipped below full fidelity.
    pub fn degraded_replies(&self) -> usize {
        self.fidelity_mix().degraded()
    }

    /// Frames served per virtual second of serving makespan (the last
    /// client's finish time).
    pub fn frames_per_virtual_second(&self) -> f64 {
        let makespan = self.client_finish.iter().copied().fold(0.0, f64::max);
        if makespan <= 0.0 {
            return 0.0;
        }
        self.frames_served() as f64 / makespan
    }
}

/// The deterministic request mix a client issues: a rotation over
/// `Latest`, a trailing `AtIteration` (exercises the cache/store split),
/// an `AtIteration` deliberately *ahead* of the expected production
/// frontier (races production — the `ServePolicy` decides), and a short
/// `Range` window.
pub(crate) fn gen_request(
    client: usize,
    j: usize,
    iterations: &[usize],
    requests_per_client: usize,
) -> FrameRequest {
    let n = iterations.len();
    match (client + j) % 4 {
        0 => FrameRequest::Latest,
        1 => {
            // A trailing frame, cycling backward through the run.
            let idx = (client * 7 + j * 3) % n;
            FrameRequest::AtIteration(iterations[idx] as u64)
        }
        2 => {
            // Just ahead of the frontier the quota schedule will have
            // produced when this request is serviced.
            let frontier = ((j + 1) * n) / requests_per_client.max(1);
            let idx = (frontier + 1).min(n - 1);
            FrameRequest::AtIteration(iterations[idx] as u64)
        }
        _ => {
            let a = (client + j) % n;
            let b = (a + 2).min(n - 1);
            FrameRequest::Range {
                start: iterations[a] as u64,
                end: iterations[b] as u64,
            }
        }
    }
}

/// What a stager does with one request, given that frames `0..=k` exist.
enum Action {
    /// Serve these frame indices now.
    Ready { exact: bool, idxs: Vec<usize> },
    /// Hold the reply until frame `due` is rendered.
    Defer(usize),
    /// Answer immediately with a frameless reply.
    Answer(FrameReply),
}

/// One client's connection state at its serving stager.
struct ClientConn {
    ep: ServeServer,
    /// Requests received from this client so far.
    taken: usize,
    /// A reply being held until its due frame index is rendered, plus
    /// the request's virtual arrival time (the latency the stager will
    /// observe includes the production wait). While present the client is
    /// blocked on it, so the stager must not expect further requests from
    /// this client.
    deferred: Option<(FrameRequest, usize, f64)>,
}

/// Per-stager serving state, driven from the staged executor's per-frame
/// hook (`crate::staged::rank_program`).
pub struct StagerServe<'a> {
    policy: ServePolicy,
    slot: u32,
    sink: &'a FrameSink,
    iterations: &'a [usize],
    requests_per_client: usize,
    cache: FrameCache,
    clients: Vec<ClientConn>,
    stats: ServerStats,
    /// Algorithm 1 over reply latency, when a budget is set.
    budget: Option<BudgetController>,
    /// Sliding window of the last `window_cap` stager-observed reply
    /// latencies (send clock − request arrival).
    window: VecDeque<f64>,
    window_cap: usize,
    /// Replies shipped since the controller last observed the window —
    /// the controller only steps on fresh evidence.
    served_since_observe: usize,
    /// Reduction percent currently in effect (what produced `fidelity`).
    percent_in_effect: f64,
    /// Ladder rung the next replies ship at.
    fidelity: Fidelity,
    service_base: f64,
    reply_per_byte: f64,
    fault: Option<ServeFault>,
}

impl<'a> StagerServe<'a> {
    /// Serving state for stager `slot`, answering `client_ranks` (global
    /// rank ids, fixed order).
    pub(crate) fn new(
        serve: &ServeParams,
        slot: u32,
        sink: &'a FrameSink,
        iterations: &'a [usize],
        client_ranks: Vec<usize>,
    ) -> Self {
        // The budget is the delivered-tail objective; the controller's
        // set point sits at half of it. Algorithm 1's two-point fit
        // overshoots while it hunts (the latency-vs-percent curve is
        // nonlinear and shifts with load), and the serving tail lands
        // 1.3–1.7× the set point — the headroom is what keeps the
        // delivered p99 inside the budget itself.
        let budget = serve.latency_budget.map(|b| BudgetController::new(b * 0.5));
        Self {
            policy: serve.policy,
            slot,
            sink,
            iterations,
            requests_per_client: serve.requests_per_client,
            cache: FrameCache::new(serve.cache_bytes),
            clients: client_ranks
                .into_iter()
                .map(|r| ClientConn {
                    ep: ServeServer::new(r, 0),
                    taken: 0,
                    deferred: None,
                })
                .collect(),
            stats: ServerStats::default(),
            // The controller's first output is 0 (serve unreduced), so
            // the opening fidelity is Full with or without a budget.
            percent_in_effect: budget.as_ref().map(|c| c.percent()).unwrap_or(0.0),
            budget,
            window: VecDeque::with_capacity(serve.budget_window),
            window_cap: serve.budget_window,
            served_since_observe: 0,
            fidelity: Fidelity::Full,
            service_base: serve.service_base,
            reply_per_byte: serve.reply_per_byte,
            fault: serve.fault,
        }
    }

    /// Called by the stager right after persisting frame `k`: seed the
    /// hot cache.
    pub(crate) fn on_frame_rendered(&mut self, _k: usize, iteration: u64, stream: Vec<u8>) {
        self.cache.put((iteration, self.slot), stream);
    }

    /// Called by the stager after rendering frame `k`: flush replies that
    /// waited for it, then serve every client up to frame `k`'s request
    /// quota. The quota schedule spreads each client's
    /// `requests_per_client` requests evenly over the run's frames and
    /// drains completely on the last frame.
    pub(crate) fn after_frame(&mut self, rank: &mut Rank, k: usize, nframes: usize) {
        debug_assert!(k < nframes);
        for i in 0..self.clients.len() {
            if let Some((q, due, arrival)) = self.clients[i].deferred {
                if due <= k {
                    self.clients[i].deferred = None;
                    match self.resolve(q, k) {
                        Action::Ready { exact, idxs } => {
                            let reply = self.build_reply(rank, exact, &idxs);
                            self.ship_reply(rank, i, reply, arrival);
                        }
                        _ => unreachable!("a deferred request is servable at its due frame"),
                    }
                }
            }
        }
        let quota = if k + 1 == nframes {
            self.requests_per_client
        } else {
            (self.requests_per_client * (k + 1)).div_ceil(nframes)
        };
        for i in 0..self.clients.len() {
            while self.clients[i].taken < quota && self.clients[i].deferred.is_none() {
                let d = self.clients[i].ep.recv_request::<FrameRequest>(rank);
                let (q, arrival) = (d.msg, d.arrival);
                self.clients[i].taken += 1;
                self.stats.requests += 1;
                match self.resolve(q, k) {
                    Action::Ready { exact, idxs } => {
                        let reply = self.build_reply(rank, exact, &idxs);
                        self.ship_reply(rank, i, reply, arrival);
                    }
                    Action::Defer(due) => {
                        debug_assert!(due > k, "deferrals always point forward");
                        self.clients[i].deferred = Some((q, due, arrival));
                        self.stats.deferred += 1;
                    }
                    Action::Answer(reply) => self.ship_reply(rank, i, reply, arrival),
                }
            }
        }
        self.step_controller(k);
    }

    /// Encode and send one reply: charge the explicit serve cost
    /// (`service_base + reply_per_byte × encoded bytes`) on the stager's
    /// clock, observe the reply's latency into the controller window,
    /// fire a scripted [`ServeFault`] if one targets this request, and
    /// ship the encoded bytes (the wire charge is exactly their length).
    fn ship_reply(&mut self, rank: &mut Rank, client: usize, reply: FrameReply, arrival: f64) {
        let wire = reply.encode();
        if let Some(f) = self.fault {
            // `stats.requests` was incremented when the request was
            // taken, so the fault lands after the reply is fully built
            // and degraded but before its bytes reach the client.
            if f.stager == self.slot as usize && self.stats.requests == f.after_requests + 1 {
                // apc-lint: allow(unwrap-in-lib): scripted crash harness — the panic IS the fault under test
                panic!(
                    "stager {} injected fault after {} requests (mid-reply, fidelity {})",
                    self.slot,
                    f.after_requests,
                    reply.worst_fidelity().name()
                );
            }
        }
        let cost = self.service_base + self.reply_per_byte * wire.len() as f64;
        rank.advance(cost);
        let latency = rank.clock() - arrival;
        if self.window.len() == self.window_cap {
            self.window.pop_front();
        }
        self.window.push_back(latency);
        self.served_since_observe += 1;
        if !reply.frames().is_empty() {
            self.stats.fidelity.count(reply.worst_fidelity());
        }
        self.clients[client].ep.send_reply(rank, wire);
        // Long serving batches (deep fan-in, the final-frame drain) would
        // otherwise run hundreds of replies at a stale fidelity: re-step
        // the controller every window's worth of replies so it reacts
        // within a batch, not just between frames.
        if self.served_since_observe >= self.window_cap {
            self.step_controller(0);
        }
    }

    /// One controller step per frame, on fresh evidence only: feed the
    /// window's worst latency and the percent those replies were shipped
    /// at into Algorithm 1, and move the ladder for the next frame's
    /// replies. Regulating the window *maximum* (rather than a central
    /// percentile) makes the controller's set point a tail bound: at
    /// equilibrium the worst recent reply sits at the budget, so the
    /// run-wide p99 lands at or under it.
    fn step_controller(&mut self, _k: usize) {
        let Some(ctrl) = self.budget.as_mut() else {
            return;
        };
        if self.served_since_observe == 0 || self.window.is_empty() {
            return;
        }
        let observed = percentile(self.window.iter().copied(), 100.0);
        let next = ctrl.observe_at(observed, self.percent_in_effect);
        self.percent_in_effect = next;
        self.fidelity = Fidelity::for_percent(next);
        self.served_since_observe = 0;
    }

    /// Drain the serving state into its totals (cache counters included).
    pub(crate) fn finish(self) -> ServerStats {
        debug_assert!(
            self.clients
                .iter()
                .all(|c| c.taken == self.requests_per_client && c.deferred.is_none()),
            "every client fully served at end of run"
        );
        ServerStats {
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cache: self.cache.stats(),
            final_percent: self.percent_in_effect,
            ..self.stats
        }
    }

    fn index_of(&self, it: u64) -> Option<usize> {
        self.iterations.iter().position(|&x| x as u64 == it)
    }

    fn resolve(&self, q: FrameRequest, k: usize) -> Action {
        match q {
            FrameRequest::Latest => Action::Ready {
                exact: true,
                idxs: vec![k],
            },
            FrameRequest::AtIteration(it) => match self.index_of(it) {
                None => Action::Answer(FrameReply::NoSuchIteration(it)),
                Some(idx) if idx <= k => Action::Ready {
                    exact: true,
                    idxs: vec![idx],
                },
                Some(idx) => match self.policy {
                    ServePolicy::WaitForFrame => Action::Defer(idx),
                    ServePolicy::BestEffort => Action::Ready {
                        exact: false,
                        idxs: vec![k],
                    },
                },
            },
            FrameRequest::Range { start, end } => {
                let idxs: Vec<usize> = self
                    .iterations
                    .iter()
                    .enumerate()
                    .filter(|&(_, &x)| (x as u64) >= start && (x as u64) <= end)
                    .map(|(i, _)| i)
                    .collect();
                let Some(&last) = idxs.last() else {
                    return Action::Answer(FrameReply::NoSuchIteration(start));
                };
                if last <= k {
                    return Action::Ready { exact: true, idxs };
                }
                match self.policy {
                    ServePolicy::WaitForFrame => Action::Defer(last),
                    ServePolicy::BestEffort => {
                        let avail: Vec<usize> = idxs.into_iter().filter(|&i| i <= k).collect();
                        if avail.is_empty() {
                            Action::Answer(FrameReply::NotYet)
                        } else {
                            Action::Ready {
                                exact: false,
                                idxs: avail,
                            }
                        }
                    }
                }
            }
        }
    }

    /// Assemble a reply, answering each frame from the cache or the frame
    /// store, then degrading it to the ladder rung currently in effect.
    /// Virtual read charges are cache-aware: a hit moves no bytes
    /// and charges nothing; a miss charges the ranged read of exactly the
    /// encoded stream's bytes (`FrameStore::encoded` reads that byte
    /// range and nothing more, flat or sharded). The cache always holds
    /// the *full* stream — degradation happens per reply, so a later
    /// recovery to full fidelity serves undamaged bytes from the same
    /// cache entry.
    fn build_reply(&mut self, rank: &mut Rank, exact: bool, idxs: &[usize]) -> FrameReply {
        let fidelity = self.fidelity;
        let mut frames = Vec::with_capacity(idxs.len());
        for &idx in idxs {
            let it = self.iterations[idx] as u64;
            let key = (it, self.slot);
            let (stream, cache_hit) = match self.cache.get(&key) {
                Some(s) => (s.to_vec(), true),
                None => {
                    let s = self
                        .sink
                        .store()
                        .encoded(it, self.slot)
                        .unwrap_or_else(|e| {
                            // apc-lint: allow(unwrap-in-lib): inside a rank program a failed store read fails the run loudly (poisons the session)
                            panic!(
                                "stager {} failed to read back frame (iteration {it}): {e}",
                                self.slot
                            )
                        });
                    // The store read is real data movement: charge the
                    // same per-byte ingest cost any other transfer pays.
                    let cost = rank.net().ingest(s.len());
                    rank.advance(cost);
                    self.cache.put(key, s.clone());
                    (s, false)
                }
            };
            let stream = match fidelity {
                // Full fidelity ships the bytes as-is (no re-encode copy).
                Fidelity::Full => stream,
                _ => degrade_stream(&stream, fidelity).unwrap_or_else(|e| {
                    // apc-lint: allow(unwrap-in-lib): a rendered frame that fails to re-encode means the run's own bytes are corrupt — fail loudly (poisons the session)
                    panic!(
                        "stager {} failed to degrade frame (iteration {it}) to {}: {e}",
                        self.slot,
                        fidelity.name()
                    )
                }),
            };
            frames.push(ServedFrame {
                iteration: it,
                stager: self.slot,
                cache_hit,
                fidelity,
                stream,
            });
        }
        self.stats.frames_served += frames.len();
        FrameReply::Frames { exact, frames }
    }
}

/// The SPMD program of one client rank: issue the deterministic request
/// mix against its assigned stager, one request in flight at a time, and
/// log virtual latency per request.
fn client_program(
    rank: &mut Rank,
    client: usize,
    server_rank: usize,
    server_slot: u32,
    iterations: &[usize],
    serve: &ServeParams,
) -> (Vec<RequestLog>, f64) {
    let mut ep = ServeClient::new(server_rank, 0);
    let mut logs = Vec::with_capacity(serve.requests_per_client);
    // Staggered start: later client slots come online later, so offered
    // load ramps up instead of bursting at t=0.
    rank.advance(serve.client_ramp * client as f64);
    for j in 0..serve.requests_per_client {
        let q = gen_request(client, j, iterations, serve.requests_per_client);
        let t0 = rank.clock();
        ep.send_request(rank, q);
        // Replies ride the wire as their encoded bytes (`Vec<u8>` meters
        // as its length, so the virtual charge is exactly the encoded
        // size — which is what the fidelity ladder shrinks).
        let wire: Vec<u8> = ep.recv_reply(rank).msg;
        let reply = FrameReply::decode(&wire)
            // apc-lint: allow(unwrap-in-lib): end-to-end check in a rank program — a corrupt reply fails the run loudly
            .unwrap_or_else(|e| panic!("client {client} received an undecodable reply: {e}"));
        let latency = rank.clock() - t0;
        let mut cache_hits = 0;
        for served in reply.frames() {
            // Decode end to end: a frame that survived store + wire must
            // parse back; a corrupt one fails the run loudly.
            let frame = Frame::decode(&served.stream)
                // apc-lint: allow(unwrap-in-lib): end-to-end check in a rank program — a corrupt frame fails the run loudly
                .unwrap_or_else(|e| panic!("client {client} received an undecodable frame: {e}"));
            assert_eq!(frame.stager, server_slot, "frame from the wrong stager");
            assert_eq!(frame.iteration, served.iteration, "frame key mismatch");
            if served.fidelity == Fidelity::HeaderOnly {
                assert!(
                    frame.pixels.is_empty(),
                    "a header-only frame must carry no pixels"
                );
            }
            cache_hits += usize::from(served.cache_hit);
        }
        logs.push(RequestLog {
            client,
            request: q,
            frames: reply.frames().len(),
            cache_hits,
            exact: reply.exact(),
            latency,
            fidelity: reply.worst_fidelity(),
        });
        rank.advance(serve.think_time);
    }
    (logs, rank.clock())
}

/// Per-rank result of a serving run (internal).
enum ServingRankLog {
    Sim(Vec<(SimAux, apc_stage::SimFrameLog)>),
    Stage(Vec<(StageOut, apc_stage::StageFrameLog)>, ServerStats),
    Client(Vec<RequestLog>, f64),
}

/// Run a staged configuration with `serve.clients` simulated client ranks
/// co-scheduled against the stager pool, over a caller-owned [`Session`] —
/// the serving counterpart of [`crate::staged::run_staged_in_session`].
///
/// The session's ranks split `[sim][stage][client]`: the staged partition
/// covers the first `nranks − clients` ranks (dataset ranks fold onto the
/// simulation ranks exactly as in a plain staged run), and the last
/// `clients` ranks run the request/reply workload. The config must be
/// [`InSituMode::Staged`] **with a frame sink attached**
/// (`StagedParams::persist`) — serving reads the frames it ships from
/// that sink's store. The run writes the sink's [`RunManifest`] before
/// the ranks start.
pub fn run_staged_serving_in_session<F>(
    session: &mut Session,
    decomp: &DomainDecomp,
    coords: &RectilinearCoords,
    config: &PipelineConfig,
    iterations: &[usize],
    serve: &ServeParams,
    blocks: &F,
) -> ServingRun
where
    F: Fn(usize, usize) -> Vec<Block> + Sync,
{
    let params = match &config.mode {
        InSituMode::Staged(p) => p.clone(),
        InSituMode::Synchronous => {
            // apc-lint: allow(unwrap-in-lib): misconfiguration caught at entry, before any rank spawns
            panic!("run_staged_serving_in_session needs an InSituMode::Staged config")
        }
    };
    let sink = params
        .persist
        .clone()
        // apc-lint: allow(unwrap-in-lib): misconfiguration caught at entry, before any rank spawns
        .expect("serving needs StagedParams::persist — attach a FrameSink");
    let nranks = session.nranks();
    assert_eq!(
        nranks,
        decomp.nranks(),
        "session rank count must match the decomposition"
    );
    serve.validate(nranks, params.viz_ranks);
    let n_stage = params.viz_ranks;
    let n_clients = serve.clients;
    let n_sim = nranks - n_stage - n_clients;
    let partition = Partition::new(n_sim + n_stage, n_stage);
    let spec = StagedSpec::new(partition, params.queue_depth, params.policy);

    let gb = decomp.global_block_grid();
    sink.store()
        .put_manifest(&RunManifest {
            run_id: sink.run_id().to_owned(),
            n_stagers: n_stage,
            width: gb.nx,
            height: gb.ny,
            codec: sink.codec(),
            iterations: iterations.to_vec(),
            shard_chunks: sink.shard_chunks(),
        })
        // apc-lint: allow(unwrap-in-lib): driver-level setup — a manifest write failure fails the run before it starts
        .expect("write the run manifest");

    let iters = iterations.to_vec();
    let logs: Vec<ServingRankLog> = session.run(|rank| {
        let r = rank.rank();
        if r < n_sim {
            match rank_program(
                rank, &spec, &params, config, decomp, coords, &iters, blocks, None,
            ) {
                RankLog::Sim(v) => ServingRankLog::Sim(v),
                RankLog::Stage(_) => unreachable!("rank below n_sim is a sim"),
            }
        } else if r < n_sim + n_stage {
            let slot = r - n_sim;
            let client_ranks: Vec<usize> = (0..n_clients)
                .filter(|c| c % n_stage == slot)
                .map(|c| n_sim + n_stage + c)
                .collect();
            let mut srv = StagerServe::new(serve, slot as u32, &sink, &iters, client_ranks);
            let log = rank_program(
                rank,
                &spec,
                &params,
                config,
                decomp,
                coords,
                &iters,
                blocks,
                Some(&mut srv),
            );
            match log {
                RankLog::Stage(v) => ServingRankLog::Stage(v, srv.finish()),
                RankLog::Sim(_) => unreachable!("rank in the stage band is a stager"),
            }
        } else {
            let client = r - n_sim - n_stage;
            let server_slot = client % n_stage;
            let (logs, finish) = client_program(
                rank,
                client,
                partition.stage_rank(server_slot),
                server_slot as u32,
                &iters,
                serve,
            );
            ServingRankLog::Client(logs, finish)
        }
    });

    // Seal any partially-filled shard groups now that every stager is
    // done, so external readers (`open_run`) see the complete run.
    // apc-lint: allow(unwrap-in-lib): driver-level teardown — failing to seal the run is unrecoverable and must be loud
    sink.flush().expect("seal the run's tail shards");

    let mut staged_logs: Vec<RankLog<SimAux, StageOut>> = Vec::with_capacity(n_sim + n_stage);
    let mut servers = Vec::with_capacity(n_stage);
    let mut requests = Vec::new();
    let mut client_finish = Vec::with_capacity(n_clients);
    for log in logs {
        match log {
            ServingRankLog::Sim(v) => staged_logs.push(RankLog::Sim(v)),
            ServingRankLog::Stage(v, stats) => {
                staged_logs.push(RankLog::Stage(v));
                servers.push(stats);
            }
            ServingRankLog::Client(v, finish) => {
                requests.extend(v);
                client_finish.push(finish);
            }
        }
    }
    ServingRun {
        staged: merge_logs(&spec, iterations, staged_logs),
        servers,
        requests,
        client_finish,
    }
}

/// One-shot serving run (spawns its own session) — the serving
/// counterpart of [`crate::staged::run_staged_prepared`], and like it,
/// runs the config's `ExecPolicy` unclamped so policy-determinism guards
/// can exercise `Threads(n)` on small hosts.
pub fn run_staged_serving_prepared<F>(
    decomp: &DomainDecomp,
    coords: &RectilinearCoords,
    config: &PipelineConfig,
    iterations: &[usize],
    serve: &ServeParams,
    net: apc_comm::NetModel,
    blocks: F,
) -> ServingRun
where
    F: Fn(usize, usize) -> Vec<Block> + Sync,
{
    let mut session = apc_comm::Runtime::new(decomp.nranks(), net).session();
    run_staged_serving_in_session(
        &mut session,
        decomp,
        coords,
        config,
        iterations,
        serve,
        &blocks,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use apc_cm1::ReflectivityDataset;
    use apc_comm::NetModel;
    use apc_serve::FrameStore;
    use apc_stage::BackpressurePolicy;
    use apc_store::{CodecKind, MemStore, StoreBackend};

    use crate::config::StagedParams;

    /// A tiny serving run: 8 ranks split 2 sim / 2 viz / 4 clients over
    /// the tiny dataset, returning the run and its backing store.
    fn tiny_serving(
        policy: ServePolicy,
        cache_bytes: usize,
    ) -> (ServingRun, Arc<dyn StoreBackend>, Vec<usize>) {
        tiny_serving_with(policy, cache_bytes, None)
    }

    /// [`tiny_serving`] with a frame layout choice: `Some(n)` persists
    /// through a sharded sink, `n` frames per shard container.
    fn tiny_serving_with(
        policy: ServePolicy,
        cache_bytes: usize,
        shard: Option<usize>,
    ) -> (ServingRun, Arc<dyn StoreBackend>, Vec<usize>) {
        let serve = ServeParams::new(4, 6, policy)
            .with_think_time(0.1)
            .with_cache_bytes(cache_bytes);
        tiny_serving_serve(serve, shard)
    }

    /// The tiny serving fixture with full control over [`ServeParams`].
    fn tiny_serving_serve(
        serve: ServeParams,
        shard: Option<usize>,
    ) -> (ServingRun, Arc<dyn StoreBackend>, Vec<usize>) {
        let dataset = ReflectivityDataset::tiny(8, 42).unwrap();
        let iters = dataset.sample_iterations(4);
        let backend: Arc<dyn StoreBackend> = Arc::new(MemStore::new());
        let sink = match shard {
            Some(n) => FrameSink::sharded(Arc::clone(&backend), "test", CodecKind::Fpz, n),
            None => FrameSink::new(Arc::clone(&backend), "test", CodecKind::Fpz),
        };
        let params = StagedParams::new(2, 2, BackpressurePolicy::Block)
            .with_sim_compute(5.0)
            .with_persist(sink);
        let config = crate::PipelineConfig::default()
            .deterministic()
            .with_fixed_percent(40.0)
            .with_staged(params);
        let run = run_staged_serving_prepared(
            dataset.decomp(),
            dataset.coords(),
            &config,
            &iters,
            &serve,
            NetModel::blue_waters(),
            |it, rank| dataset.rank_blocks(it, rank),
        );
        (run, backend, iters)
    }

    #[test]
    fn serving_run_persists_and_answers_every_request() {
        let (run, backend, iters) = tiny_serving(ServePolicy::WaitForFrame, 64 << 10);
        // Every client's every request is logged and carried frames.
        assert_eq!(run.requests.len(), 4 * 6);
        assert!(run.frames_served() > 0);
        assert_eq!(run.client_finish.len(), 4);
        assert!(run.requests.iter().all(|r| r.latency >= 0.0));
        // WaitForFrame answers everything exactly.
        assert_eq!(run.total_inexact(), 0);
        // The staged side still did its job.
        assert_eq!(run.staged.frames.len(), iters.len());
        assert_eq!(run.servers.len(), 2);
        // Frames are durable: every (iteration, stager) reads back and
        // the manifest describes the run.
        let store = FrameStore::new(&*backend, "test");
        let manifest = store.manifest().unwrap();
        assert_eq!(manifest.n_stagers, 2);
        assert_eq!(manifest.iterations, iters);
        for &it in &iters {
            for stager in 0..2u32 {
                let frame = store.get_frame(it as u64, stager).unwrap();
                assert_eq!(frame.iteration, it as u64);
                assert_eq!(frame.stager, stager);
                assert_eq!(
                    (frame.width as usize, frame.height as usize),
                    (manifest.width, manifest.height)
                );
            }
        }
    }

    /// The layout below the sink must be invisible to the run: a sharded
    /// sink serves byte-identical frames with identical request traffic,
    /// latencies and cache behavior, because the encoded streams (and so
    /// every virtual-cost charge) are the same bytes either way. Only the
    /// store's key population differs.
    #[test]
    fn sharded_sink_serves_byte_identically() {
        let (plain, plain_backend, iters) =
            tiny_serving_with(ServePolicy::BestEffort, 64 << 10, None);
        let (sharded, sharded_backend, _) =
            tiny_serving_with(ServePolicy::BestEffort, 64 << 10, Some(3));
        assert_eq!(plain.requests, sharded.requests);
        assert_eq!(plain.frames_served(), sharded.frames_served());
        assert_eq!(plain.cache_hit_rate(), sharded.cache_hit_rate());
        assert_eq!(plain.client_finish, sharded.client_finish);

        // The raw sharded backend holds containers, not frame keys…
        assert!(!sharded_backend
            .contains(&apc_serve::store::frame_key("test", iters[0] as u64, 0))
            .unwrap());
        // …but open_run reads back streams byte-identical to the plain run.
        let (reader, manifest) = apc_serve::store::open_run(sharded_backend, "test").unwrap();
        assert_eq!(manifest.shard_chunks, Some(3));
        assert_eq!(manifest.iterations, iters);
        let plain_store = FrameStore::new(&*plain_backend, "test");
        for &it in &iters {
            for stager in 0..2u32 {
                assert_eq!(
                    reader.encoded(it as u64, stager).unwrap(),
                    plain_store.encoded(it as u64, stager).unwrap(),
                    "iteration {it} stager {stager}"
                );
            }
        }
    }

    #[test]
    fn wait_for_frame_defers_racing_requests() {
        let (run, ..) = tiny_serving(ServePolicy::WaitForFrame, 64 << 10);
        assert!(
            run.total_deferred() > 0,
            "the request mix targets frames ahead of production"
        );
        assert_eq!(run.total_inexact(), 0, "waiting always answers exactly");
    }

    #[test]
    fn best_effort_never_defers_but_substitutes() {
        let (run, ..) = tiny_serving(ServePolicy::BestEffort, 64 << 10);
        assert_eq!(run.total_deferred(), 0, "best effort never waits");
        assert!(
            run.total_inexact() > 0,
            "racing requests must come back substituted"
        );
    }

    #[test]
    fn cache_capacity_drives_hit_rate() {
        let (cached, ..) = tiny_serving(ServePolicy::BestEffort, 1 << 20);
        let (uncached, ..) = tiny_serving(ServePolicy::BestEffort, 0);
        assert!(cached.cache_hit_rate() > 0.0, "a roomy cache must hit");
        assert_eq!(uncached.cache_hit_rate(), 0.0, "no cache, no hits");
        // Identical traffic either way.
        assert_eq!(cached.frames_served(), uncached.frames_served());
        // Store reads cost virtual time, so the uncached run cannot be
        // faster end to end.
        assert!(
            uncached.latency_percentile(99.0) >= cached.latency_percentile(99.0) - 1e-12,
            "cache misses must not make tail latency better"
        );
    }

    #[test]
    #[should_panic(expected = "needs StagedParams::persist")]
    fn serving_without_a_sink_rejected() {
        let dataset = ReflectivityDataset::tiny(8, 42).unwrap();
        let iters = dataset.sample_iterations(2);
        let config = crate::PipelineConfig::default()
            .deterministic()
            .with_staged(StagedParams::new(2, 2, BackpressurePolicy::Block));
        let _ = run_staged_serving_prepared(
            dataset.decomp(),
            dataset.coords(),
            &config,
            &iters,
            &ServeParams::new(2, 2, ServePolicy::BestEffort),
            NetModel::blue_waters(),
            |it, rank| dataset.rank_blocks(it, rank),
        );
    }

    #[test]
    fn gen_request_is_deterministic_and_in_range() {
        let iterations: Vec<usize> = (0..12).map(|i| 100 + i * 20).collect();
        for client in 0..7 {
            for j in 0..9 {
                let a = gen_request(client, j, &iterations, 9);
                let b = gen_request(client, j, &iterations, 9);
                assert_eq!(a, b, "request mix must replay identically");
                match a {
                    FrameRequest::Latest => {}
                    FrameRequest::AtIteration(it) => {
                        assert!(iterations.iter().any(|&x| x as u64 == it))
                    }
                    FrameRequest::Range { start, end } => {
                        assert!(start <= end);
                        assert!(iterations.iter().any(|&x| x as u64 == start));
                        assert!(iterations.iter().any(|&x| x as u64 == end));
                    }
                }
            }
        }
    }

    #[test]
    fn gen_request_covers_every_variant() {
        let iterations: Vec<usize> = (0..8).collect();
        let mut latest = 0;
        let mut at = 0;
        let mut range = 0;
        for j in 0..8 {
            match gen_request(0, j, &iterations, 8) {
                FrameRequest::Latest => latest += 1,
                FrameRequest::AtIteration(_) => at += 1,
                FrameRequest::Range { .. } => range += 1,
            }
        }
        assert!(latest > 0 && at > 0 && range > 0);
    }

    #[test]
    #[should_panic(expected = "at least one simulation rank")]
    fn overfull_split_rejected() {
        ServeParams::new(6, 1, ServePolicy::BestEffort).validate(8, 2);
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn zero_clients_rejected() {
        let _ = ServeParams::new(0, 1, ServePolicy::BestEffort);
    }

    #[test]
    fn serve_params_builders() {
        let p = ServeParams::new(4, 6, ServePolicy::WaitForFrame)
            .with_think_time(0.25)
            .with_cache_bytes(2048)
            .with_latency_budget(0.5)
            .with_budget_window(16)
            .with_serve_costs(0.01, 1e-5)
            .with_client_ramp(0.125)
            .with_fault(ServeFault {
                stager: 1,
                after_requests: 3,
            });
        assert_eq!(p.clients, 4);
        assert_eq!(p.requests_per_client, 6);
        assert_eq!(p.think_time, 0.25);
        assert_eq!(p.cache_bytes, 2048);
        assert_eq!(p.latency_budget, Some(0.5));
        assert_eq!(p.budget_window, 16);
        assert_eq!(p.service_base, 0.01);
        assert_eq!(p.reply_per_byte, 1e-5);
        assert_eq!(p.client_ramp, 0.125);
        assert_eq!(
            p.fault,
            Some(ServeFault {
                stager: 1,
                after_requests: 3
            })
        );
    }

    #[test]
    #[should_panic(expected = "latency budget must be finite and positive")]
    fn non_positive_budget_rejected() {
        let _ = ServeParams::new(1, 1, ServePolicy::BestEffort).with_latency_budget(0.0);
    }

    #[test]
    fn no_budget_ships_everything_full_fidelity() {
        let (run, ..) = tiny_serving(ServePolicy::BestEffort, 64 << 10);
        assert_eq!(run.degraded_replies(), 0);
        let mix = run.fidelity_mix();
        assert!(mix.full > 0, "frame replies were shipped");
        assert_eq!(mix.degraded(), 0);
        assert!(run.requests.iter().all(|r| r.fidelity == Fidelity::Full));
        assert!(run.servers.iter().all(|s| s.final_percent == 0.0));
    }

    #[test]
    fn generous_budget_converges_to_full_fidelity() {
        // With explicit serve costs but a budget far above the observed
        // latencies, the controller must settle at 0% — zero degraded
        // replies, exactly the fixed-fidelity outcome.
        let serve = ServeParams::new(4, 6, ServePolicy::BestEffort)
            .with_think_time(0.1)
            .with_serve_costs(0.01, 1e-6)
            .with_latency_budget(1e6);
        let (run, ..) = tiny_serving_serve(serve, None);
        assert_eq!(run.degraded_replies(), 0, "generous budget never degrades");
        assert!(run.servers.iter().all(|s| s.final_percent == 0.0));
        assert!(run.requests.iter().all(|r| r.fidelity == Fidelity::Full));
    }

    #[test]
    fn tight_budget_walks_the_fidelity_ladder() {
        // Serve costs make every reply expensive; a budget far below the
        // resulting latencies forces the controller up the ladder
        // mid-run.
        let serve = ServeParams::new(4, 6, ServePolicy::BestEffort)
            .with_think_time(0.1)
            .with_serve_costs(0.05, 1e-4)
            .with_latency_budget(0.01);
        let (run, ..) = tiny_serving_serve(serve, None);
        let mix = run.fidelity_mix();
        assert!(
            mix.degraded() > 0,
            "an unmeetable budget must degrade replies: {mix:?}"
        );
        assert!(
            mix.full > 0,
            "the controller's first frame serves unreduced (Algorithm 1 initial conditions)"
        );
        assert!(
            run.servers.iter().any(|s| s.final_percent > 0.0),
            "controllers end under pressure"
        );
        // Clients observed the degradation through the wire tag.
        assert!(run
            .requests
            .iter()
            .any(|r| r.fidelity != Fidelity::Full && r.frames > 0));
        // Fidelity-mix accounting covers exactly the frame-carrying
        // replies.
        let frame_replies = run.requests.iter().filter(|r| r.frames > 0).count();
        assert_eq!(mix.total(), frame_replies);
    }

    #[test]
    fn degraded_replies_ship_fewer_bytes_for_lower_tail() {
        // Same costs, same traffic: the adaptive run's tail latency must
        // not exceed the fixed-fidelity run's, because every degraded
        // reply is strictly smaller on the (per-byte-charged) wire.
        let costs = (0.02, 2e-4);
        let fixed = ServeParams::new(4, 6, ServePolicy::BestEffort)
            .with_think_time(0.1)
            .with_serve_costs(costs.0, costs.1);
        let adaptive = fixed.with_latency_budget(0.05);
        let (fixed_run, ..) = tiny_serving_serve(fixed, None);
        let (adaptive_run, ..) = tiny_serving_serve(adaptive, None);
        assert!(adaptive_run.degraded_replies() > 0);
        assert!(
            adaptive_run.latency_percentile(99.0) <= fixed_run.latency_percentile(99.0) + 1e-12,
            "adaptive p99 {} vs fixed p99 {}",
            adaptive_run.latency_percentile(99.0),
            fixed_run.latency_percentile(99.0)
        );
    }
}

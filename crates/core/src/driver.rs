//! Experiment driver: replay a dataset through the pipeline on the virtual
//! runtime — the equivalent of the paper's BIL-reload + Catalyst kernel
//! (§V-A).
//!
//! Two execution shapes:
//!
//! * **one-shot** ([`run_experiment`] family) — spawn the rank threads,
//!   run one configuration, join;
//! * **sweep** ([`run_sweep_prepared`] / [`run_sweep_in_session`]) — spawn
//!   the rank threads once ([`apc_comm::Session`]) and replay *many*
//!   configurations over them, which is how the paper's Figs 6–11 explore
//!   the parameter space over one stored dataset. Virtual time is counted,
//!   not measured, so the two shapes produce byte-identical
//!   [`IterationReport`]s (guarded by the `sweep_engine` integration
//!   tests); the sweep only removes the per-configuration thread-spawn
//!   wall-clock cost.

use apc_cm1::ReflectivityDataset;
use apc_comm::{NetModel, Runtime, Session};

use crate::config::{InSituMode, PipelineConfig};
use crate::pipeline::Pipeline;
use crate::report::IterationReport;

/// Run `config` over the given dataset iterations on the dataset's own rank
/// count, with a Blue Waters-like network. Returns one report per
/// iteration (identical across ranks; rank 0's copy).
pub fn run_experiment(
    dataset: &ReflectivityDataset,
    config: PipelineConfig,
    iterations: &[usize],
) -> Vec<IterationReport> {
    run_experiment_on(dataset, config, iterations, NetModel::blue_waters())
}

/// [`run_experiment`] with an explicit network model (used by the
/// low-network-performance ablation from the paper's §VI outlook).
pub fn run_experiment_on(
    dataset: &ReflectivityDataset,
    config: PipelineConfig,
    iterations: &[usize],
    net: NetModel,
) -> Vec<IterationReport> {
    run_experiment_prepared(
        dataset.decomp(),
        dataset.coords(),
        config,
        iterations,
        net,
        |it, rank| dataset.rank_blocks(it, rank),
    )
}

/// Lowest-level driver: the caller supplies the per-`(iteration, rank)`
/// block input. Parameter sweeps use this with pre-generated blocks so the
/// synthetic simulation runs once instead of once per configuration (the
/// virtual-time results are identical either way).
///
/// The driver spawns one OS thread per rank, so it clamps the config's
/// [`crate::ExecPolicy`] to the per-rank thread budget
/// (`ranks × threads ≤ cores`) before entering the pipeline. Virtual-time
/// output is unaffected — the clamp only protects wall-clock throughput.
pub fn run_experiment_prepared<F>(
    decomp: &apc_grid::DomainDecomp,
    coords: &apc_grid::RectilinearCoords,
    config: PipelineConfig,
    iterations: &[usize],
    net: NetModel,
    blocks: F,
) -> Vec<IterationReport>
where
    F: Fn(usize, usize) -> Vec<apc_grid::Block> + Sync,
{
    run_sweep_prepared(
        decomp,
        coords,
        std::slice::from_ref(&config),
        iterations,
        net,
        blocks,
    )
    .swap_remove(0)
}

/// The sweep engine: replay every configuration in `configs` over the same
/// prepared input through **one** rank session — the rank threads are
/// spawned once, not once per configuration. Returns one report series per
/// configuration, in order. Byte-identical to running each configuration
/// through [`run_experiment_prepared`] separately.
pub fn run_sweep_prepared<F>(
    decomp: &apc_grid::DomainDecomp,
    coords: &apc_grid::RectilinearCoords,
    configs: &[PipelineConfig],
    iterations: &[usize],
    net: NetModel,
    blocks: F,
) -> Vec<Vec<IterationReport>>
where
    F: Fn(usize, usize) -> Vec<apc_grid::Block> + Sync,
{
    let mut session = Runtime::new(decomp.nranks(), net).session();
    run_sweep_in_session(&mut session, decomp, coords, configs, iterations, &blocks)
}

/// [`run_sweep_prepared`] over a caller-owned [`Session`], so several
/// sweeps (e.g. consecutive figures of the paper) can share one persistent
/// rank pool. The session's rank count must match the decomposition; its
/// network model is whatever the session was created with.
pub fn run_sweep_in_session<F>(
    session: &mut Session,
    decomp: &apc_grid::DomainDecomp,
    coords: &apc_grid::RectilinearCoords,
    configs: &[PipelineConfig],
    iterations: &[usize],
    blocks: &F,
) -> Vec<Vec<IterationReport>>
where
    F: Fn(usize, usize) -> Vec<apc_grid::Block> + Sync,
{
    assert_eq!(
        session.nranks(),
        decomp.nranks(),
        "session rank count must match the decomposition"
    );
    configs
        .iter()
        .map(|cfg| match cfg.mode {
            InSituMode::Synchronous => {
                let mut config = cfg.clone();
                config.exec = config.exec.clamp_for_ranks(decomp.nranks());
                let mut all: Vec<Vec<IterationReport>> = session.run(|rank| {
                    let mut pipeline = Pipeline::new(config.clone(), *decomp, coords.clone());
                    iterations
                        .iter()
                        .map(|&it| {
                            let input = blocks(it, rank.rank());
                            pipeline.run_iteration(rank, input, it).0
                        })
                        .collect()
                });
                all.swap_remove(0)
            }
            // Staged configs run the dedicated-core executor over the same
            // session and fold into the same report-stream shape (the
            // staged-only observables are available through
            // `crate::staged::run_staged_in_session` directly).
            InSituMode::Staged(_) => {
                let mut config = cfg.clone();
                config.exec = config.exec.clamp_for_ranks(decomp.nranks());
                crate::staged::run_staged_in_session(
                    session, decomp, coords, &config, iterations, blocks,
                )
                .reports()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn driver_runs_multiple_iterations() {
        let dataset = ReflectivityDataset::tiny(4, 11).unwrap();
        let iters = dataset.sample_iterations(3);
        let reports = run_experiment(&dataset, PipelineConfig::default().deterministic(), &iters);
        assert_eq!(reports.len(), 3);
        for (r, &it) in reports.iter().zip(&iters) {
            assert_eq!(r.iteration, it);
            assert!(r.t_total > 0.0);
        }
    }

    #[test]
    fn sweep_matches_one_shot_per_config() {
        // The sweep engine's core invariant: one session replaying many
        // configs produces exactly what spawn-per-run produces per config.
        let dataset = ReflectivityDataset::tiny(4, 11).unwrap();
        let iters = dataset.sample_iterations(2);
        let configs: Vec<PipelineConfig> = [0.0, 50.0, 100.0]
            .iter()
            .map(|&p| {
                PipelineConfig::default()
                    .deterministic()
                    .with_fixed_percent(p)
            })
            .collect();
        let swept = run_sweep_prepared(
            dataset.decomp(),
            dataset.coords(),
            &configs,
            &iters,
            NetModel::blue_waters(),
            |it, rank| dataset.rank_blocks(it, rank),
        );
        assert_eq!(swept.len(), configs.len());
        for (cfg, series) in configs.iter().zip(&swept) {
            let one_shot = run_experiment(&dataset, cfg.clone(), &iters);
            assert_eq!(series, &one_shot, "sweep diverged for {cfg:?}");
        }
    }

    #[test]
    fn slow_network_raises_redistribution_cost() {
        let dataset = ReflectivityDataset::tiny(4, 11).unwrap();
        let iters = [300];
        let cfg = PipelineConfig::default()
            .deterministic()
            .with_redistribution(crate::Redistribution::RandomShuffle { seed: 1 });
        let fast = run_experiment_on(&dataset, cfg.clone(), &iters, NetModel::blue_waters());
        let slow = run_experiment_on(&dataset, cfg, &iters, NetModel::gigabit_ethernet());
        assert!(
            slow[0].t_redistribute > 10.0 * fast[0].t_redistribute,
            "gigabit {} vs gemini {}",
            slow[0].t_redistribute,
            fast[0].t_redistribute
        );
        // Rendering is unaffected by the network (up to the barrier that
        // closes the step, whose latency differs between the two models).
        assert!((slow[0].t_render - fast[0].t_render).abs() < 1e-2);
    }
}

//! Shared latency statistics for the serving executors.
//!
//! Both serving executors (`serving.rs`'s staged serving and
//! `replay_serving.rs`'s standalone replay pool) — and, since the
//! adaptive-serving work, every per-stager `BudgetController` window —
//! report tail latencies through the same **nearest-rank** percentile.
//! The rule used to be copy-pasted at each call site; a drift in the
//! rounding convention between copies would silently skew the perf-gate
//! comparisons that consume these numbers, so it lives here once.

/// The `p`-th percentile (0–100) of `values`, by the nearest-rank rule
/// `idx = round(p/100 · (n−1))` over the sorted samples.
///
/// An empty sample set yields `0.0` (the executors' convention for "no
/// requests served"). NaN samples are rejected loudly: a NaN latency
/// means a virtual-time accounting bug upstream, and letting
/// `total_cmp` quietly sort it to the top would corrupt every tail
/// statistic derived from the window.
pub fn percentile(values: impl IntoIterator<Item = f64>, p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    let mut sorted: Vec<f64> = values.into_iter().collect();
    assert!(
        sorted.iter().all(|v| !v.is_nan()),
        "NaN latency in percentile input: virtual-time accounting bug upstream"
    );
    if sorted.is_empty() {
        return 0.0;
    }
    sorted.sort_by(f64::total_cmp);
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(percentile(std::iter::empty(), 50.0), 0.0);
        assert_eq!(percentile(vec![], 99.0), 0.0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile([7.25], p), 7.25);
        }
    }

    #[test]
    fn p0_and_p100_are_min_and_max() {
        let lat = [9.0, 1.0, 4.0, 2.5, 100.0];
        assert_eq!(percentile(lat, 0.0), 1.0);
        assert_eq!(percentile(lat, 100.0), 100.0);
    }

    #[test]
    fn nearest_rank_rounds_to_the_closest_sorted_index() {
        // Four samples: p50 → round(0.5·3) = 2 → third-smallest.
        assert_eq!(percentile([4.0, 1.0, 3.0, 2.0], 50.0), 3.0);
        // Five samples: p50 → round(0.5·4) = 2 → the median.
        assert_eq!(percentile([5.0, 1.0, 4.0, 2.0, 3.0], 50.0), 3.0);
        // p99 of 100 evenly spread samples is the 99th-smallest.
        let lat: Vec<f64> = (0..100).map(f64::from).collect();
        assert_eq!(percentile(lat, 99.0), 98.0);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn out_of_range_p_is_rejected() {
        let _ = percentile([1.0], 101.0);
    }

    #[test]
    #[should_panic(expected = "NaN latency")]
    fn nan_latency_is_rejected() {
        let _ = percentile([1.0, f64::NAN, 2.0], 50.0);
    }

    #[test]
    fn negative_and_infinite_samples_still_order_totally() {
        // Infinities are orderable (only NaN is a bug); they land at the
        // extremes like any other sample.
        assert_eq!(percentile([f64::INFINITY, 1.0, -2.0], 0.0), -2.0);
        assert_eq!(percentile([f64::INFINITY, 1.0, -2.0], 100.0), f64::INFINITY);
    }
}

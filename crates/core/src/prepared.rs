//! [`Prepared`]: pipeline input bound to a persistent rank session — the
//! substrate every parameter sweep replays through.
//!
//! A `Prepared` owns (a) the input blocks for one `(rank count, iteration
//! set)`, (b) a persistent [`Session`] of rank threads, and (c) a shared
//! [`StatsCache`], so replaying many [`PipelineConfig`]s costs one thread
//! spawn and one data pass instead of one per configuration. Two input
//! sources exist:
//!
//! * **Preloaded** ([`Prepared::from_dataset`] and friends) — every
//!   `(iteration, rank)` block set generated up front and held in memory;
//! * **Store** ([`Prepared::from_store`]) — blocks live in an `apc-store`
//!   chunked dataset and each rank reads *only its own chunks, lazily,
//!   from inside its rank thread* during the run. Peak memory per
//!   iteration is one rank's working set instead of the whole domain,
//!   which is what opens larger-than-memory replay; with a lossless chunk
//!   codec the reports are byte-identical to the preloaded path (pinned
//!   by the `store_roundtrip` integration test).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use apc_cm1::{ReflectivityDataset, StoredTimeSeries};
use apc_comm::{NetModel, Runtime, Session};
use apc_grid::Block;
use apc_par::ExecPolicy;

use crate::config::PipelineConfig;
use crate::driver::{run_experiment_prepared, run_sweep_in_session};
use crate::pipeline::StatsCache;
use crate::report::IterationReport;
use crate::serving::{run_staged_serving_in_session, ServeParams, ServingRun};
use crate::staged::{run_staged_in_session, StagedRun};

/// Where a [`Prepared`]'s blocks come from.
enum BlockSource {
    /// Everything generated up front, keyed by `(iteration, rank)`.
    Preloaded(BTreeMap<(usize, usize), Vec<Block>>),
    /// Lazy per-rank chunk reads from a stored dataset (boxed: the stored
    /// handle is much larger than the map header).
    Store(Box<StoredTimeSeries>),
}

/// Pre-arranged pipeline input for one `(rank count, iteration set)`:
/// blocks (in memory or behind a chunked store), a shared
/// isosurface-stats cache, and a persistent rank [`Session`] so every
/// configuration replayed through this input reuses the same rank
/// threads. Preparing once and replaying across configurations is exactly
/// what the paper does by reloading its stored dataset with BIL (§V-A).
pub struct Prepared {
    /// The dataset's geometry (decomposition + coordinate axes). For a
    /// store-backed `Prepared` this is the deterministic geometry twin —
    /// block data still comes from the store.
    pub dataset: ReflectivityDataset,
    pub iterations: Vec<usize>,
    /// Execution policy injected into every config run through this input
    /// (figure experiments never set one themselves).
    pub exec: ExecPolicy,
    /// Network model the session was built with; [`Prepared::run_on`] with
    /// a different model falls back to a one-shot runtime.
    net: NetModel,
    cache: Arc<StatsCache>,
    source: BlockSource,
    session: Mutex<Session>,
}

impl Prepared {
    pub fn new(nranks: usize, seed: u64, iterations: Vec<usize>) -> Self {
        Self::with_exec(nranks, seed, iterations, ExecPolicy::Serial)
    }

    /// [`Prepared::new`] with an intra-rank execution policy applied to
    /// every run (the bench harness passes `Scale::exec` / `APC_THREADS`
    /// here).
    pub fn with_exec(nranks: usize, seed: u64, iterations: Vec<usize>, exec: ExecPolicy) -> Self {
        let dataset =
            // apc-lint: allow(unwrap-in-lib): geometry misconfiguration caught at preparation time
            ReflectivityDataset::paper_scaled(nranks, seed).expect("paper-scaled decomposition");
        Self::from_dataset(
            dataset,
            iterations,
            exec,
            NetModel::blue_waters().for_paper_scale(),
        )
    }

    /// Prepare an arbitrary dataset (integration tests use the `tiny`
    /// geometry) with an explicit network model for the session. All
    /// blocks are generated up front and held in memory.
    pub fn from_dataset(
        dataset: ReflectivityDataset,
        mut iterations: Vec<usize>,
        exec: ExecPolicy,
        net: NetModel,
    ) -> Self {
        let nranks = dataset.decomp().nranks();
        // The subset/averaging logic assumes a strictly increasing,
        // duplicate-free timeline; enforce it here once.
        iterations.sort_unstable();
        iterations.dedup();
        let mut blocks = BTreeMap::new();
        for &it in &iterations {
            for rank in 0..nranks {
                blocks.insert((it, rank), dataset.rank_blocks(it, rank));
            }
        }
        Self::assemble(
            dataset,
            iterations,
            exec,
            net,
            BlockSource::Preloaded(blocks),
        )
    }

    /// Prepare a **stored** dataset (reopened via
    /// [`apc_cm1::open_dataset`]): nothing is loaded up front — each rank
    /// thread reads its own chunks from the store as the session replays,
    /// so datasets larger than memory stream through. The prepared
    /// iteration set is exactly the stored one.
    ///
    /// A series opened through [`apc_cm1::open_dataset_cached`] /
    /// `StoredTimeSeries::from_backend_cached` layers the shared chunk
    /// cache + iteration-order readahead under these reads; replay
    /// results are byte-identical either way (`tests/properties.rs` pins
    /// this), only read speed changes.
    ///
    /// A failed chunk read panics inside the owning rank, which fails the
    /// run loudly and poisons the session — the same contract as any rank
    /// panic.
    pub fn from_store(stored: StoredTimeSeries, exec: ExecPolicy, net: NetModel) -> Self {
        let dataset = stored.geometry().clone();
        let iterations = stored.iterations().to_vec();
        Self::assemble(
            dataset,
            iterations,
            exec,
            net,
            BlockSource::Store(Box::new(stored)),
        )
    }

    fn assemble(
        dataset: ReflectivityDataset,
        iterations: Vec<usize>,
        exec: ExecPolicy,
        net: NetModel,
        source: BlockSource,
    ) -> Self {
        let session = Mutex::new(Runtime::new(dataset.decomp().nranks(), net).session());
        Self {
            dataset,
            iterations,
            exec,
            net,
            cache: Arc::new(StatsCache::new()),
            source,
            session,
        }
    }

    /// The component-experiment iteration subset: `n` strictly increasing,
    /// duplicate-free iterations equally spaced through the prepared set.
    pub fn subset(&self, n: usize) -> Vec<usize> {
        spaced_subset(&self.iterations, n)
    }

    /// Run a pipeline configuration over `iterations` (must be prepared)
    /// through the persistent rank session.
    pub fn run(&self, config: PipelineConfig, iterations: &[usize]) -> Vec<IterationReport> {
        self.run_sweep(std::slice::from_ref(&config), iterations)
            .swap_remove(0)
    }

    /// The sweep engine entry point: replay every configuration over the
    /// same prepared blocks, one rank session, one stats cache. Returns one
    /// report series per configuration, in order — byte-identical to
    /// running each configuration through a fresh spawn-per-run runtime
    /// (guarded by the `sweep_engine` integration tests).
    pub fn run_sweep(
        &self,
        configs: &[PipelineConfig],
        iterations: &[usize],
    ) -> Vec<Vec<IterationReport>> {
        let configs: Vec<PipelineConfig> =
            configs.iter().map(|c| self.instrument(c.clone())).collect();
        // apc-lint: allow(unwrap-in-lib): session mutex poisoning means an earlier sweep panicked; propagate
        let mut session = self.session.lock().expect("an earlier sweep panicked");
        run_sweep_in_session(
            &mut session,
            self.dataset.decomp(),
            self.dataset.coords(),
            &configs,
            iterations,
            &|it, rank| self.prepared_blocks(it, rank),
        )
    }

    /// Run a staged ([`crate::InSituMode::Staged`]) configuration over
    /// `iterations` through the persistent rank session, returning the
    /// full [`StagedRun`] (reports **plus** the staged-only observables —
    /// stall, sim-visible time, dropped/degraded counts). Staged configs
    /// also flow through [`Prepared::run`]/[`Prepared::run_sweep`], which
    /// return just the report stream.
    pub fn run_staged(&self, config: PipelineConfig, iterations: &[usize]) -> StagedRun {
        let mut config = self.instrument(config);
        config.exec = config.exec.clamp_for_ranks(self.dataset.decomp().nranks());
        // apc-lint: allow(unwrap-in-lib): session mutex poisoning means an earlier sweep panicked; propagate
        let mut session = self.session.lock().expect("an earlier sweep panicked");
        run_staged_in_session(
            &mut session,
            self.dataset.decomp(),
            self.dataset.coords(),
            &config,
            iterations,
            &|it, rank| self.prepared_blocks(it, rank),
        )
    }

    /// Run a staged configuration with `serve.clients` simulated client
    /// ranks co-scheduled against its stager pool, through the persistent
    /// rank session (see [`crate::serving`]). The config's
    /// `StagedParams::persist` sink must be attached: stagers persist
    /// frames as they render and serve them back over the request/reply
    /// protocol. The session's rank count splits
    /// `[sim][viz][serve.clients]`, with the dataset's ranks folded onto
    /// the simulation ranks as in [`Prepared::run_staged`].
    pub fn run_staged_serving(
        &self,
        config: PipelineConfig,
        iterations: &[usize],
        serve: &ServeParams,
    ) -> ServingRun {
        let mut config = self.instrument(config);
        config.exec = config.exec.clamp_for_ranks(self.dataset.decomp().nranks());
        // apc-lint: allow(unwrap-in-lib): session mutex poisoning means an earlier sweep panicked; propagate
        let mut session = self.session.lock().expect("an earlier sweep panicked");
        run_staged_serving_in_session(
            &mut session,
            self.dataset.decomp(),
            self.dataset.coords(),
            &config,
            iterations,
            serve,
            &|it, rank| self.prepared_blocks(it, rank),
        )
    }

    /// Like [`Prepared::run`] with an explicit network model. A model equal
    /// to the prepared one reuses the session; a different model needs its
    /// own runtime (the network is baked into the session's shared state),
    /// so those runs fall back to spawn-per-run.
    pub fn run_on(
        &self,
        config: PipelineConfig,
        iterations: &[usize],
        net: NetModel,
    ) -> Vec<IterationReport> {
        if net == self.net {
            return self.run(config, iterations);
        }
        run_experiment_prepared(
            self.dataset.decomp(),
            self.dataset.coords(),
            self.instrument(config),
            iterations,
            net,
            |it, rank| self.prepared_blocks(it, rank),
        )
    }

    /// Inject the shared cache and execution policy into a configuration.
    fn instrument(&self, mut config: PipelineConfig) -> PipelineConfig {
        config.stats_cache = Some(Arc::clone(&self.cache));
        config.exec = self.exec;
        config
    }

    fn prepared_blocks(&self, it: usize, rank: usize) -> Vec<Block> {
        match &self.source {
            BlockSource::Preloaded(blocks) => blocks
                .get(&(it, rank))
                // apc-lint: allow(unwrap-in-lib): caller asked for an unprepared iteration — a driver bug, not input
                .unwrap_or_else(|| panic!("iteration {it} not prepared"))
                .clone(),
            BlockSource::Store(stored) => stored.rank_blocks(it, rank).unwrap_or_else(|e| {
                // apc-lint: allow(unwrap-in-lib): documented contract — a failed chunk read panics the owning rank and poisons the session
                panic!("store read failed for iteration {it} rank {rank}: {e}")
            }),
        }
    }
}

/// `n` entries equally spaced through `items`, always strictly increasing
/// and duplicate-free (for `n >= 2` the first and last entries are always
/// included; `n >= items.len()` returns everything). `items` must be
/// strictly increasing. Figure averages double-count nothing because of
/// this guarantee.
pub fn spaced_subset(items: &[usize], n: usize) -> Vec<usize> {
    if n >= items.len() {
        return items.to_vec();
    }
    debug_assert!(
        items.windows(2).all(|w| w[1] > w[0]),
        "items must be strictly increasing"
    );
    let mut out = Vec::with_capacity(n);
    let mut prev: Option<usize> = None;
    for i in 0..n {
        let mut idx = i * (items.len() - 1) / (n - 1).max(1);
        // Integer spacing can only repeat an index when n approaches
        // items.len(); bump forward to keep the selection unique.
        if let Some(p) = prev {
            if idx <= p {
                idx = p + 1;
            }
        }
        prev = Some(idx);
        out.push(items[idx]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spaced_subset_boundaries() {
        let items: Vec<usize> = vec![10, 20, 30, 40, 50, 60];
        assert!(spaced_subset(&items, 0).is_empty());
        assert_eq!(spaced_subset(&items, 1), vec![10]);
        // n = len - 1 is the regime where naive integer spacing repeats an
        // index and a figure average double-counts an iteration.
        assert_eq!(
            spaced_subset(&items, items.len() - 1).len(),
            items.len() - 1
        );
        assert_eq!(spaced_subset(&items, items.len()), items);
        assert_eq!(spaced_subset(&items, items.len() + 5), items);
    }

    #[test]
    fn spaced_subset_is_strictly_increasing_and_unique_for_every_n() {
        let items: Vec<usize> = (0..17).map(|i| 57 + i * 3).collect();
        for n in 0..=items.len() + 2 {
            let sub = spaced_subset(&items, n);
            assert_eq!(sub.len(), n.min(items.len()), "n = {n}");
            assert!(
                sub.windows(2).all(|w| w[1] > w[0]),
                "subset for n = {n} is not strictly increasing: {sub:?}"
            );
            if n >= 2 {
                assert_eq!(sub[0], items[0], "first element always included");
                assert_eq!(*sub.last().unwrap(), *items.last().unwrap());
            }
        }
    }

    #[test]
    fn store_backed_prepared_matches_preloaded() {
        use apc_cm1::StoredTimeSeries;
        use apc_store::{CodecKind, MemStore, StoreBackend};

        let dataset = ReflectivityDataset::tiny(4, 11).unwrap();
        let iters = dataset.sample_iterations(2);
        let backend: Box<dyn StoreBackend> = Box::new(MemStore::new());
        apc_cm1::write_dataset_to(&dataset, &iters, &backend, CodecKind::Fpz).unwrap();
        let stored = StoredTimeSeries::from_backend(backend).unwrap();

        let from_store = Prepared::from_store(stored, ExecPolicy::Serial, NetModel::blue_waters());
        let preloaded = Prepared::from_dataset(
            dataset,
            iters.clone(),
            ExecPolicy::Serial,
            NetModel::blue_waters(),
        );
        assert_eq!(from_store.iterations, preloaded.iterations);
        let config = PipelineConfig::default().with_fixed_percent(60.0);
        let a = from_store.run(config.clone(), &iters);
        let b = preloaded.run(config, &iters);
        assert_eq!(a, b, "store-backed replay must be byte-identical");
    }
}

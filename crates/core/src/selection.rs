//! Scored blocks, the global sort contract, and reduction-set selection
//! (paper §IV-C).

use std::cmp::Ordering;
use std::collections::BTreeSet;

use apc_comm::Meter;
use apc_grid::BlockId;

/// A `<block id, score>` pair as moved through the global sort.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredBlock {
    pub id: BlockId,
    pub score: f64,
}

impl Meter for ScoredBlock {
    fn nbytes(&self) -> usize {
        std::mem::size_of::<BlockId>() + std::mem::size_of::<f64>()
    }
}

/// The paper's total order: increasing score, ties broken by id.
///
/// Uses [`f64::total_cmp`], so it is a total order even if a metric emits
/// a NaN on degenerate input (constant blocks, empty ranges): instead of
/// panicking mid-sort inside a collective — which would take down the
/// whole run — NaNs sort deterministically by their IEEE bit pattern
/// (positive NaN above all finite scores, negative NaN below; every rank
/// agrees, which is what the replicated selection needs). All registered
/// metrics return finite scores on constant blocks — guarded by
/// `apc_metrics`' `every_metric_is_finite_on_constant_blocks` test — so
/// this is defense in depth for user-supplied scorers.
pub fn score_order(a: &ScoredBlock, b: &ScoredBlock) -> Ordering {
    a.score.total_cmp(&b.score).then(a.id.cmp(&b.id))
}

/// Number of blocks reduced at percentage `p` of `n` blocks.
pub fn reduction_count(n: usize, percent: f64) -> usize {
    debug_assert!((0.0..=100.0).contains(&percent));
    ((n as f64 * percent / 100.0).floor() as usize).min(n)
}

/// The ids of the `percent%` lowest-scored blocks of a globally-sorted
/// list (ascending — the head of the list is reduced). A `BTreeSet` so
/// any caller that iterates it sees a deterministic id order.
pub fn reduction_set(sorted: &[ScoredBlock], percent: f64) -> BTreeSet<BlockId> {
    let k = reduction_count(sorted.len(), percent);
    sorted[..k].iter().map(|s| s.id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_fixture() -> Vec<ScoredBlock> {
        let mut v: Vec<ScoredBlock> = (0..10)
            .map(|i| ScoredBlock {
                id: i,
                score: (10 - i) as f64,
            })
            .collect();
        v.sort_by(score_order);
        v
    }

    #[test]
    fn order_is_ascending_with_id_ties() {
        let mut v = [
            ScoredBlock { id: 5, score: 1.0 },
            ScoredBlock { id: 2, score: 1.0 },
            ScoredBlock { id: 9, score: 0.5 },
        ];
        v.sort_by(score_order);
        assert_eq!(v.iter().map(|s| s.id).collect::<Vec<_>>(), vec![9, 2, 5]);
    }

    #[test]
    fn reduction_count_boundaries() {
        assert_eq!(reduction_count(100, 0.0), 0);
        assert_eq!(reduction_count(100, 100.0), 100);
        assert_eq!(reduction_count(100, 50.0), 50);
        assert_eq!(reduction_count(100, 99.9), 99); // floor
        assert_eq!(reduction_count(0, 50.0), 0);
        assert_eq!(reduction_count(3, 50.0), 1);
    }

    #[test]
    fn reduction_set_takes_the_lowest_scores() {
        let sorted = sorted_fixture();
        let set = reduction_set(&sorted, 30.0);
        assert_eq!(set.len(), 3);
        // Lowest scores are blocks 9, 8, 7 (score 1, 2, 3).
        assert!(set.contains(&9) && set.contains(&8) && set.contains(&7));
        assert!(!set.contains(&0));
    }

    #[test]
    fn zero_and_full_percent() {
        let sorted = sorted_fixture();
        assert!(reduction_set(&sorted, 0.0).is_empty());
        assert_eq!(reduction_set(&sorted, 100.0).len(), 10);
    }

    #[test]
    fn nan_scores_sort_deterministically_instead_of_panicking() {
        // A NaN mid-list used to panic inside the global sort collective;
        // total_cmp gives the IEEE total order: negative NaN below every
        // finite score, positive NaN above, ties by id.
        let mut v = [
            ScoredBlock {
                id: 1,
                score: f64::NAN,
            },
            ScoredBlock { id: 3, score: 2.0 },
            ScoredBlock {
                id: 0,
                score: f64::NAN,
            },
            ScoredBlock {
                id: 4,
                score: -f64::NAN,
            },
            ScoredBlock { id: 2, score: -1.0 },
        ];
        v.sort_by(score_order);
        assert_eq!(
            v.iter().map(|s| s.id).collect::<Vec<_>>(),
            vec![4, 2, 3, 0, 1]
        );
        // Selection still works on the NaN-bracketed list.
        assert_eq!(reduction_set(&v, 40.0).len(), 2);
    }

    #[test]
    fn meter_counts_id_and_score() {
        assert_eq!(ScoredBlock { id: 0, score: 0.0 }.nbytes(), 12);
    }
}

//! The six-step pipeline executed inside each rank (paper Fig 2).

use apc_comm::{sort, Rank};
use apc_grid::{Block, DomainDecomp, RectilinearCoords};
use apc_metrics::BlockScorer;
use apc_par::par_map;
use apc_render::{block_isosurface, IsoStats, RenderCostModel};

use crate::config::{PipelineConfig, Redistribution, SortStrategy};
use crate::controller::BudgetController;
use crate::redistribute::{assignment, exchange};
use crate::report::IterationReport;
use crate::selection::{reduction_set, score_order, ScoredBlock};

/// Virtual cost of reducing one block (a corner copy — negligible, but the
/// step is measured like every other). Shared with the staged executor
/// ([`crate::staged`]) so both modes charge reduction identically.
pub(crate) const REDUCE_COST_PER_BLOCK: f64 = 2.0e-6;

/// Cache key for one block's isosurface stats. `IsoStats` is a pure
/// function of `(block content, isovalue)`, so the key carries both: the
/// isovalue bit pattern and a cheap content fingerprint of the block, on
/// top of the `(iteration, block id)` coordinates that make lookups
/// collision-free within one dataset. A sweep that varies the isovalue —
/// or a cache accidentally shared between two datasets — therefore gets a
/// clean miss instead of silently stale stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct StatsKey {
    iteration: usize,
    block: apc_grid::BlockId,
    isovalue_bits: u32,
    content_fp: u64,
}

/// O(1) content fingerprint of a block: its id, extent, sample count and a
/// handful of evenly spaced sample bit patterns, mixed SplitMix64-style.
/// Two blocks from different datasets (different storm seed, different
/// iteration timeline) disagree on essentially every sample, so any probe
/// catches the mismatch; the cost is eight array reads — nothing next to
/// the isosurface extraction the cache elides.
fn block_fingerprint(samples: &[f32], b: &Block) -> u64 {
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 31;
    };
    mix(b.id as u64);
    mix(b.extent.lo.0 as u64 ^ ((b.extent.lo.1 as u64) << 21) ^ ((b.extent.lo.2 as u64) << 42));
    mix(samples.len() as u64);
    let probes = 8.min(samples.len());
    for p in 0..probes {
        let idx = p * (samples.len() - 1) / probes.max(1);
        mix(u64::from(samples[idx].to_bits()) << 1 | 1);
    }
    h
}

/// Wall-clock accelerator for parameter sweeps: memoizes the isosurface
/// work counters of *full* blocks. Block data is a pure function of
/// `(dataset seed, iteration, id)`, so reuse across pipeline
/// configurations is sound — and the cache enforces soundness itself:
/// entries are keyed by `(iteration, block id, isovalue bits, block
/// content fingerprint)`, so configurations that vary the isovalue or feed
/// a different dataset through the same cache miss cleanly instead of
/// returning stale stats (the pre-sweep-engine bug). Virtual time is
/// identical with or without the cache; only wall-clock time changes.
#[derive(Debug, Default)]
pub struct StatsCache {
    map: std::sync::Mutex<std::collections::BTreeMap<StatsKey, IsoStats>>,
}

impl StatsCache {
    pub fn new() -> Self {
        Self::default()
    }

    fn get(&self, key: StatsKey) -> Option<IsoStats> {
        // apc-lint: allow(unwrap-in-lib): mutex poisoning means a rank already panicked; propagate
        self.map.lock().unwrap().get(&key).copied()
    }

    fn put(&self, key: StatsKey, stats: IsoStats) {
        // apc-lint: allow(unwrap-in-lib): mutex poisoning means a rank already panicked; propagate
        self.map.lock().unwrap().insert(key, stats);
    }

    pub fn len(&self) -> usize {
        // apc-lint: allow(unwrap-in-lib): mutex poisoning means a rank already panicked; propagate
        self.map.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Isosurface work counters of one block under `config` — through the
/// shared [`StatsCache`] when one is attached and the block is full
/// (reduced blocks are cheap to extract and never cached). The single
/// implementation both the synchronous render step and the staged
/// executor use, so the cache stays coherent across modes.
pub(crate) fn cached_block_stats(
    config: &PipelineConfig,
    coords: &RectilinearCoords,
    iteration: usize,
    b: &Block,
) -> IsoStats {
    match (&config.stats_cache, b.is_reduced()) {
        (Some(cache), false) => {
            let key = StatsKey {
                iteration,
                block: b.id,
                isovalue_bits: config.isovalue.to_bits(),
                content_fp: block_fingerprint(&b.samples(), b),
            };
            cache.get(key).unwrap_or_else(|| {
                let (_mesh, s) = block_isosurface(b, coords, config.isovalue);
                cache.put(key, s);
                s
            })
        }
        _ => block_isosurface(b, coords, config.isovalue).1,
    }
}

/// A rank-local pipeline instance. Controller state is replicated on every
/// rank and stays identical because it is fed with the globally-agreed
/// iteration time (deterministic adaptation without extra communication).
///
/// The per-block hot kernels (scoring, isosurface extraction) run under
/// the config's [`crate::ExecPolicy`]; virtual time is counted, not
/// measured, so the policy never changes the reports:
///
/// ```
/// use apc_cm1::ReflectivityDataset;
/// use apc_comm::{NetModel, Runtime};
/// use apc_core::{ExecPolicy, Pipeline, PipelineConfig};
///
/// let dataset = ReflectivityDataset::tiny(2, 42).unwrap();
/// let config = PipelineConfig::default()
///     .deterministic()
///     .with_fixed_percent(50.0)
///     .with_exec(ExecPolicy::Threads(2)); // fan block kernels out per rank
/// let reports = Runtime::new(2, NetModel::blue_waters()).run(|rank| {
///     let mut p = Pipeline::new(config.clone(), *dataset.decomp(), dataset.coords().clone());
///     let blocks = dataset.rank_blocks(300, rank.rank());
///     p.run_iteration(rank, blocks, 300).0
/// });
/// assert_eq!(reports[0], reports[1], "every rank derives the same report");
/// assert!(reports[0].triangles_total > 0);
/// ```
pub struct Pipeline {
    config: PipelineConfig,
    scorer: Box<dyn BlockScorer>,
    controller: Option<BudgetController>,
    decomp: DomainDecomp,
    coords: RectilinearCoords,
}

impl Pipeline {
    pub fn new(config: PipelineConfig, decomp: DomainDecomp, coords: RectilinearCoords) -> Self {
        assert!(
            matches!(config.mode, crate::config::InSituMode::Synchronous),
            "Pipeline is the synchronous executor; staged configs run through \
             crate::staged (the experiment drivers dispatch on config.mode)"
        );
        let scorer = apc_metrics::by_name(&config.metric)
            // apc-lint: allow(unwrap-in-lib): misconfiguration caught at construction, before any rank spawns
            .unwrap_or_else(|| panic!("unknown metric {:?}", config.metric));
        let controller = config
            .target_time
            .map(|t| BudgetController::with_max_percent(t, config.max_percent));
        Self {
            config,
            scorer,
            controller,
            decomp,
            coords,
        }
    }

    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The reduction percentage the next iteration will use.
    pub fn percent(&self) -> f64 {
        self.controller
            .as_ref()
            .map_or(self.config.fixed_percent, BudgetController::percent)
    }

    /// Run one full pipeline iteration on this rank's `blocks`. Returns the
    /// (identical-on-all-ranks) report and the blocks this rank holds after
    /// redistribution — callers that produce images render those.
    pub fn run_iteration(
        &mut self,
        rank: &mut Rank,
        mut blocks: Vec<Block>,
        iteration: usize,
    ) -> (IterationReport, Vec<Block>) {
        let percent = self.percent();
        let exec = self.config.exec;
        rank.barrier(); // align clocks so step times are max-over-ranks
        let c0 = rank.clock();

        // Step 1 — score blocks (real scores on real data; virtual time
        // from the metric's calibrated per-point cost). The batch entry
        // point fans the per-block evaluations out under `exec`; results
        // come back in block order, and the clock is charged from the
        // summed per-block point counts, so every policy yields the same
        // virtual time.
        let batch = apc_metrics::score_blocks(self.scorer.as_ref(), &blocks, exec);
        let scored: Vec<ScoredBlock> = batch
            .iter()
            .map(|r| ScoredBlock {
                id: r.id,
                score: r.score,
            })
            .collect();
        let points: usize = batch.iter().map(|r| r.points).sum();
        rank.advance(points as f64 * self.scorer.cost_per_point());
        rank.barrier();
        let c1 = rank.clock();

        // Step 2 — global sort of <id, score> pairs.
        let sorted = match self.config.sort {
            SortStrategy::GatherSortBroadcast => {
                sort::gather_sort_broadcast(rank, scored, score_order)
            }
            SortStrategy::SampleSort => sort::sample_sort(rank, scored, score_order),
        };
        rank.barrier();
        let c2 = rank.clock();

        // Step 3 — reduce the p% lowest-scored blocks (to 8 corners by
        // default; to a k³ lattice with the downsampling extension).
        let to_reduce = reduction_set(&sorted, percent);
        let mut reduced_here = 0usize;
        for b in &mut blocks {
            if to_reduce.contains(&b.id) {
                b.downsample(self.config.reduce_keep);
                reduced_here += 1;
            }
        }
        rank.advance(reduced_here as f64 * REDUCE_COST_PER_BLOCK);
        rank.barrier();
        let c3 = rank.clock();

        // Step 4 — redistribute blocks for load balance.
        let held = match self.config.redistribution {
            Redistribution::None => blocks,
            strategy => {
                let decomp = self.decomp;
                let assign = assignment(strategy, &sorted, rank.nranks(), |id| {
                    decomp.owner_of_block(id)
                });
                exchange(rank, blocks, &assign)
            }
        };
        rank.barrier();
        let c4 = rank.clock();

        // Step 5 — render the isosurface of the held blocks. Extraction is
        // fanned out per block under `exec` (the stats cache is
        // thread-safe); per-block counters are merged in block order, so
        // the counted work — and with it the virtual render time — is
        // identical under every policy.
        let config = &self.config;
        let coords = &self.coords;
        let per_block: Vec<IsoStats> = par_map(
            exec.for_kernel(apc_render::isosurface::recommended_concurrency(held.len())),
            &held,
            |b| cached_block_stats(config, coords, iteration, b),
        );
        let mut stats = IsoStats::default();
        for s in per_block {
            stats.merge(s);
        }
        let render_t = self.config.cost.render_time(
            stats,
            held.len(),
            RenderCostModel::key(rank.rank(), iteration),
        );
        rank.advance(render_t);
        rank.barrier();
        let c5 = rank.clock();

        // Aggregate work counters.
        let triangles_total = rank.allreduce(stats.triangles as u64, |a, b| a + b) as usize;
        let triangles_max_rank = rank.allreduce(stats.triangles as u64, u64::max) as usize;
        let t_total = c5 - c0;

        let report = IterationReport {
            iteration,
            percent_reduced: percent,
            blocks_reduced: to_reduce.len(),
            t_score: c1 - c0,
            t_sort: c2 - c1,
            t_reduce: c3 - c2,
            t_redistribute: c4 - c3,
            t_render: c5 - c4,
            t_total,
            triangles_total,
            triangles_max_rank,
        };

        // Step 6 — adapt the percentage toward the time budget. Every rank
        // sees the same t_total, so the replicated controllers stay in
        // lockstep.
        if let Some(ctrl) = &mut self.controller {
            ctrl.observe(t_total);
        }

        (report, held)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_cm1::ReflectivityDataset;
    use apc_comm::{NetModel, Runtime};

    fn run_on(nranks: usize, config: PipelineConfig, iters: &[usize]) -> Vec<IterationReport> {
        let dataset = ReflectivityDataset::tiny(nranks, 42).unwrap();
        let runtime = Runtime::new(nranks, NetModel::blue_waters());
        let iters = iters.to_vec();
        let all: Vec<Vec<IterationReport>> = runtime.run(|rank| {
            let mut p = Pipeline::new(config.clone(), *dataset.decomp(), dataset.coords().clone());
            iters
                .iter()
                .map(|&it| {
                    let blocks = dataset.rank_blocks(it, rank.rank());
                    p.run_iteration(rank, blocks, it).0
                })
                .collect()
        });
        // All ranks must agree on every report.
        for r in 1..all.len() {
            assert_eq!(all[0], all[r], "rank {r} report disagrees");
        }
        all.into_iter().next().unwrap()
    }

    fn run_tiny(config: PipelineConfig, iters: &[usize]) -> Vec<IterationReport> {
        run_on(4, config, iters)
    }

    #[test]
    fn smoke_no_reduction() {
        let reports = run_tiny(PipelineConfig::default().deterministic(), &[300]);
        let r = &reports[0];
        assert_eq!(r.percent_reduced, 0.0);
        assert_eq!(r.blocks_reduced, 0);
        assert!(r.triangles_total > 0, "the storm must produce geometry");
        assert!(r.t_render > 0.0 && r.t_total >= r.t_render);
        assert!(r.t_score > 0.0 && r.t_sort > 0.0);
    }

    #[test]
    fn full_reduction_collapses_render_time() {
        let base = run_tiny(PipelineConfig::default().deterministic(), &[300]);
        let reduced = run_tiny(
            PipelineConfig::default()
                .deterministic()
                .with_fixed_percent(100.0),
            &[300],
        );
        assert_eq!(reduced[0].blocks_reduced, 128);
        assert!(
            reduced[0].t_render < base[0].t_render / 3.0,
            "100% reduction should collapse rendering: {} vs {}",
            reduced[0].t_render,
            base[0].t_render
        );
    }

    #[test]
    fn round_robin_balances_triangles() {
        // 16 ranks: the storm is localized on a few subdomains, so the NONE
        // baseline is imbalanced and redistribution has something to fix.
        let none = run_on(16, PipelineConfig::default().deterministic(), &[400]);
        let rr = run_on(
            16,
            PipelineConfig::default()
                .deterministic()
                .with_redistribution(Redistribution::RoundRobin),
            &[400],
        );
        // Same geometry, redistributed.
        assert_eq!(none[0].triangles_total, rr[0].triangles_total);
        assert!(
            rr[0].triangles_max_rank < none[0].triangles_max_rank,
            "round robin must shave the busiest rank: {} vs {}",
            rr[0].triangles_max_rank,
            none[0].triangles_max_rank
        );
        assert!(rr[0].t_render < none[0].t_render);
        assert!(
            rr[0].t_redistribute > 0.0,
            "redistribution step must cost time"
        );
    }

    #[test]
    fn random_shuffle_balances_too() {
        let none = run_on(16, PipelineConfig::default().deterministic(), &[400]);
        let sh = run_on(
            16,
            PipelineConfig::default()
                .deterministic()
                .with_redistribution(Redistribution::RandomShuffle { seed: 5 }),
            &[400],
        );
        assert_eq!(none[0].triangles_total, sh[0].triangles_total);
        assert!(sh[0].t_render < none[0].t_render);
    }

    #[test]
    fn adaptation_reaches_a_feasible_target() {
        // Pick a target between the all-reduced floor and the unreduced time.
        let base = run_tiny(PipelineConfig::default().deterministic(), &[300])[0].t_total;
        let floor = run_tiny(
            PipelineConfig::default()
                .deterministic()
                .with_fixed_percent(100.0),
            &[300],
        )[0]
        .t_total;
        let target = floor + (base - floor) * 0.5;
        let iters: Vec<usize> = std::iter::repeat_n(300, 16).collect();
        let reports = run_tiny(
            PipelineConfig::default()
                .deterministic()
                .with_target(target),
            &iters,
        );
        assert_eq!(
            reports[0].percent_reduced, 0.0,
            "first iteration is unreduced"
        );
        // Algorithm 1 is best-effort: on plateaus of t(p) it can overshoot
        // and recover (the spikes visible in the paper's Fig 11). Judge by
        // the post-warmup *median*, which the paper's "converge toward a
        // specified run time" claim is about.
        let mut post: Vec<f64> = reports[4..].iter().map(|r| r.t_total).collect();
        post.sort_by(f64::total_cmp);
        let median = post[post.len() / 2];
        let err = (median - target).abs() / target;
        assert!(
            err < 0.35,
            "median post-warmup time {median} should approach target {target}"
        );
    }

    #[test]
    fn sample_sort_strategy_matches_gsb() {
        let mut cfg = PipelineConfig::default()
            .deterministic()
            .with_fixed_percent(60.0);
        cfg.sort = SortStrategy::SampleSort;
        let ss = run_tiny(cfg, &[300]);
        let gsb = run_tiny(
            PipelineConfig::default()
                .deterministic()
                .with_fixed_percent(60.0),
            &[300],
        );
        // Same blocks reduced ⇒ same geometry and render time.
        assert_eq!(ss[0].blocks_reduced, gsb[0].blocks_reduced);
        assert_eq!(ss[0].triangles_total, gsb[0].triangles_total);
    }

    #[test]
    fn downsampling_lattice_trades_time_for_fidelity() {
        // keep=2 (paper) vs keep=4 (extension) at 100% reduction: the finer
        // lattice keeps more geometry and costs more, but both are far
        // below the unreduced time.
        let full = run_tiny(PipelineConfig::default().deterministic(), &[400]);
        let k2 = run_tiny(
            PipelineConfig::default()
                .deterministic()
                .with_fixed_percent(100.0),
            &[400],
        );
        let k4 = run_tiny(
            PipelineConfig::default()
                .deterministic()
                .with_fixed_percent(100.0)
                .with_reduce_keep(4),
            &[400],
        );
        assert!(k4[0].triangles_total > k2[0].triangles_total);
        assert!(k4[0].triangles_total < full[0].triangles_total);
        assert!(k2[0].t_render <= k4[0].t_render);
        assert!(k4[0].t_render < full[0].t_render);
    }

    #[test]
    fn max_percent_caps_adaptation() {
        // Unreachable target: without the bound p would hit 100%.
        let iters: Vec<usize> = std::iter::repeat_n(300, 8).collect();
        let reports = run_tiny(
            PipelineConfig::default()
                .deterministic()
                .with_target(0.01)
                .with_max_percent(60.0),
            &iters,
        );
        for r in &reports {
            assert!(
                r.percent_reduced <= 60.0,
                "iteration {} at {}%",
                r.iteration,
                r.percent_reduced
            );
        }
        assert!(reports.last().unwrap().percent_reduced > 50.0);
    }

    #[test]
    fn stats_cache_keys_on_isovalue() {
        // Regression: one shared cache used to be keyed by
        // `(iteration, block)` only, so the second isovalue silently got
        // the first isovalue's stats. The key now carries the isovalue.
        let cache = std::sync::Arc::new(StatsCache::new());
        let cached = |iso: f32| {
            let mut c = PipelineConfig::default().deterministic().with_isovalue(iso);
            c.stats_cache = Some(std::sync::Arc::clone(&cache));
            run_tiny(c, &[300])
        };
        let hot = cached(45.0); // warms the cache at the paper's 45 dBZ
        let cool = cached(20.0); // same cache, lower isovalue
        assert!(
            cool[0].triangles_total > hot[0].triangles_total,
            "a lower isovalue exposes more geometry ({} vs {}); equality means \
             the cache served stale stats",
            cool[0].triangles_total,
            hot[0].triangles_total
        );
        // Both cached runs match their uncached references exactly, and a
        // warm re-run (pure cache hits) is still exact.
        let reference = run_tiny(
            PipelineConfig::default()
                .deterministic()
                .with_isovalue(20.0),
            &[300],
        );
        assert_eq!(cool, reference);
        assert_eq!(cached(45.0), hot);
        assert_eq!(cache.len(), 256, "128 blocks × 2 isovalues");
    }

    #[test]
    #[should_panic(expected = "unknown metric")]
    fn unknown_metric_panics_at_construction() {
        let dataset = ReflectivityDataset::tiny(4, 1).unwrap();
        let _ = Pipeline::new(
            PipelineConfig::default().with_metric("NOPE"),
            *dataset.decomp(),
            dataset.coords().clone(),
        );
    }
}

//! Pipeline configuration.

use apc_par::ExecPolicy;
use apc_render::RenderCostModel;

/// Block redistribution strategy (paper §IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Redistribution {
    /// Leave blocks on their producing rank (the paper's NONE baseline).
    None,
    /// Each rank receives a random, equally-sized set of blocks. All ranks
    /// use the same seed so the assignment is agreed without communication.
    RandomShuffle { seed: u64 },
    /// Blocks sorted by descending score are dealt to ranks round-robin:
    /// rank 0 gets the highest-scored block, rank 1 the next, and so on.
    RoundRobin,
}

/// How the global score sort is implemented (§IV-C; sample sort is the
/// ablation of DESIGN.md §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SortStrategy {
    #[default]
    GatherSortBroadcast,
    SampleSort,
}

/// Full pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Scoring metric name, resolved through [`apc_metrics::by_name`].
    pub metric: String,
    pub redistribution: Redistribution,
    pub sort: SortStrategy,
    /// Isovalue rendered by the visualization scenario (45 dBZ).
    pub isovalue: f32,
    /// Per-iteration time budget (seconds of virtual time). `None` disables
    /// adaptation and pins the percentage at `fixed_percent`.
    pub target_time: Option<f64>,
    /// Reduction percentage used when adaptation is off (paper §V-D runs).
    pub fixed_percent: f64,
    /// Upper bound on the adaptive percentage — "the maximum percentage of
    /// reduced blocks could easily be bounded by the user" (paper §IV-E).
    pub max_percent: f64,
    /// Points kept per axis when a block is reduced: 2 is the paper's
    /// corner reduction; larger lattices are the downsampling-size
    /// extension (§IV-C outlook).
    pub reduce_keep: usize,
    /// Virtual render cost model.
    pub cost: RenderCostModel,
    /// Optional shared isosurface-stats cache. Virtual time is unaffected
    /// (the cost model charges the same counted work either way); this only
    /// cuts the *wall-clock* cost of parameter sweeps that re-render
    /// identical full blocks. Entries are keyed by isovalue and block
    /// content fingerprint on top of `(iteration, block id)`, so one cache
    /// may safely serve configurations that vary the isovalue or even the
    /// dataset — mismatches miss cleanly (see [`crate::StatsCache`]).
    pub stats_cache: Option<std::sync::Arc<crate::pipeline::StatsCache>>,
    /// Intra-rank execution policy for the per-block hot kernels (scoring
    /// and isosurface extraction). Like `stats_cache`, this changes
    /// *wall-clock* time only: virtual-time accounting is summed from
    /// per-block counters, so `Serial` and `Threads(n)` produce
    /// byte-identical [`crate::IterationReport`]s (guarded by the
    /// `exec_policy_determinism` regression test). The pipeline uses the
    /// policy exactly as given; experiment drivers that spawn one OS thread
    /// per rank clamp it first so `ranks × threads ≤ cores`
    /// (see [`ExecPolicy::clamp_for_ranks`]).
    pub exec: ExecPolicy,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            metric: "VAR".to_owned(),
            redistribution: Redistribution::None,
            sort: SortStrategy::GatherSortBroadcast,
            isovalue: apc_cm1::DBZ_ISOVALUE,
            target_time: None,
            fixed_percent: 0.0,
            max_percent: 100.0,
            reduce_keep: 2,
            cost: RenderCostModel::default(),
            stats_cache: None,
            exec: ExecPolicy::Serial,
        }
    }
}

impl PipelineConfig {
    pub fn with_metric(mut self, metric: &str) -> Self {
        self.metric = metric.to_owned();
        self
    }

    pub fn with_redistribution(mut self, r: Redistribution) -> Self {
        self.redistribution = r;
        self
    }

    /// Select the rendered isovalue (the paper's scenario fixes 45 dBZ;
    /// sweeps may vary it — the [`crate::StatsCache`] keys on it, so mixed
    /// isovalues through one cache stay correct).
    pub fn with_isovalue(mut self, isovalue: f32) -> Self {
        assert!(isovalue.is_finite(), "isovalue must be finite");
        self.isovalue = isovalue;
        self
    }

    pub fn with_target(mut self, seconds: f64) -> Self {
        self.target_time = Some(seconds);
        self
    }

    pub fn with_fixed_percent(mut self, percent: f64) -> Self {
        assert!((0.0..=100.0).contains(&percent), "percent must be in [0, 100]");
        self.fixed_percent = percent;
        self
    }

    pub fn with_max_percent(mut self, max: f64) -> Self {
        assert!((0.0..=100.0).contains(&max), "max percent must be in [0, 100]");
        self.max_percent = max;
        self
    }

    pub fn with_reduce_keep(mut self, keep: usize) -> Self {
        assert!(keep >= 2, "keep at least two points per axis");
        self.reduce_keep = keep;
        self
    }

    /// Select the intra-rank execution policy for per-block kernels.
    pub fn with_exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self
    }

    /// Deterministic variant (no render jitter) for reproducible tests.
    pub fn deterministic(mut self) -> Self {
        self.cost = self.cost.deterministic();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = PipelineConfig::default();
        assert_eq!(c.metric, "VAR");
        assert_eq!(c.isovalue, 45.0);
        assert_eq!(c.redistribution, Redistribution::None);
        assert_eq!(c.fixed_percent, 0.0);
        assert!(c.target_time.is_none());
        assert_eq!(c.exec, ExecPolicy::Serial, "seed behavior is serial by default");
    }

    #[test]
    fn exec_builder() {
        let c = PipelineConfig::default().with_exec(ExecPolicy::Threads(8));
        assert_eq!(c.exec, ExecPolicy::Threads(8));
    }

    #[test]
    fn builder_chain() {
        let c = PipelineConfig::default()
            .with_metric("LEA")
            .with_redistribution(Redistribution::RoundRobin)
            .with_target(20.0)
            .with_fixed_percent(50.0);
        assert_eq!(c.metric, "LEA");
        assert_eq!(c.redistribution, Redistribution::RoundRobin);
        assert_eq!(c.target_time, Some(20.0));
        assert_eq!(c.fixed_percent, 50.0);
    }

    #[test]
    #[should_panic(expected = "percent must be in [0, 100]")]
    fn bad_percent_rejected() {
        let _ = PipelineConfig::default().with_fixed_percent(120.0);
    }
}

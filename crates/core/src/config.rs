//! Pipeline configuration.

use apc_par::ExecPolicy;
use apc_render::RenderCostModel;
use apc_serve::FrameSink;
use apc_stage::BackpressurePolicy;

/// How the in situ pipeline is coupled to the simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum InSituMode {
    /// Time-partitioned (the paper's setup): every rank runs the full
    /// score→sort→reduce→redistribute→render pipeline inline, so the whole
    /// visualization cost lands on the simulation's critical path.
    Synchronous,
    /// Space-partitioned: a subset of ranks is dedicated to visualization
    /// and the simulation ranks post their blocks into bounded queues and
    /// continue — the Damaris-style staging mode implemented by
    /// `apc-stage` and `crate::staged`.
    Staged(StagedParams),
}

/// Parameters of [`InSituMode::Staged`].
#[derive(Debug, Clone, PartialEq)]
pub struct StagedParams {
    /// Ranks dedicated to staging, out of the run's total rank count (the
    /// last `viz_ranks` ranks). The remaining ranks simulate.
    pub viz_ranks: usize,
    /// Waiting-slot capacity of each (simulation rank → stager) queue.
    pub queue_depth: usize,
    /// What happens when the stagers fall behind.
    pub policy: BackpressurePolicy,
    /// Virtual seconds the simulated solver spends computing one
    /// iteration — the work the staged visualization overlaps with. Zero
    /// models a solver that produces frames back to back.
    pub sim_compute: f64,
    /// Percentage of each simulation rank's lowest-scored blocks reduced
    /// *before* posting (trades sim-side reduce time for queue bytes);
    /// zero disables pre-reduction.
    pub pre_reduce_percent: f64,
    /// Where stagers persist the frames they render (`apc-serve`): a
    /// shared store backend, a run id, and a per-frame codec. `None` (the
    /// default) reproduces the pre-serving behavior — frames are counted
    /// and discarded. The write itself is modeled as off the critical
    /// path (no virtual-time charge), so a run's reports are identical
    /// with and without a sink; serving (`crate::serving`) requires one.
    pub persist: Option<FrameSink>,
}

impl StagedParams {
    pub fn new(viz_ranks: usize, queue_depth: usize, policy: BackpressurePolicy) -> Self {
        assert!(viz_ranks >= 1, "need at least one staging rank");
        assert!(queue_depth >= 1, "queue depth must be at least one");
        Self {
            viz_ranks,
            queue_depth,
            policy,
            sim_compute: 0.0,
            pre_reduce_percent: 0.0,
            persist: None,
        }
    }

    /// Set the virtual per-iteration solver compute time.
    pub fn with_sim_compute(mut self, seconds: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "sim compute time must be finite and non-negative"
        );
        self.sim_compute = seconds;
        self
    }

    /// Persist rendered frames through `sink` as the stagers produce them
    /// (see [`apc_serve::FrameSink`] and `crate::serving`).
    pub fn with_persist(mut self, sink: FrameSink) -> Self {
        self.persist = Some(sink);
        self
    }

    /// Enable sim-side pre-reduction of the `percent` lowest-scored blocks.
    pub fn with_pre_reduce(mut self, percent: f64) -> Self {
        assert!(
            (0.0..=100.0).contains(&percent),
            "percent must be in [0, 100]"
        );
        self.pre_reduce_percent = percent;
        self
    }

    /// Check the partition fits a concrete rank count (run-entry guard —
    /// the rank count is not known when the config is built).
    pub fn validate(&self, nranks: usize) {
        assert!(
            self.viz_ranks < nranks,
            "staged config dedicates {} of {nranks} ranks to viz; at least one \
             simulation rank must remain",
            self.viz_ranks
        );
    }
}

/// Block redistribution strategy (paper §IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Redistribution {
    /// Leave blocks on their producing rank (the paper's NONE baseline).
    None,
    /// Each rank receives a random, equally-sized set of blocks. All ranks
    /// use the same seed so the assignment is agreed without communication.
    RandomShuffle { seed: u64 },
    /// Blocks sorted by descending score are dealt to ranks round-robin:
    /// rank 0 gets the highest-scored block, rank 1 the next, and so on.
    RoundRobin,
}

/// How the global score sort is implemented (§IV-C; sample sort is the
/// ablation of DESIGN.md §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SortStrategy {
    #[default]
    GatherSortBroadcast,
    SampleSort,
}

/// Full pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Scoring metric name, resolved through [`apc_metrics::by_name`].
    pub metric: String,
    pub redistribution: Redistribution,
    pub sort: SortStrategy,
    /// Isovalue rendered by the visualization scenario (45 dBZ).
    pub isovalue: f32,
    /// Per-iteration time budget (seconds of virtual time). `None` disables
    /// adaptation and pins the percentage at `fixed_percent`.
    pub target_time: Option<f64>,
    /// Reduction percentage used when adaptation is off (paper §V-D runs).
    pub fixed_percent: f64,
    /// Upper bound on the adaptive percentage — "the maximum percentage of
    /// reduced blocks could easily be bounded by the user" (paper §IV-E).
    pub max_percent: f64,
    /// Points kept per axis when a block is reduced: 2 is the paper's
    /// corner reduction; larger lattices are the downsampling-size
    /// extension (§IV-C outlook).
    pub reduce_keep: usize,
    /// Virtual render cost model.
    pub cost: RenderCostModel,
    /// Optional shared isosurface-stats cache. Virtual time is unaffected
    /// (the cost model charges the same counted work either way); this only
    /// cuts the *wall-clock* cost of parameter sweeps that re-render
    /// identical full blocks. Entries are keyed by isovalue and block
    /// content fingerprint on top of `(iteration, block id)`, so one cache
    /// may safely serve configurations that vary the isovalue or even the
    /// dataset — mismatches miss cleanly (see [`crate::StatsCache`]).
    pub stats_cache: Option<std::sync::Arc<crate::pipeline::StatsCache>>,
    /// Intra-rank execution policy for the per-block hot kernels (scoring
    /// and isosurface extraction). Like `stats_cache`, this changes
    /// *wall-clock* time only: virtual-time accounting is summed from
    /// per-block counters, so `Serial` and `Threads(n)` produce
    /// byte-identical [`crate::IterationReport`]s (guarded by the
    /// `exec_policy_determinism` regression test). The pipeline uses the
    /// policy exactly as given; experiment drivers that spawn one OS thread
    /// per rank clamp it first so `ranks × threads ≤ cores`
    /// (see [`ExecPolicy::clamp_for_ranks`]).
    pub exec: ExecPolicy,
    /// How the pipeline couples to the simulation: inline on every rank
    /// ([`InSituMode::Synchronous`], the default and the paper's setup) or
    /// asynchronously on dedicated staging ranks ([`InSituMode::Staged`]).
    /// The experiment drivers dispatch on this; the synchronous
    /// [`crate::Pipeline`] executor rejects staged configs.
    pub mode: InSituMode,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            metric: "VAR".to_owned(),
            redistribution: Redistribution::None,
            sort: SortStrategy::GatherSortBroadcast,
            isovalue: apc_cm1::DBZ_ISOVALUE,
            target_time: None,
            fixed_percent: 0.0,
            max_percent: 100.0,
            reduce_keep: 2,
            cost: RenderCostModel::default(),
            stats_cache: None,
            exec: ExecPolicy::Serial,
            mode: InSituMode::Synchronous,
        }
    }
}

impl PipelineConfig {
    pub fn with_metric(mut self, metric: &str) -> Self {
        self.metric = metric.to_owned();
        self
    }

    pub fn with_redistribution(mut self, r: Redistribution) -> Self {
        self.redistribution = r;
        self
    }

    /// Select the rendered isovalue (the paper's scenario fixes 45 dBZ;
    /// sweeps may vary it — the [`crate::StatsCache`] keys on it, so mixed
    /// isovalues through one cache stay correct).
    pub fn with_isovalue(mut self, isovalue: f32) -> Self {
        assert!(isovalue.is_finite(), "isovalue must be finite");
        self.isovalue = isovalue;
        self
    }

    pub fn with_target(mut self, seconds: f64) -> Self {
        self.target_time = Some(seconds);
        self
    }

    pub fn with_fixed_percent(mut self, percent: f64) -> Self {
        assert!(
            (0.0..=100.0).contains(&percent),
            "percent must be in [0, 100]"
        );
        self.fixed_percent = percent;
        self
    }

    pub fn with_max_percent(mut self, max: f64) -> Self {
        assert!(
            (0.0..=100.0).contains(&max),
            "max percent must be in [0, 100]"
        );
        self.max_percent = max;
        self
    }

    pub fn with_reduce_keep(mut self, keep: usize) -> Self {
        assert!(keep >= 2, "keep at least two points per axis");
        self.reduce_keep = keep;
        self
    }

    /// Select the intra-rank execution policy for per-block kernels.
    pub fn with_exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self
    }

    /// Run this configuration in dedicated-core staging mode (see
    /// [`InSituMode::Staged`] and [`crate::staged`]).
    pub fn with_staged(mut self, params: StagedParams) -> Self {
        self.mode = InSituMode::Staged(params);
        self
    }

    /// Deterministic variant (no render jitter) for reproducible tests.
    pub fn deterministic(mut self) -> Self {
        self.cost = self.cost.deterministic();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = PipelineConfig::default();
        assert_eq!(c.metric, "VAR");
        assert_eq!(c.isovalue, 45.0);
        assert_eq!(c.redistribution, Redistribution::None);
        assert_eq!(c.fixed_percent, 0.0);
        assert!(c.target_time.is_none());
        assert_eq!(
            c.exec,
            ExecPolicy::Serial,
            "seed behavior is serial by default"
        );
    }

    #[test]
    fn exec_builder() {
        let c = PipelineConfig::default().with_exec(ExecPolicy::Threads(8));
        assert_eq!(c.exec, ExecPolicy::Threads(8));
    }

    #[test]
    fn builder_chain() {
        let c = PipelineConfig::default()
            .with_metric("LEA")
            .with_redistribution(Redistribution::RoundRobin)
            .with_target(20.0)
            .with_fixed_percent(50.0);
        assert_eq!(c.metric, "LEA");
        assert_eq!(c.redistribution, Redistribution::RoundRobin);
        assert_eq!(c.target_time, Some(20.0));
        assert_eq!(c.fixed_percent, 50.0);
    }

    #[test]
    #[should_panic(expected = "percent must be in [0, 100]")]
    fn bad_percent_rejected() {
        let _ = PipelineConfig::default().with_fixed_percent(120.0);
    }

    #[test]
    fn default_mode_is_synchronous() {
        assert_eq!(PipelineConfig::default().mode, InSituMode::Synchronous);
    }

    #[test]
    fn staged_builder_carries_params() {
        let params = StagedParams::new(2, 4, BackpressurePolicy::Block)
            .with_sim_compute(12.5)
            .with_pre_reduce(30.0);
        let c = PipelineConfig::default().with_staged(params.clone());
        match c.mode {
            InSituMode::Staged(p) => {
                assert_eq!(p.viz_ranks, 2);
                assert_eq!(p.queue_depth, 4);
                assert_eq!(p.policy, BackpressurePolicy::Block);
                assert_eq!(p.sim_compute, 12.5);
                assert_eq!(p.pre_reduce_percent, 30.0);
                assert_eq!(p.persist, None, "no frame sink by default");
            }
            InSituMode::Synchronous => panic!("builder must switch the mode"),
        }
        params.validate(8); // 2 of 8 ranks staged is fine
    }

    #[test]
    fn persist_builder_attaches_a_sink() {
        use apc_store::MemStore;
        use std::sync::Arc;

        let sink = FrameSink::new(Arc::new(MemStore::new()), "run", apc_store::CodecKind::Fpz);
        let params = StagedParams::new(1, 2, BackpressurePolicy::Block).with_persist(sink.clone());
        assert_eq!(params.persist, Some(sink));
        // Configs carrying a sink still clone and compare like any other.
        let c = PipelineConfig::default().with_staged(params.clone());
        assert_eq!(c.mode, InSituMode::Staged(params));
    }

    #[test]
    #[should_panic(expected = "at least one staging rank")]
    fn staged_zero_viz_rejected() {
        let _ = StagedParams::new(0, 2, BackpressurePolicy::Block);
    }

    #[test]
    #[should_panic(expected = "at least one simulation rank")]
    fn staged_all_viz_rejected() {
        StagedParams::new(4, 2, BackpressurePolicy::Block).validate(4);
    }

    #[test]
    #[should_panic(expected = "sim compute time must be finite")]
    fn staged_bad_sim_compute_rejected() {
        let _ = StagedParams::new(1, 1, BackpressurePolicy::Block).with_sim_compute(-1.0);
    }
}

//! The paper's primary contribution: an adaptive, performance-constrained
//! in situ visualization pipeline (Dorier et al., CLUSTER 2016, §IV).
//!
//! Per iteration, on every rank (Fig 2 of the paper):
//!
//! 1. **Score** local blocks with a content metric ([`apc_metrics`]);
//! 2. **Sort** all `<id, score>` pairs globally and share the sorted list
//!    ([`apc_comm::sort`]);
//! 3. **Reduce** the `p%` lowest-scored blocks to their 8 corners
//!    ([`apc_grid::Block::reduce`]);
//! 4. **Redistribute** blocks across ranks — random shuffle or round-robin
//!    by score ([`redistribute`]);
//! 5. **Render** the 45 dBZ isosurface of the held blocks
//!    ([`apc_render`]);
//! 6. **Adapt** `p` from the measured pipeline time toward the user's time
//!    budget ([`controller`], the paper's Algorithm 1).
//!
//! The crate exposes each step for unit testing and ablation, a
//! [`Pipeline`] that chains them inside a rank, and an experiment
//! [`driver`] that replays a [`apc_cm1::ReflectivityDataset`] through a
//! virtual-time [`apc_comm::Runtime`]. For parameter sweeps the driver
//! also offers a **sweep engine** ([`run_sweep_prepared`]): many
//! [`PipelineConfig`]s replayed over one persistent rank session
//! ([`apc_comm::Session`]), byte-identical to running each configuration
//! one-shot, minus the per-configuration thread-spawn cost. [`Prepared`]
//! packages that pattern — input blocks + persistent session + shared
//! cache — and [`Prepared::from_store`] binds it to a persisted
//! `apc-store` dataset instead, with each rank lazily reading only its
//! own chunks from inside its rank thread. The [`StatsCache`] wall-clock
//! accelerator is keyed by isovalue and block content fingerprint so
//! sweeps that vary either stay correct.
//!
//! Two **in situ modes** share this machinery ([`InSituMode`] on the
//! config): the paper's time-partitioned pipeline above
//! ([`InSituMode::Synchronous`], executed by [`Pipeline`]), and the
//! space-partitioned dedicated-core mode ([`InSituMode::Staged`],
//! executed by [`staged`] over the `apc-stage` frame engine): a static
//! subset of ranks stages asynchronously — simulation ranks score, deal
//! and post blocks into bounded queues and continue, staging ranks
//! sort/reduce/render with a per-stager Algorithm 1 controller, and
//! visualization cost reaches the simulation only as queue backpressure
//! ([`BackpressurePolicy`]). The experiment drivers dispatch on the mode,
//! so staged configurations replay through the same sweep engine and
//! [`Prepared`] sessions as synchronous ones.
//!
//! The per-block hot loops (steps 1 and 5) run under an intra-rank
//! [`ExecPolicy`] from `apc-par`, re-exported here: `Serial` reproduces
//! the original loops, `Threads(n)` fans them out over scoped worker
//! threads. Virtual-time accounting is summed from per-block counters —
//! never from wall time — so the two policies produce byte-identical
//! [`IterationReport`]s (guarded by the `exec_policy_determinism`
//! integration test); only wall-clock time changes. Experiment drivers
//! clamp the policy so `ranks × threads ≤ cores`
//! ([`ExecPolicy::clamp_for_ranks`]).

pub mod config;
pub mod controller;
pub mod driver;
pub mod pipeline;
pub mod prepared;
pub mod redistribute;
pub mod replay_serving;
pub mod report;
pub mod selection;
pub mod serving;
pub mod staged;
pub mod stats;

pub use apc_par::{ExecPolicy, RecommendedConcurrency};
pub use apc_serve::{
    Fidelity, Frame, FrameReply, FrameRequest, FrameSink, FrameStore, ServePolicy,
};
pub use apc_stage::BackpressurePolicy;
pub use config::{InSituMode, PipelineConfig, Redistribution, SortStrategy, StagedParams};
pub use controller::{adapt_percent, BudgetController};
pub use driver::{
    run_experiment, run_experiment_on, run_experiment_prepared, run_sweep_in_session,
    run_sweep_prepared,
};
pub use pipeline::{Pipeline, StatsCache};
pub use prepared::{spaced_subset, Prepared};
pub use replay_serving::{
    run_replay_serving, run_replay_serving_in_session, ReplayRequestLog, ReplayRun,
    ReplayServerStats,
};
pub use report::IterationReport;
pub use selection::{reduction_set, ScoredBlock};
pub use serving::{
    run_staged_serving_in_session, run_staged_serving_prepared, FidelityMix, RequestLog,
    ServeFault, ServeParams, ServerStats, ServingRun,
};
pub use staged::{run_staged_in_session, run_staged_prepared, StagedFrame, StagedRun};
pub use stats::percentile;

//! The staged frame engine: the SPMD program both rank roles execute.
//!
//! One call to [`run_staged`] runs `nframes` frames of dedicated-core in
//! situ over the calling rank:
//!
//! * a **simulation rank** loops: `produce` the frame (the caller charges
//!   the virtual simulation + analysis cost inside the closure), then
//!   enqueue one payload per stager into its bounded queues and move
//!   straight on to the next frame. Under credit flow the enqueue stalls —
//!   in virtual time — exactly when the queue is full, which is the
//!   paper-style overlap model: visualization cost only reaches the
//!   simulation's critical path as queue backpressure.
//! * a **staging rank** loops: dequeue frame `k`'s slices from every
//!   simulation rank (in rank order — the receive pattern is fixed, so OS
//!   scheduling cannot reorder anything observable), then `process` them
//!   (the caller charges the virtual visualization cost inside the
//!   closure).
//!
//! Under [`BackpressurePolicy::DropOldest`] the staging side instead
//! pulls slices with deferred clock accounting — only as far as the
//! current frame's service time requires — and replays the bounded queue
//! in virtual time: a slice is dropped exactly when, at some arrival
//! instant, its per-producer queue held more than `queue_depth` waiting
//! slices and it was the oldest (so the stager holds at most
//! `queue_depth + 1` payloads per producer, like the queue it models).
//! All of that is pure arithmetic over recorded virtual arrival
//! timestamps, so the outcome is deterministic no matter how the OS
//! schedules the threads.
//!
//! The engine returns per-frame logs ([`SimFrameLog`] / [`StageFrameLog`])
//! from which callers assemble reports; it never performs collectives, so
//! simulation ranks and staging ranks stay fully decoupled during a run.

use std::collections::VecDeque;

use apc_comm::{Dequeued, FlowControl, Meter, QueueReceiver, QueueSender, Rank};

use crate::partition::{Partition, Role};
use crate::policy::BackpressurePolicy;

/// Configuration of one staged run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StagedSpec {
    pub partition: Partition,
    /// Waiting-slot capacity of each (simulation rank → stager) queue,
    /// beyond the frame the stager is currently servicing.
    pub queue_depth: usize,
    pub policy: BackpressurePolicy,
}

impl StagedSpec {
    pub fn new(partition: Partition, queue_depth: usize, policy: BackpressurePolicy) -> Self {
        assert!(queue_depth >= 1, "queue depth must be at least one");
        Self {
            partition,
            queue_depth,
            policy,
        }
    }
}

/// Per-frame virtual-time record of a simulation rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimFrameLog {
    /// Clock when the frame's production started.
    pub start: f64,
    /// Clock when `produce` returned (simulation + analysis done).
    pub produced: f64,
    /// Stall incurred enqueueing (queue-full wait; 0 under `DropOldest`).
    pub stall: f64,
    /// Clock when every slice of the frame was enqueued.
    pub end: f64,
}

impl SimFrameLog {
    /// Everything the simulation saw of this frame: produce + enqueue +
    /// stall.
    pub fn visible(&self) -> f64 {
        self.end - self.start
    }
}

/// Per-frame virtual-time record of a staging rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageFrameLog {
    /// Virtual time at which the frame's last surviving slice arrived.
    pub arrival: f64,
    /// Clock when `process` was entered (arrivals merged, ingest charged).
    pub start: f64,
    /// How long the completed frame sat in the queue before the stager got
    /// to it (0 when the stager was idle and waiting for it).
    pub queued_for: f64,
    /// Clock when `process` returned.
    pub finish: f64,
    /// Slices of this frame evicted by `DropOldest` (one per overflowed
    /// producer queue).
    pub slices_dropped: usize,
}

/// Context handed to the staging-side `process` closure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameCtx {
    /// Frame index in `0..nframes`.
    pub frame: usize,
    /// How long the completed frame waited in the queue (backlog signal).
    pub queued_for: f64,
    /// Percentage-point reduction boost the policy asks for on this frame
    /// (non-zero only under `DegradeHarder` while backlogged).
    pub degrade_boost: f64,
}

/// What one rank contributes to a staged run: its role-specific per-frame
/// log, carrying the caller's own per-frame payloads (`S` from `produce`,
/// `R` from `process`).
#[derive(Debug, Clone, PartialEq)]
pub enum RankLog<S, R> {
    Sim(Vec<(S, SimFrameLog)>),
    Stage(Vec<(R, StageFrameLog)>),
}

/// Run `nframes` staged frames on this rank. See the module docs; both
/// closures are invoked only for the rank's own role.
pub fn run_staged<M, S, R>(
    rank: &mut Rank,
    spec: &StagedSpec,
    nframes: usize,
    mut produce: impl FnMut(&mut Rank, usize) -> (Vec<M>, S),
    mut process: impl FnMut(&mut Rank, usize, Vec<(usize, M)>, &FrameCtx) -> R,
) -> RankLog<S, R>
where
    M: Meter + Send + 'static,
{
    // `<=` rather than `==`: a session may co-schedule ranks *outside*
    // the staged partition (apc-core's serving executor runs frame
    // clients on the ranks past it); the engine only requires that its
    // own rank is covered.
    assert!(
        spec.partition.nranks() <= rank.nranks(),
        "partition must fit inside the rank group"
    );
    match spec.partition.role(rank.rank()) {
        Role::Sim { .. } => RankLog::Sim(run_sim(rank, spec, nframes, &mut produce)),
        Role::Stage { .. } => match spec.policy.flow() {
            FlowControl::Credit => {
                RankLog::Stage(run_stage_credit(rank, spec, nframes, &mut process))
            }
            FlowControl::Lossy => {
                RankLog::Stage(run_stage_lossy(rank, spec, nframes, &mut process))
            }
        },
    }
}

fn run_sim<M, S>(
    rank: &mut Rank,
    spec: &StagedSpec,
    nframes: usize,
    produce: &mut impl FnMut(&mut Rank, usize) -> (Vec<M>, S),
) -> Vec<(S, SimFrameLog)>
where
    M: Meter + Send + 'static,
{
    let flow = spec.policy.flow();
    let mut txs: Vec<QueueSender> = (0..spec.partition.n_stage())
        .map(|g| QueueSender::new(spec.partition.stage_rank(g), 0, spec.queue_depth, flow))
        .collect();
    let mut log = Vec::with_capacity(nframes);
    for k in 0..nframes {
        let start = rank.clock();
        let (batches, aux) = produce(rank, k);
        assert_eq!(
            batches.len(),
            txs.len(),
            "produce must emit one payload per stager"
        );
        let produced = rank.clock();
        let mut stall = 0.0;
        for (tx, msg) in txs.iter_mut().zip(batches) {
            stall += tx.enqueue(rank, msg);
        }
        log.push((
            aux,
            SimFrameLog {
                start,
                produced,
                stall,
                end: rank.clock(),
            },
        ));
    }
    log
}

fn run_stage_credit<M, R>(
    rank: &mut Rank,
    spec: &StagedSpec,
    nframes: usize,
    process: &mut impl FnMut(&mut Rank, usize, Vec<(usize, M)>, &FrameCtx) -> R,
) -> Vec<(R, StageFrameLog)>
where
    M: Meter + Send + 'static,
{
    let n_sim = spec.partition.n_sim();
    let mut rxs: Vec<QueueReceiver> = (0..n_sim)
        .map(|i| QueueReceiver::new(spec.partition.sim_rank(i), 0, FlowControl::Credit))
        .collect();
    let mut log = Vec::with_capacity(nframes);
    for k in 0..nframes {
        let before = rank.clock();
        let mut arrival = f64::NEG_INFINITY;
        let mut parts = Vec::with_capacity(n_sim);
        for (slot, rx) in rxs.iter_mut().enumerate() {
            let d: Dequeued<M> = rx.dequeue(rank);
            arrival = arrival.max(d.arrival);
            parts.push((slot, d.msg));
        }
        let queued_for = (before - arrival).max(0.0);
        let start = rank.clock();
        let boost = if queued_for > 0.0 {
            spec.policy.degrade_boost()
        } else {
            0.0
        };
        let ctx = FrameCtx {
            frame: k,
            queued_for,
            degrade_boost: boost,
        };
        let out = process(rank, k, parts, &ctx);
        log.push((
            out,
            StageFrameLog {
                arrival,
                start,
                queued_for,
                finish: rank.clock(),
                slices_dropped: 0,
            },
        ));
    }
    log
}

/// Per-producer state of the lossy (DropOldest) replay. Slices are pulled
/// from the wire **incrementally** — only as far as the current service
/// time requires — so the stager buffers at most `queue_depth` waiting
/// payloads plus one lookahead per producer, matching the bounded queue it
/// models (evicted payloads are freed at eviction, not at end of run).
struct LossyQueue<M> {
    rx: QueueReceiver,
    /// Next frame index not yet received from the wire.
    next_pull: usize,
    /// Monotone-arrival clamp: the envelope layer is FIFO per `(src,
    /// tag)`, so a slice cannot become *available* before its predecessor
    /// even if the wire model would land it earlier.
    last_arrival: f64,
    /// Received but not yet admitted (its arrival postdates the horizon
    /// admitted so far): `(frame, arrival, payload, bytes)`.
    lookahead: Option<(usize, f64, M, usize)>,
    /// Admitted, waiting slices in frame order; never longer than the
    /// queue depth (admitting past it evicts the front).
    pending: VecDeque<(usize, f64, M, usize)>,
    /// Arrival times of evicted, not-yet-serviced slices (payloads are
    /// freed at eviction; the timestamps stay so the frame's completeness
    /// time is computed exactly as if nothing had been dropped).
    evicted: VecDeque<(usize, f64)>,
}

impl<M: Meter + Send + 'static> LossyQueue<M> {
    fn pull(&mut self, rank: &mut Rank) -> (usize, f64, M, usize) {
        let d: Dequeued<M> = self.rx.dequeue_deferred(rank);
        let arrival = d.arrival.max(self.last_arrival);
        self.last_arrival = arrival;
        let frame = self.next_pull;
        self.next_pull += 1;
        (frame, arrival, d.msg, d.bytes)
    }

    /// Admit every slice that has arrived by `horizon`, evicting the
    /// oldest waiting slice whenever the queue overflows (the DropOldest
    /// contract). Returns how many slices were evicted.
    fn admit_until(
        &mut self,
        rank: &mut Rank,
        horizon: f64,
        nframes: usize,
        depth: usize,
    ) -> usize {
        let mut evicted = 0;
        loop {
            let slice = match self.lookahead.take() {
                Some(s) => s,
                None if self.next_pull < nframes => self.pull(rank),
                None => break,
            };
            if slice.1 > horizon {
                self.lookahead = Some(slice);
                break;
            }
            self.pending.push_back(slice);
            if self.pending.len() > depth {
                // Dropped: the payload is freed here, never ingested; only
                // the arrival timestamp survives.
                // apc-lint: allow(unwrap-in-lib): `pending.len() > depth >= 0` on this branch, so the queue is non-empty
                let (frame, arrival, ..) = self.pending.pop_front().expect("overfull queue");
                self.evicted.push_back((frame, arrival));
                evicted += 1;
            }
        }
        evicted
    }

    /// The arrival time of `frame`'s slice; pulls the wire forward to it
    /// if needed (admission of the pulled slices happens via
    /// [`LossyQueue::admit_until`], which is always called with a horizon
    /// at or past this arrival).
    fn arrival_of(&mut self, rank: &mut Rank, frame: usize) -> f64 {
        // Timestamps of frames already serviced are dead — prune.
        while self.evicted.front().is_some_and(|&(f, _)| f < frame) {
            self.evicted.pop_front();
        }
        while self.next_pull <= frame && self.lookahead.is_none() {
            self.lookahead = Some(self.pull(rank));
        }
        if let Some((f, arrival, ..)) = &self.lookahead {
            if *f == frame {
                return *arrival;
            }
        }
        // Already pulled past it: admitted slices keep their arrival in
        // `pending`, evicted ones in `evicted`.
        if let Some(&(_, arrival, ..)) = self.pending.iter().find(|(f, ..)| *f == frame) {
            return arrival;
        }
        self.evicted
            .iter()
            .find(|&&(f, _)| f == frame)
            .map(|&(_, arrival)| arrival)
            // apc-lint: allow(unwrap-in-lib): admission accounting — every admitted frame lands in exactly one of the three queues
            .expect("every pulled slice is in lookahead, pending, or evicted")
    }
}

fn run_stage_lossy<M, R>(
    rank: &mut Rank,
    spec: &StagedSpec,
    nframes: usize,
    process: &mut impl FnMut(&mut Rank, usize, Vec<(usize, M)>, &FrameCtx) -> R,
) -> Vec<(R, StageFrameLog)>
where
    M: Meter + Send + 'static,
{
    let n_sim = spec.partition.n_sim();
    let depth = spec.queue_depth;
    let mut queues: Vec<LossyQueue<M>> = (0..n_sim)
        .map(|i| LossyQueue {
            rx: QueueReceiver::new(spec.partition.sim_rank(i), 0, FlowControl::Lossy),
            next_pull: 0,
            last_arrival: f64::NEG_INFINITY,
            lookahead: None,
            pending: VecDeque::new(),
            evicted: VecDeque::new(),
        })
        .collect();

    // The bounded queues are replayed in virtual time, one serviced frame
    // at a time. Receiving a slice blocks only until its producer sends it
    // (producers never wait on us — lossy flow has no credits — so this
    // cannot deadlock), and clock accounting is deferred: the merge and
    // the ingest charges land when a slice enters service. A frame's
    // service time never depends on the drop decisions: an evicted slice
    // had, by construction, already arrived before the arrivals that
    // evicted it, so it cannot be the one the service start waits for.
    let mut log = Vec::with_capacity(nframes);
    for k in 0..nframes {
        let mut arrival = f64::NEG_INFINITY;
        for q in queues.iter_mut() {
            arrival = arrival.max(q.arrival_of(rank, k));
        }
        let before = rank.clock();
        let service_at = before.max(arrival);
        let mut slices_dropped = 0;
        let mut parts = Vec::with_capacity(n_sim);
        for (i, q) in queues.iter_mut().enumerate() {
            q.admit_until(rank, service_at, nframes, depth);
            match q.pending.front() {
                Some(&(frame, ..)) if frame == k => {
                    // apc-lint: allow(unwrap-in-lib): the match arm above just saw `pending.front()` return Some
                    let (_, _, msg, bytes) = q.pending.pop_front().expect("front exists");
                    rank.merge_clock_to(service_at);
                    let ingest = rank.net().ingest(bytes);
                    rank.advance(ingest);
                    parts.push((i, msg));
                }
                front => {
                    debug_assert!(
                        front.is_none_or(|&(frame, ..)| frame > k),
                        "service order broke"
                    );
                    slices_dropped += 1;
                }
            }
        }
        rank.merge_clock_to(service_at); // all slices dropped: still wait
        let queued_for = (before - arrival).max(0.0);
        let start = rank.clock();
        let ctx = FrameCtx {
            frame: k,
            queued_for,
            degrade_boost: 0.0,
        };
        let out = process(rank, k, parts, &ctx);
        log.push((
            out,
            StageFrameLog {
                arrival,
                start,
                queued_for,
                finish: rank.clock(),
                slices_dropped,
            },
        ));
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_comm::{NetModel, Runtime};

    fn spec(nranks: usize, viz: usize, depth: usize, policy: BackpressurePolicy) -> StagedSpec {
        StagedSpec::new(Partition::new(nranks, viz), depth, policy)
    }

    /// Run a synthetic staged workload: sims spend `sim_cost` per frame
    /// producing, the stager spends `stage_cost` per frame processing.
    fn synthetic(
        nranks: usize,
        viz: usize,
        depth: usize,
        policy: BackpressurePolicy,
        nframes: usize,
        sim_cost: f64,
        stage_cost: f64,
    ) -> Vec<RankLog<(), (usize, f64)>> {
        let spec = spec(nranks, viz, depth, policy);
        Runtime::new(nranks, NetModel::free()).run(|rank| {
            run_staged(
                rank,
                &spec,
                nframes,
                |rank, _k| {
                    rank.advance(sim_cost);
                    (
                        (0..spec.partition.n_stage()).map(|g| g as u64).collect(),
                        (),
                    )
                },
                |rank, _k, parts, _ctx| {
                    rank.advance(stage_cost);
                    (parts.len(), rank.clock())
                },
            )
        })
    }

    fn stage_log(
        logs: &[RankLog<(), (usize, f64)>],
        rank: usize,
    ) -> &[((usize, f64), StageFrameLog)] {
        match &logs[rank] {
            RankLog::Stage(v) => v,
            RankLog::Sim(_) => panic!("rank {rank} is not a stager"),
        }
    }

    fn sim_log(logs: &[RankLog<(), (usize, f64)>], rank: usize) -> &[((), SimFrameLog)] {
        match &logs[rank] {
            RankLog::Sim(v) => v,
            RankLog::Stage(_) => panic!("rank {rank} is not a sim"),
        }
    }

    /// A fast stager overlaps completely: the simulation never stalls and
    /// every frame is serviced the moment it arrives.
    #[test]
    fn perfect_overlap_has_zero_stall() {
        let logs = synthetic(3, 1, 2, BackpressurePolicy::Block, 8, 1.0, 0.25);
        for sim in 0..2 {
            for (_, f) in sim_log(&logs, sim) {
                assert_eq!(f.stall, 0.0, "no stall when the stager keeps up");
                assert!(
                    (f.visible() - 1.0).abs() < 1e-9,
                    "visible time is the sim cost"
                );
            }
        }
        for (_, f) in stage_log(&logs, 2) {
            assert_eq!(f.queued_for, 0.0, "the stager is never backlogged");
        }
    }

    /// A slow stager fills the queue; the simulation absorbs the surplus
    /// as stall, and the stall equals the service deficit in steady state.
    #[test]
    fn block_policy_stalls_at_service_deficit() {
        let logs = synthetic(2, 1, 2, BackpressurePolicy::Block, 12, 1.0, 3.0);
        let sims = sim_log(&logs, 0);
        assert_eq!(sims[0].1.stall, 0.0, "queue starts empty");
        let late: Vec<f64> = sims[6..].iter().map(|(_, f)| f.stall).collect();
        for s in &late {
            assert!(
                (s - 2.0).abs() < 1e-9,
                "steady-state stall = 3 − 1 = 2 s, got {s}"
            );
        }
        let stage = stage_log(&logs, 1);
        assert!(
            stage.iter().skip(3).all(|(_, f)| f.queued_for > 0.0),
            "backlog builds"
        );
        assert!(
            stage.iter().all(|(_, f)| f.slices_dropped == 0),
            "Block never drops"
        );
    }

    /// DropOldest keeps the simulation stall-free and sheds frames when
    /// the stager cannot keep up.
    #[test]
    fn drop_oldest_sheds_load_without_stalling() {
        let logs = synthetic(2, 1, 1, BackpressurePolicy::DropOldest, 20, 0.1, 1.0);
        let sims = sim_log(&logs, 0);
        assert!(
            sims.iter().all(|(_, f)| f.stall == 0.0),
            "lossy sims never stall"
        );
        let stage = stage_log(&logs, 1);
        let dropped: usize = stage.iter().map(|(_, f)| f.slices_dropped).sum();
        assert!(
            dropped > 0,
            "a 10× service deficit with depth 1 must drop frames"
        );
        // Dropped frames contribute no parts to process.
        for ((nparts, _), f) in stage {
            assert_eq!(
                *nparts,
                1 - f.slices_dropped,
                "dropped slices are not processed"
            );
        }
        // Frames still service in order and clocks are monotone.
        let finishes: Vec<f64> = stage.iter().map(|(_, f)| f.finish).collect();
        assert!(finishes.windows(2).all(|w| w[1] >= w[0]));
    }

    /// DropOldest under a fast stager drops nothing and matches Block's
    /// service timeline.
    #[test]
    fn drop_oldest_is_lossless_when_unpressured() {
        let lossy = synthetic(3, 1, 2, BackpressurePolicy::DropOldest, 8, 1.0, 0.25);
        let block = synthetic(3, 1, 2, BackpressurePolicy::Block, 8, 1.0, 0.25);
        let sl = stage_log(&lossy, 2);
        let sb = stage_log(&block, 2);
        assert_eq!(sl.len(), sb.len());
        for ((_, l), (_, b)) in sl.iter().zip(sb) {
            assert_eq!(l.slices_dropped, 0);
            assert!((l.finish - b.finish).abs() < 1e-9, "same service timeline");
        }
    }

    /// DegradeHarder surfaces the boost exactly while backlogged.
    #[test]
    fn degrade_boost_tracks_backlog() {
        let spec = spec(2, 1, 1, BackpressurePolicy::DegradeHarder { boost: 25.0 });
        let boosts = Runtime::new(2, NetModel::free()).run(|rank| {
            run_staged(
                rank,
                &spec,
                10,
                |rank, _| {
                    rank.advance(0.5);
                    (vec![0u64], ())
                },
                |rank, _, _parts, ctx| {
                    rank.advance(2.0);
                    ctx.degrade_boost
                },
            )
        });
        let stage_boosts = match &boosts[1] {
            RankLog::Stage(v) => v.iter().map(|(b, _)| *b).collect::<Vec<f64>>(),
            RankLog::Sim(_) => unreachable!(),
        };
        assert_eq!(stage_boosts[0], 0.0, "first frame finds an empty queue");
        assert!(
            stage_boosts.iter().skip(2).all(|&b| b == 25.0),
            "backlogged frames carry the boost: {stage_boosts:?}"
        );
    }

    /// The whole engine is deterministic: repeated runs produce identical
    /// logs, bit for bit.
    #[test]
    fn repeated_runs_are_identical() {
        for policy in [
            BackpressurePolicy::Block,
            BackpressurePolicy::DropOldest,
            BackpressurePolicy::DegradeHarder { boost: 10.0 },
        ] {
            let a = synthetic(4, 2, 2, policy, 9, 0.7, 1.3);
            let b = synthetic(4, 2, 2, policy, 9, 0.7, 1.3);
            assert_eq!(a, b, "staged runs must replay identically under {policy:?}");
        }
    }

    #[test]
    #[should_panic(expected = "queue depth must be at least one")]
    fn zero_depth_rejected() {
        let _ = StagedSpec::new(Partition::new(2, 1), 0, BackpressurePolicy::Block);
    }
}

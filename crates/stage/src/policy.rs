//! What happens when a stager falls behind its simulation ranks.

use apc_comm::FlowControl;

/// Backpressure policy of the staged queues.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BackpressurePolicy {
    /// The producer blocks (in virtual time) when its queue is full — no
    /// frame is ever lost, the simulation absorbs the surplus as stall.
    Block,
    /// The queue evicts its oldest waiting frame slice to make room — the
    /// simulation never stalls, the visualization loses data under
    /// pressure.
    DropOldest,
    /// Like [`BackpressurePolicy::Block`], but a frame that sat in the
    /// queue is visualized at a reduction percentage raised by `boost`
    /// points over what the Algorithm 1 controller asked for — the
    /// visualization degrades itself to drain the backlog faster.
    DegradeHarder {
        /// Percentage points added to the controller's output while the
        /// queue is backed up.
        boost: f64,
    },
}

impl BackpressurePolicy {
    /// The comm-layer flow control this policy rides on.
    pub fn flow(&self) -> FlowControl {
        match self {
            BackpressurePolicy::DropOldest => FlowControl::Lossy,
            _ => FlowControl::Credit,
        }
    }

    /// The percentage-point boost to apply to a backlogged frame.
    pub fn degrade_boost(&self) -> f64 {
        match self {
            BackpressurePolicy::DegradeHarder { boost } => *boost,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flows_match_policies() {
        assert_eq!(BackpressurePolicy::Block.flow(), FlowControl::Credit);
        assert_eq!(BackpressurePolicy::DropOldest.flow(), FlowControl::Lossy);
        assert_eq!(
            BackpressurePolicy::DegradeHarder { boost: 20.0 }.flow(),
            FlowControl::Credit
        );
        assert_eq!(BackpressurePolicy::Block.degrade_boost(), 0.0);
        assert_eq!(
            BackpressurePolicy::DegradeHarder { boost: 15.0 }.degrade_boost(),
            15.0
        );
    }
}

//! Dedicated-core asynchronous in situ staging — the space-partitioned
//! counterpart of the paper's time-partitioned (synchronous) pipeline.
//!
//! Dorier et al. constrain in situ visualization cost because, run
//! synchronously, every visualization second lands on the simulation's
//! critical path. The same group's Damaris line of work removes that cost
//! differently: dedicate a few cores per node to visualization and let the
//! simulation hand its data over and continue. This crate implements that
//! staging mode on the virtual-time runtime:
//!
//! * [`Partition`] — a static sim:viz split of the rank group (simulation
//!   ranks first, staging ranks last);
//! * [`BackpressurePolicy`] — what happens when the stagers fall behind:
//!   block the producer ([`BackpressurePolicy::Block`]), shed the oldest
//!   queued frame ([`BackpressurePolicy::DropOldest`]), or visualize
//!   backlogged frames at a raised reduction percentage
//!   ([`BackpressurePolicy::DegradeHarder`]);
//! * [`run_staged`] — the SPMD frame engine: simulation ranks produce
//!   frames and post them into bounded per-stager queues
//!   ([`apc_comm::bounded`]), immediately continuing to the next frame;
//!   staging ranks drain the queues and process. Overlap is modeled in
//!   virtual time — a simulation rank's clock only advances beyond its own
//!   work when a full queue makes it wait for a stager's credit.
//!
//! Everything observable is a pure function of virtual timestamps, fixed
//! receive orders and the callers' deterministic closures, so a staged run
//! replays bit-identically regardless of OS scheduling — the same
//! guarantee the synchronous pipeline gives, extended to asynchrony.
//!
//! The crate is generic over the frame payload: `apc-core` plugs the in
//! situ pipeline steps (score / sort / reduce / render and the Algorithm 1
//! controller) into the `produce`/`process` hooks and exposes the result
//! as `InSituMode::Staged` on its `PipelineConfig`.

pub mod engine;
pub mod partition;
pub mod policy;

pub use engine::{run_staged, FrameCtx, RankLog, SimFrameLog, StageFrameLog, StagedSpec};
pub use partition::{Partition, Role};
pub use policy::BackpressurePolicy;

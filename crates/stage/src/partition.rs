//! Static sim/viz rank partitioning.
//!
//! Space-partitioned in situ dedicates a subset of the job's ranks to
//! visualization (the Damaris "dedicated cores" idea): out of `nranks`
//! ranks, the first `nranks − viz` are **simulation ranks** and the last
//! `viz` are **staging ranks**. The split is static for a run — dynamic
//! repartitioning is a ROADMAP follow-on.

/// What a rank does in a staged run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Produces frames; `slot` is the rank's index among simulation ranks.
    Sim { slot: usize },
    /// Consumes and visualizes frames; `slot` indexes the staging ranks.
    Stage { slot: usize },
}

/// A static sim:viz split of `nranks` ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    nranks: usize,
    viz: usize,
}

impl Partition {
    /// Dedicate the last `viz` of `nranks` ranks to staging. At least one
    /// rank must remain on each side.
    pub fn new(nranks: usize, viz: usize) -> Self {
        assert!(viz >= 1, "need at least one staging rank");
        assert!(
            viz < nranks,
            "need at least one simulation rank ({viz} viz of {nranks})"
        );
        Self { nranks, viz }
    }

    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Number of simulation ranks.
    pub fn n_sim(&self) -> usize {
        self.nranks - self.viz
    }

    /// Number of staging ranks.
    pub fn n_stage(&self) -> usize {
        self.viz
    }

    /// The role of a global rank id.
    pub fn role(&self, rank: usize) -> Role {
        assert!(rank < self.nranks, "rank {rank} out of range");
        if rank < self.n_sim() {
            Role::Sim { slot: rank }
        } else {
            Role::Stage {
                slot: rank - self.n_sim(),
            }
        }
    }

    /// Global rank id of simulation slot `slot`.
    pub fn sim_rank(&self, slot: usize) -> usize {
        assert!(slot < self.n_sim());
        slot
    }

    /// Global rank id of staging slot `slot`.
    pub fn stage_rank(&self, slot: usize) -> usize {
        assert!(slot < self.n_stage());
        self.n_sim() + slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_split_sims_then_stagers() {
        let p = Partition::new(6, 2);
        assert_eq!(p.n_sim(), 4);
        assert_eq!(p.n_stage(), 2);
        assert_eq!(p.role(0), Role::Sim { slot: 0 });
        assert_eq!(p.role(3), Role::Sim { slot: 3 });
        assert_eq!(p.role(4), Role::Stage { slot: 0 });
        assert_eq!(p.role(5), Role::Stage { slot: 1 });
        assert_eq!(p.sim_rank(2), 2);
        assert_eq!(p.stage_rank(1), 5);
    }

    #[test]
    #[should_panic(expected = "at least one staging rank")]
    fn zero_viz_rejected() {
        let _ = Partition::new(4, 0);
    }

    #[test]
    #[should_panic(expected = "at least one simulation rank")]
    fn all_viz_rejected() {
        let _ = Partition::new(4, 4);
    }
}

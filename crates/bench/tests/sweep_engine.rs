//! Integration tests for the sweep engine: one persistent rank session +
//! one `Prepared` input replaying many pipeline configurations.
//!
//! The two contracts under guard:
//!
//! 1. **Byte-identical reports** — a fig07-style sweep through
//!    `Prepared::run_sweep` (one session, shared stats cache) produces
//!    exactly the reports the spawn-per-run driver produces per
//!    configuration, down to the bits of every virtual-time field.
//! 2. **No stale cache reuse** — configurations that vary the isovalue
//!    through one `Prepared` (one shared `StatsCache`) get their own
//!    isosurface stats, not the first configuration's (the regression this
//!    PR fixes).

use apc_bench::harness::Prepared;
use apc_cm1::ReflectivityDataset;
use apc_comm::NetModel;
use apc_core::{run_experiment_on, ExecPolicy, IterationReport, PipelineConfig, Redistribution};

fn tiny_prepared(nranks: usize, seed: u64, n_iters: usize) -> Prepared {
    let dataset = ReflectivityDataset::tiny(nranks, seed).expect("tiny decomposition");
    let iters = dataset.sample_iterations(n_iters);
    Prepared::from_dataset(dataset, iters, ExecPolicy::Serial, NetModel::blue_waters())
}

fn assert_bitwise_equal(a: &[IterationReport], b: &[IterationReport], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(
            x, y,
            "{what}: reports diverged at iteration {}",
            x.iteration
        );
        for (fx, fy) in [
            (x.t_score, y.t_score),
            (x.t_sort, y.t_sort),
            (x.t_reduce, y.t_reduce),
            (x.t_redistribute, y.t_redistribute),
            (x.t_render, y.t_render),
            (x.t_total, y.t_total),
        ] {
            assert_eq!(
                fx.to_bits(),
                fy.to_bits(),
                "{what}: virtual time drifted at iteration {}",
                x.iteration
            );
        }
    }
}

/// The acceptance-criteria test: a fig07-style percentage sweep through
/// the session + sweep engine is byte-identical to the spawn-per-run path.
#[test]
fn fig07_style_sweep_is_byte_identical_to_spawn_per_run() {
    let prepared = tiny_prepared(4, 42, 3);
    let iters = prepared.subset(2);
    let percents = [0.0, 40.0, 80.0, 100.0];
    let configs: Vec<PipelineConfig> = percents
        .iter()
        .map(|&p| {
            PipelineConfig::default()
                .deterministic()
                .with_fixed_percent(p)
        })
        .collect();

    // One session, one shared stats cache, four configurations.
    let swept = prepared.run_sweep(&configs, &iters);
    assert_eq!(swept.len(), configs.len());

    // Spawn-per-run reference: a fresh runtime per configuration, no
    // shared cache, straight from the dataset.
    for (config, series) in configs.iter().zip(&swept) {
        let reference = run_experiment_on(
            &prepared.dataset,
            config.clone(),
            &iters,
            NetModel::blue_waters(),
        );
        assert_bitwise_equal(series, &reference, "sweep vs spawn-per-run");
    }

    // And the paper's shape holds on the swept series: rendering time is
    // non-increasing in the reduction percentage.
    let renders: Vec<f64> = swept.iter().map(|s| s[0].t_render).collect();
    assert!(
        renders.windows(2).all(|w| w[1] <= w[0] + 1e-12),
        "render time must not increase with percentage: {renders:?}"
    );
}

/// Regression for the stale-cache bug: two isovalues swept through one
/// `Prepared` (hence one shared `StatsCache`) must each see their own
/// geometry. Before keying the cache on the isovalue, the second
/// configuration silently got the first one's triangle counts.
#[test]
fn sweeping_two_isovalues_produces_different_triangle_counts() {
    let prepared = tiny_prepared(4, 42, 2);
    let iters = prepared.subset(1);
    let configs = [
        PipelineConfig::default().deterministic(), // the paper's 45 dBZ
        PipelineConfig::default()
            .deterministic()
            .with_isovalue(20.0),
    ];
    let swept = prepared.run_sweep(&configs, &iters);
    let (hot, cool) = (&swept[0], &swept[1]);
    assert!(
        cool[0].triangles_total > hot[0].triangles_total,
        "the 20 dBZ surface must enclose more geometry than 45 dBZ \
         ({} vs {}); equality means the cache returned stale stats",
        cool[0].triangles_total,
        hot[0].triangles_total
    );
    // Both match their uncached spawn-per-run references exactly.
    for (config, series) in configs.iter().zip(&swept) {
        let reference = run_experiment_on(
            &prepared.dataset,
            config.clone(),
            &iters,
            NetModel::blue_waters(),
        );
        assert_bitwise_equal(series, &reference, "isovalue sweep vs reference");
    }
}

/// A sweep mixing every pipeline dimension (redistribution, sort strategy,
/// adaptation) through one session still matches spawn-per-run — the
/// epoch isolation holds under real p2p traffic, not just collectives.
#[test]
fn heterogeneous_sweep_matches_spawn_per_run() {
    let prepared = tiny_prepared(4, 7, 2);
    let iters = prepared.iterations.clone();
    let mut sample_sort_cfg = PipelineConfig::default()
        .deterministic()
        .with_fixed_percent(60.0);
    sample_sort_cfg.sort = apc_core::SortStrategy::SampleSort;
    let configs = [
        PipelineConfig::default()
            .deterministic()
            .with_redistribution(Redistribution::RoundRobin)
            .with_fixed_percent(50.0),
        sample_sort_cfg,
        PipelineConfig::default().with_target(3.0),
        PipelineConfig::default()
            .deterministic()
            .with_redistribution(Redistribution::RandomShuffle { seed: 5 }),
    ];
    let swept = prepared.run_sweep(&configs, &iters);
    for (config, series) in configs.iter().zip(&swept) {
        let reference = run_experiment_on(
            &prepared.dataset,
            config.clone(),
            &iters,
            NetModel::blue_waters(),
        );
        assert_bitwise_equal(series, &reference, "heterogeneous sweep");
    }
}

/// Re-running a sweep over the (now warm) cache and the same session must
/// reproduce the cold results exactly.
#[test]
fn warm_cache_rerun_is_exact() {
    let prepared = tiny_prepared(4, 42, 2);
    let iters = prepared.subset(2);
    let configs = [
        PipelineConfig::default()
            .deterministic()
            .with_fixed_percent(30.0),
        PipelineConfig::default()
            .deterministic()
            .with_isovalue(20.0),
    ];
    let cold = prepared.run_sweep(&configs, &iters);
    let warm = prepared.run_sweep(&configs, &iters);
    assert_eq!(cold, warm, "cache hits must not perturb any report");
}

/// `run_on` with the session's own network model reuses the session; with
/// a different model it falls back to spawn-per-run. Both must agree with
/// the driver.
#[test]
fn run_on_matches_driver_for_both_paths() {
    let prepared = tiny_prepared(4, 42, 2);
    let iters = prepared.subset(1);
    let cfg = PipelineConfig::default()
        .deterministic()
        .with_redistribution(Redistribution::RandomShuffle { seed: 1 });
    for net in [NetModel::blue_waters(), NetModel::gigabit_ethernet()] {
        let via_prepared = prepared.run_on(cfg.clone(), &iters, net);
        let reference = run_experiment_on(&prepared.dataset, cfg.clone(), &iters, net);
        assert_bitwise_equal(&via_prepared, &reference, "run_on");
    }
}

//! Golden-report snapshots for the fig06–fig11 experiment families.
//!
//! Each figure's configuration grid is replayed at test scale (the `tiny`
//! 4-rank geometry) and the resulting [`IterationReport`]s are serialized
//! to CSV and compared **byte-for-byte** against in-repo fixtures under
//! `tests/golden/`. Virtual time is counted, not measured, so these bytes
//! are reproducible run-to-run and machine-to-machine for one build
//! environment; a refactor that changes any paper number — a reordered
//! reduction set, a perturbed cost constant, a broken cache key — fails
//! here with a diff instead of silently shifting the figures.
//!
//! Regenerate after an *intentional* change with:
//!
//! ```text
//! APC_UPDATE_GOLDEN=1 cargo test -p apc-bench --test golden_reports
//! ```
//!
//! and review the fixture diff like any other code change.

use std::fmt::Write as _;
use std::path::PathBuf;

use apc_cm1::ReflectivityDataset;
use apc_comm::NetModel;
use apc_core::{ExecPolicy, IterationReport, PipelineConfig, Prepared, Redistribution};

/// Seed shared with `Scale::quick()` so shuffle-based rows mirror the
/// real experiments.
const SEED: u64 = 42;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn render_csv(rows: &[(String, Vec<IterationReport>)]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "config,{}",
        IterationReport::csv_header().replace(char::is_whitespace, "")
    )
    .unwrap();
    for (label, reports) in rows {
        for r in reports {
            writeln!(out, "{label},{}", r.to_csv_row()).unwrap();
        }
    }
    out
}

struct Golden {
    prepared: Prepared,
    component_iters: Vec<usize>,
    adapt_iters: Vec<usize>,
    mismatches: Vec<String>,
}

impl Golden {
    fn new() -> Self {
        let dataset = ReflectivityDataset::tiny(4, SEED).expect("tiny decomposition");
        let iterations = dataset.sample_iterations(6);
        let prepared = Prepared::from_dataset(
            dataset,
            iterations.clone(),
            ExecPolicy::Serial,
            NetModel::blue_waters(),
        );
        let component_iters = prepared.subset(3);
        Self {
            prepared,
            component_iters,
            adapt_iters: iterations,
            mismatches: Vec::new(),
        }
    }

    /// Sweep `configs` over `iters` and compare (or rewrite) the fixture.
    fn check(&mut self, name: &str, labeled: Vec<(String, PipelineConfig)>, iters: &[usize]) {
        let configs: Vec<PipelineConfig> = labeled.iter().map(|(_, c)| c.clone()).collect();
        let swept = self.prepared.run_sweep(&configs, iters);
        let rows: Vec<(String, Vec<IterationReport>)> = labeled
            .into_iter()
            .map(|(label, _)| label)
            .zip(swept)
            .collect();
        let got = render_csv(&rows);

        let path = golden_dir().join(format!("{name}.csv"));
        if std::env::var_os("APC_UPDATE_GOLDEN").is_some() {
            std::fs::create_dir_all(golden_dir()).expect("create golden dir");
            std::fs::write(&path, &got).expect("write golden fixture");
            eprintln!("updated {}", path.display());
            return;
        }
        let want = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                self.mismatches.push(format!(
                    "{name}: fixture {} unreadable ({e}); run with APC_UPDATE_GOLDEN=1",
                    path.display()
                ));
                return;
            }
        };
        if got != want {
            let diff = want
                .lines()
                .zip(got.lines())
                .enumerate()
                .find(|(_, (a, b))| a != b)
                .map(|(i, (a, b))| format!("first diff at line {}:\n  -{a}\n  +{b}", i + 1))
                .unwrap_or_else(|| {
                    format!(
                        "line count {} -> {}",
                        want.lines().count(),
                        got.lines().count()
                    )
                });
            self.mismatches
                .push(format!("{name}: report bytes changed; {diff}"));
        }
    }
}

#[test]
fn fig06_to_fig11_reports_match_golden_fixtures() {
    let mut g = Golden::new();

    // Fig 6 family: fixed reduction percentages, VAR, no redistribution.
    g.check(
        "fig06",
        [0.0, 80.0, 90.0, 98.0, 100.0]
            .iter()
            .map(|&p| {
                (
                    format!("p{p:.0}"),
                    PipelineConfig::default().with_fixed_percent(p),
                )
            })
            .collect(),
        &g.component_iters.clone(),
    );

    // Fig 7 family: the percentage sweep.
    g.check(
        "fig07",
        [0.0, 20.0, 40.0, 70.0, 90.0, 100.0]
            .iter()
            .map(|&p| {
                (
                    format!("p{p:.0}"),
                    PipelineConfig::default().with_fixed_percent(p),
                )
            })
            .collect(),
        &g.component_iters.clone(),
    );

    // Fig 8 family: redistribution (communication) time, LEA metric,
    // round-robin vs seeded random shuffle.
    g.check(
        "fig08",
        [0.0, 60.0, 100.0]
            .iter()
            .flat_map(|&p| {
                [
                    ("rr", Redistribution::RoundRobin),
                    ("shuffle", Redistribution::RandomShuffle { seed: SEED }),
                ]
                .into_iter()
                .map(move |(label, strat)| {
                    (
                        format!("{label}-p{p:.0}"),
                        PipelineConfig::default()
                            .with_metric("LEA")
                            .with_redistribution(strat)
                            .with_fixed_percent(p),
                    )
                })
            })
            .collect(),
        &g.component_iters.clone(),
    );

    // Fig 9 family: reduction × redistribution strategy grid.
    g.check(
        "fig09",
        [0.0, 90.0]
            .iter()
            .flat_map(|&p| {
                [
                    ("none", Redistribution::None),
                    ("rr", Redistribution::RoundRobin),
                    ("shuffle", Redistribution::RandomShuffle { seed: SEED }),
                ]
                .into_iter()
                .map(move |(label, strat)| {
                    (
                        format!("{label}-p{p:.0}"),
                        PipelineConfig::default()
                            .with_redistribution(strat)
                            .with_fixed_percent(p),
                    )
                })
            })
            .collect(),
        &g.component_iters.clone(),
    );

    // Fig 10 family: adaptation without redistribution.
    g.check(
        "fig10",
        [20.0, 5.0]
            .iter()
            .map(|&t| (format!("t{t:.0}"), PipelineConfig::default().with_target(t)))
            .collect(),
        &g.adapt_iters.clone(),
    );

    // Fig 11 family: adaptation of the full pipeline (round-robin).
    g.check(
        "fig11",
        [10.0, 3.0]
            .iter()
            .map(|&t| {
                (
                    format!("t{t:.0}"),
                    PipelineConfig::default()
                        .with_redistribution(Redistribution::RoundRobin)
                        .with_target(t),
                )
            })
            .collect(),
        &g.adapt_iters.clone(),
    );

    assert!(
        g.mismatches.is_empty(),
        "golden report mismatches:\n{}\n(if the change is intentional, regenerate with \
         APC_UPDATE_GOLDEN=1 and review the fixture diff)",
        g.mismatches.join("\n")
    );
}

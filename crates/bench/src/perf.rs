//! The performance-trajectory regression gate.
//!
//! The kernels bench writes every timed row to
//! `target/experiments/bench_kernels.json` (schema 1: `{"schema": 1,
//! "entries": [{"name", "wall_s", "virtual_s"}, ...]}`). This module
//! diffs a fresh run against the committed baseline
//! (`bench_baseline.json` at the repository root) with a tolerance band,
//! so a hot-path regression fails `ci.sh` loudly instead of drifting in
//! unnoticed:
//!
//! * an entry slower than `baseline × tolerance + slack` is a
//!   **regression**;
//! * an entry present in the baseline but missing from the run is a
//!   **removal** (renaming a row silently would blind the gate);
//! * new entries pass with a note — they join the gate when the baseline
//!   is next regenerated.
//!
//! Regenerate intentionally-changed baselines with
//! `APC_UPDATE_BASELINE=1` (the `perf_gate` binary copies the fresh run
//! over the baseline instead of diffing). Tune the band with
//! `APC_BENCH_TOL=<factor>` — the default is deliberately loose (wall
//! clocks on shared CI are noisy); the gate exists to catch step-change
//! regressions, not percent-level drift.

// apc-lint: allow-file(unwrap-in-lib): bench harness — panicking on a bad run or I/O error is the failure mode we want
use std::fmt::Write as _;

/// Default slowdown factor that fails the gate.
pub const DEFAULT_TOLERANCE: f64 = 2.5;
/// Absolute slack (seconds) added to every bound: sub-millisecond rows
/// jitter by scheduling alone and must not trip the gate.
pub const ABSOLUTE_SLACK_S: f64 = 0.005;

/// Parse the `bench_kernels.json` schema: `(name, wall_s)` per entry.
/// The writer emits one entry object per line; within a line, field
/// order and whitespace are free (a hand-edited or reformatted baseline
/// still parses), but a malformed document fails the gate rather than
/// passing it vacuously.
pub fn parse_entries(text: &str) -> Result<Vec<(String, f64)>, String> {
    let compact: String = text.split_whitespace().collect();
    if !compact.contains("\"schema\":1") {
        return Err("not a schema-1 bench_kernels.json document".to_owned());
    }
    let mut entries = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !(line.starts_with('{') && line.contains("\"name\"")) {
            continue;
        }
        let name = string_field(line, "\"name\"")?;
        let wall_tok = number_field(line, "\"wall_s\"")?;
        let wall: f64 = wall_tok
            .parse()
            .map_err(|e| format!("bad wall_s {wall_tok:?} in {line:?}: {e}"))?;
        if !wall.is_finite() || wall < 0.0 {
            return Err(format!("non-finite wall_s in {line:?}"));
        }
        entries.push((name, wall));
    }
    if entries.is_empty() {
        return Err("trajectory document holds no entries".to_owned());
    }
    Ok(entries)
}

/// Position right after `key` and its following `:` (whitespace-free).
fn value_start(line: &str, key: &str) -> Result<usize, String> {
    let mut pos = line
        .find(key)
        .ok_or_else(|| format!("missing {key} in {line:?}"))?
        + key.len();
    let bytes = line.as_bytes();
    while bytes.get(pos).is_some_and(u8::is_ascii_whitespace) {
        pos += 1;
    }
    if bytes.get(pos) != Some(&b':') {
        return Err(format!("expected ':' after {key} in {line:?}"));
    }
    pos += 1;
    while bytes.get(pos).is_some_and(u8::is_ascii_whitespace) {
        pos += 1;
    }
    Ok(pos)
}

fn string_field(line: &str, key: &str) -> Result<String, String> {
    let start = value_start(line, key)?;
    let rest = &line[start..];
    let inner = rest
        .strip_prefix('"')
        .ok_or_else(|| format!("{key} is not a string in {line:?}"))?;
    let end = inner
        .find('"')
        .ok_or_else(|| format!("unterminated {key} in {line:?}"))?;
    Ok(inner[..end].to_owned())
}

fn number_field(line: &str, key: &str) -> Result<String, String> {
    let start = value_start(line, key)?;
    let tok: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
        .collect();
    if tok.is_empty() {
        return Err(format!("{key} is not a number in {line:?}"));
    }
    Ok(tok)
}

/// The gate's verdict on one run.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// `(name, baseline_s, current_s)` rows exceeding the band.
    pub regressions: Vec<(String, f64, f64)>,
    /// Baseline entries absent from the current run.
    pub removed: Vec<String>,
    /// Current entries absent from the baseline (informational).
    pub new_entries: Vec<String>,
    /// Entries compared and inside the band.
    pub passed: usize,
}

impl GateReport {
    pub fn is_green(&self) -> bool {
        self.regressions.is_empty() && self.removed.is_empty()
    }

    /// Human-readable summary for the CI log.
    pub fn render(&self, tolerance: f64) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "perf gate: {} entries within {tolerance:.1}x band, {} regressed, {} removed, {} new",
            self.passed,
            self.regressions.len(),
            self.removed.len(),
            self.new_entries.len()
        );
        for (name, base, cur) in &self.regressions {
            let _ = writeln!(
                s,
                "  REGRESSED {name}: {:.3} ms -> {:.3} ms ({:.2}x)",
                base * 1e3,
                cur * 1e3,
                cur / base.max(1e-12)
            );
        }
        for name in &self.removed {
            let _ = writeln!(s, "  REMOVED   {name}: in baseline but not in this run");
        }
        for name in &self.new_entries {
            let _ = writeln!(s, "  new       {name}: not in baseline yet");
        }
        s
    }
}

/// Diff `current` against `baseline` under `tolerance` (slowdown factor).
pub fn compare(
    baseline: &[(String, f64)],
    current: &[(String, f64)],
    tolerance: f64,
) -> GateReport {
    assert!(tolerance >= 1.0, "a tolerance below 1x fails every run");
    let mut report = GateReport {
        regressions: Vec::new(),
        removed: Vec::new(),
        new_entries: Vec::new(),
        passed: 0,
    };
    for (name, base) in baseline {
        match current.iter().find(|(n, _)| n == name) {
            None => report.removed.push(name.clone()),
            Some((_, cur)) => {
                if *cur > base * tolerance + ABSOLUTE_SLACK_S {
                    report.regressions.push((name.clone(), *base, *cur));
                } else {
                    report.passed += 1;
                }
            }
        }
    }
    for (name, _) in current {
        if !baseline.iter().any(|(n, _)| n == name) {
            report.new_entries.push(name.clone());
        }
    }
    report
}

/// Read `APC_BENCH_TOL` (slowdown factor, ≥ 1). Garbage fails loudly — a
/// typo that silently restored the default would defeat setting it.
pub fn tolerance_from_env(var: Option<&str>) -> f64 {
    match var {
        None => DEFAULT_TOLERANCE,
        Some(s) => {
            let tol: f64 = s
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("APC_BENCH_TOL must be a slowdown factor, got {s:?}"));
            assert!(
                tol.is_finite() && tol >= 1.0,
                "APC_BENCH_TOL must be a finite factor >= 1, got {s:?}"
            );
            tol
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
  "schema": 1,
  "entries": [
    {"name": "score/VAR/serial", "wall_s": 0.010000000, "virtual_s": null},
    {"name": "pipeline/sync", "wall_s": 0.500000000, "virtual_s": 146.800000000}
  ]
}
"#;

    fn entries(pairs: &[(&str, f64)]) -> Vec<(String, f64)> {
        pairs.iter().map(|(n, w)| (n.to_string(), *w)).collect()
    }

    #[test]
    fn parses_the_kernels_schema() {
        let parsed = parse_entries(DOC).unwrap();
        assert_eq!(
            parsed,
            entries(&[("score/VAR/serial", 0.01), ("pipeline/sync", 0.5)])
        );
    }

    #[test]
    fn parsing_is_free_of_field_order_and_spacing() {
        // A hand-edited baseline: compact spacing, reordered fields,
        // wall_s terminated by '}' instead of ','.
        let doc = "{\"schema\":1,\"entries\":[\n\
                   {\"wall_s\":0.25,\"name\":\"a\"},\n\
                   { \"name\" : \"b\" , \"virtual_s\": null, \"wall_s\" : 1e-3}\n\
                   ]}";
        assert_eq!(
            parse_entries(doc).unwrap(),
            entries(&[("a", 0.25), ("b", 1e-3)])
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_entries("").is_err());
        assert!(parse_entries("{\"schema\": 2, \"entries\": []}").is_err());
        assert!(parse_entries("{\"schema\": 1,\n \"entries\": []}").is_err());
        assert!(parse_entries(
            "{\"schema\": 1, \"entries\": [\n{\"name\": \"x\", \"wall_s\": NaN},\n]}"
        )
        .is_err());
    }

    #[test]
    fn within_band_passes() {
        let base = entries(&[("a", 0.100), ("b", 0.200)]);
        let cur = entries(&[("a", 0.180), ("b", 0.150)]);
        let report = compare(&base, &cur, 2.0);
        assert!(report.is_green());
        assert_eq!(report.passed, 2);
    }

    #[test]
    fn regression_outside_band_fails() {
        let base = entries(&[("a", 0.100)]);
        let cur = entries(&[("a", 0.300)]);
        let report = compare(&base, &cur, 2.0);
        assert!(!report.is_green());
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].0, "a");
        let rendered = report.render(2.0);
        assert!(rendered.contains("REGRESSED a"), "{rendered}");
    }

    #[test]
    fn tiny_rows_ride_the_absolute_slack() {
        // 50 us -> 2 ms is a 40x "slowdown" but within scheduling noise;
        // the absolute slack keeps it green.
        let base = entries(&[("micro", 50e-6)]);
        let cur = entries(&[("micro", 2e-3)]);
        assert!(compare(&base, &cur, 2.0).is_green());
    }

    #[test]
    fn removed_entries_fail_new_entries_pass() {
        let base = entries(&[("a", 0.1), ("gone", 0.1)]);
        let cur = entries(&[("a", 0.1), ("fresh", 0.1)]);
        let report = compare(&base, &cur, 2.0);
        assert!(!report.is_green(), "silent removals must fail the gate");
        assert_eq!(report.removed, vec!["gone".to_string()]);
        assert_eq!(report.new_entries, vec!["fresh".to_string()]);
    }

    #[test]
    fn tolerance_parsing() {
        assert_eq!(tolerance_from_env(None), DEFAULT_TOLERANCE);
        assert_eq!(tolerance_from_env(Some("3.5")), 3.5);
    }

    #[test]
    #[should_panic(expected = "APC_BENCH_TOL must be a slowdown factor")]
    fn tolerance_rejects_garbage() {
        let _ = tolerance_from_env(Some("fast"));
    }

    #[test]
    #[should_panic(expected = "factor >= 1")]
    fn tolerance_rejects_sub_one() {
        let _ = tolerance_from_env(Some("0.5"));
    }
}

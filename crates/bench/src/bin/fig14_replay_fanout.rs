//! Fig 14: standalone replay server pool under client fan-out — routing,
//! request stealing, and QoS tiers over a persisted run.

use apc_bench::experiments;
use apc_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    experiments::fig14::run(&scale);
}

//! Standalone harness for all ablations — see DESIGN.md §4.

use apc_bench::experiments::{ablations, Ctx};
use apc_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    ablations::entropy_bins(&scale);
    let ctx = Ctx::new(&scale);
    ablations::sort_strategy(&ctx, &scale);
    ablations::downsample_size(&ctx, &scale);
    ablations::slow_network(&ctx, &scale);
    ablations::controller_variants(&ctx, &scale);
}

//! Persist a synthetic reflectivity time series as an `apc-store` chunked
//! dataset directory — the "generate once, replay forever" half of the
//! paper's §V-A workflow. Point `APC_DATASET` at the resulting directory
//! and every figure binary replays it instead of regenerating the
//! simulation in memory:
//!
//! ```text
//! cargo run --release -p apc-bench --bin write_dataset -- target/dataset
//! APC_DATASET=target/dataset cargo run --release -p apc-bench --bin fig07_percent_sweep
//! ```
//!
//! Knobs (environment):
//!
//! * `APC_GEOM`  — `paper` (default, 440×440×76), `tiny` (80×80×16 test
//!   geometry) or `full` (2200×2200×380 — bench-cluster territory);
//! * `APC_RANKS` — rank count of the decomposition (default 64);
//! * `APC_SEED`  — storm seed (default 42);
//! * `APC_STORE_ITERS` — how many equally-spaced iterations to store
//!   (default 12, matching the quick-scale adaptation runs);
//! * `APC_CODEC` — `fpz` (default), `raw`, `lz`, or `zfpx[:tolerance]`
//!   (lossy; replay is then only approximately the in-memory result);
//! * `APC_SHARD_CHUNKS` — when set to `n` ≥ 1, pack chunks `n` at a time
//!   into shard containers instead of one file per chunk. The layout is
//!   recorded in `meta.json`, so readers need no flag to replay it.

use std::path::PathBuf;
use std::time::Instant;

use apc_cm1::{write_dataset, write_dataset_sharded, ReflectivityDataset};
use apc_store::CodecKind;

fn env_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Err(_) => default,
        Ok(s) => s
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("{name} must be an integer, got {s:?}")),
    }
}

fn env_codec() -> CodecKind {
    let Ok(raw) = std::env::var("APC_CODEC") else {
        return CodecKind::Fpz;
    };
    let s = raw.trim();
    if let Some(tol) = s.strip_prefix("zfpx") {
        let tolerance = match tol.strip_prefix(':') {
            None if tol.is_empty() => 1e-2,
            Some(t) => t
                .parse()
                .unwrap_or_else(|_| panic!("APC_CODEC zfpx tolerance must be a float: {raw:?}")),
            _ => panic!("APC_CODEC must be raw|fpz|lz|zfpx[:tol], got {raw:?}"),
        };
        return CodecKind::Zfpx { tolerance };
    }
    CodecKind::from_name(s, None)
        .unwrap_or_else(|_| panic!("APC_CODEC must be raw|fpz|lz|zfpx[:tol], got {raw:?}"))
}

fn dir_size(dir: &std::path::Path) -> u64 {
    let mut total = 0;
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).expect("read store dir") {
            let entry = entry.expect("dir entry");
            let meta = entry.metadata().expect("entry metadata");
            if meta.is_dir() {
                stack.push(entry.path());
            } else {
                total += meta.len();
            }
        }
    }
    total
}

fn main() {
    let dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/experiments/dataset"));
    let nranks = env_usize("APC_RANKS", 64);
    let seed = env_usize("APC_SEED", 42) as u64;
    let n_iters = env_usize("APC_STORE_ITERS", 12);
    let codec = env_codec();
    let shard_chunks = std::env::var("APC_SHARD_CHUNKS").ok().map(|s| {
        let n = s
            .trim()
            .parse::<usize>()
            .unwrap_or_else(|_| panic!("APC_SHARD_CHUNKS must be an integer, got {s:?}"));
        assert!(n >= 1, "APC_SHARD_CHUNKS must be >= 1, got {n}");
        n
    });

    let geom = std::env::var("APC_GEOM").unwrap_or_else(|_| "paper".into());
    let dataset = match geom.as_str() {
        "paper" => ReflectivityDataset::paper_scaled(nranks, seed),
        "tiny" => ReflectivityDataset::tiny(nranks, seed),
        "full" => ReflectivityDataset::paper_full(nranks, seed),
        other => panic!("APC_GEOM must be paper|tiny|full, got {other:?}"),
    }
    .expect("decomposition");
    let iterations = dataset.sample_iterations(n_iters);

    let d = dataset.decomp();
    let raw_bytes = d.domain().len() as u64 * 4 * iterations.len() as u64;
    let layout = match shard_chunks {
        Some(n) => format!("{n} chunks/shard"),
        None => "one file per chunk".into(),
    };
    println!(
        "writing {} iterations of {} ({} ranks, {} blocks of {}) with codec {} ({layout}) -> {}",
        iterations.len(),
        d.domain(),
        d.nranks(),
        d.n_blocks(),
        d.block_dims(),
        codec.name(),
        dir.display(),
    );

    // apc-lint: allow(wall-clock): measuring the harness's real elapsed time is this bench's purpose
    let t0 = Instant::now();
    match shard_chunks {
        Some(n) => {
            write_dataset_sharded(&dataset, &iterations, &dir, codec, n)
                .expect("write sharded dataset");
        }
        None => {
            write_dataset(&dataset, &iterations, &dir, codec).expect("write dataset");
        }
    }
    let secs = t0.elapsed().as_secs_f64();

    let stored_bytes = dir_size(&dir);
    println!(
        "done in {:.1} s: {:.1} MB stored ({:.1} MB raw, ratio {:.3})",
        secs,
        stored_bytes as f64 / 1e6,
        raw_bytes as f64 / 1e6,
        stored_bytes as f64 / raw_bytes as f64,
    );
    println!(
        "replay with: APC_DATASET={} cargo run --release -p apc-bench --bin <figure>",
        dir.display()
    );
}

//! Standalone harness for fig15 (adaptive serving under a client ramp).

use apc_bench::experiments;
use apc_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    experiments::fig15::run(&scale);
}

//! Standalone harness for fig11 — see DESIGN.md §4.

use apc_bench::experiments::{self, Ctx};
use apc_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let ctx = Ctx::new(&scale);
    experiments::fig11::run(&ctx, &scale);
}

//! Standalone harness for fig12 (staged vs synchronous in situ).

use apc_bench::experiments::{self, Ctx};
use apc_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let ctx = Ctx::new(&scale);
    experiments::fig12::run(&ctx, &scale);
}

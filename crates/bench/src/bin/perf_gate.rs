//! The perf-trajectory gate binary (see `apc_bench::perf`).
//!
//! Diffs `target/experiments/bench_kernels.json` (a fresh kernels-bench
//! run) against the committed `bench_baseline.json` at the repository
//! root and exits non-zero on a regression or a silently-removed entry.
//!
//! * `APC_UPDATE_BASELINE=1` — copy the fresh run over the baseline
//!   instead of diffing (commit the result intentionally).
//! * `APC_BENCH_TOL=<factor>` — slowdown factor that fails the gate
//!   (default 2.5x; wall clocks on shared CI are noisy by design).

use std::path::PathBuf;
use std::process::ExitCode;

use apc_bench::perf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn main() -> ExitCode {
    let current_path = repo_root().join("target/experiments/bench_kernels.json");
    let baseline_path = repo_root().join("bench_baseline.json");

    let current_text = std::fs::read_to_string(&current_path).unwrap_or_else(|e| {
        panic!(
            "no fresh trajectory at {} ({e}); run \
             `cargo bench -p apc-bench --bench kernels` first",
            current_path.display()
        )
    });
    // Validate before use — a malformed run must never become a baseline.
    let current = perf::parse_entries(&current_text)
        .unwrap_or_else(|e| panic!("{}: {e}", current_path.display()));

    if std::env::var("APC_UPDATE_BASELINE").as_deref() == Ok("1") {
        std::fs::write(&baseline_path, &current_text).expect("write baseline");
        println!(
            "perf gate: baseline regenerated with {} entries at {}",
            current.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline_text = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        panic!(
            "no committed baseline at {} ({e}); generate one with \
             APC_UPDATE_BASELINE=1",
            baseline_path.display()
        )
    });
    let baseline = perf::parse_entries(&baseline_text)
        .unwrap_or_else(|e| panic!("{}: {e}", baseline_path.display()));

    let tolerance = perf::tolerance_from_env(std::env::var("APC_BENCH_TOL").ok().as_deref());
    let report = perf::compare(&baseline, &current, tolerance);
    print!("{}", report.render(tolerance));
    if report.is_green() {
        ExitCode::SUCCESS
    } else {
        println!(
            "perf gate: FAILED — investigate, or regenerate the baseline \
             intentionally with APC_UPDATE_BASELINE=1"
        );
        ExitCode::FAILURE
    }
}

//! Standalone harness for fig13 (frame serving under client load).

use apc_bench::experiments::{self, Ctx};
use apc_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let ctx = Ctx::new(&scale);
    experiments::fig13::run(&ctx, &scale);
}

//! Standalone harness for fig04 — see DESIGN.md §4.

use apc_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_env();
    experiments::fig04::run(&scale);
}

//! Standalone harness for table1 — see DESIGN.md §4.

use apc_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_env();
    experiments::table1::run(&scale);
}

//! Shared experiment-harness utilities.
//!
//! The centerpiece is [`Prepared`] (now hosted by `apc-core`, re-exported
//! here): pipeline input plus a persistent rank session, so a figure's
//! parameter sweep replays many configurations over **one** set of rank
//! threads and one shared isosurface-stats cache instead of re-spawning
//! everything per configuration ([`Prepared::run_sweep`]). The input can
//! be pre-generated in memory or — with `APC_DATASET=<dir>` pointing at
//! an `apc-store` dataset written by `apc_cm1::write_dataset` — read
//! lazily from disk through [`Prepared::from_store`].

// apc-lint: allow-file(unwrap-in-lib): bench harness — panicking on a bad run or I/O error is the failure mode we want
use std::path::PathBuf;

use apc_cm1::StoredTimeSeries;
use apc_core::ExecPolicy;

pub use apc_core::{spaced_subset, Prepared};

/// Experiment scale. `quick` (default) shrinks iteration counts and sweep
/// resolution so the whole figure suite completes in minutes on one core;
/// `APC_SCALE=full` reproduces the paper's exact settings (10 iterations
/// for component experiments, 30 for adaptation, 5%-step sweeps).
#[derive(Debug, Clone)]
pub struct Scale {
    /// Rank counts to evaluate (the paper: 64 and 400). When a stored
    /// dataset is bound via `APC_DATASET`, this collapses to the stored
    /// decomposition's rank count.
    pub rank_counts: Vec<usize>,
    /// Iterations for component experiments (paper: 10).
    pub component_iters: usize,
    /// Iterations for adaptation experiments (paper: 30).
    pub adapt_iters: usize,
    /// Reduction percentages for sweep figures.
    pub sweep: Vec<f64>,
    /// Dataset seed.
    pub seed: u64,
    /// Intra-rank execution policy applied to every pipeline run (see
    /// [`exec_from_env`]). Changes wall-clock time only; virtual-time
    /// figures are byte-identical under every policy.
    pub exec: ExecPolicy,
    /// `APC_DATASET`: directory of a stored `apc-store` dataset to replay
    /// instead of regenerating the synthetic simulation in memory. Written
    /// with `cargo run -p apc-bench --bin write_dataset`.
    pub dataset: Option<PathBuf>,
}

impl Scale {
    pub fn quick() -> Self {
        Self {
            rank_counts: vec![64, 400],
            component_iters: 4,
            adapt_iters: 12,
            sweep: vec![0.0, 20.0, 40.0, 60.0, 70.0, 80.0, 90.0, 95.0, 100.0],
            seed: 42,
            exec: ExecPolicy::Serial,
            dataset: None,
        }
    }

    pub fn full() -> Self {
        Self {
            sweep: (0..=20).map(|i| i as f64 * 5.0).collect(),
            component_iters: 10,
            adapt_iters: 30,
            ..Self::quick()
        }
    }

    /// Reads `APC_SCALE` (`full` or anything else ⇒ quick), `APC_THREADS`
    /// (see [`exec_from_env`]) and `APC_DATASET` (see [`dataset_from_env`];
    /// binding a stored dataset pins `rank_counts` and `seed` to the
    /// store's metadata so every figure replays the stored decomposition).
    pub fn from_env() -> Self {
        let mut scale = match std::env::var("APC_SCALE").as_deref() {
            Ok("full") => Self::full(),
            _ => Self::quick(),
        };
        scale.exec = exec_from_env();
        if let Some((dir, stored)) = dataset_from_env() {
            eprintln!(
                "[prep] APC_DATASET: replaying {} ({} ranks, {} stored iterations, codec {})",
                dir.display(),
                stored.decomp().nranks(),
                stored.iterations().len(),
                stored.codec().name(),
            );
            scale.rank_counts = vec![stored.decomp().nranks()];
            scale.seed = stored.seed();
            scale.dataset = Some(dir);
        }
        scale
    }
}

/// Reads `APC_DATASET`: unset ⇒ `None`; otherwise the directory must hold
/// a readable `apc-store` dataset (a typo'd path or corrupt store panics —
/// silently regenerating in memory would invalidate a replay measurement
/// without anyone noticing).
pub fn dataset_from_env() -> Option<(PathBuf, StoredTimeSeries)> {
    let dir = PathBuf::from(std::env::var_os("APC_DATASET")?);
    let stored = apc_cm1::open_dataset(&dir)
        .unwrap_or_else(|e| panic!("APC_DATASET={}: {e}", dir.display()));
    Some((dir, stored))
}

/// Reads `APC_THREADS`: unset, `0`, or `1` ⇒ serial (the seed behavior);
/// `auto` ⇒ one worker per core; `n` ⇒ `Threads(n)`. The experiment driver
/// still clamps to `ranks × threads ≤ cores`, so `auto` is always safe.
/// Anything else panics — a typo that silently fell back to serial would
/// invalidate a measurement without anyone noticing.
pub fn exec_from_env() -> ExecPolicy {
    exec_from_str(std::env::var("APC_THREADS").ok().as_deref())
}

/// [`exec_from_env`]'s parser, split out for testing.
pub fn exec_from_str(var: Option<&str>) -> ExecPolicy {
    let Some(raw) = var else {
        return ExecPolicy::Serial;
    };
    let s = raw.trim();
    if s == "auto" {
        return ExecPolicy::auto();
    }
    match s.parse::<usize>() {
        Ok(0) | Ok(1) => ExecPolicy::Serial,
        Ok(n) => ExecPolicy::Threads(n),
        Err(_) => panic!(
            "APC_THREADS must be a thread count or \"auto\", got {raw:?} — \
             refusing to silently fall back to serial"
        ),
    }
}

/// Output directory for CSVs and images: `target/experiments/`.
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    std::fs::create_dir_all(&dir).expect("create experiment output dir");
    dir
}

/// Write rows as CSV under [`out_dir`]; returns the file path.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let path = out_dir().join(name);
    let mut body = String::with_capacity(rows.len() * 32 + header.len() + 1);
    body.push_str(header);
    body.push('\n');
    for r in rows {
        body.push_str(r);
        body.push('\n');
    }
    std::fs::write(&path, body).expect("write csv");
    path
}

/// Print an ASCII table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Average / min / max of a series.
pub fn stats(series: impl IntoIterator<Item = f64>) -> (f64, f64, f64) {
    let v: Vec<f64> = series.into_iter().collect();
    if v.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let sum: f64 = v.iter().sum();
    let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    (sum / v.len() as f64, min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_from_str_accepts_counts_and_auto() {
        assert_eq!(exec_from_str(None), ExecPolicy::Serial);
        assert_eq!(exec_from_str(Some("0")), ExecPolicy::Serial);
        assert_eq!(exec_from_str(Some("1")), ExecPolicy::Serial);
        assert_eq!(exec_from_str(Some("8")), ExecPolicy::Threads(8));
        assert_eq!(exec_from_str(Some(" 4 ")), ExecPolicy::Threads(4));
        assert!(matches!(
            exec_from_str(Some("auto")),
            ExecPolicy::Serial | ExecPolicy::Threads(_)
        ));
    }

    #[test]
    #[should_panic(expected = "APC_THREADS must be a thread count")]
    fn exec_from_str_rejects_garbage_loudly() {
        let _ = exec_from_str(Some("eight"));
    }
}

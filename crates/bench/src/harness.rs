//! Shared experiment-harness utilities.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use apc_cm1::ReflectivityDataset;
use apc_comm::NetModel;
use apc_core::{run_experiment_prepared, ExecPolicy, IterationReport, PipelineConfig, StatsCache};
use apc_grid::Block;

/// Experiment scale. `quick` (default) shrinks iteration counts and sweep
/// resolution so the whole figure suite completes in minutes on one core;
/// `APC_SCALE=full` reproduces the paper's exact settings (10 iterations
/// for component experiments, 30 for adaptation, 5%-step sweeps).
#[derive(Debug, Clone)]
pub struct Scale {
    /// Rank counts to evaluate (the paper: 64 and 400).
    pub rank_counts: Vec<usize>,
    /// Iterations for component experiments (paper: 10).
    pub component_iters: usize,
    /// Iterations for adaptation experiments (paper: 30).
    pub adapt_iters: usize,
    /// Reduction percentages for sweep figures.
    pub sweep: Vec<f64>,
    /// Dataset seed.
    pub seed: u64,
    /// Intra-rank execution policy applied to every pipeline run (see
    /// [`exec_from_env`]). Changes wall-clock time only; virtual-time
    /// figures are byte-identical under every policy.
    pub exec: ExecPolicy,
}

impl Scale {
    pub fn quick() -> Self {
        Self {
            rank_counts: vec![64, 400],
            component_iters: 4,
            adapt_iters: 12,
            sweep: vec![0.0, 20.0, 40.0, 60.0, 70.0, 80.0, 90.0, 95.0, 100.0],
            seed: 42,
            exec: ExecPolicy::Serial,
        }
    }

    pub fn full() -> Self {
        Self { sweep: (0..=20).map(|i| i as f64 * 5.0).collect(), component_iters: 10, adapt_iters: 30, ..Self::quick() }
    }

    /// Reads `APC_SCALE` (`full` or anything else ⇒ quick) and
    /// `APC_THREADS` (see [`exec_from_env`]).
    pub fn from_env() -> Self {
        let mut scale = match std::env::var("APC_SCALE").as_deref() {
            Ok("full") => Self::full(),
            _ => Self::quick(),
        };
        scale.exec = exec_from_env();
        scale
    }
}

/// Reads `APC_THREADS`: unset or `1` ⇒ serial (the seed behavior);
/// `auto` ⇒ one worker per core; `n` ⇒ `Threads(n)`. The experiment driver
/// still clamps to `ranks × threads ≤ cores`, so `auto` is always safe.
pub fn exec_from_env() -> ExecPolicy {
    match std::env::var("APC_THREADS").as_deref() {
        Ok("auto") => ExecPolicy::auto(),
        Ok(n) => match n.parse::<usize>() {
            Ok(0) | Ok(1) | Err(_) => ExecPolicy::Serial,
            Ok(n) => ExecPolicy::Threads(n),
        },
        Err(_) => ExecPolicy::Serial,
    }
}

/// Output directory for CSVs and images: `target/experiments/`.
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/experiments");
    std::fs::create_dir_all(&dir).expect("create experiment output dir");
    dir
}

/// Write rows as CSV under [`out_dir`]; returns the file path.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let path = out_dir().join(name);
    let mut body = String::with_capacity(rows.len() * 32 + header.len() + 1);
    body.push_str(header);
    body.push('\n');
    for r in rows {
        body.push_str(r);
        body.push('\n');
    }
    std::fs::write(&path, body).expect("write csv");
    path
}

/// Print an ASCII table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Pre-generated pipeline input for one `(rank count, iteration set)`:
/// blocks for every `(iteration, rank)` and a shared isosurface-stats
/// cache. Generating once and replaying across configurations is exactly
/// what the paper does by reloading its stored dataset with BIL (§V-A).
pub struct Prepared {
    pub dataset: ReflectivityDataset,
    pub iterations: Vec<usize>,
    /// Execution policy injected into every config run through this input
    /// (figure experiments never set one themselves).
    pub exec: ExecPolicy,
    cache: Arc<StatsCache>,
    blocks: HashMap<(usize, usize), Vec<Block>>,
}

impl Prepared {
    pub fn new(nranks: usize, seed: u64, iterations: Vec<usize>) -> Self {
        Self::with_exec(nranks, seed, iterations, ExecPolicy::Serial)
    }

    /// [`Prepared::new`] with an intra-rank execution policy applied to
    /// every run (the harness passes `Scale::exec` / `APC_THREADS` here).
    pub fn with_exec(nranks: usize, seed: u64, iterations: Vec<usize>, exec: ExecPolicy) -> Self {
        let dataset = ReflectivityDataset::paper_scaled(nranks, seed)
            .expect("paper-scaled decomposition");
        let mut blocks = HashMap::new();
        for &it in &iterations {
            for rank in 0..nranks {
                blocks.insert((it, rank), dataset.rank_blocks(it, rank));
            }
        }
        Self { dataset, iterations, exec, cache: Arc::new(StatsCache::new()), blocks }
    }

    /// The component-experiment iteration subset (`n` equally spaced out of
    /// the prepared set).
    pub fn subset(&self, n: usize) -> Vec<usize> {
        if n >= self.iterations.len() {
            return self.iterations.clone();
        }
        (0..n)
            .map(|i| self.iterations[i * (self.iterations.len() - 1) / (n - 1).max(1)])
            .collect()
    }

    /// Run a pipeline configuration over `iterations` (must be prepared).
    pub fn run(&self, mut config: PipelineConfig, iterations: &[usize]) -> Vec<IterationReport> {
        config.stats_cache = Some(Arc::clone(&self.cache));
        config.exec = self.exec;
        run_experiment_prepared(
            self.dataset.decomp(),
            self.dataset.coords(),
            config,
            iterations,
            NetModel::blue_waters().for_paper_scale(),
            |it, rank| {
                self.blocks
                    .get(&(it, rank))
                    .unwrap_or_else(|| panic!("iteration {it} not prepared"))
                    .clone()
            },
        )
    }

    /// Like [`Prepared::run`] with an explicit network model.
    pub fn run_on(
        &self,
        mut config: PipelineConfig,
        iterations: &[usize],
        net: NetModel,
    ) -> Vec<IterationReport> {
        config.stats_cache = Some(Arc::clone(&self.cache));
        config.exec = self.exec;
        run_experiment_prepared(
            self.dataset.decomp(),
            self.dataset.coords(),
            config,
            iterations,
            net,
            |it, rank| self.blocks[&(it, rank)].clone(),
        )
    }
}

/// Average / min / max of a series.
pub fn stats(series: impl IntoIterator<Item = f64>) -> (f64, f64, f64) {
    let v: Vec<f64> = series.into_iter().collect();
    if v.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let sum: f64 = v.iter().sum();
    let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    (sum / v.len() as f64, min, max)
}

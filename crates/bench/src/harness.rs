//! Shared experiment-harness utilities.
//!
//! The centerpiece is [`Prepared`]: pre-generated pipeline input plus a
//! persistent rank [`Session`], so a figure's parameter sweep replays many
//! configurations over **one** set of rank threads and one shared
//! isosurface-stats cache instead of re-spawning everything per
//! configuration ([`Prepared::run_sweep`]).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use apc_cm1::ReflectivityDataset;
use apc_comm::{NetModel, Runtime, Session};
use apc_core::{
    run_experiment_prepared, run_sweep_in_session, ExecPolicy, IterationReport, PipelineConfig,
    StatsCache,
};
use apc_grid::Block;

/// Experiment scale. `quick` (default) shrinks iteration counts and sweep
/// resolution so the whole figure suite completes in minutes on one core;
/// `APC_SCALE=full` reproduces the paper's exact settings (10 iterations
/// for component experiments, 30 for adaptation, 5%-step sweeps).
#[derive(Debug, Clone)]
pub struct Scale {
    /// Rank counts to evaluate (the paper: 64 and 400).
    pub rank_counts: Vec<usize>,
    /// Iterations for component experiments (paper: 10).
    pub component_iters: usize,
    /// Iterations for adaptation experiments (paper: 30).
    pub adapt_iters: usize,
    /// Reduction percentages for sweep figures.
    pub sweep: Vec<f64>,
    /// Dataset seed.
    pub seed: u64,
    /// Intra-rank execution policy applied to every pipeline run (see
    /// [`exec_from_env`]). Changes wall-clock time only; virtual-time
    /// figures are byte-identical under every policy.
    pub exec: ExecPolicy,
}

impl Scale {
    pub fn quick() -> Self {
        Self {
            rank_counts: vec![64, 400],
            component_iters: 4,
            adapt_iters: 12,
            sweep: vec![0.0, 20.0, 40.0, 60.0, 70.0, 80.0, 90.0, 95.0, 100.0],
            seed: 42,
            exec: ExecPolicy::Serial,
        }
    }

    pub fn full() -> Self {
        Self { sweep: (0..=20).map(|i| i as f64 * 5.0).collect(), component_iters: 10, adapt_iters: 30, ..Self::quick() }
    }

    /// Reads `APC_SCALE` (`full` or anything else ⇒ quick) and
    /// `APC_THREADS` (see [`exec_from_env`]).
    pub fn from_env() -> Self {
        let mut scale = match std::env::var("APC_SCALE").as_deref() {
            Ok("full") => Self::full(),
            _ => Self::quick(),
        };
        scale.exec = exec_from_env();
        scale
    }
}

/// Reads `APC_THREADS`: unset, `0`, or `1` ⇒ serial (the seed behavior);
/// `auto` ⇒ one worker per core; `n` ⇒ `Threads(n)`. The experiment driver
/// still clamps to `ranks × threads ≤ cores`, so `auto` is always safe.
/// Anything else panics — a typo that silently fell back to serial would
/// invalidate a measurement without anyone noticing.
pub fn exec_from_env() -> ExecPolicy {
    exec_from_str(std::env::var("APC_THREADS").ok().as_deref())
}

/// [`exec_from_env`]'s parser, split out for testing.
pub fn exec_from_str(var: Option<&str>) -> ExecPolicy {
    let Some(raw) = var else { return ExecPolicy::Serial };
    let s = raw.trim();
    if s == "auto" {
        return ExecPolicy::auto();
    }
    match s.parse::<usize>() {
        Ok(0) | Ok(1) => ExecPolicy::Serial,
        Ok(n) => ExecPolicy::Threads(n),
        Err(_) => panic!(
            "APC_THREADS must be a thread count or \"auto\", got {raw:?} — \
             refusing to silently fall back to serial"
        ),
    }
}

/// Output directory for CSVs and images: `target/experiments/`.
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/experiments");
    std::fs::create_dir_all(&dir).expect("create experiment output dir");
    dir
}

/// Write rows as CSV under [`out_dir`]; returns the file path.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let path = out_dir().join(name);
    let mut body = String::with_capacity(rows.len() * 32 + header.len() + 1);
    body.push_str(header);
    body.push('\n');
    for r in rows {
        body.push_str(r);
        body.push('\n');
    }
    std::fs::write(&path, body).expect("write csv");
    path
}

/// Print an ASCII table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Pre-generated pipeline input for one `(rank count, iteration set)`:
/// blocks for every `(iteration, rank)`, a shared isosurface-stats cache,
/// and a persistent rank [`Session`] so every configuration replayed
/// through this input reuses the same rank threads. Generating once and
/// replaying across configurations is exactly what the paper does by
/// reloading its stored dataset with BIL (§V-A).
pub struct Prepared {
    pub dataset: ReflectivityDataset,
    pub iterations: Vec<usize>,
    /// Execution policy injected into every config run through this input
    /// (figure experiments never set one themselves).
    pub exec: ExecPolicy,
    /// Network model the session was built with; [`Prepared::run_on`] with
    /// a different model falls back to a one-shot runtime.
    net: NetModel,
    cache: Arc<StatsCache>,
    blocks: HashMap<(usize, usize), Vec<Block>>,
    session: Mutex<Session>,
}

impl Prepared {
    pub fn new(nranks: usize, seed: u64, iterations: Vec<usize>) -> Self {
        Self::with_exec(nranks, seed, iterations, ExecPolicy::Serial)
    }

    /// [`Prepared::new`] with an intra-rank execution policy applied to
    /// every run (the harness passes `Scale::exec` / `APC_THREADS` here).
    pub fn with_exec(nranks: usize, seed: u64, iterations: Vec<usize>, exec: ExecPolicy) -> Self {
        let dataset = ReflectivityDataset::paper_scaled(nranks, seed)
            .expect("paper-scaled decomposition");
        Self::from_dataset(dataset, iterations, exec, NetModel::blue_waters().for_paper_scale())
    }

    /// Prepare an arbitrary dataset (integration tests use the `tiny`
    /// geometry) with an explicit network model for the session.
    pub fn from_dataset(
        dataset: ReflectivityDataset,
        mut iterations: Vec<usize>,
        exec: ExecPolicy,
        net: NetModel,
    ) -> Self {
        let nranks = dataset.decomp().nranks();
        // The subset/averaging logic assumes a strictly increasing,
        // duplicate-free timeline; enforce it here once.
        iterations.sort_unstable();
        iterations.dedup();
        let mut blocks = HashMap::new();
        for &it in &iterations {
            for rank in 0..nranks {
                blocks.insert((it, rank), dataset.rank_blocks(it, rank));
            }
        }
        let session = Mutex::new(Runtime::new(nranks, net).session());
        Self { dataset, iterations, exec, net, cache: Arc::new(StatsCache::new()), blocks, session }
    }

    /// The component-experiment iteration subset: `n` strictly increasing,
    /// duplicate-free iterations equally spaced through the prepared set.
    pub fn subset(&self, n: usize) -> Vec<usize> {
        spaced_subset(&self.iterations, n)
    }

    /// Run a pipeline configuration over `iterations` (must be prepared)
    /// through the persistent rank session.
    pub fn run(&self, config: PipelineConfig, iterations: &[usize]) -> Vec<IterationReport> {
        self.run_sweep(std::slice::from_ref(&config), iterations).swap_remove(0)
    }

    /// The sweep engine entry point: replay every configuration over the
    /// same prepared blocks, one rank session, one stats cache. Returns one
    /// report series per configuration, in order — byte-identical to
    /// running each configuration through a fresh spawn-per-run runtime
    /// (guarded by the `sweep_engine` integration tests).
    pub fn run_sweep(
        &self,
        configs: &[PipelineConfig],
        iterations: &[usize],
    ) -> Vec<Vec<IterationReport>> {
        let configs: Vec<PipelineConfig> =
            configs.iter().map(|c| self.instrument(c.clone())).collect();
        let mut session = self.session.lock().expect("an earlier sweep panicked");
        run_sweep_in_session(
            &mut session,
            self.dataset.decomp(),
            self.dataset.coords(),
            &configs,
            iterations,
            &|it, rank| self.prepared_blocks(it, rank),
        )
    }

    /// Like [`Prepared::run`] with an explicit network model. A model equal
    /// to the prepared one reuses the session; a different model needs its
    /// own runtime (the network is baked into the session's shared state),
    /// so those runs fall back to spawn-per-run.
    pub fn run_on(
        &self,
        config: PipelineConfig,
        iterations: &[usize],
        net: NetModel,
    ) -> Vec<IterationReport> {
        if net == self.net {
            return self.run(config, iterations);
        }
        run_experiment_prepared(
            self.dataset.decomp(),
            self.dataset.coords(),
            self.instrument(config),
            iterations,
            net,
            |it, rank| self.prepared_blocks(it, rank),
        )
    }

    /// Inject the shared cache and execution policy into a configuration.
    fn instrument(&self, mut config: PipelineConfig) -> PipelineConfig {
        config.stats_cache = Some(Arc::clone(&self.cache));
        config.exec = self.exec;
        config
    }

    fn prepared_blocks(&self, it: usize, rank: usize) -> Vec<Block> {
        self.blocks
            .get(&(it, rank))
            .unwrap_or_else(|| panic!("iteration {it} not prepared"))
            .clone()
    }
}

/// `n` entries equally spaced through `items`, always strictly increasing
/// and duplicate-free (for `n >= 2` the first and last entries are always
/// included; `n >= items.len()` returns everything). `items` must be
/// strictly increasing. Figure averages double-count nothing because of
/// this guarantee.
pub fn spaced_subset(items: &[usize], n: usize) -> Vec<usize> {
    if n >= items.len() {
        return items.to_vec();
    }
    debug_assert!(items.windows(2).all(|w| w[1] > w[0]), "items must be strictly increasing");
    let mut out = Vec::with_capacity(n);
    let mut prev: Option<usize> = None;
    for i in 0..n {
        let mut idx = i * (items.len() - 1) / (n - 1).max(1);
        // Integer spacing can only repeat an index when n approaches
        // items.len(); bump forward to keep the selection unique.
        if let Some(p) = prev {
            if idx <= p {
                idx = p + 1;
            }
        }
        prev = Some(idx);
        out.push(items[idx]);
    }
    out
}

/// Average / min / max of a series.
pub fn stats(series: impl IntoIterator<Item = f64>) -> (f64, f64, f64) {
    let v: Vec<f64> = series.into_iter().collect();
    if v.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let sum: f64 = v.iter().sum();
    let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    (sum / v.len() as f64, min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spaced_subset_boundaries() {
        let items: Vec<usize> = vec![10, 20, 30, 40, 50, 60];
        assert!(spaced_subset(&items, 0).is_empty());
        assert_eq!(spaced_subset(&items, 1), vec![10]);
        // n = len - 1 is the regime where naive integer spacing repeats an
        // index and a figure average double-counts an iteration.
        assert_eq!(spaced_subset(&items, items.len() - 1).len(), items.len() - 1);
        assert_eq!(spaced_subset(&items, items.len()), items);
        assert_eq!(spaced_subset(&items, items.len() + 5), items);
    }

    #[test]
    fn spaced_subset_is_strictly_increasing_and_unique_for_every_n() {
        let items: Vec<usize> = (0..17).map(|i| 57 + i * 3).collect();
        for n in 0..=items.len() + 2 {
            let sub = spaced_subset(&items, n);
            assert_eq!(sub.len(), n.min(items.len()), "n = {n}");
            assert!(
                sub.windows(2).all(|w| w[1] > w[0]),
                "subset for n = {n} is not strictly increasing: {sub:?}"
            );
            if n >= 2 {
                assert_eq!(sub[0], items[0], "first element always included");
                assert_eq!(*sub.last().unwrap(), *items.last().unwrap());
            }
        }
    }

    #[test]
    fn exec_from_str_accepts_counts_and_auto() {
        assert_eq!(exec_from_str(None), ExecPolicy::Serial);
        assert_eq!(exec_from_str(Some("0")), ExecPolicy::Serial);
        assert_eq!(exec_from_str(Some("1")), ExecPolicy::Serial);
        assert_eq!(exec_from_str(Some("8")), ExecPolicy::Threads(8));
        assert_eq!(exec_from_str(Some(" 4 ")), ExecPolicy::Threads(4));
        assert!(matches!(exec_from_str(Some("auto")), ExecPolicy::Serial | ExecPolicy::Threads(_)));
    }

    #[test]
    #[should_panic(expected = "APC_THREADS must be a thread count")]
    fn exec_from_str_rejects_garbage_loudly() {
        let _ = exec_from_str(Some("eight"));
    }
}

//! Benchmark harnesses regenerating every table and figure of the paper.
//!
//! Layout:
//!
//! * [`harness`] — run scales (quick vs `APC_SCALE=full`), the
//!   [`harness::Prepared`] input (pre-generated blocks + persistent rank
//!   session + shared stats cache) whose
//!   [`run_sweep`](harness::Prepared::run_sweep) replays whole
//!   configuration sweeps over one set of rank threads, CSV output under
//!   `target/experiments/`, ASCII tables;
//! * [`experiments`] — one module per paper table/figure plus the ablations
//!   listed in DESIGN.md §4. Each exposes `run(&Scale)`, prints the
//!   series/rows the paper reports, and writes CSV.
//! * [`perf`] — the perf-trajectory regression gate: parses
//!   `bench_kernels.json` runs and diffs them against the committed
//!   `bench_baseline.json` with a tolerance band (driven by the
//!   `perf_gate` binary from `ci.sh`).
//!
//! Thin binaries in `src/bin/` wrap single experiments; the `figures` bench
//! target (`cargo bench -p apc-bench --bench figures`) runs the whole set,
//! and the `kernels` bench target microbenchmarks the hot kernels,
//! including the `Serial` vs `Threads(n)` execution-policy comparison.
//!
//! Set `APC_THREADS=<n>|auto` to fan the per-block kernels out inside each
//! simulated rank (see [`harness::exec_from_env`]); virtual-time figures
//! are byte-identical under every policy, only wall-clock changes.
//!
//! Set `APC_DATASET=<dir>` to replay a stored `apc-store` dataset
//! (written with the `write_dataset` binary) instead of regenerating the
//! synthetic simulation — rank counts and seed then come from the store's
//! metadata (see [`harness::dataset_from_env`]). Golden fig06–fig11
//! report snapshots live in `tests/golden_reports.rs`; regenerate
//! intentionally-changed fixtures with `APC_UPDATE_GOLDEN=1`.

pub mod experiments;
pub mod harness;
pub mod perf;

pub use harness::{exec_from_env, Scale};

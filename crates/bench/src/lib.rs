//! Benchmark harnesses regenerating every table and figure of the paper.
//!
//! Layout:
//!
//! * [`harness`] — run scales (quick vs `APC_SCALE=full`), CSV output under
//!   `target/experiments/`, ASCII tables;
//! * [`experiments`] — one module per paper table/figure plus the ablations
//!   listed in DESIGN.md §4. Each exposes `run(&Scale)`, prints the
//!   series/rows the paper reports, and writes CSV.
//!
//! Thin binaries in `src/bin/` wrap single experiments; the `figures` bench
//! target (`cargo bench -p apc-bench --bench figures`) runs the whole set.

pub mod experiments;
pub mod harness;

pub use harness::Scale;

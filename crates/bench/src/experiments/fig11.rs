//! Fig 11: dynamic adaptation of the *full* pipeline (redistribution
//! enabled) — paper targets 25/10 s at 64 ranks, 7/3 s at 400 ranks.

use apc_core::{PipelineConfig, Redistribution};

use crate::experiments::{fig10::run_adaptation, Ctx};
use crate::harness::Scale;

pub fn targets(nranks: usize) -> &'static [f64] {
    if nranks == 64 {
        &[25.0, 10.0]
    } else {
        &[7.0, 3.0]
    }
}

pub fn run(ctx: &Ctx, scale: &Scale) {
    run_adaptation(
        ctx,
        scale,
        "Fig 11 — adaptation of the full pipeline (with round-robin redistribution)",
        "fig11_adapt_full.csv",
        |target| {
            PipelineConfig::default()
                .with_redistribution(Redistribution::RoundRobin)
                .with_target(target)
        },
        targets,
    );
}

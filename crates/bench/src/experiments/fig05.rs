//! Fig 5: rendering time with load redistribution — NONE, random SHUFFLE,
//! and round-robin driven by each metric's scores, at 64 and 400 ranks,
//! with no block reduction.

use apc_core::{PipelineConfig, Redistribution};

use crate::experiments::Ctx;
use crate::harness::{print_table, stats, write_csv, Scale};

pub fn run(ctx: &Ctx, scale: &Scale) {
    let metrics = ["LEA", "FPZIP", "ITL", "RANGE", "VAR", "TRILIN"];
    let mut csv = Vec::new();
    for &nranks in &scale.rank_counts {
        let prepared = ctx.at(nranks);
        let iters = prepared.subset(scale.component_iters);
        let mut rows = Vec::new();

        let mut run_case = |label: &str, config: PipelineConfig| {
            let reports = prepared.run(config, &iters);
            let (avg, min, max) = stats(reports.iter().map(|r| r.t_render));
            let (comm, _, _) = stats(reports.iter().map(|r| r.t_redistribute));
            rows.push(vec![
                label.to_string(),
                format!("{avg:.1}"),
                format!("{min:.1}"),
                format!("{max:.1}"),
                format!("{comm:.2}"),
            ]);
            csv.push(format!(
                "{nranks},{label},{avg:.4},{min:.4},{max:.4},{comm:.4}"
            ));
            avg
        };

        let t_none = run_case("NONE", PipelineConfig::default());
        let t_shuffle = run_case(
            "SHUFFLE",
            PipelineConfig::default()
                .with_redistribution(Redistribution::RandomShuffle { seed: scale.seed }),
        );
        let mut t_rr_best = f64::INFINITY;
        for m in metrics {
            let t = run_case(
                m,
                PipelineConfig::default()
                    .with_metric(m)
                    .with_redistribution(Redistribution::RoundRobin),
            );
            t_rr_best = t_rr_best.min(t);
        }

        print_table(
            &format!("Fig 5 — rendering time with redistribution, {nranks} ranks (s)"),
            &["strategy", "avg", "min", "max", "comm"],
            &rows,
        );
        println!(
            "speedup from redistribution alone: {:.1}x (shuffle) / {:.1}x (round-robin); \
             paper: {}x at {} ranks",
            t_none / t_shuffle,
            t_none / t_rr_best,
            if nranks == 64 { 4 } else { 5 },
            nranks
        );
    }
    let path = write_csv(
        "fig05_redistribution.csv",
        "nranks,strategy,avg_render,min_render,max_render,avg_comm",
        &csv,
    );
    println!("csv: {}", path.display());
}

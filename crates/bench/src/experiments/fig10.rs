//! Fig 10: dynamic adaptation *without* redistribution — rendering time
//! and reduction percentage per iteration while converging to a target.
//!
//! Paper targets: 120/60/20 s at 64 ranks, 30/15/7 s at 400 ranks.

// apc-lint: allow-file(unwrap-in-lib): bench harness — panicking on a bad run or I/O error is the failure mode we want
use apc_core::PipelineConfig;

use crate::experiments::Ctx;
use crate::harness::{write_csv, Scale};

pub fn targets(nranks: usize) -> &'static [f64] {
    if nranks == 64 {
        &[120.0, 60.0, 20.0]
    } else {
        &[30.0, 15.0, 7.0]
    }
}

/// Shared implementation for Figs 10 and 11.
pub(crate) fn run_adaptation(
    ctx: &Ctx,
    scale: &Scale,
    title: &str,
    csv_name: &str,
    config_for_target: impl Fn(f64) -> PipelineConfig,
    targets_for: impl Fn(usize) -> &'static [f64],
) {
    let mut csv = Vec::new();
    for &nranks in &scale.rank_counts {
        let prepared = ctx.at(nranks);
        let iters =
            prepared.iterations[..scale.adapt_iters.min(prepared.iterations.len())].to_vec();
        println!("\n== {title}, {nranks} ranks ==");
        // All targets replay through one rank session.
        let configs: Vec<PipelineConfig> = targets_for(nranks)
            .iter()
            .map(|&t| config_for_target(t))
            .collect();
        let swept = prepared.run_sweep(&configs, &iters);
        for (&target, reports) in targets_for(nranks).iter().zip(&swept) {
            let times: Vec<f64> = reports.iter().map(|r| r.t_total).collect();
            let percents: Vec<f64> = reports.iter().map(|r| r.percent_reduced).collect();
            // Convergence diagnostics over the second half of the run.
            let half = times.len() / 2;
            let settled = &times[half..];
            let mean: f64 = settled.iter().sum::<f64>() / settled.len() as f64;
            let within = settled
                .iter()
                .filter(|t| (**t - target).abs() / target < 0.5)
                .count();
            println!(
                "target {target:>6.1} s: settled mean {mean:>7.2} s, \
                 {within}/{} late iterations within 50% of target, final p = {:.0}%",
                settled.len(),
                percents.last().expect("non-empty run")
            );
            for (i, r) in reports.iter().enumerate() {
                csv.push(format!(
                    "{nranks},{target},{i},{:.4},{:.2}",
                    r.t_total, r.percent_reduced
                ));
            }
        }
    }
    let path = write_csv(csv_name, "nranks,target,iteration,t_total,percent", &csv);
    println!("csv: {}", path.display());
}

pub fn run(ctx: &Ctx, scale: &Scale) {
    run_adaptation(
        ctx,
        scale,
        "Fig 10 — adaptation without redistribution",
        "fig10_adapt_no_redist.csv",
        |target| PipelineConfig::default().with_target(target),
        targets,
    );
}

//! Fig 7: rendering time (avg/min/max over the iterations) as a function
//! of the reduction percentage, no redistribution.
//!
//! The paper's key shape: the curve stays *flat* until a majority of
//! blocks are reduced, because high-scored blocks cluster on a few ranks
//! whose load only shrinks once the percentage reaches their blocks — and
//! because most blocks are transparent to the isosurface anyway (§V-D).

// apc-lint: allow-file(unwrap-in-lib): bench harness — panicking on a bad run or I/O error is the failure mode we want
use apc_core::PipelineConfig;

use crate::experiments::Ctx;
use crate::harness::{print_table, stats, write_csv, Scale};

pub fn run(ctx: &Ctx, scale: &Scale) {
    let mut csv = Vec::new();
    for &nranks in &scale.rank_counts {
        let prepared = ctx.at(nranks);
        let iters = prepared.subset(scale.component_iters);
        let mut rows = Vec::new();
        let mut series = Vec::new();
        // The whole percentage sweep replays through one rank session.
        let configs: Vec<PipelineConfig> = scale
            .sweep
            .iter()
            .map(|&p| PipelineConfig::default().with_fixed_percent(p))
            .collect();
        let swept = prepared.run_sweep(&configs, &iters);
        for (&p, reports) in scale.sweep.iter().zip(&swept) {
            let (avg, min, max) = stats(reports.iter().map(|r| r.t_render));
            rows.push(vec![
                format!("{p:.0}"),
                format!("{avg:.1}"),
                format!("{min:.1}"),
                format!("{max:.1}"),
            ]);
            csv.push(format!("{nranks},{p},{avg:.4},{min:.4},{max:.4}"));
            series.push((p, avg));
        }
        print_table(
            &format!("Fig 7 — rendering time vs percentage, {nranks} ranks (s)"),
            &["percent", "avg", "min", "max"],
            &rows,
        );
        // Quantify the flat-then-drop shape: time at 50% vs 0% and 100%.
        let at = |p: f64| {
            series
                .iter()
                .min_by(|a, b| (a.0 - p).abs().total_cmp(&(b.0 - p).abs()))
                .expect("non-empty sweep")
                .1
        };
        println!(
            "shape check: t(50%)/t(0%) = {:.2} (paper: near 1 — flat), \
             t(100%)/t(0%) = {:.3} (paper: ~1/160)",
            at(50.0) / at(0.0),
            at(100.0) / at(0.0)
        );
    }
    let path = write_csv(
        "fig07_percent_sweep.csv",
        "nranks,percent,avg_render,min_render,max_render",
        &csv,
    );
    println!("csv: {}", path.display());
}

//! Fig 4: scoremaps — greyscale plan views of per-block scores (darker =
//! higher) next to the original reflectivity field.

// apc-lint: allow-file(unwrap-in-lib): bench harness — panicking on a bad run or I/O error is the failure mode we want
use apc_cm1::ReflectivityDataset;
use apc_metrics::standard_six;
use apc_render::{render_scoremap, Colormap};

use crate::harness::{out_dir, Scale};

pub fn run(scale: &Scale) {
    let dataset = ReflectivityDataset::paper_scaled(64, scale.seed).expect("dataset");
    let it = dataset.sample_iterations(3)[1];
    let dir = out_dir();

    // (a) the original dBZ field (composite reflectivity plan view).
    let field = dataset.field(it);
    let cmap = Colormap::reflectivity();
    cmap.render_column_max(&field)
        .write_ppm(&dir.join("fig04a_original_dbz.ppm"))
        .expect("write original");

    // (b..g) one scoremap per metric.
    println!("\n== Fig 4 — scoremaps (darker = higher score) ==");
    for metric in standard_six() {
        let mut scores = Vec::with_capacity(dataset.decomp().n_blocks());
        for rank in 0..dataset.decomp().nranks() {
            for block in dataset.rank_blocks(it, rank) {
                scores.push((block.id, metric.score(&block.samples(), block.dims())));
            }
        }
        let img = render_scoremap(dataset.decomp(), &scores, 12);
        let name = format!("fig04_scoremap_{}.pgm", metric.name().to_lowercase());
        img.write_pgm(&dir.join(&name)).expect("write scoremap");
        // Quantify locality: share of total score mass inside the storm
        // quarter of the domain (the paper's visual argument, made a number).
        let total: f64 = scores.iter().map(|(_, s)| s).sum();
        let storm_center = dataset.storm().center(dataset.storm().tau(it));
        let gb = dataset.decomp().global_block_grid();
        let hot: f64 = scores
            .iter()
            .filter(|(id, _)| {
                let (bi, bj, _) = dataset.decomp().block_coords(*id);
                let x = (bi as f32 + 0.5) / gb.nx as f32;
                let y = (bj as f32 + 0.5) / gb.ny as f32;
                (x - storm_center[0]).abs() < 0.15 && (y - storm_center[1]).abs() < 0.15
            })
            .map(|(_, s)| s)
            .sum();
        println!(
            "{:>7}: {:>5.1}% of score mass within +-0.15 of the storm center -> {}",
            metric.name(),
            100.0 * hot / total.max(1e-30),
            name
        );
    }
    println!("images: {}", dir.display());
}

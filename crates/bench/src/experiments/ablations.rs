//! Ablations of design choices the paper discusses in text (DESIGN.md §4).

// apc-lint: allow-file(unwrap-in-lib): bench harness — panicking on a bad run or I/O error is the failure mode we want
use std::time::Instant;

use apc_cm1::ReflectivityDataset;
use apc_comm::NetModel;
use apc_core::{adapt_percent, PipelineConfig, Redistribution, SortStrategy};
use apc_metrics::{spearman, BlockScorer, Entropy};

use crate::experiments::Ctx;
use crate::harness::{print_table, stats, write_csv, Scale};

/// §IV-B-c: entropy histogram bin count — 32 vs 256 vs 1,024. The paper
/// picked 256 ("better discrimination among blocks for a good
/// performance"); we report the discrimination (distinct scores and rank
/// agreement with 256 bins) and the kernel cost per bin count.
pub fn entropy_bins(scale: &Scale) {
    let dataset = ReflectivityDataset::paper_scaled(64, scale.seed).expect("dataset");
    let it = dataset.sample_iterations(3)[1];
    let blocks: Vec<_> = (0..dataset.decomp().nranks())
        .flat_map(|r| dataset.rank_blocks(it, r))
        .collect();

    let reference: Vec<f64> = {
        let e = Entropy::with_bins(256);
        blocks
            .iter()
            .map(|b| e.score(&b.samples(), b.dims()))
            .collect()
    };

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for bins in [32usize, 256, 1024] {
        let e = Entropy::with_bins(bins);
        // apc-lint: allow(wall-clock): measuring the harness's real elapsed time is this bench's purpose
        let t0 = Instant::now();
        let scores: Vec<f64> = blocks
            .iter()
            .map(|b| e.score(&b.samples(), b.dims()))
            .collect();
        let wall = t0.elapsed().as_secs_f64();
        let mut distinct = scores.clone();
        distinct.sort_by(f64::total_cmp);
        distinct.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        let rho = spearman(&scores, &reference);
        rows.push(vec![
            bins.to_string(),
            distinct.len().to_string(),
            format!("{rho:+.3}"),
            format!("{:.2}", wall),
        ]);
        csv.push(format!("{bins},{},{rho:.4},{wall:.4}", distinct.len()));
    }
    print_table(
        "Ablation — ITL histogram bin count (6400 blocks)",
        &["bins", "distinct scores", "rho vs 256", "kernel wall (s)"],
        &rows,
    );
    let path = write_csv(
        "ablation_entropy_bins.csv",
        "bins,distinct_scores,spearman_vs_256,kernel_wall",
        &csv,
    );
    println!("csv: {}", path.display());
}

/// §IV-C: gather-sort-broadcast (the paper's choice) vs a parallel sample
/// sort. At the paper's block counts the sort is negligible either way —
/// this quantifies the crossover argument.
pub fn sort_strategy(ctx: &Ctx, scale: &Scale) {
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &nranks in &scale.rank_counts {
        let prepared = ctx.at(nranks);
        let iters = prepared.subset(scale.component_iters.min(3));
        for (label, strat) in [
            ("gather-sort-bcast", SortStrategy::GatherSortBroadcast),
            ("sample-sort", SortStrategy::SampleSort),
        ] {
            let config = PipelineConfig {
                sort: strat,
                ..Default::default()
            };
            let reports = prepared.run(config, &iters);
            let (avg, _, _) = stats(reports.iter().map(|r| r.t_sort));
            rows.push(vec![
                nranks.to_string(),
                label.to_string(),
                format!("{avg:.4}"),
            ]);
            csv.push(format!("{nranks},{label},{avg:.6}"));
        }
    }
    print_table(
        "Ablation — global sort strategy (avg sort-step time, s)",
        &["ranks", "strategy", "t_sort"],
        &rows,
    );
    let path = write_csv("ablation_sort.csv", "nranks,strategy,t_sort", &csv);
    println!("csv: {}", path.display());
}

/// §VI: "platforms with lower network performance" — rerun the
/// redistribution experiment on a GigE-like network.
pub fn slow_network(ctx: &Ctx, scale: &Scale) {
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &nranks in &scale.rank_counts {
        let prepared = ctx.at(nranks);
        let iters = prepared.subset(scale.component_iters.min(3));
        for (label, net) in [
            ("gemini", NetModel::blue_waters().for_paper_scale()),
            ("gige", NetModel::gigabit_ethernet().for_paper_scale()),
        ] {
            let config = PipelineConfig::default().with_redistribution(Redistribution::RoundRobin);
            let reports = prepared.run_on(config, &iters, net);
            let (comm, _, _) = stats(reports.iter().map(|r| r.t_redistribute));
            let (render, _, _) = stats(reports.iter().map(|r| r.t_render));
            rows.push(vec![
                nranks.to_string(),
                label.to_string(),
                format!("{comm:.3}"),
                format!("{render:.1}"),
                format!("{:.1}%", 100.0 * comm / (comm + render)),
            ]);
            csv.push(format!("{nranks},{label},{comm:.5},{render:.4}"));
        }
    }
    print_table(
        "Ablation — network sensitivity of redistribution (s)",
        &[
            "ranks",
            "network",
            "t_redistribute",
            "t_render",
            "comm share",
        ],
        &rows,
    );
    let path = write_csv(
        "ablation_network.csv",
        "nranks,network,t_comm,t_render",
        &csv,
    );
    println!("csv: {}", path.display());
}

/// §IV-C outlook: reduction lattice size. The paper keeps 2×2×2 corners and
/// defers "more elaborate downsampling strategies" to future work; this
/// sweeps k ∈ {2, 3, 4} and reports the render-time / fidelity trade-off
/// (fidelity = mean reconstruction MSE over the reduced blocks).
pub fn downsample_size(ctx: &Ctx, scale: &Scale) {
    let prepared = ctx.at(scale.rank_counts[0]);
    let iters = prepared.subset(scale.component_iters.min(3));
    let dataset = &prepared.dataset;

    // Fidelity: reconstruction error over a sample of storm blocks.
    let it = iters[iters.len() / 2];
    let sample: Vec<_> = (0..dataset.decomp().n_blocks())
        .step_by((dataset.decomp().n_blocks() / 64).max(1))
        .map(|id| dataset.block(it, id as u32))
        .collect();

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for keep in [2usize, 3, 4] {
        let config = PipelineConfig::default()
            .with_fixed_percent(95.0)
            .with_reduce_keep(keep);
        let reports = prepared.run(config, &iters);
        let (t_render, _, _) = stats(reports.iter().map(|r| r.t_render));
        let mse: f64 = sample
            .iter()
            .map(|b| {
                let rec = b.downsampled(keep).samples().to_vec();
                b.samples()
                    .iter()
                    .zip(&rec)
                    .map(|(a, r)| ((a - r) as f64).powi(2))
                    .sum::<f64>()
                    / rec.len() as f64
            })
            .sum::<f64>()
            / sample.len() as f64;
        let bytes = sample[0].downsampled(keep).nbytes();
        rows.push(vec![
            format!("{keep}x{keep}x{keep}"),
            format!("{t_render:.2}"),
            format!("{mse:.1}"),
            bytes.to_string(),
        ]);
        csv.push(format!("{keep},{t_render:.4},{mse:.4},{bytes}"));
    }
    print_table(
        "Ablation — reduction lattice size (95% reduced, 64 ranks)",
        &[
            "lattice",
            "t_render (s)",
            "reconstruction MSE (dBZ^2)",
            "bytes/block",
        ],
        &rows,
    );
    let path = write_csv(
        "ablation_downsample.csv",
        "keep,t_render,reconstruction_mse,bytes_per_block",
        &csv,
    );
    println!("csv: {}", path.display());
}

/// Controller variants: paper Algorithm 1 vs a naive fixed-step controller,
/// replayed against a recorded t(p) response with the pipeline's own
/// log-normal noise. Reports iterations-to-converge and mean |error| after
/// convergence.
pub fn controller_variants(ctx: &Ctx, scale: &Scale) {
    // Record the t(p) response once from the prepared 64-rank dataset.
    let prepared = ctx.at(scale.rank_counts[0]);
    let iters = prepared.subset(2);
    let probe: Vec<(f64, f64)> = [0.0, 50.0, 80.0, 90.0, 95.0, 100.0]
        .iter()
        .map(|&p| {
            let mut config = PipelineConfig::default().with_fixed_percent(p);
            config.cost = config.cost.deterministic();
            let r = prepared.run(config, &iters[..1]);
            (p, r[0].t_total)
        })
        .collect();
    let response = |p: f64| -> f64 {
        // Piecewise-linear interpolation of the probe.
        let mut prev = probe[0];
        for &(pp, tt) in &probe[1..] {
            if p <= pp {
                let f = (p - prev.0) / (pp - prev.0).max(1e-9);
                return prev.1 + f * (tt - prev.1);
            }
            prev = (pp, tt);
        }
        prev.1
    };
    let noise = |i: usize| 1.0 + 0.06 * ((i as f64 * 2.399).sin()); // ±6%, deterministic

    let target = response(0.0) * 0.25;
    let n_iters = 40;
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for variant in ["algorithm1", "fixed-step-5"] {
        let mut p = 0.0f64;
        let mut prev = (0.0f64, 100.0f64);
        let mut errs = Vec::new();
        let mut converged_at = None;
        for i in 0..n_iters {
            let t = response(p) * noise(i);
            errs.push(((t - target) / target).abs());
            if converged_at.is_none() && errs.last().copied().expect("pushed") < 0.25 {
                converged_at = Some(i);
            }
            let next = match variant {
                "algorithm1" => {
                    let next = adapt_percent(target, prev.0, prev.1, t, p);
                    prev = (t, p);
                    next
                }
                _ => {
                    // Naive: step 5 points toward the target.
                    if t > target {
                        (p + 5.0).min(100.0)
                    } else {
                        (p - 5.0).max(0.0)
                    }
                }
            };
            p = next;
        }
        let tail = &errs[n_iters / 2..];
        let mean_err = tail.iter().sum::<f64>() / tail.len() as f64;
        rows.push(vec![
            variant.to_string(),
            converged_at.map_or("never".into(), |i| i.to_string()),
            format!("{:.1}%", 100.0 * mean_err),
        ]);
        csv.push(format!(
            "{variant},{},{mean_err:.4}",
            converged_at.map_or(-1i64, |i| i as i64)
        ));
    }
    print_table(
        "Ablation — controller variants (converge to 25% of unreduced time)",
        &["controller", "first iter within 25%", "late mean |error|"],
        &rows,
    );
    let path = write_csv(
        "ablation_controller.csv",
        "controller,converged_at,late_mean_err",
        &csv,
    );
    println!("csv: {}", path.display());
}

//! Table I: computation time of the scoring metrics on 64 and 400 cores
//! for the paper's workload (16,000 blocks of 55×55×38 floats).
//!
//! Two columns per scale: the *model* time (the calibrated per-point cost
//! the pipeline's virtual clock charges) and a *measured* extrapolation
//! (this machine's real kernel throughput on sampled storm blocks, scaled
//! to the paper's per-core workload). The paper's own numbers are printed
//! alongside for comparison.

// apc-lint: allow-file(unwrap-in-lib): bench harness — panicking on a bad run or I/O error is the failure mode we want
use std::time::Instant;

use apc_cm1::ReflectivityDataset;
use apc_metrics::standard_six;

use crate::harness::{print_table, write_csv, Scale};

/// Paper Table I (seconds), for the comparison column.
const PAPER: &[(&str, f64, f64)] = &[
    ("LEA", 2.03, 0.32),
    ("FPZIP", 8.85, 1.42),
    ("ITL", 13.30, 1.97),
    ("RANGE", 7.03, 1.12),
    ("VAR", 1.41, 0.23),
    ("TRILIN", 14.30, 2.28),
];

/// Points per rank in the paper's workload.
fn paper_points_per_rank(nranks: usize) -> f64 {
    16_000.0 * (55 * 55 * 38) as f64 / nranks as f64
}

pub fn run(scale: &Scale) {
    let dataset = ReflectivityDataset::paper_scaled(64, scale.seed).expect("dataset");
    let it = dataset.sample_iterations(3)[1];

    // Sample blocks spread over the domain (storm and clear air alike).
    let n_blocks = dataset.decomp().n_blocks();
    let sample: Vec<_> = (0..n_blocks)
        .step_by((n_blocks / 48).max(1))
        .map(|id| dataset.block(it, id as u32))
        .collect();
    let sample_points: usize = sample.iter().map(|b| b.dims().len()).sum();

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for metric in standard_six() {
        // Real kernel throughput on this machine.
        // apc-lint: allow(wall-clock): measuring the harness's real elapsed time is this bench's purpose
        let t0 = Instant::now();
        let mut sink = 0.0;
        for b in &sample {
            sink += metric.score(&b.samples(), b.dims());
        }
        let wall = t0.elapsed().as_secs_f64();
        std::hint::black_box(sink);
        let measured_per_point = wall / sample_points as f64;

        let mut row = vec![metric.name().to_string()];
        let mut csv_row = metric.name().to_string();
        for &nranks in &[64usize, 400] {
            let pts = paper_points_per_rank(nranks);
            let model = metric.cost_per_point() * pts;
            let measured = measured_per_point * pts;
            let paper = PAPER
                .iter()
                .find(|(n, _, _)| *n == metric.name())
                .map(|&(_, p64, p400)| if nranks == 64 { p64 } else { p400 })
                .unwrap_or(f64::NAN);
            row.push(format!("{model:.2}"));
            row.push(format!("{measured:.2}"));
            row.push(format!("{paper:.2}"));
            csv_row.push_str(&format!(",{model:.4},{measured:.4},{paper:.2}"));
        }
        rows.push(row);
        csv.push(csv_row);
    }

    print_table(
        "Table I — metric computation time (seconds)",
        &[
            "metric",
            "64c model",
            "64c measured",
            "64c paper",
            "400c model",
            "400c measured",
            "400c paper",
        ],
        &rows,
    );
    println!(
        "note: RANGE deviates from the paper by design — see DESIGN.md §5 \
         (our RANGE is a plain min/max scan)."
    );
    let path = write_csv(
        "table1_metric_times.csv",
        "metric,model_64,measured_64,paper_64,model_400,measured_400,paper_400",
        &csv,
    );
    println!("csv: {}", path.display());
}

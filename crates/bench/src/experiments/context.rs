//! Shared experiment context: one prepared dataset per rank count.

// apc-lint: allow-file(unwrap-in-lib): bench harness — panicking on a bad run or I/O error is the failure mode we want
use apc_comm::NetModel;

use crate::harness::{Prepared, Scale};

/// Prepared inputs for every rank count in the scale. Building this once
/// and sharing it across experiments amortizes the synthetic-CM1 data
/// generation the same way the paper amortizes its 3-day CM1 run by
/// replaying a stored dataset. Each [`Prepared`] also owns a persistent
/// rank session, so every figure's configuration sweep reuses one set of
/// rank threads (64 and 400 of them here) for the whole suite instead of
/// re-spawning them per configuration.
///
/// With `APC_DATASET` bound (see [`Scale::from_env`]) nothing is
/// generated at all: the single prepared input replays the stored
/// `apc-store` dataset, each rank lazily reading its own chunks.
pub struct Ctx {
    pub prepared: Vec<Prepared>,
}

impl Ctx {
    pub fn new(scale: &Scale) -> Self {
        if let Some(dir) = &scale.dataset {
            // Re-opening is a cheap metadata read; `Scale::from_env`
            // already validated the store and announced the replay.
            let stored = apc_cm1::open_dataset(dir)
                .unwrap_or_else(|e| panic!("APC_DATASET={}: {e}", dir.display()));
            let prepared = Prepared::from_store(
                stored,
                scale.exec,
                NetModel::blue_waters().for_paper_scale(),
            );
            return Self {
                prepared: vec![prepared],
            };
        }
        let prepared = scale
            .rank_counts
            .iter()
            .map(|&nranks| {
                let dataset = apc_cm1::ReflectivityDataset::paper_scaled(nranks, scale.seed)
                    .expect("paper-scaled decomposition");
                let iters = dataset.sample_iterations(scale.adapt_iters);
                eprintln!(
                    "[prep] generating {} iterations at {} ranks ...",
                    iters.len(),
                    nranks
                );
                Prepared::with_exec(nranks, scale.seed, iters, scale.exec)
            })
            .collect();
        Self { prepared }
    }

    /// The prepared input for a given rank count.
    pub fn at(&self, nranks: usize) -> &Prepared {
        self.prepared
            .iter()
            .find(|p| p.dataset.decomp().nranks() == nranks)
            .unwrap_or_else(|| panic!("no prepared dataset for {nranks} ranks"))
    }
}

//! Fig 12 (extension beyond the paper): staged — dedicated-core,
//! asynchronous — in situ vs the paper's synchronous pipeline, at **equal
//! total rank count**.
//!
//! The synchronous pipeline charges its whole cost to the simulation's
//! critical path every iteration; the staged mode dedicates a few ranks
//! to visualization and the simulation only pays scoring, enqueueing and
//! whatever backpressure the queues develop. This experiment sweeps the
//! sim:viz split, the queue depth and the backpressure policy, and
//! reports, per configuration:
//!
//! * mean end-to-end virtual iteration time (for staged runs: frame
//!   latency from last-producer-done to last-stager-done);
//! * mean **simulation-visible** in situ time — the number the paper's
//!   whole program is about (for the synchronous rows this *is* the
//!   pipeline time);
//! * mean simulation stall (queue-full wait) per iteration;
//! * dropped frame slices (`DropOldest`) and degraded stager-frames
//!   (`DegradeHarder`) over the run.
//!
//! The simulated solver is given the synchronous pipeline's mean
//! iteration time as its per-iteration compute, so the staged runs face
//! exactly the workload regime in which overlap has something to hide.

use apc_core::{BackpressurePolicy, PipelineConfig, StagedParams};

use crate::experiments::Ctx;
use crate::harness::{print_table, stats, write_csv, Scale};

fn policies() -> [(&'static str, BackpressurePolicy); 3] {
    [
        ("block", BackpressurePolicy::Block),
        ("drop-oldest", BackpressurePolicy::DropOldest),
        (
            "degrade+25",
            BackpressurePolicy::DegradeHarder { boost: 25.0 },
        ),
    ]
}

/// Staging-rank counts evaluated for a given total rank count: roughly
/// 1:8 and 1:4 viz shares, always leaving at least one simulation rank.
fn viz_choices(nranks: usize) -> Vec<usize> {
    let mut v = vec![(nranks / 8).max(1), (nranks / 4).max(1)];
    v.dedup();
    v.retain(|&viz| viz < nranks);
    v
}

pub fn run(ctx: &Ctx, scale: &Scale) {
    let mut csv = Vec::new();
    for &nranks in &scale.rank_counts {
        let prepared = ctx.at(nranks);
        let iters =
            prepared.iterations[..scale.adapt_iters.min(prepared.iterations.len())].to_vec();
        let base = PipelineConfig::default().with_fixed_percent(40.0);

        let sync = prepared.run(base.clone(), &iters);
        let (sync_mean, _, _) = stats(sync.iter().map(|r| r.t_total));
        let sim_compute = sync_mean;

        println!(
            "\n== Fig 12 — staged (dedicated-core) vs synchronous in situ, {nranks} ranks, \
             {} iterations, solver compute {sim_compute:.1} s/iter ==",
            iters.len()
        );
        let mut rows = Vec::new();
        rows.push(vec![
            "sync".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            format!("{sync_mean:.2}"),
            format!("{sync_mean:.2}"),
            "-".into(),
            "0".into(),
            "0".into(),
            "-".into(),
        ]);
        csv.push(format!(
            "{nranks},sync,0,0,none,{sync_mean:.6},{sync_mean:.6},0,0,0,-"
        ));

        for viz in viz_choices(nranks) {
            for depth in [1usize, 4] {
                for (pname, policy) in policies() {
                    let params =
                        StagedParams::new(viz, depth, policy).with_sim_compute(sim_compute);
                    let run = prepared.run_staged(base.clone().with_staged(params), &iters);
                    let e2e = run.mean_latency();
                    let visible = run.mean_sim_visible();
                    let stall = run.mean_sim_stall();
                    // One entry per stager, explicit zeros included, so
                    // the column stays aligned across rank counts and
                    // policies (a fully-shedding DropOldest stager still
                    // shows up — as a 0).
                    let per_stager = run
                        .blocks_by_stager()
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<String>>()
                        .join(";");
                    rows.push(vec![
                        "staged".into(),
                        format!("{}:{}", nranks - viz, viz),
                        format!("{depth}"),
                        pname.into(),
                        format!("{e2e:.2}"),
                        format!("{visible:.2}"),
                        format!("{stall:.2}"),
                        format!("{}", run.total_dropped()),
                        format!("{}", run.total_degraded()),
                        summarize_per_stager(&run.blocks_by_stager()),
                    ]);
                    csv.push(format!(
                        "{nranks},staged,{viz},{depth},{pname},{e2e:.6},{visible:.6},\
                         {stall:.6},{},{},{per_stager}",
                        run.total_dropped(),
                        run.total_degraded()
                    ));
                }
            }
        }
        print_table(
            "mean virtual seconds per iteration (sim-visible is the headline)",
            &[
                "mode",
                "sim:viz",
                "depth",
                "policy",
                "e2e iter",
                "sim-visible",
                "stall",
                "dropped",
                "degraded",
                "blocks/stager",
            ],
            &rows,
        );
    }
    let path = write_csv(
        "fig12_staged_vs_sync.csv",
        "nranks,mode,viz_ranks,queue_depth,policy,mean_t_total,mean_sim_visible,\
         mean_sim_stall,slices_dropped,stagers_degraded,blocks_by_stager",
        &csv,
    );
    println!("csv: {}", path.display());
}

/// Compact `min..max (n)` display of the per-stager block totals (the CSV
/// carries the full `;`-joined vector).
fn summarize_per_stager(totals: &[usize]) -> String {
    let min = totals.iter().min().copied().unwrap_or(0);
    let max = totals.iter().max().copied().unwrap_or(0);
    format!("{min}..{max} ({})", totals.len())
}

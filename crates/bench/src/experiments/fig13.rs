//! Fig 13 (extension beyond the paper): the frame-serving layer under
//! client load.
//!
//! A staged run persists every rendered frame (`apc-serve`) and a pool of
//! simulated client ranks — co-scheduled in the same session — hammers
//! the stagers over the request/reply protocol while the frames are still
//! being produced. The experiment sweeps the client count (1 → 256, as
//! far as the rank budget allows) and the [`ServePolicy`], and reports,
//! per configuration:
//!
//! * **frames served per virtual second** of serving makespan — the
//!   throughput axis of the ROADMAP's "heavy traffic" story;
//! * **cache hit rate** of the stagers' LRU hot-frame caches (misses pay
//!   a virtual store-read);
//! * **p50 / p99 virtual service latency**, including whatever production
//!   wait a `WaitForFrame` reply absorbed;
//! * deferred and inexact reply counts — how each policy degrades when
//!   requests race production.
//!
//! The headline configuration is re-run and must replay byte-identically
//! (the serving engine is deterministic end to end); the bin prints the
//! check explicitly.

// apc-lint: allow-file(unwrap-in-lib): bench harness — panicking on a bad run or I/O error is the failure mode we want
use std::sync::Arc;

use apc_core::{
    BackpressurePolicy, FrameSink, PipelineConfig, ServeParams, ServePolicy, ServingRun,
    StagedParams,
};
use apc_store::{CodecKind, MemStore};

use crate::experiments::Ctx;
use crate::harness::{print_table, stats, write_csv, Scale};

/// Client-rank counts to evaluate, capped by what the rank budget allows
/// (at least one simulation rank must remain next to the stager pool).
fn client_counts(nranks: usize, viz: usize) -> Vec<usize> {
    [1usize, 4, 16, 64, 256]
        .into_iter()
        .filter(|&c| viz + c < nranks)
        .collect()
}

pub fn run(ctx: &Ctx, scale: &Scale) {
    // Serve from the largest prepared rank count: the client sweep needs
    // the rank headroom (at 400 ranks the 256-client row still leaves a
    // 136-rank simulation).
    let nranks = *scale
        .rank_counts
        .iter()
        .max()
        .expect("scale names at least one rank count");
    let prepared = ctx.at(nranks);
    let iters = prepared.iterations[..scale.adapt_iters.min(prepared.iterations.len())].to_vec();
    let viz = (nranks / 8).clamp(1, 8);
    let base = PipelineConfig::default().with_fixed_percent(40.0);

    // Give the solver the synchronous pipeline's mean iteration time, the
    // same workload regime fig12 measures overlap in.
    let sync = prepared.run(base.clone(), &iters);
    let (sim_compute, _, _) = stats(sync.iter().map(|r| r.t_total));

    let run_one = |clients: usize, policy: ServePolicy| -> ServingRun {
        let sink = FrameSink::new(
            Arc::new(MemStore::new()),
            &format!("fig13-{clients}-{}", policy.name()),
            CodecKind::Fpz,
        );
        let params = StagedParams::new(viz, 4, BackpressurePolicy::Block)
            .with_sim_compute(sim_compute)
            .with_persist(sink);
        let serve = ServeParams::new(clients, 8, policy)
            .with_think_time(1.0)
            .with_cache_bytes(256 << 10);
        prepared.run_staged_serving(base.clone().with_staged(params), &iters, &serve)
    };

    println!(
        "\n== Fig 13 — frame serving from one stager pool, {nranks} ranks ({viz} stagers), \
         {} iterations, solver compute {sim_compute:.1} s/iter ==",
        iters.len()
    );
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let counts = client_counts(nranks, viz);
    for &clients in &counts {
        for policy in [ServePolicy::WaitForFrame, ServePolicy::BestEffort] {
            let run = run_one(clients, policy);
            let fps = run.frames_per_virtual_second();
            let hit = run.cache_hit_rate();
            let p50 = run.latency_percentile(50.0);
            let p99 = run.latency_percentile(99.0);
            rows.push(vec![
                format!("{clients}"),
                policy.name().into(),
                format!("{}", run.requests.len()),
                format!("{}", run.frames_served()),
                format!("{fps:.2}"),
                format!("{:.1}%", hit * 100.0),
                format!("{p50:.2}"),
                format!("{p99:.2}"),
                format!("{}", run.total_deferred()),
                format!("{}", run.total_inexact()),
            ]);
            csv.push(format!(
                "{nranks},{viz},{clients},{},{},{},{fps:.6},{hit:.6},{p50:.6},{p99:.6},{},{}",
                policy.name(),
                run.requests.len(),
                run.frames_served(),
                run.total_deferred(),
                run.total_inexact()
            ));
        }
    }
    print_table(
        "frame serving vs client count and policy (latency in virtual seconds)",
        &[
            "clients",
            "policy",
            "requests",
            "frames",
            "frames/vs",
            "cache hit",
            "p50",
            "p99",
            "deferred",
            "inexact",
        ],
        &rows,
    );

    // Byte-determinism of the headline (largest) configuration: the whole
    // serving run — reports, latencies, cache stats — must replay
    // identically.
    if let Some(&clients) = counts.last() {
        let a = run_one(clients, ServePolicy::WaitForFrame);
        let b = run_one(clients, ServePolicy::WaitForFrame);
        assert_eq!(
            a, b,
            "serving runs must replay byte-identically at {clients} clients"
        );
        println!(
            "determinism: {clients}-client serving run replayed byte-identically \
             ({} requests) ✓",
            a.requests.len()
        );
    }

    let path = write_csv(
        "fig13_frame_serving.csv",
        "nranks,viz_ranks,clients,policy,requests,frames_served,frames_per_vsecond,\
         cache_hit_rate,p50_latency,p99_latency,deferred,inexact",
        &csv,
    );
    println!("csv: {}", path.display());
}

//! Fig 8: redistribution (communication) time as a function of the
//! reduction percentage, round-robin vs random shuffle, LEA metric (the
//! paper's §V-E setup). More reduction ⇒ less data to exchange ⇒ shorter
//! communication.

// apc-lint: allow-file(unwrap-in-lib): bench harness — panicking on a bad run or I/O error is the failure mode we want
use apc_core::{PipelineConfig, Redistribution};

use crate::experiments::Ctx;
use crate::harness::{print_table, stats, write_csv, Scale};

pub fn run(ctx: &Ctx, scale: &Scale) {
    let mut csv = Vec::new();
    for &nranks in &scale.rank_counts {
        let prepared = ctx.at(nranks);
        let iters = prepared.subset(scale.component_iters);
        let mut rows = Vec::new();
        let mut first_last: Vec<(f64, f64)> = Vec::new();
        for &p in &scale.sweep {
            let mut row = vec![format!("{p:.0}")];
            let mut pair = (0.0, 0.0);
            for (idx, (label, strat)) in [
                ("RR", Redistribution::RoundRobin),
                (
                    "SHUFFLE",
                    Redistribution::RandomShuffle { seed: scale.seed },
                ),
            ]
            .into_iter()
            .enumerate()
            {
                let reports = prepared.run(
                    PipelineConfig::default()
                        .with_metric("LEA")
                        .with_redistribution(strat)
                        .with_fixed_percent(p),
                    &iters,
                );
                let (avg, min, max) = stats(reports.iter().map(|r| r.t_redistribute));
                row.push(format!("{avg:.3}"));
                csv.push(format!("{nranks},{label},{p},{avg:.5},{min:.5},{max:.5}"));
                if idx == 0 {
                    pair.0 = avg;
                } else {
                    pair.1 = avg;
                }
            }
            first_last.push(pair);
            rows.push(row);
        }
        print_table(
            &format!("Fig 8 — redistribution time vs percentage, {nranks} ranks (s)"),
            &["percent", "round-robin", "random"],
            &rows,
        );
        let head = first_last.first().expect("sweep non-empty");
        let tail = first_last.last().expect("sweep non-empty");
        println!(
            "shape check: comm time decreases with reduction \
             (RR {:.3} s -> {:.3} s; paper: ~1.2 -> ~0 s at 64 ranks, ~0.6 -> ~0 at 400)",
            head.0, tail.0
        );
    }
    let path = write_csv(
        "fig08_comm_time.csv",
        "nranks,strategy,percent,avg_comm,min_comm,max_comm",
        &csv,
    );
    println!("csv: {}", path.display());
}

//! Fig 3: pairwise comparison of block orderings produced by the six
//! metrics (15 scatter plots in the paper; here the rank pairs as CSV plus
//! the Spearman correlation of every pair).

// apc-lint: allow-file(unwrap-in-lib): bench harness — panicking on a bad run or I/O error is the failure mode we want
use apc_cm1::ReflectivityDataset;
use apc_metrics::{ranks_by_score, spearman, standard_six};

use crate::harness::{print_table, write_csv, Scale};

pub fn run(scale: &Scale) {
    let dataset = ReflectivityDataset::paper_scaled(64, scale.seed).expect("dataset");
    let it = dataset.sample_iterations(3)[1];
    let metrics = standard_six();

    // Score every block with every metric (one pass over the data per
    // metric — exactly the pipeline's step 1 on a snapshot).
    let n = dataset.decomp().n_blocks();
    let mut scores: Vec<Vec<f64>> = vec![Vec::with_capacity(n); metrics.len()];
    for rank in 0..dataset.decomp().nranks() {
        for block in dataset.rank_blocks(it, rank) {
            let samples = block.samples();
            for (m, metric) in metrics.iter().enumerate() {
                scores[m].push(metric.score(&samples, block.dims()));
            }
        }
    }
    // Blocks arrive rank-major; scores index == visit order, which is the
    // same for every metric, so rank correlations are unaffected.
    let ranks: Vec<Vec<usize>> = scores.iter().map(|s| ranks_by_score(s)).collect();

    // CSV: one row per block with its rank under each metric.
    let header = {
        let names: Vec<&str> = metrics.iter().map(|m| m.name()).collect();
        format!("block,{}", names.join(","))
    };
    let rows: Vec<String> = (0..n)
        .map(|b| {
            let cols: Vec<String> = ranks.iter().map(|r| r[b].to_string()).collect();
            format!("{b},{}", cols.join(","))
        })
        .collect();
    let path = write_csv("fig03_metric_ranks.csv", &header, &rows);

    // Spearman matrix.
    let mut table = Vec::new();
    for (i, mi) in metrics.iter().enumerate() {
        let mut row = vec![mi.name().to_string()];
        for (j, _mj) in metrics.iter().enumerate() {
            row.push(format!("{:+.3}", spearman(&scores[i], &scores[j])));
        }
        table.push(row);
    }
    let mut headers: Vec<&str> = vec![""];
    headers.extend(metrics.iter().map(|m| m.name()));
    print_table(
        "Fig 3 — Spearman rank correlation between metrics",
        &headers,
        &table,
    );
    println!(
        "paper observations to check: all pairs agree on the flat blocks \
         (strong positive rho everywhere), VAR~TRILIN is among the highest pairs."
    );
    println!("csv: {}", path.display());
}

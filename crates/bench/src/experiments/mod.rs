//! One module per paper table/figure, plus ablations (DESIGN.md §4).

pub mod ablations;
pub mod context;
pub mod fig01;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod table1;

pub use context::Ctx;

//! Fig 1: rendering of the reflectivity field with original vs filtered
//! (all blocks reduced to 2×2×2) data — the motivating images.
//!
//! Produces four images under `target/experiments/`:
//! `fig01a_original_iso.ppm`, `fig01b_filtered_iso.ppm` (45 dBZ isosurface)
//! and `fig01c_original_cmap.ppm`, `fig01d_filtered_cmap.ppm` (colormap of
//! a low-level slice), plus the triangle counts and modeled render times
//! that back the paper's "50 seconds vs 1 second" observation.

// apc-lint: allow-file(unwrap-in-lib): bench harness — panicking on a bad run or I/O error is the failure mode we want
use apc_cm1::{ReflectivityDataset, DBZ_ISOVALUE};
use apc_grid::Field3;
use apc_render::{
    block_isosurface, marching_tetrahedra, Camera, Colormap, Framebuffer, IsoStats,
    RenderCostModel, TriangleMesh,
};

use crate::harness::{out_dir, Scale};

const IMG_W: usize = 880;
const IMG_H: usize = 660;

pub fn run(scale: &Scale) {
    let dataset = ReflectivityDataset::paper_scaled(64, scale.seed).expect("dataset");
    let it = dataset.sample_iterations(3)[1];
    let coords = dataset.coords();
    let field = dataset.field(it);

    // (a) original isosurface over the whole domain.
    let (orig_mesh, orig_stats) =
        marching_tetrahedra(field.as_slice(), field.dims(), DBZ_ISOVALUE, |i, j, k| {
            coords.position(i, j, k)
        });

    // (b) filtered: every block reduced to its 8 corners, then rendered.
    let mut filt_mesh = TriangleMesh::new();
    let mut filt_stats = IsoStats::default();
    let mut filtered_field = Field3::filled(field.dims(), apc_cm1::DBZ_MIN);
    for id in dataset.decomp().all_blocks() {
        let ext = dataset.decomp().block_extent(id);
        let block = apc_grid::Block::from_field(id, ext, &field).expect("block in domain");
        let reduced = block.reduced();
        let (mesh, stats) = block_isosurface(&reduced, coords, DBZ_ISOVALUE);
        filt_mesh.merge(&mesh);
        filt_stats.merge(stats);
        // Rebuild the reduced field for the colormap comparison (what a
        // visualization algorithm reconstructs, §IV-C).
        filtered_field
            .insert(ext, &reduced.samples())
            .expect("insert reconstruction");
    }

    // Render both meshes with the same camera.
    let (lo, hi) = coords.bounds();
    let cam = Camera::framing(
        apc_render::math::Vec3::from_array(lo),
        apc_render::math::Vec3::from_array(hi),
    );
    let sky = [12u8, 12, 24];
    let storm_white = [235u8, 235, 240];
    let mut fb = Framebuffer::new(IMG_W, IMG_H, sky);
    fb.draw_mesh(&orig_mesh, &cam, storm_white);
    let img_a = fb.into_image();
    let mut fb = Framebuffer::new(IMG_W, IMG_H, sky);
    fb.draw_mesh(&filt_mesh, &cam, storm_white);
    let img_b = fb.into_image();

    // (c)/(d) colormaps of a low-level slice.
    let cmap = Colormap::reflectivity();
    let k_plane = field.dims().nz / 8;
    let img_c = cmap.render_slice(&field, k_plane);
    let img_d = cmap.render_slice(&filtered_field, k_plane);

    let dir = out_dir();
    img_a
        .write_ppm(&dir.join("fig01a_original_iso.ppm"))
        .expect("write a");
    img_b
        .write_ppm(&dir.join("fig01b_filtered_iso.ppm"))
        .expect("write b");
    img_c
        .write_ppm(&dir.join("fig01c_original_cmap.ppm"))
        .expect("write c");
    img_d
        .write_ppm(&dir.join("fig01d_filtered_cmap.ppm"))
        .expect("write d");

    // The paper's headline for this figure: 50 s (original, 400 cores)
    // vs 1 s (filtered). Model the max-rank render time at 400 ranks.
    let model = RenderCostModel::default().deterministic();
    let ds400 = ReflectivityDataset::paper_scaled(400, scale.seed).expect("dataset@400");
    let mut t_orig_max: f64 = 0.0;
    let mut t_filt_max: f64 = 0.0;
    for rank in 0..400 {
        let mut orig = IsoStats::default();
        let mut filt = IsoStats::default();
        let mut nb = 0;
        for b in ds400.rank_blocks(it, rank) {
            let (_, s) = block_isosurface(&b, ds400.coords(), DBZ_ISOVALUE);
            orig.merge(s);
            let (_, s) = block_isosurface(&b.reduced(), ds400.coords(), DBZ_ISOVALUE);
            filt.merge(s);
            nb += 1;
        }
        t_orig_max = t_orig_max.max(model.render_time(orig, nb, 0));
        t_filt_max = t_filt_max.max(model.render_time(filt, nb, 0));
    }

    println!("\n== Fig 1 — original vs filtered data ==");
    println!(
        "original: {} triangles; filtered: {} triangles ({}x fewer)",
        orig_stats.triangles,
        filt_stats.triangles,
        orig_stats.triangles / filt_stats.triangles.max(1)
    );
    println!(
        "modeled render time @400 ranks: original {t_orig_max:.1} s vs filtered {t_filt_max:.1} s \
         (paper: 50 s vs 1 s)"
    );
    println!(
        "isosurface image difference (mean abs per channel): {:.2}",
        img_a.mean_abs_diff(&img_b)
    );
    println!(
        "colormap image difference (mean abs per channel): {:.2}",
        img_c.mean_abs_diff(&img_d)
    );
    println!("images: {}", dir.display());
}

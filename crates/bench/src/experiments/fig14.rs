//! Fig 14 (extension beyond the paper): standalone replay serving at
//! client fan-out.
//!
//! Unlike fig13 — where stagers answer requests *while* the simulation is
//! still producing frames — every rank in this session is either a replay
//! server or a client. The frames come from a persisted run synthesised
//! up front (`apc-replay`'s deterministic fixture); zero sim or stage
//! ranks participate. The experiment sweeps the client count
//! (64 → 4096) against the three routing modes:
//!
//! * **pinned** — each client is statically pinned to `client % nservers`,
//!   the naive deployment; every server ends up caching the whole hot set;
//! * **routed** — rendezvous hashing gives every frame key exactly one
//!   home, so the pool's aggregate cache is the union of disjoint shards;
//! * **routed+steal** — routing plus virtual-time request stealing: an
//!   idle server takes queued work from the most-loaded peer, replayed
//!   deterministically from the recorded arrival order.
//!
//! Arrivals follow a recorded bursty trace (calm/burst Poisson phases with
//! a sliding hot window); requests split into Premium (`WaitForFrame`
//! semantics — exact or a typed error) and Free (`BestEffort` — newest
//! earlier frame on a miss) QoS tiers with per-tier latency accounting.
//! The headline (largest) configuration is re-run in the same session and
//! must replay byte-identically, and routed+steal p99 must not exceed
//! pinned p99 at equal client count.

// apc-lint: allow-file(unwrap-in-lib): bench harness — panicking on a bad run or I/O error is the failure mode we want
use std::sync::Arc;

use apc_comm::{NetModel, Runtime};
use apc_core::{run_replay_serving_in_session, ReplayRun};
use apc_replay::{synth_run, ArrivalTrace, PoolParams, QosTier, RouteMode, TraceSpec};
use apc_serve::open_run;
use apc_store::{CodecKind, MemStore, StoreBackend};

use crate::harness::{print_table, write_csv, Scale};

const RUN_ID: &str = "fig14-replay";
const NSERVERS: usize = 16;
/// Per-server LRU budget, sized so a routed server holds its rendezvous
/// shard of the hot window while a pinned server thrashes on the full set.
const CACHE_BYTES: usize = 8 << 10;

/// Client fan-out sweep. The top entry is the acceptance bar: 4096 client
/// ranks served from a persisted run with zero live sim/stage ranks.
const CLIENT_SWEEP: &[usize] = &[64, 256, 1024, 4096];

fn fixture() -> (Arc<dyn StoreBackend>, Vec<usize>) {
    let iterations: Vec<usize> = (1..=32).map(|i| i * 100).collect();
    let backend: Arc<dyn StoreBackend> = Arc::new(MemStore::new());
    synth_run(
        Arc::clone(&backend),
        RUN_ID,
        &iterations,
        8,
        32,
        24,
        CodecKind::Fpz,
        Some(4),
    );
    (backend, iterations)
}

/// Requests per client, shrinking with fan-out so total request volume
/// grows sub-linearly (16k requests at the 4096-client headline).
fn requests_per_client(clients: usize) -> usize {
    (8192 / clients).clamp(4, 32)
}

/// Bursty arrival trace with per-client mean intervals scaled linearly in
/// the client count, holding the pool's aggregate offered load roughly
/// constant across the sweep.
fn trace_for(clients: usize, seed: u64, backend: &Arc<dyn StoreBackend>) -> ArrivalTrace {
    let spec = TraceSpec::new(clients, requests_per_client(clients), seed)
        .with_intervals(2.5e-5 * clients as f64, 2.5e-6 * clients as f64);
    let (_, manifest) = open_run(Arc::clone(backend), RUN_ID).unwrap();
    ArrivalTrace::generate(&spec, &manifest)
}

pub fn run(scale: &Scale) {
    let (backend, _iterations) = fixture();
    println!(
        "\n== Fig 14 — standalone replay serving, {NSERVERS} servers, zero sim/stage ranks, \
         clients {CLIENT_SWEEP:?} x {{pinned, routed, routed+steal}} =="
    );

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &clients in CLIENT_SWEEP {
        let tr = trace_for(clients, scale.seed, &backend);
        let mut session = Runtime::new(NSERVERS + clients, NetModel::blue_waters())
            .stack_size(512 << 10)
            .session();
        let mut run_mode = |mode: RouteMode| -> ReplayRun {
            let params = PoolParams::new(NSERVERS, mode).with_cache_bytes(CACHE_BYTES);
            run_replay_serving_in_session(
                &mut session,
                Arc::clone(&backend),
                RUN_ID,
                &tr,
                &params,
                scale.exec,
            )
        };

        let mut p99_by_mode = Vec::new();
        for mode in [
            RouteMode::Pinned,
            RouteMode::Routed,
            RouteMode::RoutedStealing,
        ] {
            let out = run_mode(mode);
            let hit = out.cache_hit_rate();
            let p50 = out.latency_percentile(50.0);
            let p99 = out.latency_percentile(99.0);
            let prem99 = out.tier_latency_percentile(QosTier::Premium, 99.0);
            let free99 = out.tier_latency_percentile(QosTier::Free, 99.0);
            p99_by_mode.push((mode, p99, out));
            let out = &p99_by_mode.last().unwrap().2;
            rows.push(vec![
                format!("{clients}"),
                mode.name().into(),
                format!("{}", out.requests.len()),
                format!("{}", out.frames_served()),
                format!("{}", out.stolen_total),
                format!("{:.1}%", hit * 100.0),
                format!("{p50:.4}"),
                format!("{p99:.4}"),
                format!("{prem99:.4}"),
                format!("{free99:.4}"),
            ]);
            csv.push(format!(
                "{NSERVERS},{clients},{},{},{},{},{hit:.6},{p50:.6},{p99:.6},{prem99:.6},{free99:.6}",
                mode.name(),
                out.requests.len(),
                out.frames_served(),
                out.stolen_total,
            ));
        }

        // Acceptance: at every client count, deterministic stealing must
        // not make the tail worse than the naive pinned deployment.
        let pinned_p99 = p99_by_mode[0].1;
        let steal_p99 = p99_by_mode[2].1;
        assert!(
            steal_p99 <= pinned_p99,
            "{clients} clients: routed+steal p99 ({steal_p99:.4}) exceeds pinned p99 \
             ({pinned_p99:.4})"
        );

        // Byte-determinism in-bin: replay the stealing run in the same
        // session and demand the identical ReplayRun — every latency,
        // every cache counter, every stolen request.
        if clients == *CLIENT_SWEEP.last().unwrap() {
            let again = run_mode(RouteMode::RoutedStealing);
            assert_eq!(
                again, p99_by_mode[2].2,
                "replay must be byte-identical at {clients} clients"
            );
            println!(
                "determinism: {clients}-client routed+steal run replayed byte-identically \
                 ({} requests, {} stolen) ✓",
                again.requests.len(),
                again.stolen_total
            );
        }
    }

    print_table(
        "replay fan-out vs routing mode (latency in virtual seconds)",
        &[
            "clients",
            "mode",
            "requests",
            "frames",
            "stolen",
            "cache hit",
            "p50",
            "p99",
            "premium p99",
            "free p99",
        ],
        &rows,
    );

    let path = write_csv(
        "fig14_replay_fanout.csv",
        "nservers,clients,mode,requests,frames_served,stolen,cache_hit_rate,\
         p50_latency,p99_latency,premium_p99,free_p99",
        &csv,
    );
    println!("csv: {}", path.display());
}

//! Fig 6: per-iteration rendering time at fixed reduction percentages
//! (no redistribution; VAR scores, as in the paper's §V-D).

use apc_core::PipelineConfig;

use crate::experiments::Ctx;
use crate::harness::{print_table, write_csv, Scale};

/// The paper's percentage sets per scale.
pub fn percent_set(nranks: usize) -> &'static [f64] {
    if nranks == 64 {
        &[0.0, 80.0, 90.0, 98.0, 100.0]
    } else {
        &[0.0, 90.0, 94.0, 98.0, 100.0]
    }
}

pub fn run(ctx: &Ctx, scale: &Scale) {
    let mut csv = Vec::new();
    for &nranks in &scale.rank_counts {
        let prepared = ctx.at(nranks);
        let iters = prepared.subset(scale.component_iters);
        let mut rows = Vec::new();
        let configs: Vec<PipelineConfig> = percent_set(nranks)
            .iter()
            .map(|&p| PipelineConfig::default().with_fixed_percent(p))
            .collect();
        let swept = prepared.run_sweep(&configs, &iters);
        for (&p, reports) in percent_set(nranks).iter().zip(&swept) {
            let mut row = vec![format!("{p:.0}%")];
            for r in reports {
                row.push(format!("{:.1}", r.t_render));
                csv.push(format!("{nranks},{p},{},{:.4}", r.iteration, r.t_render));
            }
            rows.push(row);
        }
        let mut headers: Vec<String> = vec!["reduced".to_string()];
        headers.extend(iters.iter().map(|it| format!("it{it}")));
        let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
        print_table(
            &format!("Fig 6 — per-iteration rendering time (s), {nranks} ranks"),
            &headers_ref,
            &rows,
        );
    }
    let path = write_csv(
        "fig06_fixed_percent.csv",
        "nranks,percent,iteration,t_render",
        &csv,
    );
    println!("csv: {}", path.display());
}

//! Fig 9: rendering time vs reduction percentage with redistribution
//! enabled or disabled (None / round-robin / random shuffle).
//!
//! Paper findings to reproduce: redistribution improves rendering time *and*
//! reduces its variability, and round-robin ≈ random (score-guided
//! placement buys nothing over statistical balancing).

use apc_core::{PipelineConfig, Redistribution};

use crate::experiments::Ctx;
use crate::harness::{print_table, stats, write_csv, Scale};

pub fn run(ctx: &Ctx, scale: &Scale) {
    let mut csv = Vec::new();
    for &nranks in &scale.rank_counts {
        let prepared = ctx.at(nranks);
        let iters = prepared.subset(scale.component_iters);
        let mut rows = Vec::new();
        let strategies = [
            ("NONE", Redistribution::None),
            ("RR", Redistribution::RoundRobin),
            (
                "SHUFFLE",
                Redistribution::RandomShuffle { seed: scale.seed },
            ),
        ];
        // The whole percent × strategy grid goes through one rank session,
        // flattened row-major (strategy fastest).
        let configs: Vec<PipelineConfig> = scale
            .sweep
            .iter()
            .flat_map(|&p| {
                strategies.iter().map(move |&(_, strat)| {
                    PipelineConfig::default()
                        .with_redistribution(strat)
                        .with_fixed_percent(p)
                })
            })
            .collect();
        let swept = prepared.run_sweep(&configs, &iters);
        for (&p, per_strategy) in scale.sweep.iter().zip(swept.chunks(strategies.len())) {
            let mut row = vec![format!("{p:.0}")];
            for ((label, _), reports) in strategies.iter().zip(per_strategy) {
                let (avg, min, max) = stats(reports.iter().map(|r| r.t_render));
                row.push(format!("{avg:.1} [{min:.1},{max:.1}]"));
                csv.push(format!("{nranks},{label},{p},{avg:.4},{min:.4},{max:.4}"));
            }
            rows.push(row);
        }
        print_table(
            &format!("Fig 9 — rendering time vs percentage and strategy, {nranks} ranks (s)"),
            &["percent", "none", "round-robin", "random"],
            &rows,
        );
    }
    let path = write_csv(
        "fig09_reduce_plus_redist.csv",
        "nranks,strategy,percent,avg_render,min_render,max_render",
        &csv,
    );
    println!("csv: {}", path.display());
}

//! Fig 15 (extension beyond the paper): performance-constrained serving
//! under a client-load ramp.
//!
//! The paper's Algorithm 1 keeps the *visualization pipeline* inside a
//! time budget by degrading how much data it renders. This experiment
//! points the same controller at the *serving* side: each of the 8
//! stagers runs a [`BudgetController`](apc_core::BudgetController) over a
//! sliding window of its observed virtual reply latencies, and the
//! controller's percent output selects a reply **fidelity ladder** —
//! full frame → lossy `Zfpx` re-encode → score-ranked block dropping →
//! header-only. As the client count ramps 16 → 1024 the per-stager queue
//! grows ~2 → ~128 requests per frame, and per-reply service cost is
//! dominated by a per-byte wire charge, so shrinking replies is the
//! only lever that shortens the tail.
//!
//! Two modes per ramp step:
//!
//! * **fixed** — no budget: every reply ships the full frame, the naive
//!   deployment whose p99 grows linearly with the ramp;
//! * **adaptive** — a per-stager latency budget: the controller walks
//!   the ladder exactly as far as the load requires.
//!
//! Acceptance, asserted in-bin: at the top of the ramp the fixed p99
//! exceeds the budget while the adaptive p99 stays within `budget · 1.1`;
//! a generous budget ships **zero** degraded replies (the controller
//! converges to 0%, not to a plateau above it); and the headline adaptive
//! run replays byte-identically in the same session.

// apc-lint: allow-file(unwrap-in-lib): bench harness — panicking on a bad run or I/O error is the failure mode we want
use std::sync::Arc;

use apc_cm1::{ReflectivityDataset, StormModel};
use apc_comm::{NetModel, Runtime};
use apc_core::{
    BackpressurePolicy, FrameSink, PipelineConfig, ServeParams, ServePolicy, ServingRun,
    StagedParams,
};
use apc_grid::{Dims3, DomainDecomp, ProcGrid};
use apc_store::{CodecKind, MemStore};

use crate::harness::{print_table, write_csv, Scale};

const NSIM: usize = 8;
const NSTAGE: usize = 8;
/// Client fan-out ramp. The top entry is the acceptance bar: 128 queued
/// requests per stager per frame.
const CLIENT_SWEEP: &[usize] = &[16, 64, 256, 1024];

/// Per-reply virtual service cost: a small fixed dispatch charge plus a
/// per-byte wire charge. The byte term dominates for full frames, so the
/// fidelity ladder has real leverage on the tail.
const SERVICE_BASE: f64 = 1e-4;
const REPLY_PER_BYTE: f64 = 2e-6;

/// Frames rendered over the run: enough post-ramp frames for both modes
/// to reach their steady state.
const ITERS: usize = 16;

/// The per-stager latency budget for the adaptive mode, sized so the
/// bottom of the ramp fits comfortably (no degradation) and the top
/// cannot fit at full fidelity (the ladder must engage). The floor the
/// ladder cannot shrink is the quota wait — a request arriving past the
/// current frame's quota waits roughly one frame period (~0.5 virtual
/// seconds at the top of the ramp) — so the budget sits above that floor
/// and well under the fixed mode's multi-second backlog tail.
const BUDGET: f64 = 0.8;

/// Per-client start stagger: client `c` comes online at `c · ramp`, so
/// the top-of-ramp session sees offered load build over ~0.4 virtual
/// seconds (a few frame periods) — the in-run load ramp the controller
/// adapts ahead of — while the bottom's spread is negligible.
const CLIENT_RAMP: f64 = 4e-4;

/// A budget no load on this ramp can violate: the zero-degradation
/// control.
const GENEROUS_BUDGET: f64 = 1e6;

/// One 2×2×8 block per rank at any rank count: a 1-D decomposition whose
/// domain stretches with the session, so the ramp can pick arbitrary
/// client counts without divisibility puzzles. The rendered frame is
/// `n_total`×1 pixels — reply bytes grow with the session, which only
/// sharpens the per-byte dynamics the controller acts on.
fn dataset_for(n_total: usize, seed: u64) -> ReflectivityDataset {
    let decomp = DomainDecomp::new(
        Dims3::new(2 * n_total, 2, 8),
        ProcGrid::new(n_total, 1, 1),
        Dims3::new(2, 2, 8),
    )
    .unwrap();
    ReflectivityDataset::new(decomp, StormModel::new(seed))
}

/// Requests per client, shrinking with fan-out so total request volume
/// grows sub-linearly across the ramp (4096 requests at the headline).
fn requests_per_client(_clients: usize) -> usize {
    16
}

pub fn run(scale: &Scale) {
    println!(
        "\n== Fig 15 — adaptive serving under a client-load ramp, {NSTAGE} stagers, \
         clients {CLIENT_SWEEP:?} x {{fixed, adaptive(budget {BUDGET})}} =="
    );

    // Steady-state tail: the p99 over each client's second-half requests,
    // after the start ramp has completed and the controller has walked to
    // its operating point. The run-wide p99 additionally absorbs the
    // adaptation transient (the controller starts at full fidelity by
    // design), so the acceptance bar is the steady tail.
    let steady_p99 = |run: &ServingRun| -> f64 {
        let mut seen = vec![0usize; run.client_finish.len()];
        let half = requests_per_client(run.client_finish.len()) / 2;
        let lat: Vec<f64> = run
            .requests
            .iter()
            .filter_map(|r| {
                seen[r.client] += 1;
                (seen[r.client] > half).then_some(r.latency)
            })
            .collect();
        apc_core::percentile(lat, 99.0)
    };

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let headline = *CLIENT_SWEEP.last().unwrap();
    for &clients in CLIENT_SWEEP {
        let n_total = NSIM + NSTAGE + clients;
        let dataset = dataset_for(n_total, scale.seed);
        let iters = dataset.sample_iterations(ITERS);
        let mut session = Runtime::new(n_total, NetModel::blue_waters())
            .stack_size(512 << 10)
            .session();

        let mut run_mode = |mode: &str, budget: Option<f64>| -> ServingRun {
            let sink = FrameSink::new(
                Arc::new(MemStore::new()),
                &format!("fig15-{clients}-{mode}"),
                CodecKind::Fpz,
            );
            let params = StagedParams::new(NSTAGE, 4, BackpressurePolicy::Block)
                .with_sim_compute(0.05)
                .with_persist(sink);
            let mut config = PipelineConfig::default()
                .deterministic()
                .with_fixed_percent(90.0)
                .with_exec(scale.exec)
                .with_staged(params);
            // This figure studies *serving* dynamics: shrink the fixed
            // per-frame render overhead (0.55 s by default, calibrated
            // for the paper-scale figures) so the frame period — and so
            // the latency floor fidelity cannot shrink — stays well
            // below the serving budget.
            config.cost.base = 0.005;
            let mut serve = ServeParams::new(
                clients,
                requests_per_client(clients),
                ServePolicy::BestEffort,
            )
            .with_think_time(0.0)
            .with_cache_bytes(256 << 10)
            .with_serve_costs(SERVICE_BASE, REPLY_PER_BYTE)
            .with_client_ramp(CLIENT_RAMP);
            if let Some(b) = budget {
                serve = serve.with_latency_budget(b);
            }
            apc_core::run_staged_serving_in_session(
                &mut session,
                dataset.decomp(),
                dataset.coords(),
                &config,
                &iters,
                &serve,
                &|it, rank| dataset.rank_blocks(it, rank),
            )
        };

        let report = |mode: &str,
                      run: &ServingRun,
                      rows: &mut Vec<Vec<String>>,
                      csv: &mut Vec<String>| {
            let mix = run.fidelity_mix();
            let p50 = run.latency_percentile(50.0);
            let p99 = run.latency_percentile(99.0);
            let steady = steady_p99(run);
            let final_pct = run
                .servers
                .iter()
                .map(|s| s.final_percent)
                .fold(0.0, f64::max);
            rows.push(vec![
                format!("{clients}"),
                mode.into(),
                format!("{}", run.requests.len()),
                format!("{}", run.frames_served()),
                format!("{:.1}%", run.cache_hit_rate() * 100.0),
                format!("{p50:.4}"),
                format!("{p99:.4}"),
                format!("{steady:.4}"),
                mix.summary(),
                format!("{final_pct:.1}"),
            ]);
            csv.push(format!(
                "{NSTAGE},{clients},{mode},{},{},{:.6},{p50:.6},{p99:.6},{steady:.6},{},{},{},{},{final_pct:.2}",
                run.requests.len(),
                run.frames_served(),
                run.cache_hit_rate(),
                mix.full,
                mix.lossy,
                mix.dropped,
                mix.header_only,
            ));
            println!(
                "  {clients:>5} {mode:<9} p50 {p50:.4}  p99 {p99:.4}  steady99 {steady:.4}  mix {}  final% {final_pct:.1}",
                mix.summary()
            );
            (p99, steady)
        };

        let fixed = run_mode("fixed", None);
        let (_, fixed_steady) = report("fixed", &fixed, &mut rows, &mut csv);
        let adaptive = run_mode("adaptive", Some(BUDGET));
        let (_, adaptive_steady) = report("adaptive", &adaptive, &mut rows, &mut csv);
        assert_eq!(
            fixed.degraded_replies(),
            0,
            "{clients} clients: the fixed mode must never degrade"
        );

        if clients == headline {
            // The ramp's point: at the top, full fidelity cannot fit the
            // budget but the ladder can.
            assert!(
                fixed_steady > BUDGET,
                "{clients} clients: fixed steady p99 ({fixed_steady:.4}) should exceed the \
                 budget ({BUDGET}) — the ramp is too shallow to need adaptation"
            );
            assert!(
                adaptive_steady <= BUDGET * 1.1,
                "{clients} clients: adaptive steady p99 ({adaptive_steady:.4}) must stay \
                 within budget·1.1 ({:.4})",
                BUDGET * 1.1
            );
            assert!(
                adaptive.degraded_replies() > 0,
                "{clients} clients: meeting the budget must have cost fidelity"
            );

            // A generous budget must converge to full fidelity — the
            // controller's first output is 0% and nothing pushes it up.
            let generous = run_mode("generous", Some(GENEROUS_BUDGET));
            assert_eq!(
                generous.degraded_replies(),
                0,
                "{clients} clients: a generous budget must ship zero degraded replies"
            );
            println!(
                "generous budget ({GENEROUS_BUDGET:.0e}): {} replies, zero degraded ✓",
                generous.fidelity_mix().total()
            );

            // Byte-determinism in-bin: the adaptive run — controller
            // trajectory, fidelity mix, every latency — replays
            // identically in the same session.
            let again = run_mode("adaptive", Some(BUDGET));
            assert_eq!(
                again, adaptive,
                "adaptive serving must replay byte-identically at {clients} clients"
            );
            println!(
                "determinism: {clients}-client adaptive run replayed byte-identically \
                 ({} requests, mix {}) ✓",
                again.requests.len(),
                again.fidelity_mix().summary()
            );
        }
    }

    print_table(
        "adaptive vs fixed serving under the client ramp (latency in virtual seconds)",
        &[
            "clients",
            "mode",
            "requests",
            "frames",
            "cache hit",
            "p50",
            "p99",
            "steady p99",
            "mix f/l/d/h",
            "final %",
        ],
        &rows,
    );

    let path = write_csv(
        "fig15_adaptive_serving.csv",
        "nstagers,clients,mode,requests,frames_served,cache_hit_rate,p50_latency,p99_latency,steady_p99,\
         full,lossy,dropped,header_only,final_percent",
        &csv,
    );
    println!("csv: {}", path.display());
}

//! Microbenchmarks of the hot kernels (`cargo bench -p apc-bench --bench
//! kernels`), self-harnessed with `std::time` so the suite has no external
//! benchmarking dependency.
//!
//! Three sections:
//!
//! 1. **Execution-policy comparison** — block scoring and isosurface
//!    extraction over a 64-block set, `Serial` vs `Threads(8)`, with the
//!    wall-clock speedup printed per kernel, plus a
//!    byte-identical-reports check between the two policies on a full
//!    pipeline run. On an N-core machine the speedup approaches
//!    `min(8, N)`; on a 1-core container it is ~1.0 by physics, and the
//!    determinism check is the part that must always hold.
//! 2. **Session vs spawn-per-run** — a small configuration sweep executed
//!    (a) the pre-session way, one fresh `Runtime::run` (thread spawn +
//!    join) per configuration, and (b) through one persistent
//!    `Runtime::session`. Reports the wall-clock comparison and checks the
//!    reports are byte-identical.
//! 3. **Store read vs in-memory generation** — one rank's per-iteration
//!    block input produced by (a) the synthetic simulation and (b) an
//!    `apc-store` chunked dataset under each codec (memory- and
//!    disk-backed, one-file-per-chunk and shard-container layouts), with
//!    stored sizes and a bit-exactness check for the lossless codecs.
//! 4. **Staged vs synchronous pipeline** — the dedicated-core staging mode
//!    on a tiny dataset, with both wall seconds and the headline virtual
//!    quantities (sync pipeline time vs staged sim-visible time).
//! 5. **Serial micro-timings** — metrics, codecs, marching tetrahedra,
//!    storm generation and the distributed sort, as throughput numbers.
//!
//! Besides the stdout tables, every timed row lands in
//! `target/experiments/bench_kernels.json` — the machine-readable
//! performance trajectory future changes diff against (schema documented
//! in README §Developing).

use std::time::Instant;

use apc_bench::harness::print_table;
use apc_cm1::{
    open_dataset, open_dataset_cached, write_dataset, write_dataset_sharded,
    write_dataset_sharded_to, write_dataset_to, ReflectivityDataset, StormModel, DBZ_ISOVALUE,
};
use apc_comm::{sort, NetModel, Runtime};
use apc_compress::{probe_ratios, FloatCodec, Fpz, Lz77, Zfpx};
use apc_core::{ExecPolicy, IterationReport, Pipeline, PipelineConfig};
use apc_grid::{Block, Dims3, RectilinearCoords};
use apc_metrics::{score_blocks, standard_six};
use apc_render::{batch_isosurface_stats, marching_tetrahedra};
use apc_store::{CodecKind, MemStore};

/// Median wall-clock seconds of `runs` invocations of `f`.
fn time_median<R>(runs: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Collects every timed row and serializes the machine-readable
/// performance trajectory (`target/experiments/bench_kernels.json`).
/// Names are stable slugs; `wall_s` is median wall seconds; `virtual_s`
/// carries the modeled virtual seconds where the row has one (pipeline
/// rows), else `null`.
#[derive(Default)]
struct Recorder {
    entries: Vec<(String, f64, Option<f64>)>,
}

impl Recorder {
    fn wall(&mut self, name: &str, wall_s: f64) {
        self.entries.push((name.to_string(), wall_s, None));
    }

    fn wall_and_virtual(&mut self, name: &str, wall_s: f64, virtual_s: f64) {
        self.entries
            .push((name.to_string(), wall_s, Some(virtual_s)));
    }

    fn write_json(&self) -> std::path::PathBuf {
        let path = apc_bench::harness::out_dir().join("bench_kernels.json");
        let mut body = String::from("{\n  \"schema\": 1,\n  \"entries\": [\n");
        for (i, (name, wall, virt)) in self.entries.iter().enumerate() {
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            let virt = match virt {
                Some(v) => format!("{v:.9}"),
                None => "null".to_string(),
            };
            body.push_str(&format!(
                "    {{\"name\": \"{name}\", \"wall_s\": {wall:.9}, \"virtual_s\": {virt}}}{comma}\n"
            ));
        }
        body.push_str("  ]\n}\n");
        std::fs::write(&path, body).expect("write bench_kernels.json");
        path
    }
}

/// 64 paper-scaled blocks of real storm data, mixing storm-core and
/// clear-air content (uneven per-block cost, like a real rank).
fn block_set() -> (Vec<Block>, RectilinearCoords) {
    let dataset = ReflectivityDataset::paper_scaled(64, 7).expect("dataset");
    let it = dataset.sample_iterations(3)[1];
    let mut blocks = Vec::with_capacity(64);
    let mut rank = 0;
    while blocks.len() < 64 {
        for b in dataset.rank_blocks(it, rank) {
            if blocks.len() < 64 {
                blocks.push(b);
            }
        }
        rank += 1;
    }
    (blocks, dataset.coords().clone())
}

/// One paper-scaled block near the storm center: dense, noisy content.
fn storm_block() -> (Vec<f32>, Dims3) {
    let dataset = ReflectivityDataset::paper_scaled(64, 7).expect("dataset");
    let it = dataset.sample_iterations(3)[1];
    let storm_center = dataset.storm().center(dataset.storm().tau(it));
    let gb = dataset.decomp().global_block_grid();
    let bi = (storm_center[0] * gb.nx as f32) as usize;
    let bj = (storm_center[1] * gb.ny as f32) as usize;
    let id = dataset.decomp().block_id_at((bi, bj, 1));
    let block = dataset.block(it, id);
    let dims = block.dims();
    (block.samples().into_owned(), dims)
}

fn bench_exec_policies(rec: &mut Recorder) {
    let (blocks, coords) = block_set();
    let par = ExecPolicy::Threads(8);
    let runs = 5;
    println!(
        "\nexecution-policy comparison: {} blocks, Serial vs Threads(8) on {} core(s)",
        blocks.len(),
        apc_par::available_cores()
    );

    let mut rows = Vec::new();
    for name in ["VAR", "LEA", "ITL", "FPZIP", "TRILIN"] {
        let scorer = apc_metrics::by_name(name).unwrap();
        let t_ser = time_median(runs, || {
            score_blocks(scorer.as_ref(), &blocks, ExecPolicy::Serial)
        });
        let t_par = time_median(runs, || score_blocks(scorer.as_ref(), &blocks, par));
        rec.wall(&format!("score/{name}/serial"), t_ser);
        rec.wall(&format!("score/{name}/threads8"), t_par);
        rows.push(vec![
            format!("score/{name}"),
            format!("{:.3}", t_ser * 1e3),
            format!("{:.3}", t_par * 1e3),
            format!("{:.2}x", t_ser / t_par.max(1e-12)),
        ]);
    }

    let t_ser = time_median(runs, || {
        batch_isosurface_stats(&blocks, &coords, DBZ_ISOVALUE, ExecPolicy::Serial)
    });
    let t_par = time_median(runs, || {
        batch_isosurface_stats(&blocks, &coords, DBZ_ISOVALUE, par)
    });
    rec.wall("isosurface/serial", t_ser);
    rec.wall("isosurface/threads8", t_par);
    rows.push(vec![
        "isosurface".into(),
        format!("{:.3}", t_ser * 1e3),
        format!("{:.3}", t_par * 1e3),
        format!("{:.2}x", t_ser / t_par.max(1e-12)),
    ]);

    let arrays: Vec<(Vec<f32>, (usize, usize, usize))> = blocks
        .iter()
        .map(|b| {
            let d = b.dims();
            (b.samples().into_owned(), (d.nx, d.ny, d.nz))
        })
        .collect();
    let t_ser = time_median(runs, || probe_ratios(&Fpz, &arrays, ExecPolicy::Serial));
    let t_par = time_median(runs, || probe_ratios(&Fpz, &arrays, par));
    rec.wall("probe/FPZIP/serial", t_ser);
    rec.wall("probe/FPZIP/threads8", t_par);
    rows.push(vec![
        "probe/FPZIP".into(),
        format!("{:.3}", t_ser * 1e3),
        format!("{:.3}", t_par * 1e3),
        format!("{:.2}x", t_ser / t_par.max(1e-12)),
    ]);

    print_table(
        "kernel wall-clock, Serial vs Threads(8)",
        &["kernel", "serial ms", "threads(8) ms", "speedup"],
        &rows,
    );
}

/// Full-pipeline determinism: the same seed under `Serial` and
/// `Threads(8)` must produce byte-identical reports (virtual time is
/// counted, not measured). Uses the pipeline directly — no driver clamp —
/// so the threaded path really executes even on small machines.
fn check_policy_determinism(rec: &mut Recorder) {
    // Dataset construction stays outside the timed body so the recorded
    // trajectory row measures the pipeline alone, like every other row.
    let dataset = ReflectivityDataset::tiny(4, 42).unwrap();
    let iters = dataset.sample_iterations(3);
    let run = |exec: ExecPolicy| -> Vec<IterationReport> {
        let config = PipelineConfig::default()
            .deterministic()
            .with_fixed_percent(40.0)
            .with_exec(exec);
        let mut all = Runtime::new(4, NetModel::blue_waters()).run(|rank| {
            let mut p = Pipeline::new(config.clone(), *dataset.decomp(), dataset.coords().clone());
            iters
                .iter()
                .map(|&it| {
                    p.run_iteration(rank, dataset.rank_blocks(it, rank.rank()), it)
                        .0
                })
                .collect::<Vec<_>>()
        });
        all.swap_remove(0)
    };
    let mut serial = Vec::new();
    let wall = time_median(3, || serial = run(ExecPolicy::Serial));
    let threads = run(ExecPolicy::Threads(8));
    assert_eq!(
        serial, threads,
        "IterationReports must be byte-identical across policies"
    );
    rec.wall_and_virtual(
        "pipeline/sync/tiny4x3iters",
        wall,
        serial.iter().map(|r| r.t_total).sum(),
    );
    println!(
        "determinism: Serial and Threads(8) reports identical over {} iterations ✓",
        serial.len()
    );
}

/// Staged vs synchronous on the tiny dataset: wall seconds for each mode
/// plus the headline virtual quantities — the synchronous pipeline time
/// the simulation would eat inline, and what the staged simulation
/// actually sees.
fn bench_staged_vs_sync(rec: &mut Recorder) {
    use apc_core::{BackpressurePolicy, StagedParams};

    let dataset = ReflectivityDataset::tiny(4, 42).unwrap();
    let iters = dataset.sample_iterations(3);
    let sync_cfg = PipelineConfig::default()
        .deterministic()
        .with_fixed_percent(40.0);
    let mut sync = Vec::new();
    let t_sync = time_median(3, || {
        sync = apc_core::run_experiment(&dataset, sync_cfg.clone(), &iters);
    });
    let sync_virtual: f64 = sync.iter().map(|r| r.t_total).sum::<f64>() / sync.len() as f64;

    let params = StagedParams::new(1, 2, BackpressurePolicy::Block).with_sim_compute(sync_virtual);
    let staged_cfg = sync_cfg.with_staged(params);
    let mut staged_visible = 0.0;
    let t_staged = time_median(3, || {
        let run = apc_core::run_staged_prepared(
            dataset.decomp(),
            dataset.coords(),
            &staged_cfg,
            &iters,
            NetModel::blue_waters(),
            |it, rank| dataset.rank_blocks(it, rank),
        );
        staged_visible = run.mean_sim_visible();
    });
    rec.wall_and_virtual("pipeline/sync/tiny4x3iters/mean", t_sync, sync_virtual);
    rec.wall_and_virtual(
        "pipeline/staged/tiny4x3iters/sim_visible",
        t_staged,
        staged_visible,
    );
    print_table(
        "staged vs synchronous (tiny dataset, 3 iterations, virtual s/iter)",
        &["mode", "wall ms", "sim-visible virtual s"],
        &[
            vec![
                "sync".into(),
                format!("{:.1}", t_sync * 1e3),
                format!("{sync_virtual:.3}"),
            ],
            vec![
                "staged 3:1".into(),
                format!("{:.1}", t_staged * 1e3),
                format!("{staged_visible:.3}"),
            ],
        ],
    );
    assert!(
        staged_visible < sync_virtual,
        "staging must beat inline visualization on the sim's critical path"
    );
}

/// Session vs spawn-per-run: the sweep-engine measurement. A fig07-style
/// percentage sweep (8 configurations, 16 ranks, 2 iterations each) runs
/// once with a fresh `Runtime::run` per configuration — tearing 16 threads
/// up and down 8 times — and once through a single persistent session.
/// Virtual-time reports must be byte-identical; only wall-clock differs.
fn bench_session_vs_respawn(rec: &mut Recorder) {
    let nranks = 16;
    let dataset = ReflectivityDataset::tiny(nranks, 42).unwrap();
    let iters = dataset.sample_iterations(2);
    let percents = [0.0, 20.0, 40.0, 60.0, 70.0, 80.0, 90.0, 100.0];
    let configs: Vec<PipelineConfig> = percents
        .iter()
        .map(|&p| {
            PipelineConfig::default()
                .deterministic()
                .with_fixed_percent(p)
        })
        .collect();
    let runtime = Runtime::new(nranks, NetModel::blue_waters());
    let run_config = |rank: &mut apc_comm::Rank, config: &PipelineConfig| {
        let mut p = Pipeline::new(config.clone(), *dataset.decomp(), dataset.coords().clone());
        iters
            .iter()
            .map(|&it| {
                p.run_iteration(rank, dataset.rank_blocks(it, rank.rank()), it)
                    .0
            })
            .collect::<Vec<_>>()
    };

    let runs = 3;
    let mut respawn_reports = Vec::new();
    let t_respawn = time_median(runs, || {
        respawn_reports = configs
            .iter()
            .map(|config| {
                let mut all = runtime.run(|rank| run_config(rank, config));
                all.swap_remove(0)
            })
            .collect::<Vec<_>>();
    });

    let mut session_reports = Vec::new();
    let t_session = time_median(runs, || {
        let mut session = runtime.session();
        session_reports = configs
            .iter()
            .map(|config| {
                let mut all = session.run(|rank| run_config(rank, config));
                all.swap_remove(0)
            })
            .collect::<Vec<_>>();
    });

    assert_eq!(
        respawn_reports, session_reports,
        "session and spawn-per-run sweeps must produce identical reports"
    );

    // The same sweep with an empty per-rank job isolates the pure
    // runtime overhead (thread spawn/join, channel setup) the session
    // removes — the pipeline rows bury it under compute on few-core
    // machines, but it is what grows to tens of thousands of spawns in a
    // full-scale 400-rank figure sweep.
    let noop_runs = 9;
    let t_respawn_noop = time_median(noop_runs, || {
        for _ in 0..configs.len() {
            runtime.run(|rank| rank.rank());
        }
    });
    let t_session_noop = time_median(noop_runs, || {
        let mut session = runtime.session();
        for _ in 0..configs.len() {
            session.run(|rank| rank.rank());
        }
    });

    rec.wall("sweep/spawn_per_run", t_respawn);
    rec.wall("sweep/session", t_session);
    rec.wall("sweep/spawn_per_run/noop", t_respawn_noop);
    rec.wall("sweep/session/noop", t_session_noop);
    print_table(
        &format!(
            "sweep wall-clock: {} configs × {} ranks, spawn-per-run vs one session",
            configs.len(),
            nranks
        ),
        &["strategy", "pipeline ms", "no-op ms", "threads spawned"],
        &[
            vec![
                "spawn-per-run".into(),
                format!("{:.2}", t_respawn * 1e3),
                format!("{:.3}", t_respawn_noop * 1e3),
                format!("{}", configs.len() * nranks),
            ],
            vec![
                "session".into(),
                format!("{:.2}", t_session * 1e3),
                format!("{:.3}", t_session_noop * 1e3),
                format!("{nranks}"),
            ],
            vec![
                "speedup".into(),
                format!("{:.2}x", t_respawn / t_session.max(1e-12)),
                format!("{:.2}x", t_respawn_noop / t_session_noop.max(1e-12)),
                String::new(),
            ],
        ],
    );
    println!("session sweep reports identical to spawn-per-run ✓");
}

/// Store read vs in-memory generation: the per-iteration block input of
/// one rank, produced three ways — regenerated from the storm model,
/// decoded from a memory-backed chunked store (per codec), and decoded
/// from a disk-backed store. Lossless codecs must reproduce the generated
/// blocks bit-exactly; sizes show what each codec buys.
fn bench_store_read(rec: &mut Recorder) {
    let dataset = ReflectivityDataset::tiny(4, 42).expect("tiny dataset");
    let it = dataset.sample_iterations(3)[1];
    let raw_bytes = dataset.decomp().subdomain_dims().len() * dataset.decomp().nranks() * 4;
    let runs = 5;
    let generated = dataset.rank_blocks(it, 0);

    let mut rows = Vec::new();
    let t_gen = time_median(runs, || dataset.rank_blocks(it, 0));
    rec.wall("store/generate_in_memory", t_gen);
    rows.push(vec![
        "generate (in-memory)".into(),
        format!("{:.3}", t_gen * 1e3),
        format!("{:.2}", raw_bytes as f64 / 1e6),
        "1.000".into(),
    ]);

    for codec in [CodecKind::Raw, CodecKind::Fpz, CodecKind::Lz] {
        let store =
            write_dataset_to(&dataset, &[it], MemStore::new(), codec).expect("write mem store");
        let from_store = store.read_rank_blocks(it, 0).expect("read rank blocks");
        assert_eq!(
            from_store,
            generated,
            "{} store read must be bit-exact",
            codec.name()
        );
        let stored = store.backend().nbytes();
        let t = time_median(runs, || store.read_rank_blocks(it, 0).expect("read"));
        rec.wall(&format!("store/mem_read/{}", codec.name()), t);
        rows.push(vec![
            format!("mem store / {}", codec.name()),
            format!("{:.3}", t * 1e3),
            format!("{:.2}", stored as f64 / 1e6),
            format!("{:.3}", stored as f64 / raw_bytes as f64),
        ]);
    }

    let dir = std::env::temp_dir().join("apc_kernels_bench_store");
    let _ = std::fs::remove_dir_all(&dir);
    write_dataset(&dataset, &[it], &dir, CodecKind::Fpz).expect("write dir store");
    let stored = open_dataset(&dir).expect("reopen dir store");
    assert_eq!(stored.rank_blocks(it, 0).expect("read"), generated);
    let t_disk = time_median(runs, || stored.rank_blocks(it, 0).expect("read"));
    rec.wall("store/dir_read/fpz", t_disk);
    rows.push(vec![
        "dir store / fpz".into(),
        format!("{:.3}", t_disk * 1e3),
        String::from("-"),
        String::from("-"),
    ]);
    let _ = std::fs::remove_dir_all(&dir);

    // The shard layout: same data packed into shard containers, read back
    // through byte-range partial reads (layout auto-detected from meta).
    const CHUNKS_PER_SHARD: usize = 16;
    let shard_mem = write_dataset_sharded_to(
        &dataset,
        &[it],
        MemStore::new(),
        CodecKind::Fpz,
        CHUNKS_PER_SHARD,
    )
    .expect("write sharded mem store");
    assert_eq!(
        shard_mem.read_rank_blocks(it, 0).expect("read"),
        generated,
        "sharded mem read must be bit-exact"
    );
    let stored = shard_mem.backend().inner().nbytes();
    let t_shard_mem = time_median(runs, || shard_mem.read_rank_blocks(it, 0).expect("read"));
    rec.wall("store/shard_mem_read/fpz", t_shard_mem);
    rows.push(vec![
        format!("sharded mem / fpz ({CHUNKS_PER_SHARD}/shard)"),
        format!("{:.3}", t_shard_mem * 1e3),
        format!("{:.2}", stored as f64 / 1e6),
        format!("{:.3}", stored as f64 / raw_bytes as f64),
    ]);

    let shard_dir = std::env::temp_dir().join("apc_kernels_bench_store_shard");
    let _ = std::fs::remove_dir_all(&shard_dir);
    write_dataset_sharded(
        &dataset,
        &[it],
        &shard_dir,
        CodecKind::Fpz,
        CHUNKS_PER_SHARD,
    )
    .expect("write sharded dir store");
    let stored = open_dataset(&shard_dir).expect("reopen sharded dir store");
    assert_eq!(
        stored.rank_blocks(it, 0).expect("read"),
        generated,
        "sharded dir read must be bit-exact"
    );
    let t_shard_dir = time_median(runs, || stored.rank_blocks(it, 0).expect("read"));
    rec.wall("store/shard_dir_read/fpz", t_shard_dir);
    rows.push(vec![
        format!("sharded dir / fpz ({CHUNKS_PER_SHARD}/shard)"),
        format!("{:.3}", t_shard_dir * 1e3),
        String::from("-"),
        String::from("-"),
    ]);
    let _ = std::fs::remove_dir_all(&shard_dir);

    // The chunk cache + readahead over the same sharded dir layout. Cold
    // = first touch through an emptied cache (range reads + insert
    // bookkeeping); warm = repeat reads answered from memory (no disk, no
    // shard index, no range syscalls — only the fpz decode remains);
    // prefetch_seq = a sequential sweep over every iteration, where
    // readahead keeps the next iteration's chunks one step ahead of
    // demand. Cold and warm use the *last* iteration (no successor), so
    // their timings measure the cache itself, not prefetch I/O.
    let iters3 = dataset.sample_iterations(3);
    let cache_dir = std::env::temp_dir().join("apc_kernels_bench_store_cached");
    let _ = std::fs::remove_dir_all(&cache_dir);
    write_dataset_sharded(
        &dataset,
        &iters3,
        &cache_dir,
        CodecKind::Fpz,
        CHUNKS_PER_SHARD,
    )
    .expect("write cached-bench dir store");
    let cached = open_dataset_cached(&cache_dir, 8 << 20).expect("reopen cached dir store");
    for &i in &iters3 {
        assert_eq!(
            cached.rank_blocks(i, 0).expect("read"),
            dataset.rank_blocks(i, 0),
            "cached read must be bit-exact (iteration {i})"
        );
    }
    let it_last = *iters3.last().expect("three iterations");
    let t_cold = time_median(runs, || {
        cached.cache_clear();
        cached.rank_blocks(it_last, 0).expect("read")
    });
    rec.wall("store/cached_read_cold", t_cold);
    rows.push(vec![
        "cached dir / fpz (cold)".into(),
        format!("{:.3}", t_cold * 1e3),
        String::from("-"),
        String::from("-"),
    ]);
    cached.cache_clear();
    let _ = cached.rank_blocks(it_last, 0).expect("warmup read");
    let t_warm = time_median(runs, || cached.rank_blocks(it_last, 0).expect("read"));
    rec.wall("store/cached_read_warm", t_warm);
    rows.push(vec![
        "cached dir / fpz (warm)".into(),
        format!("{:.3}", t_warm * 1e3),
        String::from("-"),
        String::from("-"),
    ]);
    let t_seq = time_median(runs, || {
        cached.cache_clear();
        for &i in &iters3 {
            cached.rank_blocks(i, 0).expect("read");
        }
    });
    rec.wall("store/prefetch_seq", t_seq);
    rows.push(vec![
        format!("cached dir / fpz (seq sweep, {} iters)", iters3.len()),
        format!("{:.3}", t_seq * 1e3),
        String::from("-"),
        String::from("-"),
    ]);
    let cache_stats = cached.cache_stats().expect("cached open reports stats");
    let _ = std::fs::remove_dir_all(&cache_dir);

    print_table(
        "block input: store read vs in-memory generation (one rank, one iteration)",
        &["source", "ms/rank", "stored MB (all ranks)", "ratio"],
        &rows,
    );
    println!("store reads bit-exact vs generation for every lossless codec ✓");
    println!(
        "cached warm read {:.2}x vs uncached sharded dir; readahead over the \
         sweep: {} prefetched, {} used, {} wasted",
        t_shard_dir / t_warm.max(1e-12),
        cache_stats.prefetched,
        cache_stats.prefetch_used,
        cache_stats.prefetched - cache_stats.prefetch_used
    );
}

fn bench_metrics(rec: &mut Recorder) {
    let (data, dims) = storm_block();
    let mut rows = Vec::new();
    for metric in standard_six() {
        let t = time_median(9, || metric.score(&data, dims));
        rec.wall(&format!("metric/{}", metric.name()), t);
        rows.push(vec![
            metric.name().to_string(),
            format!("{:.2}", t * 1e6),
            format!("{:.1}", data.len() as f64 / t / 1e6),
        ]);
    }
    print_table(
        "metrics (one 11x11x19 storm block)",
        &["metric", "us/block", "Mpts/s"],
        &rows,
    );
}

fn bench_codecs(rec: &mut Recorder) {
    let (data, dims) = storm_block();
    let shape = (dims.nx, dims.ny, dims.nz);
    let bytes = (data.len() * 4) as f64;
    let mut rows = Vec::new();
    let mut row = |name: &str, t: f64| {
        rec.wall(&format!("codec/{name}"), t);
        rows.push(vec![
            name.to_string(),
            format!("{:.2}", t * 1e6),
            format!("{:.1}", bytes / t / 1e6),
        ]);
    };
    row("fpz_encode", time_median(9, || Fpz.encode(&data, shape)));
    row(
        "zfpx_encode",
        time_median(9, || Zfpx::default().encode(&data, shape)),
    );
    row("lz77_encode", time_median(9, || Lz77.encode(&data, shape)));
    let enc = Fpz.encode(&data, shape);
    row(
        "fpz_decode",
        time_median(9, || Fpz.decode(&enc, shape).unwrap()),
    );
    print_table(
        "codecs (one storm block)",
        &["codec", "us/block", "MB/s"],
        &rows,
    );
}

fn bench_isosurface_and_storm(rec: &mut Recorder) {
    let dims = Dims3::new(48, 48, 24);
    let coords = RectilinearCoords::uniform(dims, 1.0);
    let storm = StormModel::new(7);
    let field = storm.reflectivity(&coords, 300);
    let cells = ((dims.nx - 1) * (dims.ny - 1) * (dims.nz - 1)) as f64;
    let t_iso = time_median(9, || {
        marching_tetrahedra(field.as_slice(), dims, DBZ_ISOVALUE, |i, j, k| {
            coords.position(i, j, k)
        })
    });
    let gen_dims = Dims3::new(44, 44, 19);
    let gen_coords = RectilinearCoords::stretched(gen_dims, 1.0, 4, 1.12);
    let t_gen = time_median(9, || storm.reflectivity(&gen_coords, 300));
    rec.wall("field/marching_tetrahedra_48x48x24", t_iso);
    rec.wall("field/storm_reflectivity_44x44x19", t_gen);
    print_table(
        "field kernels",
        &["kernel", "ms", "Mitems/s"],
        &[
            vec![
                "marching_tetrahedra_48x48x24".into(),
                format!("{:.3}", t_iso * 1e3),
                format!("{:.1}", cells / t_iso / 1e6),
            ],
            vec![
                "storm_reflectivity_44x44x19".into(),
                format!("{:.3}", t_gen * 1e3),
                format!("{:.1}", gen_dims.len() as f64 / t_gen / 1e6),
            ],
        ],
    );
}

fn bench_distributed_sort(rec: &mut Recorder) {
    // 6400 scored blocks over 8 ranks, like one pipeline iteration.
    let make_input = |rank: usize| -> Vec<(u32, f64)> {
        (0..800u32)
            .map(|i| {
                let id = rank as u32 * 800 + i;
                (id, ((id as f64 * 0.61803).sin() * 1e3).round())
            })
            .collect()
    };
    let cmp = |a: &(u32, f64), b: &(u32, f64)| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0));
    let t_gsb = time_median(5, || {
        Runtime::new(8, NetModel::blue_waters())
            .run(|rank| sort::gather_sort_broadcast(rank, make_input(rank.rank()), cmp).len())
    });
    let t_ss = time_median(5, || {
        Runtime::new(8, NetModel::blue_waters())
            .run(|rank| sort::sample_sort(rank, make_input(rank.rank()), cmp).len())
    });
    rec.wall("sort/gather_sort_broadcast", t_gsb);
    rec.wall("sort/sample_sort", t_ss);
    print_table(
        "distributed sort (6400 blocks, 8 ranks)",
        &["strategy", "ms"],
        &[
            vec![
                "gather_sort_broadcast".into(),
                format!("{:.2}", t_gsb * 1e3),
            ],
            vec!["sample_sort".into(), format!("{:.2}", t_ss * 1e3)],
        ],
    );
}

fn bench_replay_fanout(rec: &mut Recorder) {
    // A miniature fig14: 4 replay servers, 16 clients, 8 requests each
    // over a persisted 8-iteration run — one wall row per routing mode,
    // with the modeled p99 latency as the virtual column.
    use std::sync::Arc;

    use apc_core::run_replay_serving;
    use apc_replay::{synth_run, ArrivalTrace, PoolParams, RouteMode, TraceSpec};
    use apc_serve::open_run;
    use apc_store::StoreBackend;

    const RUN_ID: &str = "bench-replay";
    let iterations: Vec<usize> = (1..=8).map(|i| i * 100).collect();
    let backend: Arc<dyn StoreBackend> = Arc::new(MemStore::new());
    synth_run(
        Arc::clone(&backend),
        RUN_ID,
        &iterations,
        4,
        16,
        12,
        CodecKind::Fpz,
        None,
    );
    let (_, manifest) = open_run(Arc::clone(&backend), RUN_ID).expect("bench fixture opens");
    let tr = ArrivalTrace::generate(&TraceSpec::new(16, 8, 42), &manifest);

    let mut rows = Vec::new();
    for (slug, mode) in [
        ("pinned", RouteMode::Pinned),
        ("routed", RouteMode::Routed),
        ("steal", RouteMode::RoutedStealing),
    ] {
        let params = PoolParams::new(4, mode).with_cache_bytes(8 << 10);
        let mut last_p99 = 0.0;
        let t = time_median(3, || {
            let out = run_replay_serving(
                Arc::clone(&backend),
                RUN_ID,
                &tr,
                &params,
                ExecPolicy::Serial,
                NetModel::blue_waters(),
            );
            last_p99 = out.latency_percentile(99.0);
            out.requests.len()
        });
        rec.wall_and_virtual(&format!("replay/fanout_{slug}"), t, last_p99);
        rows.push(vec![
            mode.name().into(),
            format!("{:.2}", t * 1e3),
            format!("{last_p99:.4}"),
        ]);
    }
    print_table(
        "replay fan-out (4 servers, 16 clients, 128 requests)",
        &["mode", "wall ms", "p99 virtual s"],
        &rows,
    );
}

fn bench_adaptive_serving(rec: &mut Recorder) {
    // A miniature fig15: 4 stagers serving 64 closed-loop clients, fixed
    // fidelity vs a per-stager latency budget — one wall row per mode,
    // with the modeled p99 reply latency as the virtual column. The
    // per-byte wire charge is scaled up so reply size dominates the tail
    // even at bench scale, giving the fidelity ladder real leverage.
    use std::sync::Arc;

    use apc_core::{BackpressurePolicy, FrameSink, ServeParams, ServePolicy, StagedParams};
    use apc_grid::{DomainDecomp, ProcGrid};

    const NSIM: usize = 4;
    const NSTAGE: usize = 4;
    const CLIENTS: usize = 64;
    let n_total = NSIM + NSTAGE + CLIENTS;
    // One 2x2x8 block per rank (same 1-D decomposition trick as fig15).
    let decomp = DomainDecomp::new(
        Dims3::new(2 * n_total, 2, 8),
        ProcGrid::new(n_total, 1, 1),
        Dims3::new(2, 2, 8),
    )
    .expect("bench decomp");
    let dataset = ReflectivityDataset::new(decomp, StormModel::new(42));
    let iters = dataset.sample_iterations(8);

    let mut session = Runtime::new(n_total, NetModel::blue_waters())
        .stack_size(512 << 10)
        .session();
    let mut run_mode = |slug: &str, budget: Option<f64>| -> apc_core::ServingRun {
        let sink = FrameSink::new(
            Arc::new(MemStore::new()),
            &format!("bench-serve-{slug}"),
            CodecKind::Fpz,
        );
        let params = StagedParams::new(NSTAGE, 4, BackpressurePolicy::Block)
            .with_sim_compute(0.05)
            .with_persist(sink);
        let mut config = PipelineConfig::default()
            .deterministic()
            .with_fixed_percent(90.0)
            .with_staged(params);
        config.cost.base = 0.005;
        let mut serve = ServeParams::new(CLIENTS, 8, ServePolicy::BestEffort)
            .with_think_time(0.0)
            .with_cache_bytes(256 << 10)
            .with_serve_costs(1e-4, 2e-4);
        if let Some(b) = budget {
            serve = serve.with_latency_budget(b);
        }
        apc_core::run_staged_serving_in_session(
            &mut session,
            dataset.decomp(),
            dataset.coords(),
            &config,
            &iters,
            &serve,
            &|it, rank| dataset.rank_blocks(it, rank),
        )
    };

    let mut rows = Vec::new();
    for (slug, budget) in [("fixed", None), ("budget", Some(0.3))] {
        let mut last_p99 = 0.0;
        let mut last_mix = String::new();
        let t = time_median(3, || {
            let out = run_mode(slug, budget);
            last_p99 = out.latency_percentile(99.0);
            last_mix = out.fidelity_mix().summary();
            out.requests.len()
        });
        rec.wall_and_virtual(&format!("serve/adaptive_{slug}"), t, last_p99);
        rows.push(vec![
            slug.into(),
            format!("{:.2}", t * 1e3),
            format!("{last_p99:.4}"),
            last_mix.clone(),
        ]);
    }
    print_table(
        "adaptive serving (4 stagers, 64 clients, 512 requests)",
        &["mode", "wall ms", "p99 virtual s", "mix f/l/d/h"],
        &rows,
    );
}

fn main() {
    let t0 = Instant::now();
    let mut rec = Recorder::default();
    bench_exec_policies(&mut rec);
    check_policy_determinism(&mut rec);
    bench_session_vs_respawn(&mut rec);
    bench_store_read(&mut rec);
    bench_staged_vs_sync(&mut rec);
    bench_metrics(&mut rec);
    bench_codecs(&mut rec);
    bench_isosurface_and_storm(&mut rec);
    bench_distributed_sort(&mut rec);
    bench_replay_fanout(&mut rec);
    bench_adaptive_serving(&mut rec);
    let json = rec.write_json();
    println!("\nperf trajectory: {}", json.display());
    println!(
        "kernels bench completed in {:.1} s",
        t0.elapsed().as_secs_f64()
    );
}

//! Microbenchmarks of the hot kernels (`cargo bench -p apc-bench --bench
//! kernels`), self-harnessed with `std::time` so the suite has no external
//! benchmarking dependency.
//!
//! Three sections:
//!
//! 1. **Execution-policy comparison** — block scoring and isosurface
//!    extraction over a 64-block set, `Serial` vs `Threads(8)`, with the
//!    wall-clock speedup printed per kernel, plus a
//!    byte-identical-reports check between the two policies on a full
//!    pipeline run. On an N-core machine the speedup approaches
//!    `min(8, N)`; on a 1-core container it is ~1.0 by physics, and the
//!    determinism check is the part that must always hold.
//! 2. **Session vs spawn-per-run** — a small configuration sweep executed
//!    (a) the pre-session way, one fresh `Runtime::run` (thread spawn +
//!    join) per configuration, and (b) through one persistent
//!    `Runtime::session`. Reports the wall-clock comparison and checks the
//!    reports are byte-identical.
//! 3. **Store read vs in-memory generation** — one rank's per-iteration
//!    block input produced by (a) the synthetic simulation and (b) an
//!    `apc-store` chunked dataset under each codec (memory- and
//!    disk-backed), with stored sizes and a bit-exactness check for the
//!    lossless codecs.
//! 4. **Serial micro-timings** — metrics, codecs, marching tetrahedra,
//!    storm generation and the distributed sort, as throughput numbers.

use std::time::Instant;

use apc_bench::harness::print_table;
use apc_cm1::{open_dataset, write_dataset, write_dataset_to, ReflectivityDataset, StormModel, DBZ_ISOVALUE};
use apc_comm::{sort, NetModel, Runtime};
use apc_compress::{probe_ratios, FloatCodec, Fpz, Lz77, Zfpx};
use apc_core::{ExecPolicy, IterationReport, Pipeline, PipelineConfig};
use apc_grid::{Block, Dims3, RectilinearCoords};
use apc_metrics::{score_blocks, standard_six};
use apc_render::{batch_isosurface_stats, marching_tetrahedra};
use apc_store::{CodecKind, MemStore};

/// Median wall-clock seconds of `runs` invocations of `f`.
fn time_median<R>(runs: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// 64 paper-scaled blocks of real storm data, mixing storm-core and
/// clear-air content (uneven per-block cost, like a real rank).
fn block_set() -> (Vec<Block>, RectilinearCoords) {
    let dataset = ReflectivityDataset::paper_scaled(64, 7).expect("dataset");
    let it = dataset.sample_iterations(3)[1];
    let mut blocks = Vec::with_capacity(64);
    let mut rank = 0;
    while blocks.len() < 64 {
        for b in dataset.rank_blocks(it, rank) {
            if blocks.len() < 64 {
                blocks.push(b);
            }
        }
        rank += 1;
    }
    (blocks, dataset.coords().clone())
}

/// One paper-scaled block near the storm center: dense, noisy content.
fn storm_block() -> (Vec<f32>, Dims3) {
    let dataset = ReflectivityDataset::paper_scaled(64, 7).expect("dataset");
    let it = dataset.sample_iterations(3)[1];
    let storm_center = dataset.storm().center(dataset.storm().tau(it));
    let gb = dataset.decomp().global_block_grid();
    let bi = (storm_center[0] * gb.nx as f32) as usize;
    let bj = (storm_center[1] * gb.ny as f32) as usize;
    let id = dataset.decomp().block_id_at((bi, bj, 1));
    let block = dataset.block(it, id);
    let dims = block.dims();
    (block.samples().into_owned(), dims)
}

fn bench_exec_policies() {
    let (blocks, coords) = block_set();
    let par = ExecPolicy::Threads(8);
    let runs = 5;
    println!(
        "\nexecution-policy comparison: {} blocks, Serial vs Threads(8) on {} core(s)",
        blocks.len(),
        apc_par::available_cores()
    );

    let mut rows = Vec::new();
    for name in ["VAR", "LEA", "ITL", "FPZIP", "TRILIN"] {
        let scorer = apc_metrics::by_name(name).unwrap();
        let t_ser = time_median(runs, || score_blocks(scorer.as_ref(), &blocks, ExecPolicy::Serial));
        let t_par = time_median(runs, || score_blocks(scorer.as_ref(), &blocks, par));
        rows.push(vec![
            format!("score/{name}"),
            format!("{:.3}", t_ser * 1e3),
            format!("{:.3}", t_par * 1e3),
            format!("{:.2}x", t_ser / t_par.max(1e-12)),
        ]);
    }

    let t_ser = time_median(runs, || {
        batch_isosurface_stats(&blocks, &coords, DBZ_ISOVALUE, ExecPolicy::Serial)
    });
    let t_par =
        time_median(runs, || batch_isosurface_stats(&blocks, &coords, DBZ_ISOVALUE, par));
    rows.push(vec![
        "isosurface".into(),
        format!("{:.3}", t_ser * 1e3),
        format!("{:.3}", t_par * 1e3),
        format!("{:.2}x", t_ser / t_par.max(1e-12)),
    ]);

    let arrays: Vec<(Vec<f32>, (usize, usize, usize))> = blocks
        .iter()
        .map(|b| {
            let d = b.dims();
            (b.samples().into_owned(), (d.nx, d.ny, d.nz))
        })
        .collect();
    let t_ser = time_median(runs, || probe_ratios(&Fpz, &arrays, ExecPolicy::Serial));
    let t_par = time_median(runs, || probe_ratios(&Fpz, &arrays, par));
    rows.push(vec![
        "probe/FPZIP".into(),
        format!("{:.3}", t_ser * 1e3),
        format!("{:.3}", t_par * 1e3),
        format!("{:.2}x", t_ser / t_par.max(1e-12)),
    ]);

    print_table(
        "kernel wall-clock, Serial vs Threads(8)",
        &["kernel", "serial ms", "threads(8) ms", "speedup"],
        &rows,
    );
}

/// Full-pipeline determinism: the same seed under `Serial` and
/// `Threads(8)` must produce byte-identical reports (virtual time is
/// counted, not measured). Uses the pipeline directly — no driver clamp —
/// so the threaded path really executes even on small machines.
fn check_policy_determinism() {
    let run = |exec: ExecPolicy| -> Vec<IterationReport> {
        let dataset = ReflectivityDataset::tiny(4, 42).unwrap();
        let iters = dataset.sample_iterations(3);
        let config = PipelineConfig::default().deterministic().with_fixed_percent(40.0).with_exec(exec);
        let mut all = Runtime::new(4, NetModel::blue_waters()).run(|rank| {
            let mut p = Pipeline::new(config.clone(), *dataset.decomp(), dataset.coords().clone());
            iters
                .iter()
                .map(|&it| p.run_iteration(rank, dataset.rank_blocks(it, rank.rank()), it).0)
                .collect::<Vec<_>>()
        });
        all.swap_remove(0)
    };
    let serial = run(ExecPolicy::Serial);
    let threads = run(ExecPolicy::Threads(8));
    assert_eq!(serial, threads, "IterationReports must be byte-identical across policies");
    println!(
        "determinism: Serial and Threads(8) reports identical over {} iterations ✓",
        serial.len()
    );
}

/// Session vs spawn-per-run: the sweep-engine measurement. A fig07-style
/// percentage sweep (8 configurations, 16 ranks, 2 iterations each) runs
/// once with a fresh `Runtime::run` per configuration — tearing 16 threads
/// up and down 8 times — and once through a single persistent session.
/// Virtual-time reports must be byte-identical; only wall-clock differs.
fn bench_session_vs_respawn() {
    let nranks = 16;
    let dataset = ReflectivityDataset::tiny(nranks, 42).unwrap();
    let iters = dataset.sample_iterations(2);
    let percents = [0.0, 20.0, 40.0, 60.0, 70.0, 80.0, 90.0, 100.0];
    let configs: Vec<PipelineConfig> = percents
        .iter()
        .map(|&p| PipelineConfig::default().deterministic().with_fixed_percent(p))
        .collect();
    let runtime = Runtime::new(nranks, NetModel::blue_waters());
    let run_config = |rank: &mut apc_comm::Rank, config: &PipelineConfig| {
        let mut p = Pipeline::new(config.clone(), *dataset.decomp(), dataset.coords().clone());
        iters
            .iter()
            .map(|&it| p.run_iteration(rank, dataset.rank_blocks(it, rank.rank()), it).0)
            .collect::<Vec<_>>()
    };

    let runs = 3;
    let mut respawn_reports = Vec::new();
    let t_respawn = time_median(runs, || {
        respawn_reports = configs
            .iter()
            .map(|config| {
                let mut all = runtime.run(|rank| run_config(rank, config));
                all.swap_remove(0)
            })
            .collect::<Vec<_>>();
    });

    let mut session_reports = Vec::new();
    let t_session = time_median(runs, || {
        let mut session = runtime.session();
        session_reports = configs
            .iter()
            .map(|config| {
                let mut all = session.run(|rank| run_config(rank, config));
                all.swap_remove(0)
            })
            .collect::<Vec<_>>();
    });

    assert_eq!(
        respawn_reports, session_reports,
        "session and spawn-per-run sweeps must produce identical reports"
    );

    // The same sweep with an empty per-rank job isolates the pure
    // runtime overhead (thread spawn/join, channel setup) the session
    // removes — the pipeline rows bury it under compute on few-core
    // machines, but it is what grows to tens of thousands of spawns in a
    // full-scale 400-rank figure sweep.
    let noop_runs = 9;
    let t_respawn_noop = time_median(noop_runs, || {
        for _ in 0..configs.len() {
            runtime.run(|rank| rank.rank());
        }
    });
    let t_session_noop = time_median(noop_runs, || {
        let mut session = runtime.session();
        for _ in 0..configs.len() {
            session.run(|rank| rank.rank());
        }
    });

    print_table(
        &format!(
            "sweep wall-clock: {} configs × {} ranks, spawn-per-run vs one session",
            configs.len(),
            nranks
        ),
        &["strategy", "pipeline ms", "no-op ms", "threads spawned"],
        &[
            vec![
                "spawn-per-run".into(),
                format!("{:.2}", t_respawn * 1e3),
                format!("{:.3}", t_respawn_noop * 1e3),
                format!("{}", configs.len() * nranks),
            ],
            vec![
                "session".into(),
                format!("{:.2}", t_session * 1e3),
                format!("{:.3}", t_session_noop * 1e3),
                format!("{nranks}"),
            ],
            vec![
                "speedup".into(),
                format!("{:.2}x", t_respawn / t_session.max(1e-12)),
                format!("{:.2}x", t_respawn_noop / t_session_noop.max(1e-12)),
                String::new(),
            ],
        ],
    );
    println!("session sweep reports identical to spawn-per-run ✓");
}

/// Store read vs in-memory generation: the per-iteration block input of
/// one rank, produced three ways — regenerated from the storm model,
/// decoded from a memory-backed chunked store (per codec), and decoded
/// from a disk-backed store. Lossless codecs must reproduce the generated
/// blocks bit-exactly; sizes show what each codec buys.
fn bench_store_read() {
    let dataset = ReflectivityDataset::tiny(4, 42).expect("tiny dataset");
    let it = dataset.sample_iterations(3)[1];
    let raw_bytes =
        dataset.decomp().subdomain_dims().len() * dataset.decomp().nranks() * 4;
    let runs = 5;
    let generated = dataset.rank_blocks(it, 0);

    let mut rows = Vec::new();
    let t_gen = time_median(runs, || dataset.rank_blocks(it, 0));
    rows.push(vec![
        "generate (in-memory)".into(),
        format!("{:.3}", t_gen * 1e3),
        format!("{:.2}", raw_bytes as f64 / 1e6),
        "1.000".into(),
    ]);

    for codec in [CodecKind::Raw, CodecKind::Fpz, CodecKind::Lz] {
        let store = write_dataset_to(&dataset, &[it], MemStore::new(), codec)
            .expect("write mem store");
        let from_store = store.read_rank_blocks(it, 0).expect("read rank blocks");
        assert_eq!(from_store, generated, "{} store read must be bit-exact", codec.name());
        let stored = store.backend().nbytes();
        let t = time_median(runs, || store.read_rank_blocks(it, 0).expect("read"));
        rows.push(vec![
            format!("mem store / {}", codec.name()),
            format!("{:.3}", t * 1e3),
            format!("{:.2}", stored as f64 / 1e6),
            format!("{:.3}", stored as f64 / raw_bytes as f64),
        ]);
    }

    let dir = std::env::temp_dir().join("apc_kernels_bench_store");
    let _ = std::fs::remove_dir_all(&dir);
    write_dataset(&dataset, &[it], &dir, CodecKind::Fpz).expect("write dir store");
    let stored = open_dataset(&dir).expect("reopen dir store");
    assert_eq!(stored.rank_blocks(it, 0).expect("read"), generated);
    let t_disk = time_median(runs, || stored.rank_blocks(it, 0).expect("read"));
    rows.push(vec![
        "dir store / fpz".into(),
        format!("{:.3}", t_disk * 1e3),
        String::from("-"),
        String::from("-"),
    ]);
    let _ = std::fs::remove_dir_all(&dir);

    print_table(
        "block input: store read vs in-memory generation (one rank, one iteration)",
        &["source", "ms/rank", "stored MB (all ranks)", "ratio"],
        &rows,
    );
    println!("store reads bit-exact vs generation for every lossless codec ✓");
}

fn bench_metrics() {
    let (data, dims) = storm_block();
    let mut rows = Vec::new();
    for metric in standard_six() {
        let t = time_median(9, || metric.score(&data, dims));
        rows.push(vec![
            metric.name().to_string(),
            format!("{:.2}", t * 1e6),
            format!("{:.1}", data.len() as f64 / t / 1e6),
        ]);
    }
    print_table("metrics (one 11x11x19 storm block)", &["metric", "us/block", "Mpts/s"], &rows);
}

fn bench_codecs() {
    let (data, dims) = storm_block();
    let shape = (dims.nx, dims.ny, dims.nz);
    let bytes = (data.len() * 4) as f64;
    let mut rows = Vec::new();
    let mut row = |name: &str, t: f64| {
        rows.push(vec![name.to_string(), format!("{:.2}", t * 1e6), format!("{:.1}", bytes / t / 1e6)]);
    };
    row("fpz_encode", time_median(9, || Fpz.encode(&data, shape)));
    row("zfpx_encode", time_median(9, || Zfpx::default().encode(&data, shape)));
    row("lz77_encode", time_median(9, || Lz77.encode(&data, shape)));
    let enc = Fpz.encode(&data, shape);
    row("fpz_decode", time_median(9, || Fpz.decode(&enc, shape).unwrap()));
    print_table("codecs (one storm block)", &["codec", "us/block", "MB/s"], &rows);
}

fn bench_isosurface_and_storm() {
    let dims = Dims3::new(48, 48, 24);
    let coords = RectilinearCoords::uniform(dims, 1.0);
    let storm = StormModel::new(7);
    let field = storm.reflectivity(&coords, 300);
    let cells = ((dims.nx - 1) * (dims.ny - 1) * (dims.nz - 1)) as f64;
    let t_iso = time_median(9, || {
        marching_tetrahedra(field.as_slice(), dims, DBZ_ISOVALUE, |i, j, k| {
            coords.position(i, j, k)
        })
    });
    let gen_dims = Dims3::new(44, 44, 19);
    let gen_coords = RectilinearCoords::stretched(gen_dims, 1.0, 4, 1.12);
    let t_gen = time_median(9, || storm.reflectivity(&gen_coords, 300));
    print_table(
        "field kernels",
        &["kernel", "ms", "Mitems/s"],
        &[
            vec![
                "marching_tetrahedra_48x48x24".into(),
                format!("{:.3}", t_iso * 1e3),
                format!("{:.1}", cells / t_iso / 1e6),
            ],
            vec![
                "storm_reflectivity_44x44x19".into(),
                format!("{:.3}", t_gen * 1e3),
                format!("{:.1}", gen_dims.len() as f64 / t_gen / 1e6),
            ],
        ],
    );
}

fn bench_distributed_sort() {
    // 6400 scored blocks over 8 ranks, like one pipeline iteration.
    let make_input = |rank: usize| -> Vec<(u32, f64)> {
        (0..800u32)
            .map(|i| {
                let id = rank as u32 * 800 + i;
                (id, ((id as f64 * 0.61803).sin() * 1e3).round())
            })
            .collect()
    };
    let cmp = |a: &(u32, f64), b: &(u32, f64)| {
        a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0))
    };
    let t_gsb = time_median(5, || {
        Runtime::new(8, NetModel::blue_waters())
            .run(|rank| sort::gather_sort_broadcast(rank, make_input(rank.rank()), cmp).len())
    });
    let t_ss = time_median(5, || {
        Runtime::new(8, NetModel::blue_waters())
            .run(|rank| sort::sample_sort(rank, make_input(rank.rank()), cmp).len())
    });
    print_table(
        "distributed sort (6400 blocks, 8 ranks)",
        &["strategy", "ms"],
        &[
            vec!["gather_sort_broadcast".into(), format!("{:.2}", t_gsb * 1e3)],
            vec!["sample_sort".into(), format!("{:.2}", t_ss * 1e3)],
        ],
    );
}

fn main() {
    let t0 = Instant::now();
    bench_exec_policies();
    check_policy_determinism();
    bench_session_vs_respawn();
    bench_store_read();
    bench_metrics();
    bench_codecs();
    bench_isosurface_and_storm();
    bench_distributed_sort();
    println!("\nkernels bench completed in {:.1} s", t0.elapsed().as_secs_f64());
}

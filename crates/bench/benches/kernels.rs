//! Criterion microbenchmarks of the hot kernels: block scoring (every
//! metric), the floating-point codecs, marching tetrahedra, the
//! distributed sort, and synthetic storm generation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use apc_cm1::{ReflectivityDataset, StormModel, DBZ_ISOVALUE};
use apc_comm::{sort, NetModel, Runtime};
use apc_compress::{FloatCodec, Fpz, Lz77, Zfpx};
use apc_grid::{Dims3, RectilinearCoords};
use apc_metrics::standard_six;
use apc_render::marching_tetrahedra;

/// One paper-scaled block of real storm data (11×11×19).
fn storm_block() -> (Vec<f32>, Dims3) {
    let dataset = ReflectivityDataset::paper_scaled(64, 7).expect("dataset");
    let it = dataset.sample_iterations(3)[1];
    // A block near the storm center: dense, noisy content.
    let storm_center = dataset.storm().center(dataset.storm().tau(it));
    let gb = dataset.decomp().global_block_grid();
    let bi = (storm_center[0] * gb.nx as f32) as usize;
    let bj = (storm_center[1] * gb.ny as f32) as usize;
    let id = dataset.decomp().block_id_at((bi, bj, 1));
    let block = dataset.block(it, id);
    let dims = block.dims();
    (block.samples().into_owned(), dims)
}

fn bench_metrics(c: &mut Criterion) {
    let (data, dims) = storm_block();
    let mut group = c.benchmark_group("metrics");
    group.throughput(Throughput::Elements(data.len() as u64));
    for metric in standard_six() {
        group.bench_function(metric.name(), |b| {
            b.iter(|| metric.score(std::hint::black_box(&data), dims))
        });
    }
    group.finish();
}

fn bench_codecs(c: &mut Criterion) {
    let (data, dims) = storm_block();
    let shape = (dims.nx, dims.ny, dims.nz);
    let mut group = c.benchmark_group("codecs");
    group.throughput(Throughput::Bytes((data.len() * 4) as u64));
    group.bench_function("fpz_encode", |b| b.iter(|| Fpz.encode(&data, shape)));
    group.bench_function("zfpx_encode", |b| {
        b.iter(|| Zfpx::default().encode(&data, shape))
    });
    group.bench_function("lz77_encode", |b| b.iter(|| Lz77.encode(&data, shape)));
    let enc = Fpz.encode(&data, shape);
    group.bench_function("fpz_decode", |b| b.iter(|| Fpz.decode(&enc, shape).unwrap()));
    group.finish();
}

fn bench_isosurface(c: &mut Criterion) {
    let dims = Dims3::new(48, 48, 24);
    let coords = RectilinearCoords::uniform(dims, 1.0);
    let storm = StormModel::new(7);
    let field = storm.reflectivity(&coords, 300);
    let mut group = c.benchmark_group("isosurface");
    group.throughput(Throughput::Elements(
        ((dims.nx - 1) * (dims.ny - 1) * (dims.nz - 1)) as u64,
    ));
    group.bench_function("marching_tetrahedra_48x48x24", |b| {
        b.iter(|| {
            marching_tetrahedra(field.as_slice(), dims, DBZ_ISOVALUE, |i, j, k| {
                coords.position(i, j, k)
            })
        })
    });
    group.finish();
}

fn bench_storm_generation(c: &mut Criterion) {
    let dims = Dims3::new(44, 44, 19);
    let coords = RectilinearCoords::stretched(dims, 1.0, 4, 1.12);
    let storm = StormModel::new(7);
    let mut group = c.benchmark_group("cm1");
    group.throughput(Throughput::Elements(dims.len() as u64));
    group.bench_function("reflectivity_44x44x19", |b| {
        b.iter(|| storm.reflectivity(&coords, 300))
    });
    group.finish();
}

fn bench_distributed_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("sort");
    // 6400 scored blocks over 8 ranks, like one pipeline iteration.
    let make_input = |rank: usize| -> Vec<(u32, f64)> {
        (0..800u32)
            .map(|i| {
                let id = rank as u32 * 800 + i;
                (id, ((id as f64 * 0.61803).sin() * 1e3).round())
            })
            .collect()
    };
    group.bench_function("gather_sort_broadcast_6400x8", |b| {
        b.iter_batched(
            || (),
            |_| {
                Runtime::new(8, NetModel::blue_waters()).run(|rank| {
                    let local = make_input(rank.rank());
                    sort::gather_sort_broadcast(rank, local, |a, b| {
                        a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0))
                    })
                    .len()
                })
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("sample_sort_6400x8", |b| {
        b.iter_batched(
            || (),
            |_| {
                Runtime::new(8, NetModel::blue_waters()).run(|rank| {
                    let local = make_input(rank.rank());
                    sort::sample_sort(rank, local, |a, b| {
                        a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0))
                    })
                    .len()
                })
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    name = kernels;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_metrics, bench_codecs, bench_isosurface, bench_storm_generation,
        bench_distributed_sort
);
criterion_main!(kernels);

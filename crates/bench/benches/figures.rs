//! The full figure suite: regenerates every table and figure of the paper
//! in one run (`cargo bench -p apc-bench --bench figures`).
//!
//! Defaults to the quick scale; set `APC_SCALE=full` for the paper's exact
//! iteration counts and sweep resolution. Output: ASCII tables on stdout
//! and CSV/PPM/PGM artifacts under `target/experiments/`.

use apc_bench::experiments::{self, Ctx};
use apc_bench::Scale;

fn main() {
    let t0 = std::time::Instant::now();
    let scale = Scale::from_env();
    println!(
        "figure suite at {:?} scale (APC_SCALE=full for paper settings)",
        std::env::var("APC_SCALE").unwrap_or_else(|_| "quick".into())
    );

    // Snapshot experiments (build their own data).
    experiments::table1::run(&scale);
    experiments::fig01::run(&scale);
    experiments::fig03::run(&scale);
    experiments::fig04::run(&scale);
    experiments::ablations::entropy_bins(&scale);

    // Pipeline experiments share one prepared dataset per rank count.
    let ctx = Ctx::new(&scale);
    experiments::fig05::run(&ctx, &scale);
    experiments::fig06::run(&ctx, &scale);
    experiments::fig07::run(&ctx, &scale);
    experiments::fig08::run(&ctx, &scale);
    experiments::fig09::run(&ctx, &scale);
    experiments::fig10::run(&ctx, &scale);
    experiments::fig11::run(&ctx, &scale);
    experiments::fig12::run(&ctx, &scale);
    experiments::fig13::run(&ctx, &scale);
    experiments::ablations::sort_strategy(&ctx, &scale);
    experiments::ablations::slow_network(&ctx, &scale);
    experiments::ablations::controller_variants(&ctx, &scale);

    println!(
        "\nfigure suite completed in {:.0} s",
        t0.elapsed().as_secs_f64()
    );
}

//! Fixture: unwrap/expect/panic in library code must be flagged.
pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn must(v: Option<u32>) -> u32 {
    v.expect("a value")
}

pub fn never() {
    panic!("unreachable");
}

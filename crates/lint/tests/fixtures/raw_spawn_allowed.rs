//! Fixture: a raw spawn suppressed with a reasoned allow.
pub fn watchdog(f: impl FnOnce() + Send + 'static) {
    // apc-lint: allow(raw-spawn): detached watchdog; joins nothing and touches no virtual time
    std::thread::spawn(f);
}

//! Fixture: a partial_cmp comparator suppressed with reasoned allows
//! (both rules object to the same `.unwrap()`, so both are silenced).
pub fn sort_positive(v: &mut [f64]) {
    debug_assert!(v.iter().all(|x| x.is_finite()));
    // apc-lint: allow(float-ord): inputs asserted finite one line up
    // apc-lint: allow(unwrap-in-lib): inputs asserted finite one line up
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

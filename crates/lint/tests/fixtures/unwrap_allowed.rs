//! Fixture: an expect suppressed with a reasoned allow.
pub fn last_byte(buf: &[u8]) -> u8 {
    // apc-lint: allow(unwrap-in-lib): caller guarantees a non-empty buffer
    *buf.last().expect("non-empty")
}

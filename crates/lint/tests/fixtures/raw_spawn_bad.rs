//! Fixture: raw thread spawns outside apc-par/apc-comm must be flagged.
pub fn fire_and_forget(f: impl FnOnce() + Send + 'static) {
    std::thread::spawn(f);
}

pub fn named(f: impl FnOnce() + Send + 'static) -> std::io::Result<()> {
    std::thread::Builder::new().spawn(f).map(|_| ())
}

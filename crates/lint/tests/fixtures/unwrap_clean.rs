//! Fixture: typed errors and non-matching names — nothing to flag.
pub fn first(v: &[u32]) -> Result<u32, String> {
    v.first().copied().ok_or_else(|| "empty".to_owned())
}

pub fn defaulted(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}

pub fn or_else(v: Option<u32>) -> u32 {
    v.unwrap_or_else(|| 7)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}

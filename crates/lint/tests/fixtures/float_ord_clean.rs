//! Fixture: total_cmp comparators — nothing to flag.
pub fn sort_scores(v: &mut [f64]) {
    v.sort_by(f64::total_cmp);
}

pub fn handled(a: f64, b: f64) -> bool {
    a.partial_cmp(&b).is_some()
}

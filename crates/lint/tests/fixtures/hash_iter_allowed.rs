//! Fixture: hash maps suppressed file-wide with a reasoned allow-file.
// apc-lint: allow-file(hash-iter): keyed lookups only; iteration order never escapes
use std::collections::HashMap;

pub struct Cache {
    map: HashMap<u64, Vec<u8>>,
}

//! Fixture: malformed suppressions are themselves violations.
// apc-lint: allow(unwrap-in-lib)
pub fn missing_reason(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}

// apc-lint: allow(no-such-rule): not a rule the tool knows
pub fn unknown_rule() {}

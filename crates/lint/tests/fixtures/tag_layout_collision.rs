//! Fixture: SERVE_BASE raised into the STAGE band — must collide.
pub const ALLTOALLV: Tag = Tag(u32::MAX);
pub const SAMPLE_SORT: Tag = Tag(u32::MAX - 1);
pub const MAX_CHANNEL: u32 = 1 << 16;
pub const STAGE_BASE: u32 = u32::MAX - 2;
pub const SERVE_BASE: u32 = STAGE_BASE - 7;

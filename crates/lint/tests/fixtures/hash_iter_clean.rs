//! Fixture: ordered collections — nothing to flag.
use std::collections::BTreeMap;

pub struct Index {
    by_key: BTreeMap<String, u64>,
}

//! Fixture: virtual-time arithmetic only — nothing to flag.
pub fn advance(clock: f64, dt: f64) -> f64 {
    clock + dt
}

//! Fixture: partial_cmp().unwrap() comparators must be flagged.
pub fn sort_scores(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn max_score(v: &[f64]) -> Option<f64> {
    v.iter()
        .copied()
        .max_by(|a, b| a.partial_cmp(b).expect("no NaN"))
}

//! Fixture: wall-clock reads in library code must be flagged.
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn epoch() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

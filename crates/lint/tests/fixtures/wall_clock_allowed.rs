//! Fixture: a wall-clock read suppressed with a reasoned allow.
pub fn deadline(timeout: std::time::Duration) -> std::time::Instant {
    // apc-lint: allow(wall-clock): timeout machinery only; never reaches virtual time
    std::time::Instant::now() + timeout
}

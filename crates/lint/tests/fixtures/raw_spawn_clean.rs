//! Fixture: no thread machinery — nothing to flag.
pub fn run_inline(f: impl FnOnce()) {
    f();
}

//! Fixture: hash collections in library code must be flagged.
use std::collections::HashMap;

pub struct Index {
    by_key: HashMap<String, u64>,
}

pub fn names(idx: &Index) -> Vec<&String> {
    idx.by_key.keys().collect()
}

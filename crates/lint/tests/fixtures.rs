//! Fixture-driven checks of every lint rule: each rule has a flagged
//! snippet, a clean snippet, and a snippet silenced by a reasoned
//! `// apc-lint: allow(...)` — plus a tag-layout collision that must
//! fail. The fixture directory itself is classified `Skip`, so the
//! workspace scan never trips over these deliberately-bad files.

use apc_lint::{check_source, check_tag_layout, Violation, RULES};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Run a fixture as if it were library source in a non-exempt crate.
fn check_as_lib(name: &str) -> Vec<Violation> {
    check_source("crates/demo/src/lib.rs", &fixture(name))
}

fn rules_hit(violations: &[Violation]) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = violations.iter().map(|v| v.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

#[test]
fn wall_clock_fixtures() {
    let bad = check_as_lib("wall_clock_bad.rs");
    assert_eq!(rules_hit(&bad), ["wall-clock"], "{bad:?}");
    assert_eq!(bad.len(), 2, "Instant::now and SystemTime::now: {bad:?}");
    assert_eq!(bad[0].line, 3);
    assert!(check_as_lib("wall_clock_clean.rs").is_empty());
    assert!(check_as_lib("wall_clock_allowed.rs").is_empty());
}

#[test]
fn hash_iter_fixtures() {
    let bad = check_as_lib("hash_iter_bad.rs");
    assert_eq!(rules_hit(&bad), ["hash-iter"], "{bad:?}");
    assert!(check_as_lib("hash_iter_clean.rs").is_empty());
    assert!(check_as_lib("hash_iter_allowed.rs").is_empty());
}

#[test]
fn unwrap_in_lib_fixtures() {
    let bad = check_as_lib("unwrap_bad.rs");
    assert_eq!(rules_hit(&bad), ["unwrap-in-lib"], "{bad:?}");
    assert_eq!(bad.len(), 3, "unwrap, expect and panic!: {bad:?}");
    assert!(check_as_lib("unwrap_clean.rs").is_empty());
    assert!(check_as_lib("unwrap_allowed.rs").is_empty());
}

#[test]
fn unwrap_rule_is_scoped_to_library_code() {
    // The same flagged snippet is legal in a test or bench file.
    let src = fixture("unwrap_bad.rs");
    assert!(check_source("crates/demo/tests/it.rs", &src).is_empty());
    assert!(check_source("crates/demo/benches/b.rs", &src).is_empty());
}

#[test]
fn float_ord_fixtures() {
    // The comparator sites also trip unwrap-in-lib (correctly: both rules
    // object to the same `.unwrap()`); count the float-ord hits alone.
    let bad = check_as_lib("float_ord_bad.rs");
    let float_ord = bad.iter().filter(|v| v.rule == "float-ord").count();
    assert_eq!(float_ord, 2, "unwrap and expect forms: {bad:?}");
    assert!(check_as_lib("float_ord_clean.rs").is_empty());
    assert!(check_as_lib("float_ord_allowed.rs").is_empty());
}

#[test]
fn float_ord_applies_even_in_tests() {
    // A NaN-panicking comparator is a determinism bug wherever it lives.
    let bad = check_source("crates/demo/tests/it.rs", &fixture("float_ord_bad.rs"));
    assert_eq!(rules_hit(&bad), ["float-ord"], "{bad:?}");
}

#[test]
fn raw_spawn_fixtures() {
    let bad = check_as_lib("raw_spawn_bad.rs");
    assert_eq!(rules_hit(&bad), ["raw-spawn"], "{bad:?}");
    assert_eq!(bad.len(), 2, "spawn and Builder::new().spawn: {bad:?}");
    assert!(check_as_lib("raw_spawn_clean.rs").is_empty());
    assert!(check_as_lib("raw_spawn_allowed.rs").is_empty());
}

#[test]
fn raw_spawn_exempts_the_threading_crates() {
    let src = fixture("raw_spawn_bad.rs");
    assert!(check_source("crates/par/src/exec.rs", &src).is_empty());
    assert!(check_source("crates/comm/src/runtime.rs", &src).is_empty());
}

#[test]
fn tag_layout_good_fixture_passes() {
    let src = fixture("tag_layout_good.rs");
    let violations = check_tag_layout(&src, &src);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn tag_layout_collision_fixture_fails() {
    let src = fixture("tag_layout_collision.rs");
    let violations = check_tag_layout(&src, &src);
    assert!(
        violations.iter().any(|v| v.rule == "tag-range"),
        "SERVE band inside the STAGE band must be reported: {violations:?}"
    );
}

#[test]
fn malformed_allows_are_violations() {
    let bad = check_as_lib("allow_syntax_bad.rs");
    assert_eq!(rules_hit(&bad), ["allow-syntax"], "{bad:?}");
    assert_eq!(bad.len(), 2, "missing reason + unknown rule: {bad:?}");
}

#[test]
fn every_rule_has_bad_and_clean_coverage() {
    // Guard against adding a rule without fixture coverage: each rule name
    // must appear in at least one fixture file name.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let names: Vec<String> = std::fs::read_dir(&dir)
        .expect("fixture dir")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .to_string_lossy()
                .into_owned()
        })
        .collect();
    for rule in RULES {
        let stem = match rule.name {
            "tag-range" => "tag_layout".to_owned(),
            "unwrap-in-lib" => "unwrap".to_owned(),
            name => name.replace('-', "_"),
        };
        for suffix in ["_bad.rs", "_clean.rs"] {
            // tag-range fixtures use good/collision instead of clean/bad.
            let candidates = if rule.name == "tag-range" {
                vec![
                    "tag_layout_good.rs".to_owned(),
                    "tag_layout_collision.rs".to_owned(),
                ]
            } else {
                vec![format!("{stem}{suffix}")]
            };
            for c in &candidates {
                assert!(
                    names.contains(c),
                    "missing fixture {c} for rule {}",
                    rule.name
                );
            }
        }
    }
}

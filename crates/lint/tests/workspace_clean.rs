//! The workspace must stay lint-clean: this is the same scan `ci.sh`
//! runs via `cargo run -p apc-lint`, expressed as a test so `cargo test
//! --workspace` alone also catches a regression.

use apc_lint::{default_root, scan_workspace};

#[test]
fn workspace_is_lint_clean() {
    let root = default_root();
    let report = scan_workspace(&root).expect("workspace scan");
    assert!(
        report.files_scanned > 100,
        "scan looks truncated: only {} files under {}",
        report.files_scanned,
        root.display()
    );
    let diagnostics: Vec<String> = report
        .violations
        .iter()
        .map(|v| format!("{}:{}: {}: {}", v.file, v.line, v.rule, v.message))
        .collect();
    assert!(
        report.is_clean(),
        "workspace has lint violations:\n{}",
        diagnostics.join("\n")
    );
}

//! `apc-lint` — in-tree determinism & safety lint for the apc workspace.
//!
//! The whole reproduction rests on one invariant — runs replay
//! **byte-identically in virtual time** — and this crate guards it
//! *statically*, before a nondeterminism bug can reach a pinned fixture.
//! It is a zero-dependency, hand-rolled analyzer (lexer in
//! [`lexer`], rules in [`rules`], the semantic tag-range check in
//! [`tagrange`]) run from CI as `cargo run -p apc-lint`.
//!
//! Rules (see [`rules::RULES`] or `cargo run -p apc-lint -- --list`):
//!
//! | rule | guards against |
//! |------|----------------|
//! | `wall-clock` | real-clock reads outside the timeout machinery |
//! | `hash-iter` | hash-order iteration reaching output |
//! | `unwrap-in-lib` | panics on corrupt/adversarial input in libraries |
//! | `float-ord` | NaN-unsafe sort comparators (the PR-2 bug class) |
//! | `raw-spawn` | threads created behind the deterministic runtime's back |
//! | `tag-range` | reserved message-tag range collisions in apc-comm |
//!
//! Violations are suppressed in place, never globally:
//!
//! ```text
//! // apc-lint: allow(wall-clock): deadline for the deadlock watchdog
//! // apc-lint: allow-file(unwrap-in-lib): bench harness; panic on I/O error is the failure mode we want
//! ```
//!
//! A directive on its own line applies to the next code line; a trailing
//! directive applies to its own line; the reason is mandatory and an
//! unknown rule name or missing reason is itself a violation
//! (`allow-syntax`).

pub mod lexer;
pub mod rules;
pub mod tagrange;

use std::path::{Path, PathBuf};

pub use rules::{check_source, classify, FileClass, RuleInfo, Violation, RULES};
pub use tagrange::check_tag_layout;

/// Result of scanning a workspace tree.
#[derive(Debug)]
pub struct Report {
    /// All violations, sorted by (file, line, rule).
    pub violations: Vec<Violation>,
    /// Number of `.rs` files actually scanned (diagnostics).
    pub files_scanned: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Scan the workspace rooted at `root`: every `.rs` file under `crates/`,
/// `src/`, `tests/` and `examples/` goes through the textual rules, and
/// the tag-range check runs over `crates/comm/src/{p2p,bounded}.rs`.
/// Files are visited in sorted order so the report is deterministic.
pub fn scan_workspace(root: &Path) -> Result<Report, String> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();

    let mut violations = Vec::new();
    let mut files_scanned = 0usize;
    for path in &files {
        let rel = relative(root, path);
        if classify(&rel) == FileClass::Skip {
            continue;
        }
        let src =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        files_scanned += 1;
        violations.extend(check_source(&rel, &src));
    }

    let p2p = root.join("crates/comm/src/p2p.rs");
    let bounded = root.join("crates/comm/src/bounded.rs");
    match (
        std::fs::read_to_string(&p2p),
        std::fs::read_to_string(&bounded),
    ) {
        (Ok(p), Ok(b)) => violations.extend(check_tag_layout(&p, &b)),
        _ => violations.push(Violation {
            file: "crates/comm/src/p2p.rs".to_owned(),
            line: 1,
            rule: "tag-range",
            message: "cannot read crates/comm/src/{p2p,bounded}.rs for the tag-range check"
                .to_owned(),
        }),
    }

    violations.sort_by(|a, b| {
        (&a.file, a.line, a.rule)
            .cmp(&(&b.file, b.line, b.rule))
            .then_with(|| a.message.cmp(&b.message))
    });
    Ok(Report {
        violations,
        files_scanned,
    })
}

/// Locate the workspace root from the compiled-in manifest dir, so
/// `cargo run -p apc-lint` works from any cwd inside the repo.
pub fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn collect_rs_files(dir: &Path, into: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs_files(&path, into)?;
        } else if name.ends_with(".rs") {
            into.push(path);
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Minimal JSON string escape for the `--json` output mode (hand-rolled,
/// like everything else in this crate).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

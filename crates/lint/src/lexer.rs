//! Hand-rolled Rust surface lexer: masks comments and string/char literal
//! contents out of a source file (in the same spirit as the strict little
//! parser in `apc_store::json`) so the rule scanners in [`crate::rules`]
//! can pattern-match code without tripping over prose, and collects the
//! `apc-lint: allow(...)` suppression directives that live in comments.
//!
//! The masked text has exactly the same length and line structure as the
//! input: every byte inside a comment, and every byte inside a string or
//! character literal (the delimiters stay), is replaced by a space, and
//! newlines are kept verbatim. Rules therefore report real line numbers by
//! counting newlines in the masked text.

/// A parsed suppression directive.
///
/// Grammar (inside any `//` or `/* */` comment):
///
/// ```text
/// // apc-lint: allow(<rule>): <reason>      — suppress on this/next line
/// // apc-lint: allow-file(<rule>): <reason> — suppress for the whole file
/// ```
///
/// The reason is mandatory: an allow that cannot say why it exists is
/// reported as an `allow-syntax` violation by the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Rule name inside the parentheses.
    pub rule: String,
    /// Free-text justification after the second colon.
    pub reason: String,
    /// True for `allow-file`, which suppresses the rule everywhere in the
    /// file instead of on a single line.
    pub file_level: bool,
    /// 1-based line the comment starts on.
    pub comment_line: usize,
    /// True when the comment shares its line with code (trailing comment),
    /// in which case the directive applies to `comment_line` itself rather
    /// than to the next code line.
    pub trailing: bool,
}

/// A comment that contains the `apc-lint:` marker but does not parse as a
/// valid directive (bad shape, unknown form, or missing reason).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadAllow {
    pub line: usize,
    pub what: String,
}

/// Output of [`mask_source`].
#[derive(Debug)]
pub struct Masked {
    /// Source with comments and literal contents replaced by spaces.
    pub text: String,
    /// Well-formed suppression directives found in comments.
    pub allows: Vec<Allow>,
    /// Malformed `apc-lint:` comments (reported as violations).
    pub bad_allows: Vec<BadAllow>,
}

/// Strip comments and string/char literal contents from `src`.
pub fn mask_source(src: &str) -> Masked {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut allows = Vec::new();
    let mut bad_allows = Vec::new();
    let mut line = 1usize;
    // True once any non-whitespace code byte has been emitted on the
    // current line — decides whether a comment is trailing.
    let mut code_on_line = false;
    let mut i = 0usize;

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                out.push(b'\n');
                line += 1;
                code_on_line = false;
                i += 1;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
                let comment = &src[start..i];
                scan_comment(comment, line, code_on_line, &mut allows, &mut bad_allows);
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                // Block comment; Rust block comments nest.
                let start = i;
                let start_line = line;
                let trailing = code_on_line;
                let mut depth = 1usize;
                out.push(b' ');
                out.push(b' ');
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        out.push(b' ');
                        out.push(b' ');
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        out.push(b' ');
                        out.push(b' ');
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            out.push(b'\n');
                            line += 1;
                        } else {
                            out.push(b' ');
                        }
                        i += 1;
                    }
                }
                let comment = &src[start..i];
                scan_comment(comment, start_line, trailing, &mut allows, &mut bad_allows);
            }
            b'"' => {
                i = mask_string(bytes, i, &mut out, &mut line);
                code_on_line = true;
            }
            b'\'' => {
                i = mask_char_or_lifetime(bytes, i, &mut out);
                code_on_line = true;
            }
            _ => {
                // Raw / byte string prefixes: r" r#" b" br" rb" (only when
                // the prefix is not the tail of a longer identifier).
                let ident_boundary = i == 0 || !is_ident_byte(bytes[i - 1]);
                if ident_boundary && (b == b'r' || b == b'b') {
                    if let Some(next) = raw_or_byte_string(bytes, i, &mut out, &mut line) {
                        i = next;
                        code_on_line = true;
                        continue;
                    }
                }
                out.push(b);
                if !b.is_ascii_whitespace() {
                    code_on_line = true;
                }
                i += 1;
            }
        }
    }

    let text = String::from_utf8_lossy(&out).into_owned();
    Masked {
        text,
        allows,
        bad_allows,
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Mask a normal `"..."` string starting at `i` (which points at the
/// opening quote). Returns the index just past the closing quote.
fn mask_string(bytes: &[u8], mut i: usize, out: &mut Vec<u8>, line: &mut usize) -> usize {
    out.push(b'"');
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if i + 1 < bytes.len() => {
                out.push(b' ');
                if bytes[i + 1] == b'\n' {
                    out.push(b'\n');
                    *line += 1;
                } else {
                    out.push(b' ');
                }
                i += 2;
            }
            b'"' => {
                out.push(b'"');
                return i + 1;
            }
            b'\n' => {
                out.push(b'\n');
                *line += 1;
                i += 1;
            }
            _ => {
                out.push(b' ');
                i += 1;
            }
        }
    }
    i
}

/// Distinguish a char literal from a lifetime at `i` (which points at the
/// `'`). Lifetimes emit the quote and move on; char literals are masked.
fn mask_char_or_lifetime(bytes: &[u8], i: usize, out: &mut Vec<u8>) -> usize {
    // 'x' or '\..' forms; '\u{...}' is the longest escape we accept.
    if i + 1 < bytes.len() && bytes[i + 1] == b'\\' {
        // Escaped char literal: scan (bounded) for the closing quote.
        let mut j = i + 2;
        let limit = (i + 16).min(bytes.len());
        while j < limit && bytes[j] != b'\'' {
            j += 1;
        }
        if j < limit {
            out.push(b'\'');
            for _ in (i + 1)..j {
                out.push(b' ');
            }
            out.push(b'\'');
            return j + 1;
        }
    } else if i + 2 < bytes.len() && bytes[i + 2] == b'\'' && bytes[i + 1] != b'\'' {
        out.push(b'\'');
        out.push(b' ');
        out.push(b'\'');
        return i + 3;
    } else if i + 1 < bytes.len() && (bytes[i + 1] & 0x80) != 0 {
        // Multi-byte UTF-8 char literal: find the closing quote.
        let mut j = i + 1;
        let limit = (i + 8).min(bytes.len());
        while j < limit && bytes[j] != b'\'' {
            j += 1;
        }
        if j < limit {
            out.push(b'\'');
            for _ in (i + 1)..j {
                out.push(b' ');
            }
            out.push(b'\'');
            return j + 1;
        }
    }
    // Lifetime (or stray quote): keep the quote, mask nothing.
    out.push(b'\'');
    i + 1
}

/// Try to consume a raw/byte string (`r"`, `r#"`, `b"`, `br#"`, `rb"`)
/// starting at `i`. Returns `None` if this is not one.
fn raw_or_byte_string(
    bytes: &[u8],
    i: usize,
    out: &mut Vec<u8>,
    line: &mut usize,
) -> Option<usize> {
    let mut j = i;
    // Consume a prefix of at most two of {r, b} (covers r, b, rb, br).
    let mut prefix = 0usize;
    while j < bytes.len() && prefix < 2 && (bytes[j] == b'r' || bytes[j] == b'b') {
        j += 1;
        prefix += 1;
    }
    let raw = bytes[i..j].contains(&b'r');
    if raw {
        // Count hashes, then require a quote.
        let mut hashes = 0usize;
        while j < bytes.len() && bytes[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        if j >= bytes.len() || bytes[j] != b'"' {
            return None;
        }
        for _ in i..j {
            out.push(b' ');
        }
        out.push(b'"');
        j += 1;
        // Scan for `"` followed by `hashes` hashes.
        while j < bytes.len() {
            if bytes[j] == b'"' && bytes.len() - j > hashes {
                let end = j + 1 + hashes;
                if bytes[j + 1..end].iter().all(|&h| h == b'#') {
                    out.push(b'"');
                    for _ in 0..hashes {
                        out.push(b' ');
                    }
                    return Some(end);
                }
            }
            if bytes[j] == b'\n' {
                out.push(b'\n');
                *line += 1;
            } else {
                out.push(b' ');
            }
            j += 1;
        }
        Some(j)
    } else {
        // Plain byte string b"..." (escapes like a normal string).
        if j >= bytes.len() || bytes[j] != b'"' {
            return None;
        }
        for _ in i..j {
            out.push(b' ');
        }
        Some(mask_string(bytes, j, out, line))
    }
}

/// Parse a comment that *starts* with the `apc-lint:` marker. Mentions of
/// the marker later in a comment (docs, prose, quoted examples) are not
/// directives — a directive is always the whole comment.
fn scan_comment(
    comment: &str,
    line: usize,
    trailing: bool,
    allows: &mut Vec<Allow>,
    bad_allows: &mut Vec<BadAllow>,
) {
    // Strip exactly the comment opener: `//`, `/*`, plus one optional doc
    // sigil (`/`, `!` or `*`), then whitespace.
    let mut body = comment;
    for opener in ["//", "/*"] {
        if let Some(b) = body.strip_prefix(opener) {
            body = b;
            break;
        }
    }
    let body = body
        .strip_prefix(['/', '!', '*'])
        .unwrap_or(body)
        .trim_start();
    let Some(rest) = body.strip_prefix("apc-lint:") else {
        return;
    };
    let rest = rest.trim_start();
    let (file_level, rest) = if let Some(r) = rest.strip_prefix("allow-file(") {
        (true, r)
    } else if let Some(r) = rest.strip_prefix("allow(") {
        (false, r)
    } else {
        bad_allows.push(BadAllow {
            line,
            what: "expected `allow(<rule>): <reason>` or `allow-file(<rule>): <reason>`".into(),
        });
        return;
    };
    let Some(close) = rest.find(')') else {
        bad_allows.push(BadAllow {
            line,
            what: "unclosed `(` in allow directive".into(),
        });
        return;
    };
    let rule = rest[..close].trim().to_owned();
    let after = rest[close + 1..].trim_start();
    let Some(reason) = after.strip_prefix(':') else {
        bad_allows.push(BadAllow {
            line,
            what: "missing `: <reason>` after allow directive".into(),
        });
        return;
    };
    let reason = reason.trim().trim_end_matches("*/").trim().to_owned();
    if reason.is_empty() {
        bad_allows.push(BadAllow {
            line,
            what: "allow directive must give a reason".into(),
        });
        return;
    }
    allows.push(Allow {
        rule,
        reason,
        file_level,
        comment_line: line,
        trailing,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let src = r#"let x = "Instant::now"; // Instant::now in a comment
let y = 'a'; /* HashMap */ let z: u8 = b'\n';"#;
        let m = mask_source(src);
        assert!(!m.text.contains("Instant"));
        assert!(!m.text.contains("HashMap"));
        assert!(m.text.contains("let y ="));
        assert_eq!(m.text.lines().count(), src.lines().count());
        assert_eq!(m.text.len(), src.len());
    }

    #[test]
    fn masks_raw_and_byte_strings() {
        let src = "let a = r#\"panic!(\"x\")\"#; let b = br\"HashSet\"; let c = b\"unwrap()\";";
        let m = mask_source(src);
        assert!(!m.text.contains("panic!"));
        assert!(!m.text.contains("HashSet"));
        assert!(!m.text.contains("unwrap"));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x.trim() }";
        let m = mask_source(src);
        assert!(m.text.contains("x.trim()"));
    }

    #[test]
    fn quote_char_literal_does_not_open_string() {
        let src = "let q = '\"'; let bad = HashSet::new();";
        let m = mask_source(src);
        assert!(m.text.contains("HashSet"), "masked: {}", m.text);
    }

    #[test]
    fn parses_inline_and_file_allows() {
        let src = "\n// apc-lint: allow(wall-clock): timeout machinery\nfoo();\nbar(); // apc-lint: allow-file(hash-iter): keyed lookups only\n";
        let m = mask_source(src);
        assert_eq!(m.allows.len(), 2);
        assert_eq!(m.allows[0].rule, "wall-clock");
        assert!(!m.allows[0].trailing);
        assert_eq!(m.allows[0].comment_line, 2);
        assert!(m.allows[1].file_level);
        assert!(m.allows[1].trailing);
        assert!(m.bad_allows.is_empty());
    }

    #[test]
    fn malformed_allow_is_reported() {
        for bad in [
            "// apc-lint: allow(wall-clock)",         // no reason
            "// apc-lint: allow(wall-clock):",        // empty reason
            "// apc-lint: deny(wall-clock): why not", // unknown form
            "// apc-lint: allow(wall-clock: oops",    // unclosed paren
        ] {
            let m = mask_source(bad);
            assert!(m.allows.is_empty(), "{bad}");
            assert_eq!(m.bad_allows.len(), 1, "{bad}");
        }
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner panic! */ still comment */ code();";
        let m = mask_source(src);
        assert!(!m.text.contains("panic!"));
        assert!(m.text.contains("code();"));
    }
}

//! The `tag-range` rule: prove the reserved message-tag ranges in
//! `apc-comm` are pairwise disjoint *at lint time* by parsing the const
//! declarations out of `crates/comm/src/p2p.rs` and
//! `crates/comm/src/bounded.rs` and evaluating their arithmetic.
//!
//! The tag scheme this rule encodes (see the rustdoc on `Tag` in p2p.rs):
//!
//! * `ALLTOALLV` and `SAMPLE_SORT` are single reserved tags;
//! * stage queues occupy `[STAGE_BASE - 2*(MAX_CHANNEL-1) - 1, STAGE_BASE]`
//!   (channel `c` uses `STAGE_BASE - 2c` for data, `- 2c - 1` for credits);
//! * serve endpoints occupy the same-shaped band below `SERVE_BASE`;
//! * user tags are "small": everything below [`USER_CEILING`] is theirs,
//!   so every reserved range must also sit entirely above it.
//!
//! If a future PR moves a base constant so two bands collide — or makes
//! the arithmetic over/underflow `u32` — this check fails CI with the two
//! offending ranges in the message, before any run can produce crosstalk.

use std::collections::BTreeMap;

use crate::lexer::mask_source;
use crate::rules::Violation;

/// User tags must stay below this; reserved ranges must stay at or above.
/// The pipeline uses single-digit tags, so 2^20 leaves generous headroom
/// on both sides.
pub const USER_CEILING: u64 = 1 << 20;

/// An inclusive tag interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagBand {
    pub name: &'static str,
    pub lo: u64,
    pub hi: u64,
}

impl TagBand {
    fn overlaps(&self, other: &TagBand) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }
}

/// Evaluate the tag layout from the masked sources of `p2p.rs` and
/// `bounded.rs` and return every violated invariant. An empty vector
/// means the reserved ranges are provably disjoint.
pub fn check_tag_layout(p2p_src: &str, bounded_src: &str) -> Vec<Violation> {
    let file = "crates/comm/src/p2p.rs";
    let mut consts = BTreeMap::new();
    collect_consts(&mask_source(p2p_src).text, &mut consts);
    collect_consts(&mask_source(bounded_src).text, &mut consts);

    let mut out = Vec::new();
    let mut get = |name: &str| match resolve(name, &consts, 0) {
        Ok(v) => Some(v),
        Err(e) => {
            out.push(Violation {
                file: file.to_owned(),
                line: 1,
                rule: "tag-range",
                message: format!("cannot evaluate const `{name}`: {e}"),
            });
            None
        }
    };

    let (Some(alltoallv), Some(sample_sort), Some(stage_base), Some(serve_base), Some(max_channel)) = (
        get("ALLTOALLV"),
        get("SAMPLE_SORT"),
        get("STAGE_BASE"),
        get("SERVE_BASE"),
        get("MAX_CHANNEL"),
    ) else {
        return out;
    };

    let band = |name: &'static str, base: u64| -> Option<TagBand> {
        let span = 2u64
            .checked_mul(max_channel.checked_sub(1)?)?
            .checked_add(1)?;
        Some(TagBand {
            name,
            lo: base.checked_sub(span)?,
            hi: base,
        })
    };
    let mut bands = vec![
        TagBand {
            name: "ALLTOALLV",
            lo: alltoallv,
            hi: alltoallv,
        },
        TagBand {
            name: "SAMPLE_SORT",
            lo: sample_sort,
            hi: sample_sort,
        },
    ];
    for (name, base) in [("STAGE", stage_base), ("SERVE", serve_base)] {
        match band(name, base) {
            Some(b) => bands.push(b),
            None => out.push(Violation {
                file: file.to_owned(),
                line: 1,
                rule: "tag-range",
                message: format!(
                    "{name} band underflows u32: base {base} cannot hold \
                     2*(MAX_CHANNEL-1)+1 = {} tags",
                    2 * (max_channel.saturating_sub(1)) + 1
                ),
            }),
        }
    }
    bands.push(TagBand {
        name: "USER",
        lo: 0,
        hi: USER_CEILING - 1,
    });

    for i in 0..bands.len() {
        for j in i + 1..bands.len() {
            if bands[i].overlaps(&bands[j]) {
                out.push(Violation {
                    file: file.to_owned(),
                    line: 1,
                    rule: "tag-range",
                    message: format!(
                        "reserved tag ranges collide: {} [{}, {}] overlaps {} [{}, {}]",
                        bands[i].name,
                        bands[i].lo,
                        bands[i].hi,
                        bands[j].name,
                        bands[j].lo,
                        bands[j].hi
                    ),
                });
            }
        }
    }
    out
}

/// Pull `const NAME(: TYPE)? = <expr>;` declarations out of masked source.
/// Visibility qualifiers are skipped by searching for the `const` keyword
/// itself; associated consts (`Tag::X`) are stored under their last path
/// segment, which is how the evaluator references them.
fn collect_consts(masked: &str, into: &mut BTreeMap<String, String>) {
    let bytes = masked.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = masked[from..].find("const ") {
        let start = from + pos;
        from = start + "const ".len();
        // Word boundary: don't match e.g. `APPEND_CONST `.
        if start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_') {
            continue;
        }
        let rest = &masked[start + "const ".len()..];
        let Some(eq) = rest.find('=') else { continue };
        let Some(semi) = rest[eq..].find(';') else {
            continue;
        };
        let head = rest[..eq].trim();
        let name = head.split(':').next().unwrap_or("").trim().to_owned();
        if name.is_empty() || !name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_') {
            continue;
        }
        let expr = rest[eq + 1..eq + semi].trim().to_owned();
        into.insert(name, expr);
    }
}

/// Resolve a const by name, recursively evaluating references to other
/// consts. `depth` guards against reference cycles.
fn resolve(name: &str, consts: &BTreeMap<String, String>, depth: usize) -> Result<u64, String> {
    if depth > 16 {
        return Err("const reference cycle".into());
    }
    let expr = consts
        .get(name)
        .ok_or_else(|| format!("const `{name}` not found"))?;
    let mut p = Parser {
        bytes: expr.as_bytes(),
        i: 0,
        consts,
        depth,
    };
    let v = p.expr()?;
    p.skip_ws();
    if p.i != p.bytes.len() {
        return Err(format!("trailing input in `{expr}`"));
    }
    Ok(v)
}

/// Recursive-descent evaluator for the subset of const arithmetic the tag
/// constants use: decimal/hex literals (with `_` and type suffixes),
/// `u32::MAX`, references to other consts (`Tag::STAGE_BASE`), a
/// single-argument tuple-struct wrapper (`Tag(expr)`), parentheses, and
/// `+ - * / << >>` with Rust precedence. Arithmetic is checked in u64 and
/// must stay within u32, mirroring what rustc would reject at compile time
/// for a `u32` const.
struct Parser<'a> {
    bytes: &'a [u8],
    i: usize,
    consts: &'a BTreeMap<String, String>,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.bytes.len() && self.bytes[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek2(&self) -> (u8, u8) {
        let a = self.bytes.get(self.i).copied().unwrap_or(0);
        let b = self.bytes.get(self.i + 1).copied().unwrap_or(0);
        (a, b)
    }

    /// expr := addsub (('<<'|'>>') addsub)*   — shifts bind loosest.
    fn expr(&mut self) -> Result<u64, String> {
        let mut v = self.addsub()?;
        loop {
            self.skip_ws();
            match self.peek2() {
                (b'<', b'<') => {
                    self.i += 2;
                    let r = self.addsub()?;
                    v = v
                        .checked_shl(u32::try_from(r).map_err(|_| "shift too large")?)
                        .ok_or("shift overflow")?;
                }
                (b'>', b'>') => {
                    self.i += 2;
                    let r = self.addsub()?;
                    v = v
                        .checked_shr(u32::try_from(r).map_err(|_| "shift too large")?)
                        .ok_or("shift overflow")?;
                }
                _ => break,
            }
            self.check_u32(v)?;
        }
        Ok(v)
    }

    fn addsub(&mut self) -> Result<u64, String> {
        let mut v = self.mul()?;
        loop {
            self.skip_ws();
            match self.bytes.get(self.i) {
                Some(b'+') => {
                    self.i += 1;
                    v = v.checked_add(self.mul()?).ok_or("u32 overflow in `+`")?;
                }
                Some(b'-') => {
                    self.i += 1;
                    v = v.checked_sub(self.mul()?).ok_or("u32 underflow in `-`")?;
                }
                _ => break,
            }
            self.check_u32(v)?;
        }
        Ok(v)
    }

    fn mul(&mut self) -> Result<u64, String> {
        let mut v = self.atom()?;
        loop {
            self.skip_ws();
            match self.bytes.get(self.i) {
                Some(b'*') => {
                    self.i += 1;
                    v = v.checked_mul(self.atom()?).ok_or("u32 overflow in `*`")?;
                }
                Some(b'/') => {
                    self.i += 1;
                    let d = self.atom()?;
                    v = v.checked_div(d).ok_or("division by zero")?;
                }
                _ => break,
            }
            self.check_u32(v)?;
        }
        Ok(v)
    }

    fn check_u32(&self, v: u64) -> Result<(), String> {
        if v > u64::from(u32::MAX) {
            return Err(format!("value {v} exceeds u32::MAX"));
        }
        Ok(())
    }

    fn atom(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let Some(&b) = self.bytes.get(self.i) else {
            return Err("unexpected end of expression".into());
        };
        if b == b'(' {
            self.i += 1;
            let v = self.expr()?;
            self.skip_ws();
            if self.bytes.get(self.i) != Some(&b')') {
                return Err("expected `)`".into());
            }
            self.i += 1;
            return Ok(v);
        }
        if b.is_ascii_digit() {
            return self.number();
        }
        if b.is_ascii_alphabetic() || b == b'_' {
            return self.path();
        }
        Err(format!("unexpected byte `{}`", b as char))
    }

    fn number(&mut self) -> Result<u64, String> {
        let start = self.i;
        let hex =
            self.bytes[self.i..].starts_with(b"0x") || self.bytes[self.i..].starts_with(b"0X");
        if hex {
            self.i += 2;
        }
        while self.i < self.bytes.len()
            && (self.bytes[self.i].is_ascii_alphanumeric() || self.bytes[self.i] == b'_')
        {
            self.i += 1;
        }
        let mut text = std::str::from_utf8(&self.bytes[start..self.i])
            .map_err(|_| "non-utf8 number")?
            .replace('_', "");
        // Strip a type suffix (u32, usize, ...).
        for suffix in ["u8", "u16", "u32", "u64", "usize", "i32", "i64"] {
            if let Some(t) = text.strip_suffix(suffix) {
                text = t.to_owned();
                break;
            }
        }
        let v = if let Some(h) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
            u64::from_str_radix(h, 16)
        } else {
            text.parse()
        }
        .map_err(|e| format!("bad number `{text}`: {e}"))?;
        self.check_u32(v)?;
        Ok(v)
    }

    /// `u32::MAX`, `Tag::STAGE_BASE`, `STAGE_BASE`, or `Tag(expr)`.
    fn path(&mut self) -> Result<u64, String> {
        let start = self.i;
        while self.i < self.bytes.len() {
            let b = self.bytes[self.i];
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.i += 1;
            } else if b == b':' && self.bytes.get(self.i + 1) == Some(&b':') {
                self.i += 2;
            } else {
                break;
            }
        }
        let path = std::str::from_utf8(&self.bytes[start..self.i]).map_err(|_| "non-utf8 path")?;
        self.skip_ws();
        if self.bytes.get(self.i) == Some(&b'(') {
            // Tuple-struct wrapper like `Tag(u32::MAX - 1)`: the value is
            // the inner expression.
            self.i += 1;
            let v = self.expr()?;
            self.skip_ws();
            if self.bytes.get(self.i) != Some(&b')') {
                return Err("expected `)` after wrapper".into());
            }
            self.i += 1;
            return Ok(v);
        }
        if path == "u32::MAX" {
            return Ok(u64::from(u32::MAX));
        }
        let last = path.rsplit("::").next().unwrap_or(path);
        resolve(last, self.consts, self.depth + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD_P2P: &str = "
        pub(crate) const ALLTOALLV: Tag = Tag(u32::MAX);
        pub(crate) const SAMPLE_SORT: Tag = Tag(u32::MAX - 1);
        pub(crate) const STAGE_BASE: u32 = u32::MAX - 2;
        pub(crate) const SERVE_BASE: u32 = Tag::STAGE_BASE - 2 * (1 << 16);
    ";
    const GOOD_BOUNDED: &str = "const MAX_CHANNEL: u32 = 1 << 16;";

    #[test]
    fn current_layout_is_disjoint() {
        assert!(check_tag_layout(GOOD_P2P, GOOD_BOUNDED).is_empty());
    }

    #[test]
    fn colliding_serve_base_is_caught() {
        let bad = GOOD_P2P.replace("Tag::STAGE_BASE - 2 * (1 << 16)", "Tag::STAGE_BASE - 100");
        let v = check_tag_layout(&bad, GOOD_BOUNDED);
        assert!(
            v.iter()
                .any(|v| v.rule == "tag-range" && v.message.contains("STAGE")),
            "{v:?}"
        );
    }

    #[test]
    fn underflowing_band_is_caught() {
        let v = check_tag_layout(GOOD_P2P, "const MAX_CHANNEL: u32 = 1 << 31;");
        assert!(!v.is_empty());
    }

    #[test]
    fn missing_const_is_a_violation() {
        let v = check_tag_layout(GOOD_P2P, "");
        assert!(v.iter().any(|v| v.message.contains("MAX_CHANNEL")));
    }

    #[test]
    fn user_band_collision_is_caught() {
        // A "reserved" base dropped into user-tag territory.
        let bad = GOOD_P2P.replace("u32::MAX - 2", "1 << 19");
        let v = check_tag_layout(&bad, GOOD_BOUNDED);
        assert!(v.iter().any(|v| v.message.contains("USER")), "{v:?}");
    }

    #[test]
    fn evaluator_handles_hex_suffix_and_precedence() {
        let mut c = BTreeMap::new();
        c.insert("A".to_owned(), "0xFF_u32 + 2 * 3".to_owned());
        c.insert("B".to_owned(), "A << 2".to_owned());
        assert_eq!(resolve("A", &c, 0), Ok(261));
        assert_eq!(resolve("B", &c, 0), Ok(1044));
    }

    #[test]
    fn underflow_in_const_arithmetic_is_an_error() {
        let mut c = BTreeMap::new();
        c.insert("A".to_owned(), "2 - 5".to_owned());
        assert!(resolve("A", &c, 0).is_err());
    }
}

//! The textual lint rules and the per-file analysis driver.
//!
//! Every rule scans the *masked* source produced by [`crate::lexer`] —
//! comments and literal contents are already blanked out — so a pattern
//! match here is a match on real code. Rules are deliberately lexical:
//! they cannot see types, so each one is scoped (see [`FileClass`]) and
//! suppressible in place with
//! `// apc-lint: allow(<rule>): <reason>`.

use crate::lexer::{mask_source, Allow};

/// Where a file sits in the workspace; decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library code: `crates/*/src/**` (minus `src/bin`) and the umbrella
    /// `src/`.
    Lib,
    /// Binary entry points: `**/src/bin/**`. CLI tools may panic on
    /// operator error, but still must not break determinism.
    Bin,
    /// Integration tests, benches and examples: `crates/*/tests/**`,
    /// `crates/*/benches/**`, top-level `tests/**` and `examples/**`.
    TestLike,
    /// Not scanned (lint fixtures, unknown layout).
    Skip,
}

/// Classify a workspace-relative path (forward slashes).
pub fn classify(rel: &str) -> FileClass {
    if !rel.ends_with(".rs") || rel.contains("/tests/fixtures/") {
        return FileClass::Skip;
    }
    if rel.contains("/src/bin/") {
        return FileClass::Bin;
    }
    let test_like = |r: &str| {
        r.starts_with("tests/")
            || r.starts_with("examples/")
            || (r.starts_with("crates/") && (r.contains("/tests/") || r.contains("/benches/")))
    };
    if test_like(rel) {
        return FileClass::TestLike;
    }
    if rel.starts_with("src/") || (rel.starts_with("crates/") && rel.contains("/src/")) {
        return FileClass::Lib;
    }
    FileClass::Skip
}

/// One diagnostic. Rendered as `file:line: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

/// Static description of a rule, for `--list` and the README.
pub struct RuleInfo {
    pub name: &'static str,
    pub summary: &'static str,
    pub scope: &'static str,
}

/// Every rule the analyzer knows, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "wall-clock",
        summary: "Instant::now / SystemTime::now breaks virtual-time determinism; \
                  only the apc-comm timeout machinery and bench harnesses may \
                  read the real clock (annotate those sites)",
        scope: "lib + bin code, outside #[cfg(test)]",
    },
    RuleInfo {
        name: "hash-iter",
        summary: "HashMap/HashSet iteration order is nondeterministic and must \
                  not reach output; use BTreeMap/BTreeSet, sort before iterating, \
                  or annotate a keyed-lookup-only use",
        scope: "lib + bin code, outside #[cfg(test)]",
    },
    RuleInfo {
        name: "unwrap-in-lib",
        summary: ".unwrap() / .expect() / bare panic! in library code turns \
                  corrupt or adversarial input into a crash; return a typed \
                  error, or annotate a genuine invariant",
        scope: "lib code only, outside #[cfg(test)]",
    },
    RuleInfo {
        name: "float-ord",
        summary: "partial_cmp(..).unwrap() in a comparator panics on NaN \
                  mid-collective (the PR-2 score_order bug class); use \
                  f64::total_cmp / f32::total_cmp",
        scope: "everywhere, including tests and benches",
    },
    RuleInfo {
        name: "raw-spawn",
        summary: "std::thread::{spawn, Builder, scope} outside apc-par/apc-comm \
                  bypasses the deterministic runtime and the rank thread budget",
        scope: "lib + bin code outside crates/par and crates/comm",
    },
    RuleInfo {
        name: "tag-range",
        summary: "reserved message-tag ranges in apc-comm (ALLTOALLV, \
                  SAMPLE_SORT, STAGE, SERVE, user tags) must stay pairwise \
                  disjoint; checked by evaluating the const arithmetic in \
                  p2p.rs and bounded.rs",
        scope: "semantic check over crates/comm/src/{p2p,bounded}.rs",
    },
];

/// True if `name` is a rule the analyzer knows (valid in an allow).
pub fn is_known_rule(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

/// Analyze one file's source text. `rel` is the workspace-relative path
/// used both for classification and in diagnostics.
pub fn check_source(rel: &str, src: &str) -> Vec<Violation> {
    let class = classify(rel);
    if class == FileClass::Skip {
        return Vec::new();
    }
    let masked = mask_source(src);
    let lines: Vec<&str> = masked.text.split('\n').collect();
    let test_lines = cfg_test_lines(&lines);
    let suppress = Suppressions::resolve(&masked.allows, &lines);

    let mut out = Vec::new();
    for bad in &masked.bad_allows {
        out.push(Violation {
            file: rel.to_owned(),
            line: bad.line,
            rule: "allow-syntax",
            message: bad.what.clone(),
        });
    }
    for allow in &masked.allows {
        if !is_known_rule(&allow.rule) {
            out.push(Violation {
                file: rel.to_owned(),
                line: allow.comment_line,
                rule: "allow-syntax",
                message: format!("allow names unknown rule `{}`", allow.rule),
            });
        }
    }

    let mut push = |line: usize, rule: &'static str, message: String| {
        if suppress.allowed(rule, line) {
            return;
        }
        out.push(Violation {
            file: rel.to_owned(),
            line,
            rule,
            message,
        });
    };

    let in_lib_like = matches!(class, FileClass::Lib | FileClass::Bin);
    let exempt_spawn = rel.starts_with("crates/par/") || rel.starts_with("crates/comm/");

    for (idx, text) in lines.iter().enumerate() {
        let line = idx + 1;
        let in_test = test_lines.get(idx).copied().unwrap_or(false);

        if in_lib_like && !in_test {
            if let Some(what) = find_any(text, &["Instant::now", "SystemTime::now"]) {
                push(
                    line,
                    "wall-clock",
                    format!("{what} reads the real clock; determinism runs on virtual time"),
                );
            }
            if let Some(what) = find_word(text, &["HashMap", "HashSet"]) {
                push(
                    line,
                    "hash-iter",
                    format!("{what} has nondeterministic iteration order; use BTreeMap/BTreeSet or annotate a keyed-lookup-only use"),
                );
            }
            if !exempt_spawn {
                if let Some(what) =
                    find_any(text, &["thread::spawn", "thread::Builder", "thread::scope"])
                {
                    push(
                        line,
                        "raw-spawn",
                        format!(
                            "{what} outside apc-par/apc-comm bypasses the deterministic runtime"
                        ),
                    );
                }
            }
        }
        if class == FileClass::Lib && !in_test {
            for v in unwrap_like(text) {
                push(
                    line,
                    "unwrap-in-lib",
                    format!("{v} in library code; return a typed error or annotate the invariant"),
                );
            }
        }
    }

    // float-ord spans lines (rustfmt splits the chain), so it scans the
    // whole masked text and applies everywhere, tests included.
    for (idx, what) in float_ord_sites(&masked.text) {
        if suppress.allowed("float-ord", idx) {
            continue;
        }
        out.push(Violation {
            file: rel.to_owned(),
            line: idx,
            rule: "float-ord",
            message: format!("partial_cmp followed by {what} panics on NaN; use total_cmp"),
        });
    }

    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Per-file suppression table resolved from the parsed allows.
struct Suppressions {
    /// (rule, line) pairs allowed inline.
    lines: Vec<(String, usize)>,
    /// Rules allowed file-wide.
    files: Vec<String>,
}

impl Suppressions {
    fn resolve(allows: &[Allow], lines: &[&str]) -> Self {
        let mut line_allows = Vec::new();
        let mut file_allows = Vec::new();
        for a in allows {
            if a.file_level {
                file_allows.push(a.rule.clone());
                continue;
            }
            let target = if a.trailing {
                a.comment_line
            } else {
                // A standalone comment applies to the next non-blank code
                // line (comments are already blank in the masked text).
                let mut t = a.comment_line + 1;
                while t <= lines.len() && lines[t - 1].trim().is_empty() {
                    t += 1;
                }
                t
            };
            line_allows.push((a.rule.clone(), target));
        }
        Suppressions {
            lines: line_allows,
            files: file_allows,
        }
    }

    fn allowed(&self, rule: &str, line: usize) -> bool {
        self.files.iter().any(|r| r == rule)
            || self.lines.iter().any(|(r, l)| r == rule && *l == line)
    }
}

/// Mark every line inside a `#[cfg(test)]` item (attribute line through the
/// item's closing brace). Works on masked lines, so braces in strings or
/// comments cannot unbalance the count.
fn cfg_test_lines(lines: &[&str]) -> Vec<bool> {
    let joined = lines.join("\n");
    let mut flags = vec![false; lines.len()];
    // Byte offset -> line number lookup.
    let mut line_starts = vec![0usize];
    for (i, b) in joined.bytes().enumerate() {
        if b == b'\n' {
            line_starts.push(i + 1);
        }
    }
    let line_of = |off: usize| match line_starts.binary_search(&off) {
        Ok(l) => l,
        Err(l) => l - 1,
    };

    let mut search = 0usize;
    while let Some(pos) = joined[search..].find("#[cfg(test)]") {
        let start = search + pos;
        let mut i = start + "#[cfg(test)]".len();
        let bytes = joined.as_bytes();
        // Skip whitespace and further attributes to the item, then to its
        // opening `{` (or a `;` for brace-less items).
        let mut depth = 0usize;
        let mut end = joined.len();
        while i < bytes.len() {
            match bytes[i] {
                b'{' => {
                    depth += 1;
                    i += 1;
                    break;
                }
                b';' if depth == 0 => {
                    end = i;
                    break;
                }
                _ => i += 1,
            }
        }
        if depth > 0 {
            while i < bytes.len() && depth > 0 {
                match bytes[i] {
                    b'{' => depth += 1,
                    b'}' => depth -= 1,
                    _ => {}
                }
                i += 1;
            }
            end = i.saturating_sub(1);
        }
        let first = line_of(start);
        let last = line_of(end.min(joined.len().saturating_sub(1)));
        for f in flags.iter_mut().take(last + 1).skip(first) {
            *f = true;
        }
        search = start + "#[cfg(test)]".len();
    }
    flags
}

/// First match of any plain substring pattern in `text`.
fn find_any<'p>(text: &str, patterns: &[&'p str]) -> Option<&'p str> {
    patterns.iter().find(|p| text.contains(*p)).copied()
}

/// First match of any pattern that must stand as a whole word.
fn find_word<'p>(text: &str, patterns: &[&'p str]) -> Option<&'p str> {
    for p in patterns {
        let mut from = 0usize;
        while let Some(pos) = text[from..].find(p) {
            let start = from + pos;
            let end = start + p.len();
            let before_ok = start == 0 || !is_word_byte(text.as_bytes()[start - 1]);
            let after_ok = end >= text.len() || !is_word_byte(text.as_bytes()[end]);
            if before_ok && after_ok {
                return Some(p);
            }
            from = end;
        }
    }
    None
}

fn is_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// `.unwrap()`, `.expect(` and bare `panic!` occurrences on one masked
/// line. Word-bounded so `.unwrap_or(..)` / `.expect_err(..)` don't match.
fn unwrap_like(text: &str) -> Vec<&'static str> {
    let mut found = Vec::new();
    for (pat, label) in [
        (".unwrap", ".unwrap()"),
        (".expect", ".expect()"),
        ("panic!", "panic!"),
    ] {
        let mut from = 0usize;
        while let Some(pos) = text[from..].find(pat) {
            let start = from + pos;
            let end = start + pat.len();
            let bytes = text.as_bytes();
            let word_end = end >= bytes.len() || !is_word_byte(bytes[end]);
            let word_start = start == 0 || !is_word_byte(bytes[start - 1]);
            let hit = match pat {
                "panic!" => word_start,
                _ => word_end && next_non_ws(bytes, end) == Some(b'('),
            };
            if hit {
                found.push(label);
            }
            from = end;
        }
    }
    found
}

fn next_non_ws(bytes: &[u8], mut i: usize) -> Option<u8> {
    while i < bytes.len() {
        if !bytes[i].is_ascii_whitespace() {
            return Some(bytes[i]);
        }
        i += 1;
    }
    None
}

/// Find `partial_cmp( … ).unwrap()` / `.expect(` chains in the whole
/// masked text, crossing line breaks. Returns (1-based line, method).
fn float_ord_sites(masked: &str) -> Vec<(usize, &'static str)> {
    let bytes = masked.as_bytes();
    let mut sites = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = masked[from..].find("partial_cmp") {
        let start = from + pos;
        let mut i = start + "partial_cmp".len();
        from = i;
        // Word boundary before (avoid e.g. `my_partial_cmp`).
        if start > 0 && is_word_byte(bytes[start - 1]) {
            continue;
        }
        // Balanced argument list.
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b'(' {
            continue;
        }
        let mut depth = 0usize;
        while i < bytes.len() {
            match bytes[i] {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        // Optional whitespace, then `.unwrap` / `.expect`.
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b'.' {
            continue;
        }
        let rest = &masked[i..];
        let method = if rest.starts_with(".unwrap") && !starts_word(rest, ".unwrap") {
            ".unwrap()"
        } else if rest.starts_with(".expect") && !starts_word(rest, ".expect") {
            ".expect()"
        } else {
            continue;
        };
        let line = 1 + masked[..start].bytes().filter(|&b| b == b'\n').count();
        sites.push((line, method));
    }
    sites
}

/// True when the character right after `prefix` extends it into a longer
/// identifier (e.g. `.unwrap_or`).
fn starts_word(text: &str, prefix: &str) -> bool {
    text.as_bytes()
        .get(prefix.len())
        .is_some_and(|&b| is_word_byte(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_lib(src: &str) -> Vec<Violation> {
        check_source("crates/fake/src/lib.rs", src)
    }

    #[test]
    fn classify_paths() {
        assert_eq!(classify("crates/core/src/pipeline.rs"), FileClass::Lib);
        assert_eq!(classify("src/lib.rs"), FileClass::Lib);
        assert_eq!(
            classify("crates/bench/src/bin/perf_gate.rs"),
            FileClass::Bin
        );
        assert_eq!(classify("tests/properties.rs"), FileClass::TestLike);
        assert_eq!(
            classify("crates/comm/tests/session_stress.rs"),
            FileClass::TestLike
        );
        assert_eq!(
            classify("crates/bench/benches/kernels.rs"),
            FileClass::TestLike
        );
        assert_eq!(
            classify("examples/scoremap_explorer.rs"),
            FileClass::TestLike
        );
        assert_eq!(
            classify("crates/lint/tests/fixtures/wall_clock/bad.rs"),
            FileClass::Skip
        );
        assert_eq!(classify("README.md"), FileClass::Skip);
    }

    #[test]
    fn cfg_test_module_is_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); }\n}\n";
        assert!(lint_lib(src).is_empty());
    }

    #[test]
    fn unwrap_variants() {
        let v = lint_lib("fn f() { a.unwrap(); b.expect(\"x\"); panic!(\"y\"); }");
        assert_eq!(v.len(), 3);
        assert!(lint_lib(
            "fn f() { a.unwrap_or(0); b.unwrap_or_else(|| 0); c.expect_err(\"e\"); }"
        )
        .is_empty());
    }

    #[test]
    fn float_ord_across_lines() {
        let src = "fn f(v: &mut [f64]) {\n    v.sort_by(|a, b| {\n        a.partial_cmp(b)\n            .unwrap()\n    });\n}\n";
        let v = check_source("crates/fake/tests/t.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "float-ord");
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn float_ord_ignores_unwrap_or() {
        let src = "fn f(a: f64, b: f64) -> std::cmp::Ordering { a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal) }";
        assert!(check_source("crates/fake/src/x.rs", src)
            .iter()
            .all(|v| v.rule != "float-ord"));
    }

    #[test]
    fn trailing_and_preceding_allows() {
        let src =
            "use std::collections::HashMap; // apc-lint: allow(hash-iter): keyed lookups only\n\
                   // apc-lint: allow(unwrap-in-lib): len checked above\n\
                   fn f() { a.unwrap(); }\n";
        assert!(lint_lib(src).is_empty());
    }

    #[test]
    fn allow_with_unknown_rule_is_flagged() {
        let src = "// apc-lint: allow(no-such-rule): hmm\nfn f() {}\n";
        let v = lint_lib(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "allow-syntax");
    }

    #[test]
    fn bin_files_may_unwrap_but_not_clock() {
        let src = "fn main() { x.unwrap(); let t = std::time::Instant::now(); }";
        let v = check_source("crates/bench/src/bin/tool.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "wall-clock");
    }

    #[test]
    fn spawn_exempt_in_par_and_comm() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        assert!(check_source("crates/par/src/exec.rs", src)
            .iter()
            .all(|v| v.rule != "raw-spawn"));
        let v = check_source("crates/stage/src/engine.rs", src);
        assert!(v.iter().any(|v| v.rule == "raw-spawn"));
    }
}

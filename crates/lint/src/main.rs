//! CLI for apc-lint. See `--help`.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::path::PathBuf;

fn main() {
    std::process::exit(run(std::env::args().skip(1).collect()));
}

fn run(args: Vec<String>) -> i32 {
    let mut json = false;
    let mut list = false;
    let mut root: Option<PathBuf> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--list" => list = true,
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("apc-lint: --root needs a directory");
                    return 2;
                }
            },
            "--help" | "-h" => {
                print_help();
                return 0;
            }
            other => {
                eprintln!("apc-lint: unknown argument `{other}` (try --help)");
                return 2;
            }
        }
    }

    if list {
        print_rules(json);
        return 0;
    }

    let root = root.unwrap_or_else(apc_lint::default_root);
    let report = match apc_lint::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("apc-lint: {e}");
            return 2;
        }
    };

    if json {
        let mut out = String::from("{\n  \"violations\": [");
        for (i, v) in report.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
                apc_lint::json_escape(&v.file),
                v.line,
                v.rule,
                apc_lint::json_escape(&v.message)
            ));
        }
        if !report.violations.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"files_scanned\": {},\n  \"clean\": {}\n}}",
            report.files_scanned,
            report.is_clean()
        ));
        println!("{out}");
    } else {
        for v in &report.violations {
            println!("{}:{}: {}: {}", v.file, v.line, v.rule, v.message);
        }
        if report.is_clean() {
            eprintln!(
                "apc-lint: clean ({} files, {} rules)",
                report.files_scanned,
                apc_lint::RULES.len()
            );
        } else {
            eprintln!(
                "apc-lint: {} violation(s) in {} files scanned \
                 (suppress a justified site with `// apc-lint: allow(<rule>): <reason>`)",
                report.violations.len(),
                report.files_scanned
            );
        }
    }
    i32::from(!report.is_clean())
}

fn print_rules(json: bool) {
    if json {
        let mut out = String::from("{\n  \"rules\": [");
        for (i, r) in apc_lint::RULES.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"scope\": \"{}\", \"summary\": \"{}\"}}",
                r.name,
                apc_lint::json_escape(r.scope),
                apc_lint::json_escape(&normalize_ws(r.summary))
            ));
        }
        out.push_str("\n  ]\n}");
        println!("{out}");
        return;
    }
    for r in apc_lint::RULES {
        println!("{:14} [{}]", r.name, r.scope);
        println!("    {}", normalize_ws(r.summary));
    }
}

/// Collapse the multi-line literal indentation in rule summaries.
fn normalize_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

fn print_help() {
    println!(
        "apc-lint: in-tree determinism & safety lint for the apc workspace

USAGE: cargo run -p apc-lint [--] [--list] [--json] [--root <dir>]

  (no flags)   scan the workspace; print `file:line: rule: message`
               diagnostics and exit 1 if any violation is found
  --list       list every rule with its scope and rationale
  --json       machine-readable output (for both scan and --list)
  --root DIR   scan DIR instead of the compiled-in workspace root

Suppress a justified violation in place (reason is mandatory):
  // apc-lint: allow(<rule>): <reason>        -- this / next line
  // apc-lint: allow-file(<rule>): <reason>   -- whole file"
    );
}

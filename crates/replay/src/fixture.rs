//! Synthetic persisted runs for replay suites and benches.
//!
//! A replay pool serves a run some *earlier* session produced; the
//! fixtures here stand in for that session, writing a deterministic run
//! (SplitMix64 pixels, strictly increasing iterations, manifest sealed)
//! straight through the same [`FrameSink`] path the staged executor
//! uses — flat or sharded, on any backend.

use std::sync::Arc;

use apc_par::SplitMix64;
use apc_serve::{Frame, FrameSink, RunManifest};
use apc_store::{CodecKind, StoreBackend};

/// Write a complete synthetic run to `backend` and return its manifest.
/// Pure in everything but the writes: the same arguments always produce
/// byte-identical frames, so replay suites can regenerate the fixture
/// instead of shipping binary artifacts.
#[allow(clippy::too_many_arguments)]
pub fn synth_run(
    backend: Arc<dyn StoreBackend>,
    run_id: &str,
    iterations: &[usize],
    n_stagers: usize,
    width: usize,
    height: usize,
    codec: CodecKind,
    shard_chunks: Option<usize>,
) -> RunManifest {
    assert!(!iterations.is_empty(), "a run needs at least one iteration");
    assert!(
        iterations.windows(2).all(|w| w[0] < w[1]),
        "iterations must be strictly increasing"
    );
    assert!(n_stagers >= 1, "a run needs at least one stager");
    let sink = match shard_chunks {
        Some(n) => FrameSink::sharded(Arc::clone(&backend), run_id, codec, n),
        None => FrameSink::new(Arc::clone(&backend), run_id, codec),
    };
    for &it in iterations {
        for stager in 0..n_stagers {
            // Pixels keyed by (iteration, stager): frames differ across
            // the run but replay byte-identically.
            let mut rng =
                SplitMix64::new((it as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (stager as u64));
            let pixels: Vec<f32> = (0..width * height)
                .map(|_| rng.range_f32(-60.0, 75.0))
                .collect();
            let frame = Frame::new(
                it as u64,
                stager as u32,
                width as u32,
                height as u32,
                pixels,
            )
            .with_render_info(rng.next_u64() % 4096, rng.range_f64(10.0, 90.0));
            sink.persist(&frame);
        }
    }
    let manifest = RunManifest {
        run_id: run_id.to_owned(),
        n_stagers,
        width,
        height,
        codec,
        iterations: iterations.to_vec(),
        shard_chunks: sink.shard_chunks(),
    };
    sink.store()
        .put_manifest(&manifest)
        // apc-lint: allow(unwrap-in-lib): fixture setup — a manifest write failure must fail the suite loudly
        .expect("write the fixture manifest");
    sink.flush()
        // apc-lint: allow(unwrap-in-lib): fixture setup — failing to seal the run must fail the suite loudly
        .expect("seal the fixture's tail shards");
    manifest
}

/// Convenience: a small flat in-memory run for unit suites.
pub fn small_run(backend: Arc<dyn StoreBackend>, run_id: &str) -> RunManifest {
    synth_run(
        backend,
        run_id,
        &[100, 200, 300, 400, 500, 600, 700, 800],
        4,
        16,
        12,
        CodecKind::Fpz,
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_serve::open_run;
    use apc_store::MemStore;

    #[test]
    fn fixture_runs_open_and_replay_byte_identically() {
        for shard in [None, Some(3)] {
            let backend: Arc<dyn StoreBackend> = Arc::new(MemStore::new());
            let m1 = synth_run(
                Arc::clone(&backend),
                "fix",
                &[10, 20, 30],
                2,
                8,
                6,
                CodecKind::Fpz,
                shard,
            );
            let (store, m2) = open_run(Arc::clone(&backend), "fix").expect("open the fixture");
            assert_eq!(m1, m2);
            let other: Arc<dyn StoreBackend> = Arc::new(MemStore::new());
            synth_run(
                Arc::clone(&other),
                "fix",
                &[10, 20, 30],
                2,
                8,
                6,
                CodecKind::Fpz,
                shard,
            );
            let (store2, _) = open_run(other, "fix").expect("open the twin");
            for &it in &m1.iterations {
                for s in 0..m1.n_stagers {
                    let a = store.encoded(it as u64, s as u32).expect("read");
                    let b = store2.encoded(it as u64, s as u32).expect("read twin");
                    assert_eq!(a, b, "fixture frames must be byte-identical");
                    let frame = Frame::decode(&a).expect("decode");
                    assert_eq!(frame.iteration, it as u64);
                    assert_eq!(frame.stager, s as u32);
                }
            }
        }
    }

    #[test]
    fn small_run_covers_four_stagers() {
        let backend: Arc<dyn StoreBackend> = Arc::new(MemStore::new());
        let m = small_run(Arc::clone(&backend), "small");
        assert_eq!(m.n_stagers, 4);
        assert_eq!(m.iterations.len(), 8);
        let (store, _) = open_run(backend, "small").expect("open");
        assert!(store.contains(800, 3).expect("probe"));
    }
}

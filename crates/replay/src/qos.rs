//! QoS-tier request resolution over a *completed* run.
//!
//! The live executor's [`apc_serve::ServePolicy`] decides what happens
//! when a request races frame production. A replay pool serves a run that
//! already finished, so the race collapses into a simpler question: what
//! does a request naming an absent iteration get? [`resolve`] answers it
//! per [`QosTier`]:
//!
//! * **Premium** (`WaitForFrame` lineage) — exact frames or a typed
//!   [`Resolution::NoSuchIteration`]; never a substitute.
//! * **Free** (`BestEffort` lineage) — the newest frame at or before the
//!   requested iteration (flagged inexact), or [`Resolution::NotYet`]
//!   when the request predates the whole run.
//!
//! Resolution is pure arithmetic over the manifest's iteration list — no
//! store reads, no clocks — so the planner and the executor can both call
//! it and agree byte-for-byte.

use apc_serve::{FrameKey, FrameRequest};

use crate::trace::QosTier;

/// What a request resolves to against a completed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolution {
    /// Frame keys to read and ship, in iteration order. `exact` is false
    /// when the free tier substituted an older frame.
    Frames { exact: bool, keys: Vec<FrameKey> },
    /// Free-tier request predating the run: nothing to substitute.
    NotYet,
    /// Premium-tier request naming an iteration the run never rendered.
    NoSuchIteration(u64),
}

impl Resolution {
    /// Keys the resolution ships.
    pub fn keys(&self) -> &[FrameKey] {
        match self {
            Resolution::Frames { keys, .. } => keys,
            _ => &[],
        }
    }

    /// Whether the answer is exactly what was asked.
    pub fn exact(&self) -> bool {
        matches!(self, Resolution::Frames { exact: true, .. })
    }
}

/// Resolve `request` (targeting `stager`'s frames) for a `tier` client
/// against the run's sorted iteration list.
pub fn resolve(
    request: FrameRequest,
    stager: u32,
    tier: QosTier,
    iterations: &[usize],
) -> Resolution {
    assert!(
        !iterations.is_empty(),
        "cannot resolve against an empty run"
    );
    let last = iterations[iterations.len() - 1] as u64;
    match request {
        FrameRequest::Latest => Resolution::Frames {
            exact: true,
            keys: vec![(last, stager)],
        },
        FrameRequest::AtIteration(it) => {
            if iterations.binary_search(&(it as usize)).is_ok() {
                return Resolution::Frames {
                    exact: true,
                    keys: vec![(it, stager)],
                };
            }
            match tier {
                QosTier::Premium => Resolution::NoSuchIteration(it),
                QosTier::Free => {
                    // Substitute the newest rendered frame at or before
                    // the requested iteration.
                    match iterations.iter().rev().find(|&&x| (x as u64) <= it) {
                        Some(&x) => Resolution::Frames {
                            exact: false,
                            keys: vec![(x as u64, stager)],
                        },
                        None => Resolution::NotYet,
                    }
                }
            }
        }
        FrameRequest::Range { start, end } => {
            debug_assert!(start <= end, "protocol decode rejects inverted ranges");
            let keys: Vec<FrameKey> = iterations
                .iter()
                .filter(|&&x| (x as u64) >= start && (x as u64) <= end)
                .map(|&x| (x as u64, stager))
                .collect();
            if keys.is_empty() {
                return match tier {
                    QosTier::Premium => Resolution::NoSuchIteration(start),
                    QosTier::Free => Resolution::NotYet,
                };
            }
            Resolution::Frames { exact: true, keys }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ITERS: &[usize] = &[100, 200, 300, 400];

    #[test]
    fn latest_is_exact_for_both_tiers() {
        for tier in [QosTier::Premium, QosTier::Free] {
            let r = resolve(FrameRequest::Latest, 2, tier, ITERS);
            assert_eq!(r.keys(), &[(400, 2)]);
            assert!(r.exact());
        }
    }

    #[test]
    fn in_run_iteration_is_exact_for_both_tiers() {
        for tier in [QosTier::Premium, QosTier::Free] {
            let r = resolve(FrameRequest::AtIteration(200), 0, tier, ITERS);
            assert_eq!(r.keys(), &[(200, 0)]);
            assert!(r.exact());
        }
    }

    #[test]
    fn absent_iteration_splits_by_tier() {
        // Premium gets the typed error; Free gets the newest frame at or
        // before the request, flagged inexact.
        assert_eq!(
            resolve(FrameRequest::AtIteration(250), 0, QosTier::Premium, ITERS),
            Resolution::NoSuchIteration(250)
        );
        let r = resolve(FrameRequest::AtIteration(250), 0, QosTier::Free, ITERS);
        assert_eq!(r.keys(), &[(200, 0)]);
        assert!(!r.exact());
        // Past the end of the run, free substitutes the last frame.
        let r = resolve(FrameRequest::AtIteration(999), 1, QosTier::Free, ITERS);
        assert_eq!(r.keys(), &[(400, 1)]);
        assert!(!r.exact());
    }

    #[test]
    fn request_predating_the_run_is_notyet_for_free() {
        assert_eq!(
            resolve(FrameRequest::AtIteration(50), 0, QosTier::Free, ITERS),
            Resolution::NotYet
        );
        assert_eq!(
            resolve(FrameRequest::AtIteration(50), 0, QosTier::Premium, ITERS),
            Resolution::NoSuchIteration(50)
        );
    }

    #[test]
    fn ranges_clip_to_the_run() {
        let r = resolve(
            FrameRequest::Range {
                start: 150,
                end: 350,
            },
            0,
            QosTier::Premium,
            ITERS,
        );
        assert_eq!(r.keys(), &[(200, 0), (300, 0)]);
        assert!(r.exact());
        // Empty intersection follows the tier split.
        assert_eq!(
            resolve(
                FrameRequest::Range {
                    start: 500,
                    end: 600
                },
                0,
                QosTier::Premium,
                ITERS
            ),
            Resolution::NoSuchIteration(500)
        );
        assert_eq!(
            resolve(
                FrameRequest::Range { start: 0, end: 50 },
                0,
                QosTier::Free,
                ITERS
            ),
            Resolution::NotYet
        );
    }
}

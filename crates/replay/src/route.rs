//! Deterministic request routing across the replay server pool.
//!
//! The live serving executor pins each client to one stager (`client %
//! n_stagers`) because only that stager holds the client's frames. A
//! replay pool has no such constraint — every server opens the same
//! persisted run — so the router is free to optimize for cache affinity:
//! [`rendezvous_server`] gives every frame key a stable *primary* server
//! via highest-random-weight (rendezvous) hashing. The same key always
//! lands on the same server regardless of client, so each server's LRU
//! cache holds a disjoint shard of the hot set instead of every server
//! holding a copy of all of it.
//!
//! Routing is pure arithmetic over `(key, nservers)` — no hash-map
//! iteration, no global table to keep consistent, and adding a server
//! only moves the keys that rendezvous onto it.

use apc_par::SplitMix64;
use apc_serve::{FrameKey, FrameRequest};

use crate::trace::Arrival;

/// How requests map to servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteMode {
    /// The live-serving coupling, replayed: client `c` always asks server
    /// `c % nservers`, whatever the key.
    Pinned,
    /// Rendezvous-hash the request's frame key to its primary server.
    Routed,
    /// [`RouteMode::Routed`] plus virtual-time request stealing: an idle
    /// server takes queued work from the most-loaded peer (see
    /// `crate::plan`).
    RoutedStealing,
}

impl RouteMode {
    /// Short stable name for CSV/report rows.
    pub fn name(&self) -> &'static str {
        match self {
            RouteMode::Pinned => "pinned",
            RouteMode::Routed => "routed",
            RouteMode::RoutedStealing => "routed+steal",
        }
    }

    /// Whether completion-time stealing is active.
    pub fn steals(&self) -> bool {
        matches!(self, RouteMode::RoutedStealing)
    }
}

/// Highest-random-weight (rendezvous) hash: the server whose mixed score
/// for `key` is largest. Stable per key, uniform over servers, and
/// minimally disruptive when the pool grows.
pub fn rendezvous_server(key: FrameKey, nservers: usize) -> usize {
    assert!(nservers >= 1, "need at least one server");
    let (iteration, stager) = key;
    let mut best = (0u64, 0usize);
    for s in 0..nservers {
        // One SplitMix64 step over the packed (key, server) identity is
        // a cheap, well-mixed score; ties break to the lowest index.
        let seed = iteration
            .wrapping_mul(0x2545_f491_4f6c_dd1d)
            .wrapping_add((stager as u64) << 32)
            .wrapping_add(s as u64);
        let score = SplitMix64::new(seed).next_u64();
        if s == 0 || score > best.0 {
            best = (score, s);
        }
    }
    best.1
}

/// The frame key a request routes by: its first (or only) named
/// iteration, with `Latest` resolving to the run's newest iteration.
/// Out-of-run iterations still route somewhere stable — the primary
/// answers the tier-policy miss path too.
pub fn route_key(request: FrameRequest, stager: u32, iterations: &[usize]) -> FrameKey {
    assert!(!iterations.is_empty(), "cannot route against an empty run");
    let it = match request {
        FrameRequest::Latest => iterations[iterations.len() - 1] as u64,
        FrameRequest::AtIteration(it) => it,
        FrameRequest::Range { start, .. } => start,
    };
    (it, stager)
}

/// The primary server of one recorded arrival under `mode`.
pub fn primary_for(
    mode: RouteMode,
    arrival: &Arrival,
    nservers: usize,
    iterations: &[usize],
) -> usize {
    match mode {
        RouteMode::Pinned => arrival.client % nservers,
        RouteMode::Routed | RouteMode::RoutedStealing => rendezvous_server(
            route_key(arrival.request, arrival.stager, iterations),
            nservers,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::QosTier;

    #[test]
    fn rendezvous_is_stable_and_in_range() {
        for it in 0..64u64 {
            for stager in 0..4u32 {
                let s = rendezvous_server((it, stager), 7);
                assert!(s < 7);
                assert_eq!(s, rendezvous_server((it, stager), 7));
            }
        }
    }

    #[test]
    fn rendezvous_spreads_keys_over_servers() {
        let n = 8;
        let mut counts = vec![0usize; n];
        for it in 0..400u64 {
            for stager in 0..4u32 {
                counts[rendezvous_server((it, stager), n)] += 1;
            }
        }
        // 1600 keys over 8 servers: each server should hold a meaningful
        // share — rendezvous hashing is near-uniform.
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > 100, "server {s} holds only {c} of 1600 keys");
        }
    }

    #[test]
    fn growing_the_pool_only_moves_keys_onto_new_servers() {
        // The rendezvous property: keys either stay put or move to the
        // newly added server — never between old servers.
        for it in 0..200u64 {
            let old = rendezvous_server((it, 0), 4);
            let new = rendezvous_server((it, 0), 5);
            assert!(new == old || new == 4, "key {it} moved {old} -> {new}");
        }
    }

    #[test]
    fn route_key_resolves_latest_and_ranges() {
        let iters = [100usize, 200, 300];
        assert_eq!(route_key(FrameRequest::Latest, 1, &iters), (300, 1));
        assert_eq!(
            route_key(FrameRequest::AtIteration(200), 0, &iters),
            (200, 0)
        );
        assert_eq!(
            route_key(
                FrameRequest::Range {
                    start: 100,
                    end: 300
                },
                2,
                &iters
            ),
            (100, 2)
        );
    }

    #[test]
    fn pinned_mode_reproduces_the_live_coupling() {
        let iters = [100usize, 200];
        let a = Arrival {
            slot: 0,
            client: 11,
            index: 0,
            time: 0.0,
            tier: QosTier::Free,
            request: FrameRequest::Latest,
            stager: 0,
        };
        assert_eq!(primary_for(RouteMode::Pinned, &a, 4, &iters), 11 % 4);
        // Routed ignores the client identity entirely.
        let b = Arrival { client: 12, ..a };
        assert_eq!(
            primary_for(RouteMode::Routed, &a, 4, &iters),
            primary_for(RouteMode::Routed, &b, 4, &iters)
        );
    }

    #[test]
    fn mode_names_are_stable() {
        assert_eq!(RouteMode::Pinned.name(), "pinned");
        assert_eq!(RouteMode::Routed.name(), "routed");
        assert_eq!(RouteMode::RoutedStealing.name(), "routed+steal");
        assert!(RouteMode::RoutedStealing.steals());
        assert!(!RouteMode::Routed.steals());
    }
}

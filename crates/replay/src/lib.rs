//! Standalone replay serving: the layer that serves *persisted* runs with
//! no live simulation attached.
//!
//! The staged pipeline (`apc-core`) persists every rendered frame through
//! a [`apc_serve::FrameSink`]; the live serving executor can only ship
//! those frames while the producing session is running, each client
//! pinned to the one stager that holds its frames. This crate removes
//! both constraints. A **replay pool** is a set of server ranks that each
//! open the same completed run ([`apc_serve::open_run`], fronted by a
//! per-server [`apc_store::CachedBackend`]) and answer
//! [`apc_serve::FrameRequest`]s from client ranks — no sim ranks, no
//! stage ranks, any server can answer any request.
//!
//! The pieces, all deterministic and runtime-agnostic:
//!
//! * [`trace`] — recorded, replayable client arrival traces: bursty
//!   Poisson phases, a shifting hot window, and per-client
//!   [`QosTier`]s, generated from a seed ([`ArrivalTrace::generate`]).
//! * [`route`] — [`RouteMode`]: the live pinned coupling, replayed; or
//!   rendezvous-hash routing ([`rendezvous_server`]) that gives every
//!   frame key a stable primary so per-server caches shard the hot set.
//! * [`plan`] — [`PoolPlan::plan`]: a discrete-event simulation over the
//!   recorded trace that decides, ahead of any rank spawning, which
//!   server executes each arrival and in what order — including
//!   virtual-time request stealing (idle server takes the newest queued
//!   request from the most-loaded peer).
//! * [`qos`] — [`resolve`]: tier-aware request resolution over a
//!   completed run (premium: exact or a typed error; free: substitute or
//!   `NotYet`).
//! * [`fixture`] — deterministic synthetic runs ([`synth_run`]) so
//!   suites and benches regenerate their persisted input instead of
//!   shipping artifacts.
//!
//! The SPMD executor that realizes a plan over `apc_comm` endpoints lives
//! in `apc-core` (`core/src/replay_serving.rs`), mirroring how the live
//! serving executor sits above `apc-serve`.

pub mod fixture;
pub mod plan;
pub mod qos;
pub mod route;
pub mod trace;

pub use fixture::{small_run, synth_run};
pub use plan::{Assignment, PoolParams, PoolPlan, ReplayFault};
pub use qos::{resolve, Resolution};
pub use route::{primary_for, rendezvous_server, route_key, RouteMode};
pub use trace::{Arrival, ArrivalTrace, QosTier, TraceSpec};

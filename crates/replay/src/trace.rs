//! Recorded, replayable client arrival traces.
//!
//! A replay run is driven entirely by an [`ArrivalTrace`]: every request a
//! client will ever issue — its virtual arrival time, QoS tier, payload,
//! and target stager — is generated up front from a seed and the run's
//! [`RunManifest`], then *recorded* in a canonical order. The executor and
//! the pool planner both consume the same trace, which is what makes
//! routing and stealing decisions replayable: there is no live arrival
//! race to resolve, only a deterministic order to honor.
//!
//! Arrivals follow a bursty phase scheme: virtual time alternates between
//! *calm* and *burst* phases of [`TraceSpec::phase_len`] seconds, with
//! exponential (Poisson-process) inter-arrival gaps whose mean switches
//! between [`TraceSpec::base_interval`] and [`TraceSpec::burst_interval`].
//! Each phase also shifts a hot iteration window across the run, so the
//! request mix has the skew that makes cache routing matter.

use apc_par::SplitMix64;
use apc_serve::{FrameRequest, RunManifest, ServePolicy};

/// Quality-of-service tier of a client, layered over [`ServePolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QosTier {
    /// Paying tier: exact answers or a typed error — maps to
    /// [`ServePolicy::WaitForFrame`] (over a completed run the "wait"
    /// degenerates to exact-or-`NoSuchIteration`).
    Premium,
    /// Free tier: substituted answers are fine — maps to
    /// [`ServePolicy::BestEffort`] (the newest frame at or before the
    /// requested one, or `NotYet`).
    Free,
}

impl QosTier {
    /// The serve policy this tier layers over.
    pub fn policy(&self) -> ServePolicy {
        match self {
            QosTier::Premium => ServePolicy::WaitForFrame,
            QosTier::Free => ServePolicy::BestEffort,
        }
    }

    /// Short stable name for CSV/report rows.
    pub fn name(&self) -> &'static str {
        match self {
            QosTier::Premium => "premium",
            QosTier::Free => "free",
        }
    }
}

/// Shape of a generated arrival trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSpec {
    /// Client ranks issuing requests.
    pub clients: usize,
    /// Requests each client issues over the trace.
    pub requests_per_client: usize,
    /// Seed of every random draw in the trace.
    pub seed: u64,
    /// Fraction of clients on the [`QosTier::Premium`] tier.
    pub premium_share: f64,
    /// Mean inter-arrival gap (virtual seconds, per client) in calm
    /// phases.
    pub base_interval: f64,
    /// Mean inter-arrival gap in burst phases (smaller = harder bursts).
    pub burst_interval: f64,
    /// Virtual seconds per calm/burst phase.
    pub phase_len: f64,
    /// Probability an `AtIteration` draw lands in the current phase's hot
    /// window rather than uniformly over the run.
    pub hot_fraction: f64,
    /// Width of the hot window, in iterations.
    pub hot_window: usize,
    /// Fraction of requests that name an iteration past the end of the
    /// run (the tier-policy miss path).
    pub miss_share: f64,
}

impl TraceSpec {
    pub fn new(clients: usize, requests_per_client: usize, seed: u64) -> Self {
        assert!(clients >= 1, "need at least one client");
        assert!(requests_per_client >= 1, "need at least one request each");
        Self {
            clients,
            requests_per_client,
            seed,
            premium_share: 0.25,
            base_interval: 2e-2,
            burst_interval: 2e-3,
            phase_len: 0.25,
            hot_fraction: 0.8,
            hot_window: 4,
            miss_share: 0.1,
        }
    }

    /// Set the fraction of premium clients.
    pub fn with_premium_share(mut self, share: f64) -> Self {
        assert!((0.0..=1.0).contains(&share), "share must be in [0, 1]");
        self.premium_share = share;
        self
    }

    /// Set the calm/burst mean inter-arrival gaps.
    pub fn with_intervals(mut self, base: f64, burst: f64) -> Self {
        assert!(base > 0.0 && burst > 0.0, "intervals must be positive");
        self.base_interval = base;
        self.burst_interval = burst;
        self
    }

    /// Set the hot-window skew (window width in iterations, probability a
    /// targeted draw lands inside it).
    pub fn with_hot(mut self, window: usize, fraction: f64) -> Self {
        assert!(window >= 1, "hot window must span an iteration");
        assert!((0.0..=1.0).contains(&fraction), "fraction in [0, 1]");
        self.hot_window = window;
        self.hot_fraction = fraction;
        self
    }

    /// Set the share of requests naming iterations past the run's end.
    pub fn with_miss_share(mut self, share: f64) -> Self {
        assert!((0.0..=1.0).contains(&share), "share must be in [0, 1]");
        self.miss_share = share;
        self
    }
}

/// One recorded request arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Position in the trace's canonical order (the replay identity).
    pub slot: usize,
    /// Issuing client.
    pub client: usize,
    /// The request's index within its client (issue order).
    pub index: usize,
    /// Virtual arrival time at which the client posts the request.
    pub time: f64,
    /// The issuing client's tier.
    pub tier: QosTier,
    /// The request payload.
    pub request: FrameRequest,
    /// Target stager slot whose frames the request names.
    pub stager: u32,
}

/// A complete recorded trace: arrivals in canonical `(time, client,
/// index)` order, plus the per-client tier table.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTrace {
    pub arrivals: Vec<Arrival>,
    pub clients: usize,
    pub requests_per_client: usize,
    /// Tier per client, in client-slot order.
    pub tiers: Vec<QosTier>,
}

impl ArrivalTrace {
    /// Generate the trace for `spec` against a persisted run's manifest.
    /// A pure function of its arguments: the same spec and manifest always
    /// produce the identical trace, byte for byte.
    pub fn generate(spec: &TraceSpec, manifest: &RunManifest) -> Self {
        assert!(
            !manifest.iterations.is_empty() && manifest.n_stagers >= 1,
            "cannot trace requests against an empty run"
        );
        let iters = &manifest.iterations;
        let last_it = iters[iters.len() - 1] as u64;

        // Tiers first, from a dedicated stream, so changing arrival knobs
        // never silently reshuffles who pays.
        let mut tier_rng = SplitMix64::new(spec.seed ^ 0x9e37_79b9_7f4a_7c15);
        let tiers: Vec<QosTier> = (0..spec.clients)
            .map(|_| {
                if tier_rng.next_f64() < spec.premium_share {
                    QosTier::Premium
                } else {
                    QosTier::Free
                }
            })
            .collect();

        let mut arrivals = Vec::with_capacity(spec.clients * spec.requests_per_client);
        // `client` seeds the per-client rng stream, not just the `tiers` index.
        #[allow(clippy::needless_range_loop)]
        for client in 0..spec.clients {
            // Per-client stream: a client's request sequence is invariant
            // under changes to the client count above it.
            let mut rng =
                SplitMix64::new(spec.seed ^ (client as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9));
            let mut t = 0.0_f64;
            for index in 0..spec.requests_per_client {
                // Poisson-process gap whose mean follows the calm/burst
                // phase the client is currently in.
                let phase = (t / spec.phase_len) as u64;
                let mean = if phase.is_multiple_of(2) {
                    spec.base_interval
                } else {
                    spec.burst_interval
                };
                let u = rng.next_f64();
                t += -mean * (1.0 - u).ln();

                // The hot window shifts every phase, sliding over the run.
                let phase = (t / spec.phase_len) as u64;
                let window = spec.hot_window.min(iters.len());
                let hot_lo = ((phase as usize).wrapping_mul(7)) % (iters.len() - window + 1);
                let stager = rng.below(manifest.n_stagers) as u32;

                let draw = rng.next_f64();
                let request = if draw < spec.miss_share {
                    // Past the end of the run: the tier decides whether
                    // this is an error or a substituted answer.
                    FrameRequest::AtIteration(last_it + 1 + rng.below(4) as u64)
                } else if draw < spec.miss_share + 0.1 {
                    FrameRequest::Latest
                } else if draw < spec.miss_share + 0.3 {
                    let start = rng.below(iters.len());
                    let len = 1 + rng.below(3);
                    let end = (start + len).min(iters.len() - 1);
                    FrameRequest::Range {
                        start: iters[start] as u64,
                        end: iters[end] as u64,
                    }
                } else {
                    let idx = if rng.next_f64() < spec.hot_fraction {
                        hot_lo + rng.below(window)
                    } else {
                        rng.below(iters.len())
                    };
                    FrameRequest::AtIteration(iters[idx] as u64)
                };

                arrivals.push(Arrival {
                    slot: 0, // assigned after the canonical sort
                    client,
                    index,
                    time: t,
                    tier: tiers[client],
                    request,
                    stager,
                });
            }
        }

        // Canonical order: time, then (client, index) as the total
        // tiebreak — this *is* the recorded arrival order stealing
        // replays from.
        arrivals.sort_by(|a, b| {
            a.time
                .total_cmp(&b.time)
                .then(a.client.cmp(&b.client))
                .then(a.index.cmp(&b.index))
        });
        for (slot, a) in arrivals.iter_mut().enumerate() {
            a.slot = slot;
        }

        Self {
            arrivals,
            clients: spec.clients,
            requests_per_client: spec.requests_per_client,
            tiers,
        }
    }

    /// Total recorded arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// The issuing client's tier.
    pub fn tier_of(&self, client: usize) -> QosTier {
        self.tiers[client]
    }

    /// Arrival slots of one client, in issue (`index`) order.
    pub fn client_slots(&self, client: usize) -> Vec<usize> {
        let mut slots: Vec<(usize, usize)> = self
            .arrivals
            .iter()
            .filter(|a| a.client == client)
            .map(|a| (a.index, a.slot))
            .collect();
        slots.sort_unstable();
        slots.into_iter().map(|(_, s)| s).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_store::CodecKind;

    fn manifest() -> RunManifest {
        RunManifest {
            run_id: "trace-test".into(),
            n_stagers: 4,
            width: 8,
            height: 8,
            codec: CodecKind::Raw,
            iterations: vec![100, 200, 300, 400, 500, 600, 700, 800],
            shard_chunks: None,
        }
    }

    #[test]
    fn trace_is_a_pure_function_of_spec_and_manifest() {
        let spec = TraceSpec::new(8, 16, 42);
        let a = ArrivalTrace::generate(&spec, &manifest());
        let b = ArrivalTrace::generate(&spec, &manifest());
        assert_eq!(a, b);
        let c = ArrivalTrace::generate(&TraceSpec::new(8, 16, 43), &manifest());
        assert_ne!(a, c, "a different seed must move the trace");
    }

    #[test]
    fn canonical_order_is_sorted_and_slots_are_positions() {
        let trace = ArrivalTrace::generate(&TraceSpec::new(6, 20, 7), &manifest());
        assert_eq!(trace.len(), 120);
        for (i, w) in trace.arrivals.windows(2).enumerate() {
            assert!(
                w[0].time < w[1].time
                    || (w[0].time == w[1].time
                        && (w[0].client, w[0].index) < (w[1].client, w[1].index)),
                "canonical order violated at {i}"
            );
        }
        for (i, a) in trace.arrivals.iter().enumerate() {
            assert_eq!(a.slot, i);
        }
    }

    #[test]
    fn per_client_times_increase_and_indices_cover() {
        let trace = ArrivalTrace::generate(&TraceSpec::new(5, 12, 3), &manifest());
        for c in 0..5 {
            let slots = trace.client_slots(c);
            assert_eq!(slots.len(), 12);
            let mut last = -1.0;
            for (j, &s) in slots.iter().enumerate() {
                let a = trace.arrivals[s];
                assert_eq!(a.client, c);
                assert_eq!(a.index, j);
                assert!(a.time > last, "client times must strictly increase");
                last = a.time;
            }
        }
    }

    #[test]
    fn premium_share_selects_tiers_deterministically() {
        let all_free = TraceSpec::new(10, 2, 1).with_premium_share(0.0);
        let trace = ArrivalTrace::generate(&all_free, &manifest());
        assert!(trace.tiers.iter().all(|t| *t == QosTier::Free));
        let all_prem = TraceSpec::new(10, 2, 1).with_premium_share(1.0);
        let trace = ArrivalTrace::generate(&all_prem, &manifest());
        assert!(trace.tiers.iter().all(|t| *t == QosTier::Premium));
    }

    #[test]
    fn requests_stay_inside_protocol_invariants() {
        let trace = ArrivalTrace::generate(&TraceSpec::new(16, 32, 99), &manifest());
        let m = manifest();
        for a in &trace.arrivals {
            assert!((a.stager as usize) < m.n_stagers);
            match a.request {
                FrameRequest::Range { start, end } => {
                    assert!(start <= end, "generator must never emit inverted ranges")
                }
                FrameRequest::AtIteration(_) | FrameRequest::Latest => {}
            }
            // Round-trip through the wire codec: what the trace records
            // is exactly what the client will put on the wire.
            let wire = a.request.encode();
            assert_eq!(FrameRequest::decode(&wire).unwrap(), a.request);
        }
    }

    #[test]
    fn tier_names_and_policies_are_stable() {
        assert_eq!(QosTier::Premium.name(), "premium");
        assert_eq!(QosTier::Free.name(), "free");
        assert_eq!(QosTier::Premium.policy(), ServePolicy::WaitForFrame);
        assert_eq!(QosTier::Free.policy(), ServePolicy::BestEffort);
    }
}

//! The pool plan: who executes each recorded arrival, in what order.
//!
//! Stealing in a real serving pool is a race: an idle server grabs work
//! from a loaded peer's queue, and which request moves depends on thread
//! timing. Replayed in virtual time it becomes a *plan*: a deterministic
//! discrete-event simulation over the recorded [`ArrivalTrace`] decides,
//! before any rank spawns, which server executes each arrival and in what
//! service order. The SPMD executor (`apc-core`'s `replay_serving`) then
//! realizes the plan over real endpoints — so two runs of the same trace
//! steal the identical requests, byte for byte, under any `ExecPolicy`.
//!
//! The simulation is intentionally simple queueing: each server is a
//! single virtual worker with a premium queue and a free queue. An
//! arrival joins its primary's tier queue (or starts immediately on an
//! idle primary). On completion a server pops its own premium queue
//! first, then its own free queue; under
//! [`RouteMode::RoutedStealing`] an idle server with nothing of its own
//! steals the *newest* queued request (free tier first) from the
//! most-loaded peer — classic tail stealing.
//!
//! Tail stealing can hand one server two requests of the same client in
//! reverse issue order, but a client's endpoint stream to a server is
//! FIFO — so the executor does not put the plan's service order on the
//! wire directly. Instead [`PoolPlan::pair_slots`] fixes the per-(client,
//! executor) wire contract to issue order, and the server walks its
//! [`PoolPlan::server_order`] *attributing* each step to the next
//! unconsumed slot of that step's client pair (a cursor per pair). The
//! cross-client interleaving the plan chose survives; the per-pair FIFO
//! the endpoints require is restored.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::route::{primary_for, RouteMode};
use crate::trace::{ArrivalTrace, QosTier};

/// Deliberate mid-run server death, for fault-injection suites: the
/// executor's server `server` panics after serving `after_requests`
/// requests. Planning ignores it — the plan is what the failed run *would*
/// have executed, which is exactly what a fresh session replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayFault {
    pub server: usize,
    pub after_requests: usize,
}

/// Pool shape and virtual cost knobs of a replay run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolParams {
    /// Server ranks in the pool.
    pub nservers: usize,
    /// Routing mode.
    pub mode: RouteMode,
    /// Byte budget of each server's `CachedBackend` (0 disables caching).
    pub cache_bytes: usize,
    /// Virtual seconds of per-request service work (decode, resolve,
    /// reply assembly).
    pub service_base: f64,
    /// Extra virtual seconds a stolen request pays (queue migration).
    pub steal_overhead: f64,
    /// Virtual seconds of fixed storage-tier latency per cache-missed
    /// frame read. Deliberately *not* `NetModel::ingest` — the store is a
    /// storage tier with its own latency floor, and the stock
    /// interconnect models price ingest at or near zero.
    pub miss_read: f64,
    /// Virtual seconds per byte of a cache-missed frame read (a
    /// disk-bandwidth model).
    pub read_per_byte: f64,
    /// Optional deliberate server death (fault-injection suites).
    pub fault: Option<ReplayFault>,
}

impl PoolParams {
    pub fn new(nservers: usize, mode: RouteMode) -> Self {
        assert!(nservers >= 1, "need at least one replay server");
        Self {
            nservers,
            mode,
            cache_bytes: 1 << 20,
            service_base: 1e-4,
            steal_overhead: 5e-5,
            miss_read: 2e-3,
            read_per_byte: 1e-8,
            fault: None,
        }
    }

    /// Set each server's cache byte budget (0 disables caching).
    pub fn with_cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Set the virtual service / steal-overhead costs.
    pub fn with_service(mut self, base: f64, steal_overhead: f64) -> Self {
        assert!(
            base >= 0.0 && steal_overhead >= 0.0,
            "costs are non-negative"
        );
        self.service_base = base;
        self.steal_overhead = steal_overhead;
        self
    }

    /// Set the storage-tier read model (fixed latency + per-byte cost per
    /// cache-missed frame).
    pub fn with_store_read(mut self, miss_read: f64, read_per_byte: f64) -> Self {
        assert!(
            miss_read >= 0.0 && read_per_byte >= 0.0,
            "costs are non-negative"
        );
        self.miss_read = miss_read;
        self.read_per_byte = read_per_byte;
        self
    }

    /// Arm a deliberate server death (fault-injection suites).
    pub fn with_fault(mut self, fault: ReplayFault) -> Self {
        assert!(fault.server < self.nservers, "fault names a pool server");
        self.fault = Some(fault);
        self
    }
}

/// Where one arrival ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// Trace slot this assignment is for.
    pub slot: usize,
    /// The arrival's routed primary server.
    pub primary: usize,
    /// The server that actually executes it.
    pub executor: usize,
    /// Whether a steal moved it off its primary.
    pub stolen: bool,
}

/// The complete, deterministic execution plan of one replay run.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolPlan {
    /// Per-arrival assignment, in trace-slot order.
    pub assignments: Vec<Assignment>,
    /// Per-server service-start order (trace slots), the order the
    /// executor's server ranks process their work in.
    pub server_order: Vec<Vec<usize>>,
    /// Requests a steal moved off their primary.
    pub stolen_total: usize,
}

/// Discrete-event state of one planned server.
#[derive(Debug, Default)]
struct ServerState {
    busy: bool,
    premium: VecDeque<usize>,
    free: VecDeque<usize>,
}

impl ServerState {
    fn queued(&self) -> usize {
        self.premium.len() + self.free.len()
    }
}

/// One planner event. Completions sort before arrivals at equal times so
/// a freed server can pick up a request arriving that same instant.
#[derive(Debug, PartialEq)]
struct Ev {
    time: f64,
    /// 0 = completion, 1 = arrival.
    kind: u8,
    /// Completion: server index. Arrival: trace slot.
    id: usize,
}

impl Eq for Ev {}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first. f64 keys
        // are compared with total_cmp — the times are virtual-clock
        // arithmetic, never NaN, and total order keeps the heap lawful.
        other
            .time
            .total_cmp(&self.time)
            .then(other.kind.cmp(&self.kind))
            .then(other.id.cmp(&self.id))
    }
}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PoolPlan {
    /// Plan `trace` over a pool described by `params`, routing against
    /// the run's `iterations` list. `est_cost[slot]` is the caller's
    /// estimate of each arrival's service time (the executor uses a
    /// pessimistic all-miss estimate); it shapes steal decisions only —
    /// the executor's real charges replace it.
    pub fn plan(
        trace: &ArrivalTrace,
        params: &PoolParams,
        iterations: &[usize],
        est_cost: &[f64],
    ) -> Self {
        assert_eq!(
            est_cost.len(),
            trace.len(),
            "one cost estimate per recorded arrival"
        );
        let n = params.nservers;
        let mut assignments: Vec<Assignment> = trace
            .arrivals
            .iter()
            .map(|a| {
                let primary = primary_for(params.mode, a, n, iterations);
                Assignment {
                    slot: a.slot,
                    primary,
                    executor: primary,
                    stolen: false,
                }
            })
            .collect();

        let mut heap: BinaryHeap<Ev> = BinaryHeap::with_capacity(trace.len() + n);
        let mut servers: Vec<ServerState> = (0..n).map(|_| ServerState::default()).collect();
        for a in &trace.arrivals {
            heap.push(Ev {
                time: a.time,
                kind: 1,
                id: a.slot,
            });
        }

        let mut server_order: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut stolen_total = 0usize;

        // Start `slot` on server `s` at `now`.
        let mut start = |s: usize,
                         slot: usize,
                         stolen: bool,
                         now: f64,
                         servers: &mut Vec<ServerState>,
                         heap: &mut BinaryHeap<Ev>,
                         assignments: &mut Vec<Assignment>,
                         server_order: &mut Vec<Vec<usize>>| {
            servers[s].busy = true;
            assignments[slot].executor = s;
            assignments[slot].stolen = stolen;
            server_order[s].push(slot);
            if stolen {
                stolen_total += 1;
            }
            let cost = est_cost[slot] + if stolen { params.steal_overhead } else { 0.0 };
            heap.push(Ev {
                time: now + cost,
                kind: 0,
                id: s,
            });
        };

        while let Some(ev) = heap.pop() {
            match ev.kind {
                1 => {
                    // Arrival: join the primary, or start immediately if
                    // it is idle.
                    let slot = ev.id;
                    let a = &trace.arrivals[slot];
                    let p = assignments[slot].primary;
                    if servers[p].busy {
                        match a.tier {
                            QosTier::Premium => servers[p].premium.push_back(slot),
                            QosTier::Free => servers[p].free.push_back(slot),
                        }
                    } else {
                        start(
                            p,
                            slot,
                            false,
                            ev.time,
                            &mut servers,
                            &mut heap,
                            &mut assignments,
                            &mut server_order,
                        );
                    }
                }
                _ => {
                    // Completion: pop own work (premium first), else
                    // steal under RoutedStealing.
                    let s = ev.id;
                    servers[s].busy = false;
                    let next = servers[s]
                        .premium
                        .pop_front()
                        .or_else(|| servers[s].free.pop_front());
                    if let Some(slot) = next {
                        start(
                            s,
                            slot,
                            false,
                            ev.time,
                            &mut servers,
                            &mut heap,
                            &mut assignments,
                            &mut server_order,
                        );
                    } else if params.mode.steals() {
                        // Victim: the most-loaded peer, ties to the
                        // lowest index. Steal the newest queued request,
                        // free tier before premium (paying work stays on
                        // its cache-affine primary longest).
                        let victim = (0..n)
                            .filter(|&v| v != s && servers[v].queued() > 0)
                            .max_by(|&a, &b| {
                                servers[a]
                                    .queued()
                                    .cmp(&servers[b].queued())
                                    .then(b.cmp(&a))
                            });
                        if let Some(v) = victim {
                            let next = servers[v]
                                .free
                                .pop_back()
                                .or_else(|| servers[v].premium.pop_back());
                            if let Some(slot) = next {
                                start(
                                    s,
                                    slot,
                                    true,
                                    ev.time,
                                    &mut servers,
                                    &mut heap,
                                    &mut assignments,
                                    &mut server_order,
                                );
                            }
                        }
                    }
                }
            }
        }

        debug_assert!(
            servers.iter().all(|s| !s.busy && s.queued() == 0),
            "plan drained every queue"
        );
        Self {
            assignments,
            server_order,
            stolen_total,
        }
    }

    /// Trace slots executed by server `s` for client `c`, in the client's
    /// issue order — the per-(client, server) wire contract both the
    /// client's send loop and the server's receive attribution follow.
    pub fn pair_slots(&self, trace: &ArrivalTrace, s: usize, c: usize) -> Vec<usize> {
        let mut slots: Vec<(usize, usize)> = self
            .assignments
            .iter()
            .filter(|asg| asg.executor == s && trace.arrivals[asg.slot].client == c)
            .map(|asg| (trace.arrivals[asg.slot].index, asg.slot))
            .collect();
        slots.sort_unstable();
        slots.into_iter().map(|(_, slot)| slot).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceSpec;
    use apc_serve::RunManifest;
    use apc_store::CodecKind;

    fn manifest() -> RunManifest {
        RunManifest {
            run_id: "plan-test".into(),
            n_stagers: 4,
            width: 8,
            height: 8,
            codec: CodecKind::Raw,
            iterations: vec![100, 200, 300, 400, 500, 600, 700, 800],
            shard_chunks: None,
        }
    }

    fn plan_for(mode: RouteMode, clients: usize, seed: u64) -> (ArrivalTrace, PoolPlan) {
        let m = manifest();
        let trace = ArrivalTrace::generate(&TraceSpec::new(clients, 16, seed), &m);
        let params = PoolParams::new(4, mode);
        let est: Vec<f64> = trace.arrivals.iter().map(|_| 1e-3).collect();
        let plan = PoolPlan::plan(&trace, &params, &m.iterations, &est);
        (trace, plan)
    }

    #[test]
    fn plan_is_deterministic() {
        let (_, a) = plan_for(RouteMode::RoutedStealing, 12, 5);
        let (_, b) = plan_for(RouteMode::RoutedStealing, 12, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn every_arrival_is_executed_exactly_once() {
        for mode in [
            RouteMode::Pinned,
            RouteMode::Routed,
            RouteMode::RoutedStealing,
        ] {
            let (trace, plan) = plan_for(mode, 10, 9);
            let mut seen = vec![false; trace.len()];
            for order in &plan.server_order {
                for &slot in order {
                    assert!(!seen[slot], "slot {slot} started twice");
                    seen[slot] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "every slot starts");
            assert_eq!(
                plan.assignments.iter().filter(|a| a.stolen).count(),
                plan.stolen_total
            );
        }
    }

    #[test]
    fn non_stealing_modes_never_move_work() {
        for mode in [RouteMode::Pinned, RouteMode::Routed] {
            let (_, plan) = plan_for(mode, 10, 11);
            assert_eq!(plan.stolen_total, 0);
            assert!(plan
                .assignments
                .iter()
                .all(|a| a.executor == a.primary && !a.stolen));
        }
    }

    #[test]
    fn stealing_moves_work_under_load() {
        // Bursty arrivals over a hashed primary distribution leave some
        // servers idle while others queue — stealing must fire.
        let (_, plan) = plan_for(RouteMode::RoutedStealing, 24, 3);
        assert!(plan.stolen_total > 0, "expected steals under burst load");
        for a in &plan.assignments {
            if a.stolen {
                assert_ne!(a.executor, a.primary, "a steal moves work");
            } else {
                assert_eq!(a.executor, a.primary);
            }
        }
    }

    #[test]
    fn pair_slots_preserve_issue_order() {
        let (trace, plan) = plan_for(RouteMode::RoutedStealing, 16, 21);
        for s in 0..4 {
            for c in 0..16 {
                let slots = plan.pair_slots(&trace, s, c);
                let idxs: Vec<usize> = slots.iter().map(|&sl| trace.arrivals[sl].index).collect();
                let mut sorted = idxs.clone();
                sorted.sort_unstable();
                assert_eq!(idxs, sorted, "pair ({c}, {s}) out of issue order");
            }
        }
    }

    #[test]
    fn fault_knob_validates_and_rides_along() {
        let params = PoolParams::new(4, RouteMode::Routed).with_fault(ReplayFault {
            server: 2,
            after_requests: 5,
        });
        assert_eq!(
            params.fault,
            Some(ReplayFault {
                server: 2,
                after_requests: 5
            })
        );
    }
}

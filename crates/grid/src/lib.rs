//! 3D rectilinear grids, domain decomposition and block management.
//!
//! This crate provides the spatial substrate of the in situ visualization
//! pipeline from Dorier et al. (CLUSTER 2016):
//!
//! * [`Dims3`] / [`Extent3`] — index-space shapes and boxes;
//! * [`Field3`] — a dense 3D array of `f32` samples (x-fastest layout);
//! * [`RectilinearCoords`] — per-axis physical coordinates, optionally
//!   stretched near the domain border like CM1's grid;
//! * [`DomainDecomp`] — the regular *domain → subdomain → block*
//!   decomposition the paper assumes (constant block size, constant number
//!   of blocks per process);
//! * [`Block`] / [`BlockData`] — a scored/renderable unit of data, either
//!   `Full` or `Reduced` to its 8 corner values (paper §IV-C);
//! * [`interp`] — trilinear interpolation and the reconstruction used both
//!   by the TRILIN scoring metric and by rendering of reduced blocks.

pub mod block;
pub mod coords;
pub mod decomp;
pub mod dims;
pub mod field;
pub mod interp;

pub use block::{Block, BlockData, BlockId};
pub use coords::RectilinearCoords;
pub use decomp::{DomainDecomp, ProcGrid};
pub use dims::{Dims3, Extent3};
pub use field::Field3;

/// Errors produced by grid construction and decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridError {
    /// A dimension was zero.
    ZeroDim,
    /// Domain dimensions are not divisible by the process grid.
    IndivisibleProcs {
        domain: Dims3,
        procs: (usize, usize, usize),
    },
    /// Subdomain dimensions are not divisible by the block dimensions.
    IndivisibleBlocks { subdomain: Dims3, block: Dims3 },
    /// An extent falls outside the field it refers to.
    OutOfBounds,
    /// A data buffer does not match the advertised dimensions.
    LengthMismatch { expected: usize, got: usize },
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridError::ZeroDim => write!(f, "dimension must be non-zero"),
            GridError::IndivisibleProcs { domain, procs } => write!(
                f,
                "domain {domain} not divisible by process grid {}x{}x{}",
                procs.0, procs.1, procs.2
            ),
            GridError::IndivisibleBlocks { subdomain, block } => {
                write!(
                    f,
                    "subdomain {subdomain} not divisible by block size {block}"
                )
            }
            GridError::OutOfBounds => write!(f, "extent out of bounds"),
            GridError::LengthMismatch { expected, got } => {
                write!(f, "buffer length {got} does not match dims ({expected})")
            }
        }
    }
}

impl std::error::Error for GridError {}

//! Trilinear interpolation and corner-based reconstruction.
//!
//! Two consumers: the TRILIN scoring metric (mean square error between a
//! block and its reconstruction from 8 corners, paper §IV-B-b) and the
//! renderer, which rebuilds reduced blocks the same way a visualization
//! pipeline would (paper §IV-C).

use crate::Dims3;

/// Corner ordering convention used everywhere in this workspace:
/// `corners[dz*4 + dy*2 + dx]` is the value at the block corner with local
/// offsets `dx, dy, dz ∈ {0, 1}` (i.e. index 0 = low corner, 7 = high corner).
#[inline(always)]
pub fn trilinear(corners: &[f32; 8], u: f32, v: f32, w: f32) -> f32 {
    let c00 = corners[0] + (corners[1] - corners[0]) * u;
    let c10 = corners[2] + (corners[3] - corners[2]) * u;
    let c01 = corners[4] + (corners[5] - corners[4]) * u;
    let c11 = corners[6] + (corners[7] - corners[6]) * u;
    let c0 = c00 + (c10 - c00) * v;
    let c1 = c01 + (c11 - c01) * v;
    c0 + (c1 - c0) * w
}

/// Parametric coordinate of sample `i` along an axis of `n` points
/// (0 when the axis is degenerate).
#[inline(always)]
fn param(i: usize, n: usize) -> f32 {
    if n <= 1 {
        0.0
    } else {
        i as f32 / (n - 1) as f32
    }
}

/// Extract the 8 corner values of an x-fastest buffer of shape `dims`,
/// in the [`trilinear`] corner order.
pub fn corners_of(data: &[f32], dims: Dims3) -> [f32; 8] {
    debug_assert_eq!(data.len(), dims.len());
    let mx = dims.nx - 1;
    let my = dims.ny - 1;
    let mz = dims.nz - 1;
    let mut c = [0.0f32; 8];
    for dz in 0..2usize {
        for dy in 0..2usize {
            for dx in 0..2usize {
                c[dz * 4 + dy * 2 + dx] = data[dims.idx(dx * mx, dy * my, dz * mz)];
            }
        }
    }
    c
}

/// Rebuild a full block of shape `dims` from its 8 corners by trilinear
/// interpolation.
pub fn reconstruct_from_corners(corners: &[f32; 8], dims: Dims3) -> Vec<f32> {
    let mut out = Vec::with_capacity(dims.len());
    for k in 0..dims.nz {
        let w = param(k, dims.nz);
        for j in 0..dims.ny {
            let v = param(j, dims.ny);
            for i in 0..dims.nx {
                let u = param(i, dims.nx);
                out.push(trilinear(corners, u, v, w));
            }
        }
    }
    out
}

/// Trilinearly resample a coarse x-fastest grid onto a finer one spanning
/// the same extent. Axes with a single coarse point are treated as
/// constant. This generalizes corner reconstruction to the k×k×k
/// downsampling of the paper's §IV-C outlook.
pub fn resample_trilinear(coarse: &[f32], coarse_dims: Dims3, fine_dims: Dims3) -> Vec<f32> {
    debug_assert_eq!(coarse.len(), coarse_dims.len());
    let mut out = Vec::with_capacity(fine_dims.len());
    let axis_pos = |i: usize, n_fine: usize, n_coarse: usize| -> (usize, usize, f32) {
        if n_coarse <= 1 || n_fine <= 1 {
            return (0, 0, 0.0);
        }
        let x = i as f32 / (n_fine - 1) as f32 * (n_coarse - 1) as f32;
        let i0 = (x.floor() as usize).min(n_coarse - 2);
        (i0, i0 + 1, x - i0 as f32)
    };
    for k in 0..fine_dims.nz {
        let (k0, k1, w) = axis_pos(k, fine_dims.nz, coarse_dims.nz);
        for j in 0..fine_dims.ny {
            let (j0, j1, v) = axis_pos(j, fine_dims.ny, coarse_dims.ny);
            for i in 0..fine_dims.nx {
                let (i0, i1, u) = axis_pos(i, fine_dims.nx, coarse_dims.nx);
                let c = [
                    coarse[coarse_dims.idx(i0, j0, k0)],
                    coarse[coarse_dims.idx(i1, j0, k0)],
                    coarse[coarse_dims.idx(i0, j1, k0)],
                    coarse[coarse_dims.idx(i1, j1, k0)],
                    coarse[coarse_dims.idx(i0, j0, k1)],
                    coarse[coarse_dims.idx(i1, j0, k1)],
                    coarse[coarse_dims.idx(i0, j1, k1)],
                    coarse[coarse_dims.idx(i1, j1, k1)],
                ];
                out.push(trilinear(&c, u, v, w));
            }
        }
    }
    out
}

/// Pick `k` sample indices spread over an axis of `n` points (first and
/// last included) — the lattice kept by k×k×k downsampling.
pub fn sample_indices(n: usize, k: usize) -> Vec<usize> {
    debug_assert!(k >= 2 && n >= 1);
    if n == 1 {
        return vec![0, 0];
    }
    let k = k.min(n);
    (0..k)
        .map(|s| (s as f64 * (n - 1) as f64 / (k - 1) as f64).round() as usize)
        .collect()
}

/// Mean square error between a block and its trilinear reconstruction from
/// corners — the TRILIN metric of paper §IV-B-b. This matches the error a
/// renderer makes when it interpolates a reduced block.
pub fn trilinear_mse(data: &[f32], dims: Dims3) -> f64 {
    debug_assert_eq!(data.len(), dims.len());
    if data.is_empty() {
        return 0.0;
    }
    let corners = corners_of(data, dims);
    let mut acc = 0.0f64;
    let mut idx = 0;
    for k in 0..dims.nz {
        let w = param(k, dims.nz);
        for j in 0..dims.ny {
            let v = param(j, dims.ny);
            for i in 0..dims.nx {
                let u = param(i, dims.nx);
                let e = (data[idx] - trilinear(&corners, u, v, w)) as f64;
                acc += e * e;
                idx += 1;
            }
        }
    }
    acc / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trilinear_at_corners() {
        let c = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        for dz in 0..2usize {
            for dy in 0..2usize {
                for dx in 0..2usize {
                    let got = trilinear(&c, dx as f32, dy as f32, dz as f32);
                    assert_eq!(got, c[dz * 4 + dy * 2 + dx]);
                }
            }
        }
    }

    #[test]
    fn trilinear_center_is_mean() {
        let c = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let mid = trilinear(&c, 0.5, 0.5, 0.5);
        assert!((mid - 4.5).abs() < 1e-6);
    }

    #[test]
    fn corners_of_extracts_right_points() {
        let dims = Dims3::new(3, 4, 5);
        let data: Vec<f32> = (0..dims.len()).map(|v| v as f32).collect();
        let c = corners_of(&data, dims);
        assert_eq!(c[0], data[dims.idx(0, 0, 0)]);
        assert_eq!(c[1], data[dims.idx(2, 0, 0)]);
        assert_eq!(c[2], data[dims.idx(0, 3, 0)]);
        assert_eq!(c[7], data[dims.idx(2, 3, 4)]);
    }

    #[test]
    fn linear_field_reconstructs_exactly() {
        // A field affine in (i, j, k) is exactly captured by trilinear interp,
        // so the TRILIN score must be ~0.
        let dims = Dims3::new(6, 5, 4);
        let mut data = Vec::new();
        for k in 0..dims.nz {
            for j in 0..dims.ny {
                for i in 0..dims.nx {
                    data.push(2.0 * i as f32 - 3.0 * j as f32 + 0.5 * k as f32 + 1.0);
                }
            }
        }
        assert!(trilinear_mse(&data, dims) < 1e-9);
        let rec = reconstruct_from_corners(&corners_of(&data, dims), dims);
        for (a, b) in data.iter().zip(&rec) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn bumpy_field_has_positive_mse() {
        let dims = Dims3::new(5, 5, 5);
        let data: Vec<f32> = (0..dims.len())
            .map(|v| if v % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(trilinear_mse(&data, dims) > 0.5);
    }

    #[test]
    fn sample_indices_endpoints_and_spread() {
        assert_eq!(sample_indices(11, 2), vec![0, 10]);
        assert_eq!(sample_indices(11, 3), vec![0, 5, 10]);
        assert_eq!(sample_indices(5, 5), vec![0, 1, 2, 3, 4]);
        // k > n clamps to n.
        assert_eq!(sample_indices(3, 7), vec![0, 1, 2]);
        assert_eq!(sample_indices(1, 4), vec![0, 0]);
    }

    #[test]
    fn resample_identity_when_dims_match() {
        let dims = Dims3::new(3, 4, 2);
        let data: Vec<f32> = (0..dims.len()).map(|v| v as f32).collect();
        let out = resample_trilinear(&data, dims, dims);
        for (a, b) in data.iter().zip(&out) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn resample_from_corners_matches_reconstruct() {
        let fine = Dims3::new(5, 6, 4);
        let corners = [1.0f32, 2.0, 3.0, 4.0, -1.0, -2.0, -3.0, -4.0];
        let via_resample = resample_trilinear(&corners, Dims3::new(2, 2, 2), fine);
        let via_reconstruct = reconstruct_from_corners(&corners, fine);
        for (a, b) in via_resample.iter().zip(&via_reconstruct) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn finer_lattice_reduces_reconstruction_error() {
        // A quadratic bump: 3x3x3 samples capture it better than corners.
        let dims = Dims3::new(9, 9, 9);
        let mut data = Vec::new();
        for k in 0..9 {
            for j in 0..9 {
                for i in 0..9 {
                    let r2 = (i as f32 - 4.0).powi(2)
                        + (j as f32 - 4.0).powi(2)
                        + (k as f32 - 4.0).powi(2);
                    data.push((-r2 / 8.0).exp());
                }
            }
        }
        let mse = |k: usize| -> f64 {
            let idx = sample_indices(9, k);
            let cd = Dims3::new(k, k, k);
            let mut coarse = Vec::new();
            for &kz in &idx {
                for &jy in &idx {
                    for &ix in &idx {
                        coarse.push(data[dims.idx(ix, jy, kz)]);
                    }
                }
            }
            let rec = resample_trilinear(&coarse, cd, dims);
            data.iter()
                .zip(&rec)
                .map(|(a, b)| ((a - b) as f64).powi(2))
                .sum::<f64>()
                / data.len() as f64
        };
        let e2 = mse(2);
        let e3 = mse(3);
        let e5 = mse(5);
        assert!(e3 < e2, "3^3 lattice should beat corners: {e3} vs {e2}");
        assert!(e5 < e3, "5^3 lattice should beat 3^3: {e5} vs {e3}");
    }

    #[test]
    fn degenerate_axis_handled() {
        // 2D block (nz = 1): must not divide by zero.
        let dims = Dims3::new(4, 4, 1);
        let data = vec![2.5; dims.len()];
        assert_eq!(trilinear_mse(&data, dims), 0.0);
        let rec = reconstruct_from_corners(&corners_of(&data, dims), dims);
        assert!(rec.iter().all(|&v| (v - 2.5).abs() < 1e-6));
    }
}

//! Dense 3D scalar fields.

use crate::{Dims3, Extent3, GridError};

/// A dense 3D array of `f32` samples in x-fastest layout.
///
/// This is the in-memory representation of one variable (e.g. reflectivity)
/// over a domain or subdomain at one simulation iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Field3 {
    dims: Dims3,
    data: Vec<f32>,
}

impl Field3 {
    /// A field filled with `fill`.
    pub fn filled(dims: Dims3, fill: f32) -> Self {
        Self {
            dims,
            data: vec![fill; dims.len()],
        }
    }

    /// A zero field.
    pub fn zeros(dims: Dims3) -> Self {
        Self::filled(dims, 0.0)
    }

    /// Wrap an existing buffer; its length must match `dims`.
    pub fn from_vec(dims: Dims3, data: Vec<f32>) -> Result<Self, GridError> {
        if data.len() != dims.len() {
            return Err(GridError::LengthMismatch {
                expected: dims.len(),
                got: data.len(),
            });
        }
        Ok(Self { dims, data })
    }

    /// Build a field by evaluating `f(i, j, k)` at every point.
    pub fn from_fn(dims: Dims3, mut f: impl FnMut(usize, usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(dims.len());
        for k in 0..dims.nz {
            for j in 0..dims.ny {
                for i in 0..dims.nx {
                    data.push(f(i, j, k));
                }
            }
        }
        Self { dims, data }
    }

    pub fn dims(&self) -> Dims3 {
        self.dims
    }

    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    #[inline(always)]
    pub fn get(&self, i: usize, j: usize, k: usize) -> f32 {
        self.data[self.dims.idx(i, j, k)]
    }

    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, k: usize, v: f32) {
        let idx = self.dims.idx(i, j, k);
        self.data[idx] = v;
    }

    /// Minimum and maximum sample values (ignoring NaN); `None` if empty.
    pub fn min_max(&self) -> Option<(f32, f32)> {
        let mut it = self.data.iter().copied().filter(|v| !v.is_nan());
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for v in it {
            if v < lo {
                lo = v;
            }
            if v > hi {
                hi = v;
            }
        }
        Some((lo, hi))
    }

    /// Copy the samples inside `extent` into a new contiguous buffer
    /// (x-fastest layout of the extent's own dims).
    pub fn extract(&self, extent: Extent3) -> Result<Vec<f32>, GridError> {
        if !extent.fits_in(self.dims) {
            return Err(GridError::OutOfBounds);
        }
        let ed = extent.dims();
        let mut out = Vec::with_capacity(ed.len());
        for k in extent.lo.2..extent.hi.2 {
            for j in extent.lo.1..extent.hi.1 {
                let row = self.dims.idx(extent.lo.0, j, k);
                out.extend_from_slice(&self.data[row..row + ed.nx]);
            }
        }
        Ok(out)
    }

    /// Write a contiguous buffer (shaped like `extent.dims()`) back into the
    /// field at `extent`. Inverse of [`Field3::extract`].
    pub fn insert(&mut self, extent: Extent3, values: &[f32]) -> Result<(), GridError> {
        if !extent.fits_in(self.dims) {
            return Err(GridError::OutOfBounds);
        }
        let ed = extent.dims();
        if values.len() != ed.len() {
            return Err(GridError::LengthMismatch {
                expected: ed.len(),
                got: values.len(),
            });
        }
        let mut src = 0;
        for k in extent.lo.2..extent.hi.2 {
            for j in extent.lo.1..extent.hi.1 {
                let row = self.dims.idx(extent.lo.0, j, k);
                self.data[row..row + ed.nx].copy_from_slice(&values[src..src + ed.nx]);
                src += ed.nx;
            }
        }
        Ok(())
    }

    /// Extract the 2D slice `k = k_plane` as a row-major (`ny` rows of `nx`)
    /// buffer. Used by colormap rendering and scoremaps.
    pub fn slice_z(&self, k_plane: usize) -> Result<Vec<f32>, GridError> {
        if k_plane >= self.dims.nz {
            return Err(GridError::OutOfBounds);
        }
        let ext = Extent3::new((0, 0, k_plane), (self.dims.nx, self.dims.ny, k_plane + 1));
        self.extract(ext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(dims: Dims3) -> Field3 {
        Field3::from_fn(dims, |i, j, k| (i + 10 * j + 100 * k) as f32)
    }

    #[test]
    fn from_vec_checks_length() {
        let d = Dims3::new(2, 2, 2);
        assert!(Field3::from_vec(d, vec![0.0; 8]).is_ok());
        assert_eq!(
            Field3::from_vec(d, vec![0.0; 7]),
            Err(GridError::LengthMismatch {
                expected: 8,
                got: 7
            })
        );
    }

    #[test]
    fn get_set() {
        let mut f = Field3::zeros(Dims3::new(3, 3, 3));
        f.set(1, 2, 0, 5.0);
        assert_eq!(f.get(1, 2, 0), 5.0);
        assert_eq!(f.get(0, 0, 0), 0.0);
    }

    #[test]
    fn extract_insert_roundtrip() {
        let d = Dims3::new(6, 5, 4);
        let f = ramp(d);
        let ext = Extent3::new((1, 1, 1), (4, 4, 3));
        let sub = f.extract(ext).unwrap();
        assert_eq!(sub.len(), ext.len());
        // Spot-check layout: first element is (1,1,1).
        assert_eq!(sub[0], f.get(1, 1, 1));
        assert_eq!(sub[1], f.get(2, 1, 1));

        let mut g = Field3::zeros(d);
        g.insert(ext, &sub).unwrap();
        for k in 0..4 {
            for j in 0..5 {
                for i in 0..6 {
                    let expect = if ext.contains((i, j, k)) {
                        f.get(i, j, k)
                    } else {
                        0.0
                    };
                    assert_eq!(g.get(i, j, k), expect);
                }
            }
        }
    }

    #[test]
    fn extract_out_of_bounds() {
        let f = ramp(Dims3::new(4, 4, 4));
        let ext = Extent3::new((2, 2, 2), (5, 4, 4));
        assert_eq!(f.extract(ext), Err(GridError::OutOfBounds));
    }

    #[test]
    fn min_max() {
        let f = ramp(Dims3::new(3, 3, 3));
        assert_eq!(f.min_max(), Some((0.0, 222.0)));
        let empty = Field3::zeros(Dims3::new(0, 3, 3));
        assert_eq!(empty.min_max(), None);
    }

    #[test]
    fn slice_z_layout() {
        let f = ramp(Dims3::new(3, 2, 2));
        let s = f.slice_z(1).unwrap();
        assert_eq!(s, vec![100.0, 101.0, 102.0, 110.0, 111.0, 112.0]);
        assert!(f.slice_z(2).is_err());
    }
}
